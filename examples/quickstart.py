"""Quickstart: build a small corpus, ingest it, run a query.

Run:  python examples/quickstart.py
"""

from repro import VideoRetrievalSystem, make_corpus


def main() -> None:
    # 1. A synthetic corpus: 2 videos in each of the 5 categories.
    corpus = make_corpus(videos_per_category=2, seed=7, n_shots=2, frames_per_shot=6)
    print(f"generated {len(corpus)} videos "
          f"({corpus[0].n_frames} frames each, categories: "
          f"{sorted(set(v.category for v in corpus))})")

    # 2. An in-memory retrieval system; the admin ingests every video
    #    (key-frame extraction -> 6 feature extractors -> range index -> DB).
    system = VideoRetrievalSystem.in_memory()
    admin = system.login_admin()
    for video in corpus:
        report = admin.add_video(video)
        print(f"  ingested {report.video_name}: "
              f"{report.n_frames} frames -> {report.n_keyframes} key frames")

    print(f"\nsystem: {system.n_videos()} videos, {system.n_key_frames()} key frames, "
          f"{system.index_stats().n_buckets} index buckets")

    # 3. Query by frame: use a frame from the first (e-learning) video.
    query = corpus[0].frames[3]
    results = system.search(query, top_k=5)
    print(f"\ntop-5 for an e-learning query frame "
          f"(index pruned {results.pruning_fraction:.0%} of the corpus):")
    for row in results.to_rows():
        print(f"  #{row['rank']}: {row['video']:<16} [{row['category']}] "
              f"distance={row['distance']:.4f}")

    # 4. Rank by one feature alone (Table 1's individual columns).
    gabor_only = system.search(query, features="gabor", top_k=3)
    print("\ntop-3 by Gabor texture alone:",
          [h.video_name for h in gabor_only])

    # 5. Metadata search, like the paper's "retrieve ... on metadata".
    print("\nname search 'sports%':",
          [r["V_NAME"] for r in system.search_by_name("sports%")])


if __name__ == "__main__":
    main()
