"""Reproduce the paper's Table 1 (average precision at 20/30/50/100).

Builds the full evaluation corpus (12 videos x 5 categories, multi-shot),
runs every individual feature plus the combined fusion over sampled
queries, judges relevance with the simulated user-study panel, and prints
the measured table next to the paper's numbers.

This is the headline experiment; expect a few minutes of compute.

Run:  python examples/reproduce_table1.py [--small]
"""

import sys
import time

from repro.eval.table1 import PAPER_TABLE1, build_table1_system, run_table1
from repro.eval.userstudy import JudgePanel


def main() -> None:
    small = "--small" in sys.argv
    if small:
        corpus_kwargs = dict(videos_per_category=4, n_shots=4, frames_per_shot=5)
        queries, cutoffs = 4, (5, 10, 20, 30)
    else:
        corpus_kwargs = dict(videos_per_category=12, n_shots=6, frames_per_shot=5)
        queries, cutoffs = 8, (20, 30, 50, 100)

    t0 = time.time()
    system, gt = build_table1_system(**corpus_kwargs)
    print(f"corpus ingested in {time.time() - t0:.0f}s: "
          f"{system.n_videos()} videos, {system.n_key_frames()} key frames")

    t0 = time.time()
    panel = JudgePanel(n_judges=3, error_rate=0.05, seed=99)
    result = run_table1(
        system=system,
        ground_truth=gt,
        queries_per_category=queries,
        judge_panel=panel,
        cutoffs=cutoffs,
    )
    print(f"evaluated {result.n_queries} queries x 7 methods "
          f"in {time.time() - t0:.0f}s\n")

    print(result.to_text(paper=PAPER_TABLE1 if not small else None))
    print("\nshape checks:")
    print("  combined wins at:", result.combined_wins())
    print("  monotone decreasing:", result.monotone_decreasing())


if __name__ == "__main__":
    main()
