"""Figure 8 reproduction: every §4 algorithm's output for one query frame.

The paper's §5.1 dumps each extractor's string representation for a single
query image (its Figure 8).  This example does the same for a synthetic
query frame: the 256-bin histogram, the 6 GLCM statistics, the 60 Gabor
values, the 18 Tamura values, the correlogram, the naive 25-point
signature, the region counts, and the §4.2 (min, max) index assignment.

Run:  python examples/feature_showcase.py
"""

from repro.features import (
    AutoColorCorrelogram,
    GaborTexture,
    GlcmTexture,
    NaiveSignature,
    SimpleColorHistogram,
    SimpleRegionGrowing,
    TamuraTexture,
)
from repro.indexing.rangefinder import RangeFinder
from repro.video.generator import VideoSpec, generate_video


def clip(text: str, n: int = 100) -> str:
    return text if len(text) <= n else text[:n] + " ..."


def main() -> None:
    video = generate_video(VideoSpec(category="movies", seed=42, n_shots=1, frames_per_shot=1))
    frame = video.frames[0]
    print(f"query frame: {frame.width}x{frame.height} RGB "
          f"(synthetic '{video.category}' scene)\n")

    # §4.2: the range-finder's min-max assignment (the paper prints
    # "Output : min = 0, max=127" for its query image)
    bucket = RangeFinder().bucket_for_image(frame)
    print(f"Algorithm : HistogramRangeFinder (§4.2)")
    print(f"Output    : min = {bucket.min}, max = {bucket.max}  (level {bucket.level})\n")

    extractors = [
        ("SimpleColorHistogram (§4.5)", SimpleColorHistogram()),
        ("GLCM_Texture (§4.3)", GlcmTexture()),
        ("Gabor Texture (§4.4)", GaborTexture()),
        ("Tamura Texture", TamuraTexture()),
        ("AutoColorCorrelogram (§4.7)", AutoColorCorrelogram()),
        ("NaiveVector (§4.6)", NaiveSignature()),
        ("SimpleRegionGrowing (§4.8)", SimpleRegionGrowing()),
    ]
    for label, extractor in extractors:
        vector = extractor.extract(frame)
        print(f"Algorithm : {label}")
        print(f"Output    : {clip(vector.to_string())}")
        print(f"            ({len(vector)} values)\n")

    regions = SimpleRegionGrowing().analyze(frame)
    print(f"Region detail: {regions.n_regions} regions, {regions.n_holes} holes, "
          f"major regions (>=5% of frame): "
          f"{regions.major_regions(int(0.05 * frame.width * frame.height))}")


if __name__ == "__main__":
    main()
