"""Durability demo: a video library that survives restarts.

Ingests a corpus into an on-disk database (snapshot + write-ahead log),
"restarts" by reopening the files, and verifies that search works over the
reloaded state -- the paper's "Video Storage and Retrieval System, stores
and manages a large number of video data" claim, minus Oracle.

Run:  python examples/persistent_library.py
"""

import os
import tempfile
import time

from repro import VideoRetrievalSystem, make_corpus


def main() -> None:
    path = os.path.join(tempfile.mkdtemp(prefix="cbvr_"), "library.rdb")

    # session 1: ingest
    t0 = time.time()
    system = VideoRetrievalSystem.open(path)
    admin = system.login_admin()
    for video in make_corpus(videos_per_category=2, seed=5, n_shots=2, frames_per_shot=5):
        admin.add_video(video)
    n_videos, n_frames = system.n_videos(), system.n_key_frames()
    admin.checkpoint()  # fold the WAL into a snapshot
    system.close()
    print(f"session 1: ingested {n_videos} videos / {n_frames} key frames "
          f"in {time.time() - t0:.1f}s")
    print(f"  snapshot: {os.path.getsize(path):,} bytes; "
          f"wal: {os.path.getsize(path + '.wal'):,} bytes")

    # session 2: reopen and search
    t0 = time.time()
    reopened = VideoRetrievalSystem.open(path)
    assert reopened.n_videos() == n_videos
    assert reopened.n_key_frames() == n_frames
    print(f"session 2: reopened in {time.time() - t0:.1f}s -- "
          f"{reopened.n_videos()} videos / {reopened.n_key_frames()} key frames")

    query = reopened.any_key_frame()
    results = reopened.search(query, top_k=3)
    print("  search over reloaded store:")
    for row in results.to_rows():
        print(f"    #{row['rank']}: {row['video']} [{row['category']}] d={row['distance']}")

    # session 3: delete a video inside a crash-safe transaction, reopen
    admin = reopened.login_admin()
    removed = admin.delete_video(1)
    reopened.close()
    final = VideoRetrievalSystem.open(path)
    print(f"session 3: deleted video 1 ({removed} key frames); "
          f"after reopen: {final.n_videos()} videos remain")
    final.close()


if __name__ == "__main__":
    main()
