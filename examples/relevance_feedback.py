"""Interactive retrieval with relevance feedback (extension).

The paper motivates retrieval "through user interactions"; this example
simulates a user who marks the first page of results and lets the Rocchio
loop (query-point movement + feature reweighting) refine the ranking.

Run:  python examples/relevance_feedback.py
"""

from repro import VideoRetrievalSystem, make_corpus
from repro.core.feedback import FeedbackSession
from repro.eval.metrics import precision_at_k
from repro.video.generator import VideoSpec, generate_video


def precision(results, category, k):
    rel = [h.category == category for h in results[:k]]
    return precision_at_k(rel, k)


def main() -> None:
    corpus = make_corpus(videos_per_category=3, seed=17, n_shots=3, frames_per_shot=5)
    system = VideoRetrievalSystem.in_memory()
    admin = system.login_admin()
    for video in corpus:
        admin.add_video(video)
    print(f"corpus: {system.n_videos()} videos / {system.n_key_frames()} key frames")

    # a fresh query clip frame (not stored): the user wants more "news"
    query_clip = generate_video(
        VideoSpec(category="news", seed=999, n_shots=1, frames_per_shot=3)
    )
    query = query_clip.frames[0]

    session = FeedbackSession(system, query)
    results = session.search(top_k=10)
    print(f"\nround 0: precision@5 = {precision(results, 'news', 5):.2f}")
    for hit in results[:5]:
        print(f"   {hit.video_name:<16} [{hit.category}] d={hit.distance:.3f}")

    # the simulated user truthfully marks the first 8 hits
    for round_no in range(1, 3):
        for hit in results[:8]:
            if hit.category == "news":
                session.mark_relevant(hit.frame_id)
            else:
                session.mark_irrelevant(hit.frame_id)
        results = session.refine(top_k=10)
        print(f"\nround {round_no}: precision@5 = {precision(results, 'news', 5):.2f} "
              f"(weights: " +
              ", ".join(f"{k}={v:.2f}" for k, v in sorted(session.weights.items())) + ")")
        for hit in results[:5]:
            print(f"   {hit.video_name:<16} [{hit.category}] d={hit.distance:.3f}")


if __name__ == "__main__":
    main()
