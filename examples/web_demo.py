"""Drive the HTTP facade end to end: upload, browse, search, delete.

Starts the server on a free port, then exercises every route with
urllib -- the scripted version of the paper's Figures 9/10 interaction
(submit a query frame, get ranked matches back, fetch a key frame).

Run:  python examples/web_demo.py
"""

import json
import threading
import urllib.request

from repro import VideoRetrievalSystem, make_corpus
from repro.core.config import SystemConfig
from repro.video.codec import encode_rvf_bytes
from repro.video.generator import VideoSpec, generate_video
from repro.web.server import make_server

PASSWORD = "s3cret"


def request(method: str, url: str, body: bytes = b"", headers=None):
    req = urllib.request.Request(url, data=body or None, method=method, headers=headers or {})
    try:
        with urllib.request.urlopen(req) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def main() -> None:
    config = SystemConfig(admin_password=PASSWORD)
    system = VideoRetrievalSystem.in_memory(config)
    admin = system.login_admin(PASSWORD)
    for video in make_corpus(videos_per_category=2, seed=11, n_shots=2, frames_per_shot=5):
        admin.add_video(video)

    server, port = make_server(system)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{port}"
    print(f"server on {base}: "
          f"{system.n_videos()} videos / {system.n_key_frames()} key frames\n")

    status, body = request("GET", f"{base}/videos")
    videos = json.loads(body)["videos"]
    print(f"GET /videos -> {status}, {len(videos)} videos; first:", videos[0])

    # upload a new cartoon video over HTTP (admin-authenticated)
    new_clip = generate_video(VideoSpec(category="cartoon", seed=999, n_shots=2, frames_per_shot=5))
    rvf = encode_rvf_bytes(new_clip.frames)
    status, body = request(
        "POST",
        f"{base}/admin/videos?name=uploaded_cartoon&category=cartoon",
        body=rvf,
        headers={"X-Admin-Password": PASSWORD},
    )
    upload = json.loads(body)
    print(f"POST /admin/videos -> {status}:", upload)

    # a wrong password must be rejected
    status, _ = request("POST", f"{base}/admin/videos?name=x", body=rvf,
                        headers={"X-Admin-Password": "wrong"})
    print(f"POST with wrong password -> {status} (expected 401)")

    # search with a frame of the uploaded clip
    query_ppm = new_clip.frames[0].encode("ppm")
    status, body = request("POST", f"{base}/search?top_k=5", body=query_ppm)
    hits = json.loads(body)["results"]
    print(f"\nPOST /search -> {status}; top hits:")
    for h in hits:
        print(f"  #{h['rank']}: {h['video']} [{h['category']}] d={h['distance']}")

    # fetch the best hit's key frame image
    status, body = request("GET", f"{base}/frames/{hits[0]['frame_id']}")
    print(f"\nGET /frames/{hits[0]['frame_id']} -> {status}, "
          f"{len(body)} bytes, magic={body[:2]!r}")

    # delete the uploaded video again
    status, body = request("DELETE", f"{base}/admin/videos/{upload['v_id']}",
                           headers={"X-Admin-Password": PASSWORD})
    print(f"DELETE /admin/videos/{upload['v_id']} -> {status}:", json.loads(body))

    server.shutdown()


if __name__ == "__main__":
    main()
