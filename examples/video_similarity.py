"""Video-to-video retrieval with dynamic-programming sequence alignment.

The paper: "We use a dynamic programming approach to compute the similarity
between the feature vectors for the query and feature vectors in the
feature database."  This example queries the system with whole clips and
shows the DTW alignment between key-frame feature sequences.

Run:  python examples/video_similarity.py
"""

from repro import VideoRetrievalSystem, make_corpus
from repro.similarity.dp import align_sequences, dtw_distance
from repro.video.generator import VideoSpec, generate_video
from repro.video.keyframes import KeyFrameExtractor


def main() -> None:
    corpus = make_corpus(videos_per_category=3, seed=21, n_shots=3, frames_per_shot=5)
    system = VideoRetrievalSystem.in_memory()
    admin = system.login_admin()
    for video in corpus:
        admin.add_video(video)
    print(f"corpus: {system.n_videos()} videos / {system.n_key_frames()} key frames\n")

    # Query with a *fresh* sports clip (not in the corpus) -- different seed,
    # same scene model: retrieval should surface the stored sports videos.
    query = generate_video(VideoSpec(category="sports", seed=777, n_shots=3, frames_per_shot=5))
    matches = system.search_by_video(query, top_k=5)
    print(f"video query: fresh '{query.category}' clip ({query.n_frames} frames)")
    for i, m in enumerate(matches, start=1):
        print(f"  #{i}: {m.video_name:<16} [{m.category}] DTW distance={m.distance:.4f}")

    in_top3 = sum(1 for m in matches[:3] if m.category == "sports")
    print(f"\nsports videos in the top 3: {in_top3}/3")

    # Show one raw DP alignment between two clips' key-frame signatures.
    extractor = KeyFrameExtractor(base_size=150)
    a = [extractor.signature(f) for _i, f in extractor.extract(query.frames)]
    other = next(v for v in corpus if v.category == "sports")
    b = [extractor.signature(f) for _i, f in extractor.extract(other.frames)]

    import numpy as np

    def cost(sa, sb):
        return float(np.sum(np.sqrt(np.sum((sa - sb) ** 2, axis=1))))

    d = dtw_distance(a, b, cost)
    total, pairs = align_sequences(a, b, cost, gap_penalty=2500.0)
    print(f"\nDP against stored '{other.name}': "
          f"DTW={d:.1f}, alignment cost={total:.1f}")
    rendered = ["(gap,%d)" % j if i is None else "(%d,gap)" % i if j is None else f"({i},{j})"
                for i, j in pairs]
    print("alignment path:", " ".join(rendered))


if __name__ == "__main__":
    main()
