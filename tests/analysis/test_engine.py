"""Engine mechanics: pragmas, rule selection, file collection, CLI."""

import json
import textwrap

import pytest

from repro.analysis import (
    LintConfig,
    LintEngine,
    Severity,
    all_rules,
    lint_source,
    module_name_for,
)
from repro.analysis.findings import Finding, Report
from repro.analysis.runner import main as lint_main

BARE_EXCEPT = """
def f():
    try:
        g()
    except:
        return None
"""


class TestPragmas:
    def test_line_pragma_suppresses(self):
        src = BARE_EXCEPT.replace("except:", "except:  # reprolint: disable=R6")
        assert not lint_source(src, config=LintConfig(select=frozenset({"R6"}))).findings

    def test_line_pragma_is_rule_specific(self):
        src = BARE_EXCEPT.replace("except:", "except:  # reprolint: disable=R7")
        report = lint_source(src, config=LintConfig(select=frozenset({"R6"})))
        assert len(report.findings) == 1

    def test_file_pragma_suppresses_everywhere(self):
        src = "# reprolint: disable-file=R6\n" + BARE_EXCEPT
        assert not lint_source(src, config=LintConfig(select=frozenset({"R6"}))).findings

    def test_disable_all(self):
        src = BARE_EXCEPT.replace("except:", "except:  # reprolint: disable=all")
        assert not lint_source(src, config=LintConfig(select=frozenset({"R6"}))).findings

    def test_file_pragma_on_last_line(self):
        src = BARE_EXCEPT + "\n# reprolint: disable-file=R6\n"
        assert not lint_source(src, config=LintConfig(select=frozenset({"R6"}))).findings

    def test_multiple_rule_ids_in_one_pragma(self):
        src = (
            "def f(x=[]):  # reprolint: disable=R6, R7\n"
            "    try:\n"
            "        return x\n"
            "    except:\n"
            "        return None\n"
        )
        report = lint_source(src, config=LintConfig(select=frozenset({"R6", "R7"})))
        # R7 (line 1) is suppressed; R6 fires on line 4, untouched by the pragma
        assert [f.rule_id for f in report.findings] == ["R6"]

    def test_pragma_on_continuation_line_of_multiline_statement(self):
        # the finding anchors on line 3 (the f-string); the pragma sits on the
        # closing line of the same statement and must still cover it
        src = (
            "def f(db, t):\n"
            "    db.execute(\n"
            '        f"DELETE FROM {t}",\n'
            "    )  # reprolint: disable=R4\n"
        )
        assert not lint_source(src, config=LintConfig(select=frozenset({"R4"}))).findings

    def test_pragma_on_one_statement_does_not_leak_to_neighbours(self):
        src = (
            "def f(db, t):\n"
            "    db.execute(\n"
            '        f"DELETE FROM {t}",\n'
            "    )  # reprolint: disable=R4\n"
            '    db.execute(f"DROP TABLE {t}")\n'
        )
        report = lint_source(src, config=LintConfig(select=frozenset({"R4"})))
        assert [f.line for f in report.findings] == [5]

    def test_unknown_rule_id_in_pragma_disables_nothing_else(self):
        src = BARE_EXCEPT.replace("except:", "except:  # reprolint: disable=R999")
        report = lint_source(src, config=LintConfig(select=frozenset({"R6"})))
        assert [f.rule_id for f in report.findings] == ["R6"]


class TestConfig:
    def test_ignore_beats_select(self):
        config = LintConfig(select=frozenset({"R6"}), ignore=frozenset({"R6"}))
        assert not LintEngine(config).rules

    def test_default_runs_all_rules(self):
        assert len(LintEngine().rules) == len(all_rules()) == 20

    def test_with_rules_builds_new_config(self):
        config = LintConfig().with_rules(select=["R1", "R4"])
        assert config.wants("R1") and not config.wants("R6")


class TestModuleNames:
    def test_walks_up_init_chain(self, tmp_path):
        pkg = tmp_path / "mypkg" / "sub"
        pkg.mkdir(parents=True)
        (tmp_path / "mypkg" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text("")
        assert module_name_for(pkg / "mod.py") == "mypkg.sub.mod"
        assert module_name_for(pkg / "__init__.py") == "mypkg.sub"

    def test_bare_file(self, tmp_path):
        assert module_name_for(tmp_path / "script.py") == "script"


class TestLintPaths:
    def test_directory_scan_and_parse_error(self, tmp_path):
        (tmp_path / "ok.py").write_text("__all__ = []\n")
        (tmp_path / "broken.py").write_text("def f(:\n")
        report = LintEngine(LintConfig(select=frozenset({"R8"}))).lint_paths([tmp_path])
        parse = [f for f in report.findings if f.rule_id == "PARSE"]
        assert len(parse) == 1 and parse[0].severity is Severity.ERROR
        assert not report.ok

    def test_duplicate_paths_deduplicated(self, tmp_path):
        target = tmp_path / "one.py"
        target.write_text("def f(x=[]):\n    return x\n")
        config = LintConfig(select=frozenset({"R7"}))
        report = LintEngine(config).lint_paths([target, target, tmp_path])
        assert len(report.findings) == 1


class TestReportModel:
    def finding(self, **kw):
        base = dict(
            rule_id="R6",
            severity=Severity.ERROR,
            path="x.py",
            line=3,
            col=1,
            message="boom",
            fix_hint="fix it",
        )
        base.update(kw)
        return Finding(**base)

    def test_sorted_and_rendered(self):
        report = Report(
            findings=[self.finding(line=9), self.finding(line=2)], n_files=1, n_rules=1
        )
        assert [f.line for f in report.findings] == [2, 9]
        text = report.to_text()
        assert "x.py:2:1: R6 error: boom" in text
        assert "hint: fix it" in text

    def test_ok_reflects_error_severity(self):
        warn = self.finding(severity=Severity.WARNING)
        assert Report(findings=[warn]).ok
        assert not Report(findings=[warn, self.finding()]).ok

    def test_json_round_trips(self):
        report = Report(findings=[self.finding()], n_files=1, n_rules=10)
        payload = json.loads(report.to_json())
        assert payload["n_errors"] == 1
        assert payload["findings"][0]["rule"] == "R6"

    def test_ordering_is_total(self):
        """path, line, col, rule id, then message -- no unordered ties."""
        findings = [
            self.finding(path="b.py"),
            self.finding(path="a.py", line=5),
            self.finding(path="a.py", line=2, col=9),
            self.finding(path="a.py", line=2, col=1, rule_id="R9"),
            self.finding(path="a.py", line=2, col=1, rule_id="R6", message="zz"),
            self.finding(path="a.py", line=2, col=1, rule_id="R6", message="aa"),
        ]
        expected = [
            ("a.py", 2, 1, "R6", "aa"),
            ("a.py", 2, 1, "R6", "zz"),
            ("a.py", 2, 1, "R9", "boom"),
            ("a.py", 2, 9, "R6", "boom"),
            ("a.py", 5, 1, "R6", "boom"),
            ("b.py", 3, 1, "R6", "boom"),
        ]
        for perm in (findings, findings[::-1], findings[3:] + findings[:3]):
            report = Report(findings=list(perm))
            got = [
                (f.path, f.line, f.col, f.rule_id, f.message) for f in report.findings
            ]
            assert got == expected

    def test_report_independent_of_module_walk_order(self):
        sources = [
            ("mod_a", "def f(x=[]):\n    return x\n"),
            ("mod_b", "def g(y={}):\n    return y\n"),
        ]
        config = LintConfig(select=frozenset({"R7"}))
        engine = LintEngine(config)

        def render(order):
            modules = [
                engine.load_source(src, path=f"{name}.py", module=name)
                for name, src in order
            ]
            return engine.lint_modules(modules).to_text()

        assert render(sources) == render(sources[::-1])


class TestRunner:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("__all__ = []\n")
        assert lint_main([str(target)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text(textwrap.dedent(BARE_EXCEPT))
        assert lint_main(["--select", "R6", str(target)]) == 1
        assert "R6" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("def f(x=[]):\n    return x\n")
        assert lint_main(["--format", "json", "--select", "R7", str(target)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "R7"

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        assert lint_main(["--select", "R99", str(tmp_path)]) == 2

    def test_missing_path_exits_two(self, tmp_path):
        assert lint_main([str(tmp_path / "nope")]) == 2

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R1", "R4", "R10", "R14", "R19"):
            assert rule_id in out

    def test_list_rules_survives_missing_docstring(self, capsys, monkeypatch):
        """A rule without a docstring lists by title instead of crashing."""
        from repro.analysis import Rule
        from repro.analysis import runner as runner_mod

        class Bare(Rule):
            rule_id = "R98"
            title = "bare-rule"

        Bare.__doc__ = None
        monkeypatch.setattr(runner_mod, "all_rules", lambda: [Bare])
        assert lint_main(["--list-rules"]) == 0
        assert "bare-rule" in capsys.readouterr().out

    def test_cli_lint_subcommand(self, tmp_path, capsys):
        from repro.cli import main as repro_main

        target = tmp_path / "bad.py"
        target.write_text("def f(x=[]):\n    return x\n")
        assert repro_main(["lint", "--select", "R7", str(target)]) == 1


@pytest.mark.parametrize("cls", all_rules())
def test_rule_metadata_complete(cls):
    """Each rule ships an id, a title, a docstring, and a fix hint."""
    assert cls.rule_id and cls.rule_id.startswith("R")
    assert cls.title
    assert cls.__doc__ and cls.__doc__.strip()
    assert cls.fix_hint
