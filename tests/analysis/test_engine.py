"""Engine mechanics: pragmas, rule selection, file collection, CLI."""

import json
import textwrap

import pytest

from repro.analysis import (
    LintConfig,
    LintEngine,
    Severity,
    all_rules,
    lint_source,
    module_name_for,
)
from repro.analysis.findings import Finding, Report
from repro.analysis.runner import main as lint_main

BARE_EXCEPT = """
def f():
    try:
        g()
    except:
        return None
"""


class TestPragmas:
    def test_line_pragma_suppresses(self):
        src = BARE_EXCEPT.replace("except:", "except:  # reprolint: disable=R6")
        assert not lint_source(src, config=LintConfig(select=frozenset({"R6"}))).findings

    def test_line_pragma_is_rule_specific(self):
        src = BARE_EXCEPT.replace("except:", "except:  # reprolint: disable=R7")
        report = lint_source(src, config=LintConfig(select=frozenset({"R6"})))
        assert len(report.findings) == 1

    def test_file_pragma_suppresses_everywhere(self):
        src = "# reprolint: disable-file=R6\n" + BARE_EXCEPT
        assert not lint_source(src, config=LintConfig(select=frozenset({"R6"}))).findings

    def test_disable_all(self):
        src = BARE_EXCEPT.replace("except:", "except:  # reprolint: disable=all")
        assert not lint_source(src, config=LintConfig(select=frozenset({"R6"}))).findings


class TestConfig:
    def test_ignore_beats_select(self):
        config = LintConfig(select=frozenset({"R6"}), ignore=frozenset({"R6"}))
        assert not LintEngine(config).rules

    def test_default_runs_all_rules(self):
        assert len(LintEngine().rules) == len(all_rules()) == 13

    def test_with_rules_builds_new_config(self):
        config = LintConfig().with_rules(select=["R1", "R4"])
        assert config.wants("R1") and not config.wants("R6")


class TestModuleNames:
    def test_walks_up_init_chain(self, tmp_path):
        pkg = tmp_path / "mypkg" / "sub"
        pkg.mkdir(parents=True)
        (tmp_path / "mypkg" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text("")
        assert module_name_for(pkg / "mod.py") == "mypkg.sub.mod"
        assert module_name_for(pkg / "__init__.py") == "mypkg.sub"

    def test_bare_file(self, tmp_path):
        assert module_name_for(tmp_path / "script.py") == "script"


class TestLintPaths:
    def test_directory_scan_and_parse_error(self, tmp_path):
        (tmp_path / "ok.py").write_text("__all__ = []\n")
        (tmp_path / "broken.py").write_text("def f(:\n")
        report = LintEngine(LintConfig(select=frozenset({"R8"}))).lint_paths([tmp_path])
        parse = [f for f in report.findings if f.rule_id == "PARSE"]
        assert len(parse) == 1 and parse[0].severity is Severity.ERROR
        assert not report.ok

    def test_duplicate_paths_deduplicated(self, tmp_path):
        target = tmp_path / "one.py"
        target.write_text("def f(x=[]):\n    return x\n")
        config = LintConfig(select=frozenset({"R7"}))
        report = LintEngine(config).lint_paths([target, target, tmp_path])
        assert len(report.findings) == 1


class TestReportModel:
    def finding(self, **kw):
        base = dict(
            rule_id="R6",
            severity=Severity.ERROR,
            path="x.py",
            line=3,
            col=1,
            message="boom",
            fix_hint="fix it",
        )
        base.update(kw)
        return Finding(**base)

    def test_sorted_and_rendered(self):
        report = Report(
            findings=[self.finding(line=9), self.finding(line=2)], n_files=1, n_rules=1
        )
        assert [f.line for f in report.findings] == [2, 9]
        text = report.to_text()
        assert "x.py:2:1: R6 error: boom" in text
        assert "hint: fix it" in text

    def test_ok_reflects_error_severity(self):
        warn = self.finding(severity=Severity.WARNING)
        assert Report(findings=[warn]).ok
        assert not Report(findings=[warn, self.finding()]).ok

    def test_json_round_trips(self):
        report = Report(findings=[self.finding()], n_files=1, n_rules=10)
        payload = json.loads(report.to_json())
        assert payload["n_errors"] == 1
        assert payload["findings"][0]["rule"] == "R6"


class TestRunner:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("__all__ = []\n")
        assert lint_main([str(target)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text(textwrap.dedent(BARE_EXCEPT))
        assert lint_main(["--select", "R6", str(target)]) == 1
        assert "R6" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("def f(x=[]):\n    return x\n")
        assert lint_main(["--format", "json", "--select", "R7", str(target)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "R7"

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        assert lint_main(["--select", "R99", str(tmp_path)]) == 2

    def test_missing_path_exits_two(self, tmp_path):
        assert lint_main([str(tmp_path / "nope")]) == 2

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R1", "R4", "R10"):
            assert rule_id in out

    def test_cli_lint_subcommand(self, tmp_path, capsys):
        from repro.cli import main as repro_main

        target = tmp_path / "bad.py"
        target.write_text("def f(x=[]):\n    return x\n")
        assert repro_main(["lint", "--select", "R7", str(target)]) == 1


@pytest.mark.parametrize("cls", all_rules())
def test_rule_metadata_complete(cls):
    """Each rule ships an id, a title, a docstring, and a fix hint."""
    assert cls.rule_id and cls.rule_id.startswith("R")
    assert cls.title
    assert cls.__doc__ and cls.__doc__.strip()
    assert cls.fix_hint
