"""Tier-1 gate: the full rule set over the package's own source.

This is the test that turns reprolint into CI: any contract violation
introduced anywhere in ``src/repro`` fails the ordinary pytest run.
"""

from pathlib import Path

import repro
from repro.analysis import lint_paths

PACKAGE_DIR = Path(repro.__file__).parent


def test_reprolint_is_clean_on_own_source():
    report = lint_paths([PACKAGE_DIR])
    assert not report.findings, "\n" + report.to_text()


def test_full_tree_was_actually_scanned():
    report = lint_paths([PACKAGE_DIR])
    assert report.n_files >= 70, "package scan looks truncated"
    assert report.n_rules == 20
