"""Autofixer: mechanical fixes for R7/R8/R19, previewed or applied."""

import textwrap

from repro.analysis import LintConfig, LintEngine, fix_module, lint_source
from repro.analysis.runner import main as lint_main


def fix(source, module="fixture", path="fixture.py", config=None):
    engine = LintEngine(config or LintConfig())
    mod = engine.load_source(textwrap.dedent(source), path=path, module=module)
    return fix_module(mod, engine.config)


def assert_clean(source, rule_id):
    report = lint_source(source, config=LintConfig(select=frozenset({rule_id})))
    assert not report.findings, report.to_text()


class TestMutableDefaultFix:
    def test_default_becomes_none_with_guard(self):
        result = fix(
            """
            def merge(items=[], seen={}):
                for item in items:
                    seen[item] = True
                return seen
            """
        )
        assert result.changed
        src = result.source
        assert "def merge(items=None, seen=None):" in src
        assert "if items is None:\n        items = []" in src
        assert "if seen is None:\n        seen = {}" in src
        assert_clean(src, "R7")

    def test_docstring_stays_first(self):
        result = fix(
            '''
            def merge(items=[]):
                """Collect items."""
                return list(items)
            '''
        )
        lines = result.source.splitlines()
        assert lines[2].strip() == '"""Collect items."""'
        assert lines[3].strip() == "if items is None:"
        assert_clean(result.source, "R7")

    def test_keyword_only_defaults_fixed(self):
        result = fix(
            """
            def merge(*, seen={}):
                return seen
            """
        )
        assert "def merge(*, seen=None):" in result.source
        assert_clean(result.source, "R7")

    def test_pragma_suppressed_default_is_left_alone(self):
        src = "def merge(items=[]):  # reprolint: disable=R7\n    return items\n"
        result = fix(src)
        assert not result.changed


class TestStaleAllFix:
    def test_stale_entries_dropped(self):
        result = fix(
            """
            __all__ = ["keep", "gone", "also_gone"]

            def keep():
                return 1
            """
        )
        assert result.changed
        assert "'keep'" in result.source
        assert "gone" not in result.source
        assert_clean(result.source, "R8")

    def test_multiline_all_keeps_shape(self):
        result = fix(
            """
            __all__ = [
                "keep",
                "gone",
            ]

            def keep():
                return 1
            """
        )
        assert result.changed
        lines = result.source.splitlines()
        assert lines[1] == "__all__ = ["
        assert lines[2].strip() == "'keep',"
        assert lines[3] == "]"
        assert_clean(result.source, "R8")


class TestUnusedImportFix:
    def test_whole_statement_removed(self):
        result = fix(
            """
            import os
            import json

            __all__ = ["load"]

            def load(s):
                return json.loads(s)
            """
        )
        assert result.changed
        assert "import os\n" not in result.source
        assert "import json" in result.source
        assert_clean(result.source, "R19")

    def test_single_alias_dropped_from_from_import(self):
        result = fix(
            """
            from collections import OrderedDict, deque

            __all__ = ["q"]

            q = deque()
            """
        )
        assert "from collections import deque" in result.source
        assert "OrderedDict" not in result.source
        assert_clean(result.source, "R19")


class TestFixerContract:
    COMBINED = """
    import os
    import json

    __all__ = ["merge", "gone"]

    def merge(items=[]):
        return json.dumps(items)
    """

    def test_fix_is_idempotent(self):
        first = fix(self.COMBINED)
        assert first.changed
        engine = LintEngine()
        again = fix_module(
            engine.load_source(first.source, path="fixture.py", module="fixture"),
            engine.config,
        )
        assert not again.changed
        assert again.source == first.source

    def test_fixed_source_still_parses_and_is_clean(self):
        result = fix(self.COMBINED)
        for rule_id in ("R7", "R8", "R19"):
            assert_clean(result.source, rule_id)

    def test_cli_diff_previews_without_writing(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        original = "def f(x=[]):\n    return x\n"
        target.write_text(original)
        assert lint_main(["--diff", "--select", "R7", str(target)]) == 1
        out = capsys.readouterr().out
        assert "-def f(x=[]):" in out and "+def f(x=None):" in out
        assert target.read_text() == original  # preview never writes

    def test_cli_diff_exits_zero_when_nothing_pending(self, tmp_path, capsys):
        target = tmp_path / "ok.py"
        target.write_text("def f(x=None):\n    return x\n")
        assert lint_main(["--diff", "--select", "R7", str(target)]) == 0
        assert "no fixes pending" in capsys.readouterr().out

    def test_cli_fix_rewrites_and_relints(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("def f(x=[]):\n    return x\n")
        assert lint_main(["--fix", "--select", "R7", str(target)]) == 0
        out = capsys.readouterr().out
        assert "rewrote 1 file(s)" in out
        assert "def f(x=None):" in target.read_text()
        # second run is a no-op
        assert lint_main(["--diff", "--select", "R7", str(target)]) == 0
