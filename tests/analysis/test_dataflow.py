"""Dataflow core: CFG construction and reaching definitions."""

import ast
import textwrap

from repro.analysis import build_cfg, reaching_definitions


def cfg_for(source):
    tree = ast.parse(textwrap.dedent(source))
    func = tree.body[0]
    return build_cfg(func.body)


def defs_reaching(source, stmt_type):
    """Reaching (name, def-line) pairs at the first statement of ``stmt_type``."""
    cfg = cfg_for(source)
    reaching = reaching_definitions(cfg)
    for sid, stmt in cfg.stmts.items():
        if isinstance(stmt, stmt_type):
            return {
                (d.name, cfg.stmts[d.stmt_id].lineno) for d in reaching[sid]
            }
    raise AssertionError("no statement matched")


class TestCfg:
    def test_straight_line(self):
        cfg = cfg_for("def f():\n    a = 1\n    b = a\n    return b\n")
        assert len(cfg.nodes) == 3
        assert cfg.nodes[0].succ == {1}
        assert cfg.nodes[1].succ == {2}

    def test_if_branches_merge(self):
        cfg = cfg_for(
            """
            def f(c):
                if c:
                    x = 1
                else:
                    x = 2
                return x
            """
        )
        # if-header, both assignments, return
        ret = max(cfg.nodes)
        preds = {sid for sid, n in cfg.nodes.items() if ret in n.succ}
        assert len(preds) == 2  # both branches flow into the return

    def test_loop_has_back_edge(self):
        cfg = cfg_for(
            """
            def f(xs):
                total = 0
                for x in xs:
                    total = total + x
                return total
            """
        )
        for_id = next(
            sid for sid, n in cfg.nodes.items() if isinstance(n.stmt, ast.For)
        )
        body_id = next(
            sid
            for sid, n in cfg.nodes.items()
            if isinstance(n.stmt, ast.Assign) and n.stmt.lineno == 5
        )
        assert for_id in cfg.nodes[body_id].succ  # back edge


class TestReachingDefinitions:
    def test_rebinding_kills_older_definition(self):
        defs = defs_reaching(
            """
            def f():
                q = 1
                q = 2
                return q
            """,
            ast.Return,
        )
        assert defs == {("q", 4)}

    def test_both_branches_reach_the_join(self):
        defs = defs_reaching(
            """
            def f(c):
                if c:
                    q = 1
                else:
                    q = 2
                return q
            """,
            ast.Return,
        )
        assert defs == {("q", 4), ("q", 6)}

    def test_loop_definition_reaches_its_own_header(self):
        defs = defs_reaching(
            """
            def f(xs):
                q = 0
                for x in xs:
                    q = q + 1
                return q
            """,
            ast.Return,
        )
        assert {d for d in defs if d[0] == "q"} == {("q", 3), ("q", 5)}
        assert ("x", 4) in defs  # the loop target is a definition too

    def test_try_body_defs_reach_the_handler(self):
        defs = defs_reaching(
            """
            def f():
                q = 1
                try:
                    q = 2
                except ValueError:
                    use(q)
                return q
            """,
            ast.Expr,
        )
        # the handler can run before OR after the try-body assignment
        assert defs == {("q", 3), ("q", 5)}
