"""Fixture tests: every rule fires on a minimal violation and stays silent
on the matching clean sample."""

import textwrap

from repro.analysis import LintConfig, LintEngine, lint_source


def run_rule(rule_id, source, module="fixture", **config_kwargs):
    """Findings of one rule over one in-memory module."""
    config = LintConfig(select=frozenset({rule_id}), **config_kwargs)
    report = lint_source(textwrap.dedent(source), module=module, config=config)
    return report.findings


def run_rule_project(rule_id, named_sources, **config_kwargs):
    """Findings of one (project) rule over several in-memory modules."""
    config = LintConfig(select=frozenset({rule_id}), **config_kwargs)
    engine = LintEngine(config)
    modules = [
        engine.load_source(textwrap.dedent(src), path=f"{name}.py", module=name)
        for name, src in named_sources
    ]
    return engine.lint_modules(modules).findings


class TestR1ExtractorRegistered:
    def test_unregistered_subclass_fires(self):
        findings = run_rule(
            "R1",
            """
            from repro.features.base import FeatureExtractor

            class Sneaky(FeatureExtractor):
                name = "sneaky"

                def extract(self, image):
                    return None
            """,
        )
        assert [f.rule_id for f in findings] == ["R1"]
        assert "register_extractor" in findings[0].message

    def test_missing_name_fires(self):
        findings = run_rule(
            "R1",
            """
            from repro.features.base import FeatureExtractor, register_extractor

            @register_extractor
            class NoName(FeatureExtractor):
                name = ""

                def extract(self, image):
                    return None
            """,
        )
        assert len(findings) == 1
        assert "'name'" in findings[0].message

    def test_registered_with_name_is_clean(self):
        assert not run_rule(
            "R1",
            """
            from repro.features.base import FeatureExtractor, register_extractor

            @register_extractor
            class Good(FeatureExtractor):
                name = "good"
                tag = "GOOD"

                def extract(self, image):
                    return None
            """,
        )

    def test_abstract_intermediate_is_exempt(self):
        assert not run_rule(
            "R1",
            """
            import abc
            from repro.features.base import FeatureExtractor

            class PartialExtractor(FeatureExtractor):
                @abc.abstractmethod
                def window_size(self):
                    ...
            """,
        )

    def test_private_helper_class_is_exempt(self):
        assert not run_rule(
            "R1",
            """
            from repro.features.base import FeatureExtractor

            class _TestingStub(FeatureExtractor):
                name = "stub"

                def extract(self, image):
                    return None
            """,
        )


class TestR2RegistryUnique:
    DUP_A = """
    from repro.features.base import FeatureExtractor, register_extractor

    @register_extractor
    class First(FeatureExtractor):
        name = "dup"
        tag = "A"

        def extract(self, image):
            return None
    """

    def test_duplicate_name_fires(self):
        dup_b = self.DUP_A.replace("First", "Second").replace('"A"', '"B"')
        findings = run_rule_project(
            "R2", [("repro.features.a", self.DUP_A), ("repro.features.b", dup_b)]
        )
        assert len(findings) == 1
        assert "name 'dup'" in findings[0].message

    def test_duplicate_tag_fires(self):
        dup_b = self.DUP_A.replace("First", "Second").replace('"dup"', '"other"')
        findings = run_rule_project(
            "R2", [("repro.features.a", self.DUP_A), ("repro.features.b", dup_b)]
        )
        assert len(findings) == 1
        assert "tag 'A'" in findings[0].message

    def test_distinct_names_and_tags_clean(self):
        other = self.DUP_A.replace("First", "Second").replace('"dup"', '"x"').replace(
            '"A"', '"X"'
        )
        assert not run_rule_project(
            "R2", [("repro.features.a", self.DUP_A), ("repro.features.b", other)]
        )

    def test_default_tag_collides_with_explicit_name(self):
        # no tag on Second: register_extractor defaults it to name "A",
        # which collides with First's explicit tag "A"
        dup_b = """
        from repro.features.base import FeatureExtractor, register_extractor

        @register_extractor
        class Second(FeatureExtractor):
            name = "A"

            def extract(self, image):
                return None
        """
        findings = run_rule_project(
            "R2", [("repro.features.a", self.DUP_A), ("repro.features.b", dup_b)]
        )
        assert any("tag 'A'" in f.message for f in findings)


class TestR3FeatureStringContract:
    def test_header_dropping_to_string_fires(self):
        findings = run_rule(
            "R3",
            """
            from repro.features.base import FeatureVector

            class BareVector(FeatureVector):
                def to_string(self):
                    return " ".join(repr(float(v)) for v in self.values)
            """,
        )
        assert [f.rule_id for f in findings] == ["R3"]
        assert "to_string" in findings[0].message

    def test_headerless_from_string_fires(self):
        findings = run_rule(
            "R3",
            """
            from repro.features.base import FeatureVector

            class BareVector(FeatureVector):
                @classmethod
                def from_string(cls, kind, text):
                    return cls(kind, [float(t) for t in text.split()])
            """,
        )
        assert [f.rule_id for f in findings] == ["R3"]
        assert "from_string" in findings[0].message

    def test_delegating_override_is_clean(self):
        assert not run_rule(
            "R3",
            """
            from repro.features.base import FeatureVector

            class LoggingVector(FeatureVector):
                def to_string(self):
                    return super().to_string()

                @classmethod
                def from_string(cls, kind, text):
                    return super().from_string(kind, text.strip())
            """,
        )

    def test_explicit_header_is_clean(self):
        assert not run_rule(
            "R3",
            """
            from repro.features.base import FeatureVector

            class ManualVector(FeatureVector):
                def to_string(self):
                    parts = [self.tag, str(len(self.values))]
                    parts.extend(repr(float(v)) for v in self.values)
                    return " ".join(parts)

                @classmethod
                def from_string(cls, kind, text):
                    tokens = text.split()
                    n = int(tokens[1])
                    return cls(kind, [float(t) for t in tokens[2:2 + n]], tag=tokens[0])
            """,
        )

    def test_unrelated_class_is_exempt(self):
        assert not run_rule(
            "R3",
            """
            class Report:
                def to_string(self):
                    return "not a feature at all"
            """,
        )


class TestR4ParameterizedSql:
    def test_fstring_fires(self):
        findings = run_rule(
            "R4",
            """
            def fetch(db, table):
                return db.execute(f"SELECT * FROM {table}").rows
            """,
        )
        assert "f-string" in findings[0].message

    def test_concatenation_fires(self):
        findings = run_rule(
            "R4",
            """
            def fetch(db, table):
                return db.execute("SELECT * FROM " + table).rows
            """,
        )
        assert "'+'" in findings[0].message

    def test_percent_format_fires(self):
        findings = run_rule(
            "R4",
            """
            def fetch(db, table):
                return db.execute("SELECT * FROM %s" % table).rows
            """,
        )
        assert "'%'" in findings[0].message

    def test_str_format_fires(self):
        findings = run_rule(
            "R4",
            """
            def fetch(db, table):
                return db.execute("SELECT * FROM {}".format(table)).rows
            """,
        )
        assert ".format()" in findings[0].message

    def test_join_fires(self):
        findings = run_rule(
            "R4",
            """
            def fetch(db, parts):
                return db.execute(" ".join(parts)).rows
            """,
        )
        assert "join" in findings[0].message

    def test_literal_with_placeholders_is_clean(self):
        assert not run_rule(
            "R4",
            """
            def fetch(db, video_id):
                return db.execute(
                    "SELECT * FROM VIDEO_STORE WHERE V_ID = ?", (video_id,)
                ).rows
            """,
        )

    def test_builder_call_is_clean(self):
        assert not run_rule(
            "R4",
            """
            from repro.db.sql import build_insert

            def store(db, columns, values):
                db.execute(build_insert("KEY_FRAMES", columns), values)
            """,
        )


class TestR5PureLayers:
    def test_network_import_fires(self):
        findings = run_rule(
            "R5",
            "import socket\n__all__ = []\n",
            module="repro.imaging.fake",
        )
        assert "socket" in findings[0].message

    def test_upper_layer_import_fires(self):
        findings = run_rule(
            "R5",
            "from repro.db.engine import Database\n",
            module="repro.similarity.fake",
        )
        assert "repro.db.engine" in findings[0].message

    def test_open_call_fires(self):
        findings = run_rule(
            "R5",
            """
            def load(path):
                with open(path) as fh:
                    return fh.read()
            """,
            module="repro.imaging.fake",
        )
        assert "open()" in findings[0].message

    def test_io_boundary_module_is_allowlisted(self):
        assert not run_rule(
            "R5",
            """
            import os

            def load(path):
                with open(path, "rb") as fh:
                    return fh.read()
            """,
            module="repro.imaging.image",
        )

    def test_other_layers_are_out_of_scope(self):
        assert not run_rule(
            "R5",
            "import socket\n",
            module="repro.web.server2",
        )

    def test_numpy_import_is_clean(self):
        assert not run_rule(
            "R5",
            "import numpy as np\n",
            module="repro.similarity.fake",
        )


class TestR6ExceptionHygiene:
    def test_bare_except_fires(self):
        findings = run_rule(
            "R6",
            """
            def f():
                try:
                    g()
                except:
                    return None
            """,
        )
        assert "bare" in findings[0].message

    def test_swallowed_exception_fires(self):
        findings = run_rule(
            "R6",
            """
            def f():
                try:
                    g()
                except Exception:
                    pass
            """,
        )
        assert "swallows" in findings[0].message

    def test_handled_broad_except_is_clean(self):
        assert not run_rule(
            "R6",
            """
            def f(log):
                try:
                    g()
                except Exception as exc:
                    log.warning("g failed: %s", exc)
                    raise
            """,
        )

    def test_narrow_except_pass_is_clean(self):
        assert not run_rule(
            "R6",
            """
            def f():
                try:
                    g()
                except KeyError:
                    pass
            """,
        )


class TestR7MutableDefaults:
    def test_list_literal_fires(self):
        findings = run_rule("R7", "def f(items=[]):\n    return items\n")
        assert "mutable default" in findings[0].message

    def test_dict_call_fires(self):
        findings = run_rule("R7", "def f(options=dict()):\n    return options\n")
        assert len(findings) == 1

    def test_kwonly_set_fires(self):
        findings = run_rule("R7", "def f(*, seen={1}):\n    return seen\n")
        assert len(findings) == 1

    def test_none_and_tuple_defaults_clean(self):
        assert not run_rule(
            "R7",
            """
            def f(items=None, dims=(), names=frozenset()):
                return items, dims, names
            """,
        )


class TestR8ExplicitExports:
    def test_missing_all_fires(self):
        findings = run_rule("R8", "def useful():\n    return 1\n")
        assert "__all__" in findings[0].message

    def test_stale_export_fires(self):
        findings = run_rule(
            "R8",
            """
            __all__ = ["useful", "removed_long_ago"]

            def useful():
                return 1
            """,
        )
        assert "removed_long_ago" in findings[0].message

    def test_truthful_all_is_clean(self):
        assert not run_rule(
            "R8",
            """
            __all__ = ["useful", "CONSTANT"]

            CONSTANT = 3

            def useful():
                return 1
            """,
        )

    def test_computed_all_presence_is_enough(self):
        assert not run_rule(
            "R8",
            """
            _REGISTRY = {"a": 1}
            __all__ = sorted(_REGISTRY)
            """,
        )

    def test_lazy_module_with_getattr_is_clean(self):
        assert not run_rule(
            "R8",
            """
            __all__ = ["lazy_thing"]

            def __getattr__(name):
                raise AttributeError(name)
            """,
        )

    def test_private_module_is_exempt(self):
        assert not run_rule(
            "R8", "def helper():\n    return 1\n", module="repro.db._internal"
        )


class TestR9DbErrorHierarchy:
    def test_builtin_raise_fires(self):
        findings = run_rule(
            "R9",
            """
            def check(n):
                if n < 0:
                    raise ValueError("negative")
            """,
            module="repro.db.fake",
        )
        assert "ValueError" in findings[0].message

    def test_hierarchy_raise_is_clean(self):
        assert not run_rule(
            "R9",
            """
            from repro.db.errors import CatalogError

            def check(table):
                raise CatalogError(f"unknown table {table}")
            """,
            module="repro.db.fake",
        )

    def test_reraise_and_not_implemented_are_clean(self):
        assert not run_rule(
            "R9",
            """
            def f():
                try:
                    g()
                except KeyError:
                    raise
                raise NotImplementedError("subclass responsibility")
            """,
            module="repro.db.fake",
        )

    def test_outside_db_layer_is_out_of_scope(self):
        assert not run_rule(
            "R9",
            "def f():\n    raise ValueError('fine here')\n",
            module="repro.core.fake",
        )


class TestR10ExtractorModuleImported:
    EXTRA = """
    from repro.features.base import FeatureExtractor, register_extractor

    @register_extractor
    class Extra(FeatureExtractor):
        name = "extra"

        def extract(self, image):
            return None
    """

    def test_unimported_extractor_module_fires(self):
        findings = run_rule_project(
            "R10",
            [
                ("repro.features", "from repro.features.base import FeatureExtractor\n"),
                ("repro.features.extra", self.EXTRA),
            ],
        )
        assert len(findings) == 1
        assert "never imports" in findings[0].message

    def test_imported_extractor_module_is_clean(self):
        assert not run_rule_project(
            "R10",
            [
                ("repro.features", "from repro.features.extra import Extra\n"),
                ("repro.features.extra", self.EXTRA),
            ],
        )

    def test_skips_when_init_not_linted(self):
        assert not run_rule_project(
            "R10", [("repro.features.extra", self.EXTRA)]
        )


class TestR11SeededRandomness:
    def test_legacy_global_rng_call_fires(self):
        findings = run_rule(
            "R11",
            """
            import numpy as np

            def f():
                return np.random.rand(3)
            """,
        )
        assert len(findings) == 1
        assert "global RNG" in findings[0].message

    def test_global_seed_call_fires(self):
        assert run_rule(
            "R11",
            "import numpy as np\nnp.random.seed(0)\n",
        )

    def test_unseeded_default_rng_fires(self):
        findings = run_rule(
            "R11",
            """
            import numpy as np

            def f():
                return np.random.default_rng().random()
            """,
        )
        assert len(findings) == 1
        assert "seed" in findings[0].message

    def test_from_import_of_legacy_function_fires(self):
        assert run_rule(
            "R11",
            """
            from numpy.random import randint

            def f():
                return randint(0, 10)
            """,
        )

    def test_seeded_default_rng_is_clean(self):
        assert not run_rule(
            "R11",
            """
            import numpy as np

            def f(seed):
                rng = np.random.default_rng(seed)
                return rng.normal(size=4)
            """,
        )

    def test_unrelated_random_attribute_is_clean(self):
        assert not run_rule(
            "R11",
            """
            import numpy as np

            def f(rng):
                return rng.random(3) + np.zeros(3)
            """,
        )

    def test_no_numpy_import_is_clean(self):
        assert not run_rule(
            "R11",
            "class random:\n    @staticmethod\n    def rand():\n        return 4\n\nx = random.rand()\n",
        )
