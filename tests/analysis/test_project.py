"""Project model: module graph, symbol tables, call graph, cycles."""

import textwrap

from repro.analysis import LintEngine, ProjectModel
from repro.analysis.project import (
    KIND_CONSTANT,
    KIND_CONTEXTVAR,
    KIND_LOCK,
    KIND_MUTABLE,
)


def build_model(named_sources):
    engine = LintEngine()
    modules = [
        engine.load_source(textwrap.dedent(src), path=_path_for(name), module=name)
        for name, src in named_sources
    ]
    return ProjectModel(modules)


def _path_for(name):
    return name.replace(".", "/") + ".py"


class TestImportGraph:
    def test_module_level_vs_nested_imports(self):
        model = build_model(
            [
                ("pkg.a", "import pkg.b\n\ndef f():\n    import pkg.c\n"),
                ("pkg.b", ""),
                ("pkg.c", ""),
            ]
        )
        assert model.import_edges["pkg.a"] == {"pkg.b"}
        assert model.all_import_edges["pkg.a"] == {"pkg.b", "pkg.c"}

    def test_type_checking_imports_are_not_module_level(self):
        model = build_model(
            [
                (
                    "pkg.a",
                    """
                    from typing import TYPE_CHECKING

                    if TYPE_CHECKING:
                        import pkg.b
                    """,
                ),
                ("pkg.b", ""),
            ]
        )
        assert model.import_edges["pkg.a"] == set()

    def test_from_import_resolves_to_module(self):
        model = build_model(
            [
                ("pkg.a", "from pkg.b import helper\n"),
                ("pkg.b", "def helper():\n    return 1\n"),
            ]
        )
        assert model.import_edges["pkg.a"] == {"pkg.b"}

    def test_cycle_detection(self):
        model = build_model(
            [
                ("pkg.a", "import pkg.b\n"),
                ("pkg.b", "import pkg.c\n"),
                ("pkg.c", "import pkg.a\n"),
                ("pkg.d", "import pkg.a\n"),
            ]
        )
        assert model.import_cycles() == [["pkg.a", "pkg.b", "pkg.c"]]

    def test_init_reexport_of_own_children_is_not_a_cycle(self):
        engine = LintEngine()
        modules = [
            engine.load_source(
                "from pkg.sub import thing\n", path="pkg/__init__.py", module="pkg"
            ),
            engine.load_source(
                "import pkg\n\nthing = 1\n", path="pkg/sub.py", module="pkg.sub"
            ),
        ]
        assert ProjectModel(modules).import_cycles() == []


class TestSymbols:
    def test_binding_kinds(self):
        model = build_model(
            [
                (
                    "m",
                    """
                    import threading
                    import contextvars

                    CACHE = {}
                    LIMIT = 10
                    _LOCK = threading.Lock()
                    _VAR = contextvars.ContextVar("v")
                    """,
                )
            ]
        )
        kinds = model.symbols["m"].kinds
        assert kinds["CACHE"] == KIND_MUTABLE
        assert kinds["LIMIT"] == KIND_CONSTANT
        assert kinds["_LOCK"] == KIND_LOCK
        assert kinds["_VAR"] == KIND_CONTEXTVAR


class TestCallGraph:
    SOURCES = [
        (
            "pkg.core",
            """
            from pkg.util import leaf

            def entry():
                middle()

            def middle():
                leaf()

            class Engine:
                def run(self):
                    self.step()

                def step(self):
                    return entry()
            """,
        ),
        ("pkg.util", "def leaf():\n    return 1\n"),
    ]

    def test_reachability_follows_calls_across_modules(self):
        model = build_model(self.SOURCES)
        closure = model.reachable_from(["pkg.core:entry"])
        assert {"pkg.core:entry", "pkg.core:middle", "pkg.util:leaf"} <= closure

    def test_self_calls_resolve_by_name_bucket(self):
        model = build_model(self.SOURCES)
        closure = model.reachable_from(["pkg.core:Engine.run"])
        assert "pkg.core:Engine.step" in closure
        assert "pkg.util:leaf" in closure  # run -> step -> entry -> ... -> leaf

    def test_public_functions_skips_private(self):
        model = build_model(
            [
                (
                    "pkg.api",
                    """
                    def visible():
                        return 1

                    def _hidden():
                        return 2

                    class _Private:
                        def method(self):
                            return 3
                    """,
                )
            ]
        )
        names = [f.qualname for f in model.public_functions(["pkg.api"])]
        assert names == ["pkg.api:visible"]
