"""Fixture tests for the whole-program rules R14-R20."""

from tests.analysis.test_rules import run_rule, run_rule_project

LAYERS = (("pkg.low",), ("pkg.mid",), ("pkg.high",))


class TestR14LayerDag:
    def test_upward_import_fires(self):
        findings = run_rule_project(
            "R14",
            [
                ("pkg.low.a", "import pkg.high.b\n"),
                ("pkg.high.b", ""),
            ],
            layers=LAYERS,
        )
        assert [f.rule_id for f in findings] == ["R14"]
        assert "higher layer" in findings[0].message

    def test_peer_import_fires(self):
        findings = run_rule_project(
            "R14",
            [
                ("pkg.mid.a", "from pkg.mid2 import thing\n"),
                ("pkg.mid2", "thing = 1\n"),
            ],
            layers=(("pkg.low",), ("pkg.mid", "pkg.mid2"), ("pkg.high",)),
        )
        assert len(findings) == 1
        assert "its own layer" in findings[0].message

    def test_downward_and_own_package_imports_are_clean(self):
        assert not run_rule_project(
            "R14",
            [
                ("pkg.high.a", "import pkg.low.b\nimport pkg.high.c\n"),
                ("pkg.low.b", ""),
                ("pkg.high.c", ""),
            ],
            layers=LAYERS,
        )

    def test_function_level_upward_import_still_fires(self):
        findings = run_rule_project(
            "R14",
            [
                ("pkg.low.a", "def f():\n    import pkg.high.b\n"),
                ("pkg.high.b", ""),
            ],
            layers=LAYERS,
        )
        assert len(findings) == 1

    def test_import_cycle_fires_once(self):
        findings = run_rule_project(
            "R14",
            [
                ("pkg.low.a", "import pkg.low.b\n"),
                ("pkg.low.b", "import pkg.low.a\n"),
            ],
            layers=LAYERS,
        )
        assert len(findings) == 1
        assert "cycle" in findings[0].message
        assert "pkg.low.a -> pkg.low.b" in findings[0].message

    def test_function_level_import_breaks_the_cycle(self):
        assert not run_rule_project(
            "R14",
            [
                ("pkg.low.a", "import pkg.low.b\n"),
                ("pkg.low.b", "def f():\n    import pkg.low.a\n"),
            ],
            layers=LAYERS,
        )


WEB_HANDLER = (
    "pkg.web.server",
    """
    from pkg.core.cache import remember

    def handle(request):
        return remember(request)
    """,
)


class TestR15ForkThreadSafety:
    def test_unlocked_mutation_on_web_path_fires(self):
        findings = run_rule_project(
            "R15",
            [
                WEB_HANDLER,
                (
                    "pkg.core.cache",
                    """
                    _CACHE = {}

                    def remember(key):
                        _CACHE[key] = True
                        return key
                    """,
                ),
            ],
            threaded_packages=("pkg.web",),
        )
        assert [f.rule_id for f in findings] == ["R15"]
        assert "_CACHE" in findings[0].message
        assert "web handler threads" in findings[0].message

    def test_locked_mutation_is_clean(self):
        assert not run_rule_project(
            "R15",
            [
                WEB_HANDLER,
                (
                    "pkg.core.cache",
                    """
                    import threading

                    _CACHE = {}
                    _LOCK = threading.Lock()

                    def remember(key):
                        with _LOCK:
                            _CACHE[key] = True
                        return key
                    """,
                ),
            ],
            threaded_packages=("pkg.web",),
        )

    def test_setdefault_is_gil_atomic_and_clean(self):
        assert not run_rule_project(
            "R15",
            [
                WEB_HANDLER,
                (
                    "pkg.core.cache",
                    """
                    _CACHE = {}

                    def remember(key):
                        return _CACHE.setdefault(key, True)
                    """,
                ),
            ],
            threaded_packages=("pkg.web",),
        )

    def test_mutation_off_the_concurrent_paths_is_clean(self):
        assert not run_rule_project(
            "R15",
            [
                (
                    "pkg.core.cache",
                    """
                    _CACHE = {}

                    def remember(key):
                        _CACHE[key] = True
                        return key
                    """,
                ),
            ],
            threaded_packages=("pkg.web",),
        )

    def test_pool_shipped_callable_fires(self):
        findings = run_rule_project(
            "R15",
            [
                (
                    "pkg.core.ingest",
                    """
                    _SEEN = []

                    def _work(item):
                        _SEEN.append(item)

                    def run(pool, items):
                        return pool.map(_work, items)
                    """,
                ),
            ],
            threaded_packages=("pkg.web",),
        )
        assert len(findings) == 1
        assert "WorkerPool workers" in findings[0].message

    def test_discarded_contextvar_token_fires(self):
        findings = run_rule_project(
            "R15",
            [
                (
                    "pkg.ctx",
                    """
                    import contextvars

                    _CURRENT = contextvars.ContextVar("current")

                    def activate(value):
                        _CURRENT.set(value)
                    """,
                ),
            ],
        )
        assert len(findings) == 1
        assert "discards the token" in findings[0].message

    def test_token_without_reset_fires(self):
        findings = run_rule_project(
            "R15",
            [
                (
                    "pkg.ctx",
                    """
                    import contextvars

                    _CURRENT = contextvars.ContextVar("current")

                    def activate(value):
                        token = _CURRENT.set(value)
                        return token
                    """,
                ),
            ],
        )
        assert len(findings) == 1
        assert "reset" in findings[0].message

    def test_try_finally_reset_is_clean(self):
        assert not run_rule_project(
            "R15",
            [
                (
                    "pkg.ctx",
                    """
                    import contextvars

                    _CURRENT = contextvars.ContextVar("current")

                    def scoped(value, fn):
                        token = _CURRENT.set(value)
                        try:
                            return fn()
                        finally:
                            _CURRENT.reset(token)
                    """,
                ),
            ],
        )

    def test_enter_exit_token_pair_is_clean(self):
        assert not run_rule_project(
            "R15",
            [
                (
                    "pkg.ctx",
                    """
                    import contextvars

                    _CURRENT = contextvars.ContextVar("current")

                    class Scope:
                        def __enter__(self):
                            self._token = _CURRENT.set(self)
                            return self

                        def __exit__(self, *exc):
                            _CURRENT.reset(self._token)
                            return False
                    """,
                ),
            ],
        )


class TestR16SqlDataflow:
    def test_dynamic_sql_through_variable_fires(self):
        findings = run_rule(
            "R16",
            """
            def drop(db, table):
                q = f"DROP TABLE {table}"
                return db.execute(q)
            """,
        )
        assert [f.rule_id for f in findings] == ["R16"]
        assert "an f-string" in findings[0].message
        assert "line 3" in findings[0].message

    def test_one_dynamic_branch_is_enough(self):
        findings = run_rule(
            "R16",
            """
            def fetch(db, table, fast):
                if fast:
                    q = "SELECT id FROM videos"
                else:
                    q = "SELECT * FROM " + table
                return db.execute(q)
            """,
        )
        assert len(findings) == 1
        assert "'+' operator" in findings[0].message

    def test_rebinding_to_literal_is_clean(self):
        assert not run_rule(
            "R16",
            """
            def fetch(db, table):
                q = f"SELECT * FROM {table}"
                q = "SELECT * FROM videos"
                return db.execute(q)
            """,
        )

    def test_literal_and_builder_are_clean(self):
        assert not run_rule(
            "R16",
            """
            from repro.db.sql import build_select

            def fetch(db):
                q = "SELECT id FROM videos WHERE id = ?"
                db.execute(q, (1,))
                stmt = build_select("videos", ["id"])
                return db.execute(stmt)
            """,
        )

    def test_augmented_string_build_fires(self):
        findings = run_rule(
            "R16",
            """
            def fetch(db, clause):
                q = "SELECT * FROM videos "
                q += clause
                return db.execute(q)
            """,
        )
        assert len(findings) == 1
        assert "augmented" in findings[0].message


class TestR17ObsCoverage:
    def test_uninstrumented_entry_point_fires(self):
        findings = run_rule_project(
            "R17",
            [
                (
                    "pkg.core.system",
                    """
                    def ingest(path):
                        data = _read(path)
                        _store(data)
                        return data

                    def _read(path):
                        return path

                    def _store(data):
                        return data
                    """,
                ),
            ],
            obs_entry_modules=("pkg.core.system",),
        )
        assert [f.rule_id for f in findings] == ["R17"]
        assert "ingest" in findings[0].message

    def test_direct_span_is_clean(self):
        assert not run_rule_project(
            "R17",
            [
                (
                    "pkg.core.system",
                    """
                    from pkg.obs.tracing import span

                    def ingest(path):
                        with span("ingest"):
                            a = 1
                            b = 2
                            return a + b
                    """,
                ),
            ],
            obs_entry_modules=("pkg.core.system",),
        )

    def test_transitive_metric_is_clean(self):
        assert not run_rule_project(
            "R17",
            [
                (
                    "pkg.core.system",
                    """
                    from pkg.core.inner import work

                    def ingest(path):
                        a = work(path)
                        b = work(path)
                        return a + b
                    """,
                ),
                (
                    "pkg.core.inner",
                    """
                    def work(path):
                        _REQUESTS.labels(op="work").inc()
                        return 1
                    """,
                ),
            ],
            obs_entry_modules=("pkg.core.system",),
        )

    def test_trivial_accessor_is_exempt(self):
        assert not run_rule_project(
            "R17",
            [
                (
                    "pkg.core.system",
                    """
                    def count():
                        return 41 + 1
                    """,
                ),
            ],
            obs_entry_modules=("pkg.core.system",),
        )


class TestR18ResourceHygiene:
    def test_inline_open_fires(self):
        findings = run_rule(
            "R18",
            """
            import json

            def load(path):
                return json.load(open(path))
            """,
        )
        assert [f.rule_id for f in findings] == ["R18"]
        assert "open(...)" in findings[0].message

    def test_assigned_and_never_closed_fires(self):
        findings = run_rule(
            "R18",
            """
            def read(path):
                fh = open(path)
                return fh.read()
            """,
        )
        assert len(findings) == 1
        assert "fh.close()" in findings[0].message

    def test_with_statement_is_clean(self):
        assert not run_rule(
            "R18",
            """
            def read(path):
                with open(path) as fh:
                    return fh.read()
            """,
        )

    def test_close_in_finally_is_clean(self):
        assert not run_rule(
            "R18",
            """
            def read(path):
                fh = open(path)
                try:
                    return fh.read()
                finally:
                    fh.close()
            """,
        )

    def test_returned_handle_is_a_factory_and_clean(self):
        assert not run_rule(
            "R18",
            """
            def acquire(path):
                fh = open(path)
                return fh

            def direct(path):
                return open(path)
            """,
        )

    def test_class_owned_handle_with_close_is_clean(self):
        assert not run_rule(
            "R18",
            """
            class Wal:
                def __init__(self, path):
                    self._fh = open(path, "ab")

                def close(self):
                    self._fh.close()
            """,
        )

    def test_class_owned_handle_without_close_fires(self):
        findings = run_rule(
            "R18",
            """
            class Wal:
                def __init__(self, path):
                    self._fh = open(path, "ab")
            """,
        )
        assert len(findings) == 1
        assert "self._fh.close()" in findings[0].message

    def test_allowlisted_module_is_exempt(self):
        assert not run_rule(
            "R18",
            """
            def probe(path):
                return open(path).read(4)
            """,
            module="pkg.probing",
            resource_allowlist=frozenset({"pkg.probing"}),
        )


class TestR19UnusedImport:
    def test_unused_import_fires(self):
        findings = run_rule(
            "R19",
            """
            import json
            import os

            __all__ = ["load"]

            def load(path):
                return json.loads(path)
            """,
        )
        assert [f.rule_id for f in findings] == ["R19"]
        assert "'os'" in findings[0].message

    def test_used_attribute_head_counts(self):
        assert not run_rule(
            "R19",
            """
            import os.path

            def f():
                return os.path.sep
            """,
        )

    def test_all_export_counts_as_use(self):
        assert not run_rule(
            "R19",
            """
            from pkg.other import thing

            __all__ = ["thing"]
            """,
        )

    def test_string_annotation_counts_as_use(self):
        assert not run_rule(
            "R19",
            """
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from pkg.heavy import Engine

            def f(engine: "Engine"):
                return engine
            """,
        )

    def test_noqa_marks_probe_imports(self):
        assert not run_rule(
            "R19",
            """
            try:
                import scipy  # noqa: F401
                HAVE = True
            except ImportError:
                HAVE = False
            """,
        )

    def test_init_modules_are_exempt(self):
        from repro.analysis import LintConfig, LintEngine

        engine = LintEngine(LintConfig(select=frozenset({"R19"})))
        mod = engine.load_source(
            "from pkg.sub import thing\n", path="pkg/__init__.py", module="pkg"
        )
        assert not engine.lint_modules([mod]).findings


class TestR20AsyncBlocking:
    def test_time_sleep_in_async_def_fires(self):
        findings = run_rule(
            "R20",
            """
            import time

            async def handler():
                time.sleep(0.1)
            """,
        )
        assert [f.rule_id for f in findings] == ["R20"]
        assert "time.sleep" in findings[0].message
        assert "asyncio.sleep" in findings[0].message

    def test_direct_imported_sleep_fires(self):
        findings = run_rule(
            "R20",
            """
            from time import sleep as snooze

            async def handler():
                snooze(1)
            """,
        )
        assert len(findings) == 1

    def test_sync_socket_and_sqlite_fire(self):
        findings = run_rule(
            "R20",
            """
            import socket
            import sqlite3

            async def handler(path):
                conn = socket.create_connection(("h", 80))
                db = sqlite3.connect(path)
                return conn, db
            """,
        )
        assert [f.rule_id for f in findings] == ["R20", "R20"]
        assert "socket.create_connection" in findings[0].message
        assert "sqlite3.connect" in findings[1].message

    def test_pool_map_in_async_def_fires(self):
        findings = run_rule(
            "R20",
            """
            async def handler(pool, work):
                return pool.map(len, work)
            """,
        )
        assert len(findings) == 1
        assert "slowest worker" in findings[0].message

    def test_asyncio_sleep_and_executor_are_clean(self):
        assert not run_rule(
            "R20",
            """
            import asyncio

            async def handler(loop, fn):
                await asyncio.sleep(0.1)
                return await loop.run_in_executor(None, fn)
            """,
        )

    def test_sync_def_is_out_of_scope(self):
        assert not run_rule(
            "R20",
            """
            import time

            def not_async():
                time.sleep(0.1)
            """,
        )

    def test_nested_def_and_lambda_are_deferred_bodies(self):
        assert not run_rule(
            "R20",
            """
            import time

            async def handler(loop):
                def blocking_probe():
                    time.sleep(0.1)

                return await loop.run_in_executor(None, lambda: time.sleep(0.2))
            """,
        )

    def test_suppression_comment_works(self):
        assert not run_rule(
            "R20",
            """
            import time

            async def handler():
                time.sleep(0.1)  # reprolint: disable=R20
            """,
        )
