"""Doc-drift guard: the rule catalogue in docs matches the registry."""

import re
from pathlib import Path

from repro.analysis import all_rules

DOC = Path(__file__).resolve().parents[2] / "docs" / "static_analysis.md"


def catalogue_rows():
    """``{rule id: name}`` parsed from the markdown catalogue table."""
    rows = {}
    for line in DOC.read_text(encoding="utf-8").splitlines():
        m = re.match(r"\|\s*(R\d+)\s*\|\s*([a-z0-9-]+)\s*\|", line)
        if m:
            rows[m.group(1)] = m.group(2)
    return rows


def test_every_registered_rule_is_documented():
    rows = catalogue_rows()
    for cls in all_rules():
        assert cls.rule_id in rows, (
            f"{cls.rule_id} ({cls.title}) is registered but missing from the "
            f"catalogue table in {DOC}"
        )
        assert rows[cls.rule_id] == cls.title, (
            f"{cls.rule_id} is documented as {rows[cls.rule_id]!r} but the "
            f"rule's title is {cls.title!r}"
        )


def test_no_phantom_rules_in_docs():
    documented = set(catalogue_rows())
    registered = {cls.rule_id for cls in all_rules()}
    assert documented <= registered, (
        f"docs describe unregistered rules: {sorted(documented - registered)}"
    )


def test_rules_package_docstring_table_is_complete():
    import repro.analysis.rules as rules_pkg

    doc = rules_pkg.__doc__ or ""
    for cls in all_rules():
        assert re.search(rf"^{cls.rule_id}\s ", doc, re.MULTILINE), (
            f"{cls.rule_id} missing from repro/analysis/rules/__init__.py "
            "docstring table"
        )
