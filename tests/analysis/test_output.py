"""SARIF serialization and baseline/ratchet mechanics."""

import json
from pathlib import Path

from repro.analysis import (
    Baseline,
    Finding,
    Report,
    Severity,
    all_rules,
    partition_findings,
    report_to_sarif,
)
from repro.analysis.runner import main as lint_main


def finding(**kw):
    base = dict(
        rule_id="R7",
        severity=Severity.ERROR,
        path="src/x.py",
        line=4,
        col=2,
        message="mutable default",
        fix_hint="use None",
    )
    base.update(kw)
    return Finding(**base)


class TestSarif:
    def test_document_is_valid_sarif_2_1_0(self):
        report = Report(findings=[finding()], n_files=1, n_rules=19)
        payload = json.loads(report_to_sarif(report))
        # the structural requirements of the SARIF 2.1.0 schema
        assert payload["version"] == "2.1.0"
        assert payload["$schema"].endswith("sarif-schema-2.1.0.json")
        assert len(payload["runs"]) == 1
        run = payload["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "reprolint"
        rule_ids = [r["id"] for r in driver["rules"]]
        assert rule_ids == [cls.rule_id for cls in all_rules()]
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] in ("error", "warning")

    def test_results_reference_the_rule_catalogue(self):
        report = Report(
            findings=[finding(), finding(rule_id="R19", severity=Severity.ERROR)],
            n_files=1,
            n_rules=19,
        )
        payload = json.loads(report_to_sarif(report))
        results = payload["runs"][0]["results"]
        assert len(results) == 2
        driver_rules = payload["runs"][0]["tool"]["driver"]["rules"]
        for result in results:
            assert result["ruleId"] in {r["id"] for r in driver_rules}
            assert driver_rules[result["ruleIndex"]]["id"] == result["ruleId"]
            region = result["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] == 4 and region["startColumn"] == 2
            assert result["level"] == "error"
            assert result["message"]["text"]

    def test_paths_relativized_under_root(self):
        report = Report(findings=[finding(path="/repo/src/x.py")])
        payload = json.loads(report_to_sarif(report, root=Path("/repo")))
        loc = payload["runs"][0]["results"][0]["locations"][0]
        assert loc["physicalLocation"]["artifactLocation"]["uri"] == "src/x.py"

    def test_cli_sarif_output_parses(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("def f(x=[]):\n    return x\n")
        assert lint_main(["--format", "sarif", "--select", "R7", str(target)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"][0]["results"][0]["ruleId"] == "R7"


class TestBaseline:
    def test_round_trip(self, tmp_path):
        report = Report(findings=[finding(), finding(line=9)])
        path = tmp_path / "baseline.json"
        Baseline.from_report(report).dump(path)
        loaded = Baseline.load(path)
        assert len(loaded) == 2

    def test_counts_are_a_multiset(self):
        # two identical fingerprints baseline as two; a third is new
        baseline = Baseline.from_report(Report(findings=[finding(), finding(line=9)]))
        report = Report(findings=[finding(), finding(line=9), finding(line=30)])
        new, suppressed, stale = partition_findings(report, baseline)
        assert suppressed == 2 and len(new) == 1 and not stale

    def test_fixed_findings_become_stale(self):
        baseline = Baseline.from_report(Report(findings=[finding()]))
        new, suppressed, stale = partition_findings(Report(findings=[]), baseline)
        assert not new and suppressed == 0
        assert stale == [("R7", "src/x.py", "mutable default")]

    def test_line_moves_do_not_break_the_match(self):
        baseline = Baseline.from_report(Report(findings=[finding(line=4)]))
        new, suppressed, _ = partition_findings(
            Report(findings=[finding(line=40)]), baseline
        )
        assert suppressed == 1 and not new

    def test_cli_baseline_gates_only_new_findings(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("def f(x=[]):\n    return x\n")
        bl = tmp_path / "baseline.json"
        assert (
            lint_main(
                ["--select", "R7", "--baseline", str(bl), "--write-baseline", str(target)]
            )
            == 0
        )
        capsys.readouterr()
        # the recorded finding no longer fails the gate
        assert lint_main(["--select", "R7", "--baseline", str(bl), str(target)]) == 0
        assert "1 baselined finding(s) suppressed" in capsys.readouterr().out
        # a new finding still fails it
        target.write_text("def f(x=[]):\n    return x\n\ndef g(y={}):\n    return y\n")
        assert lint_main(["--select", "R7", "--baseline", str(bl), str(target)]) == 1

    def test_cli_stale_entries_warn(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("def f(x=[]):\n    return x\n")
        bl = tmp_path / "baseline.json"
        lint_main(["--select", "R7", "--baseline", str(bl), "--write-baseline", str(target)])
        target.write_text("def f(x=None):\n    return x\n")
        capsys.readouterr()
        assert lint_main(["--select", "R7", "--baseline", str(bl), str(target)]) == 0
        assert "stale baseline entry" in capsys.readouterr().err

    def test_write_baseline_requires_target(self, tmp_path):
        assert lint_main(["--write-baseline", str(tmp_path)]) == 2

    def test_missing_baseline_file_is_usage_error(self, tmp_path):
        assert (
            lint_main(["--baseline", str(tmp_path / "nope.json"), str(tmp_path)]) == 2
        )
