"""Sharded serving through the system facade, web API, and HTTP shell."""

from __future__ import annotations

import json

import pytest

from repro.core.config import SystemConfig
from repro.core.system import VideoRetrievalSystem
from repro.sharding import (
    ShardedSearchEngine,
    attach_sharded_engine,
    maybe_attach_sharded,
    sharded_config,
)
from repro.web.api import CbvrApi
from repro.web.server import make_server


@pytest.fixture(scope="module")
def attached(small_corpus, shard_dir, tmp_path_factory):
    """A system serving the session shard set, with queries pre-verified."""
    system = VideoRetrievalSystem.in_memory()
    admin = system.login_admin()
    for video in small_corpus:
        admin.add_video(video)
    query = small_corpus[0].frames[0]
    before = system.search(query, top_k=5)
    attach_sharded_engine(system, sharded_config(shard_dir).shard_paths)
    yield system, query, before
    system.close()


class TestSystemFacade:
    def test_attach_preserves_ranking(self, attached):
        system, query, before = attached
        assert isinstance(system.engine, ShardedSearchEngine)
        after = system.search(query, top_k=5)
        assert [(h.frame_id, h.distance) for h in after] == [
            (h.frame_id, h.distance) for h in before
        ]

    def test_metrics_grow_sharding_section(self, attached):
        system, query, _ = attached
        system.search(query, top_k=3)
        m = system.metrics()
        sharding = m["sharding"]
        assert sharding["shards"] == 4
        assert sharding["partial_ok"] is True
        assert sum(sharding["frames_per_shard"]) == m["store"]["key_frames"]
        assert sorted(sharding["breakers"]) == [
            "shard0", "shard1", "shard2", "shard3",
        ]
        # the coordinator shares the system registry: per-shard counters
        # land next to everything else GET /metrics scrapes
        reg = m["registry"]
        assert "repro_shard_queries_total" in reg
        assert "repro_shard_merge_seconds" in reg
        ok = {
            tuple(sorted(s["labels"].items())): s["value"]
            for s in reg["repro_shard_queries_total"]["samples"]
        }
        assert any(v > 0 for v in ok.values())


class TestMaybeAttach:
    def test_plain_config_is_a_noop(self, small_corpus):
        system = VideoRetrievalSystem.in_memory()
        try:
            assert maybe_attach_sharded(system) is None
        finally:
            system.close()

    def test_sharded_config_attaches_idempotently(self, shard_dir):
        system = VideoRetrievalSystem.in_memory(sharded_config(shard_dir))
        try:
            engine = maybe_attach_sharded(system)
            assert isinstance(engine, ShardedSearchEngine)
            assert maybe_attach_sharded(system) is engine
        finally:
            system.close()

    def test_attach_without_paths_rejected(self):
        system = VideoRetrievalSystem.in_memory()
        try:
            with pytest.raises(ValueError, match="shard"):
                attach_sharded_engine(system)
        finally:
            system.close()


class TestWebApi:
    def test_search_response_reports_empty_degraded_shards(self, attached):
        system, query, _ = attached
        api = CbvrApi(system)
        status, ctype, body = api.handle(
            "POST", "/search", body=query.encode("ppm"), query={"top_k": "3"}
        )
        assert status == 200
        payload = json.loads(body)
        assert payload["degraded"] is False
        assert payload["degraded_shards"] == []
        assert payload["results"]

    def test_search_response_surfaces_degraded_shards(
        self, small_corpus, shard_dir
    ):
        cfg = sharded_config(
            shard_dir, SystemConfig(fault_spec="shard.query:once")
        )
        system = VideoRetrievalSystem.in_memory(cfg)
        try:
            maybe_attach_sharded(system)
            api = CbvrApi(system)
            status, _ctype, body = api.handle(
                "POST",
                "/search",
                body=small_corpus[0].frames[0].encode("ppm"),
                query={"top_k": "5"},
            )
            assert status == 200
            payload = json.loads(body)
            assert payload["degraded"] is True
            assert payload["degraded_shards"]  # the faulted shard's index
            assert payload["results"]  # partial, not empty
        finally:
            system.close()


class TestMakeServer:
    def test_make_server_auto_attaches_sharded_engine(self, shard_dir):
        system = VideoRetrievalSystem.in_memory(sharded_config(shard_dir))
        server, _port = make_server(system)
        try:
            assert isinstance(system.engine, ShardedSearchEngine)
        finally:
            server.server_close()
            system.close()
