"""Distributed observability across the scatter-gather engine.

One sharded query must leave ONE stitched trace: the coordinator's root
with the scatter span whose children are the per-shard scoring subtrees
(trace/parent ids consistent all the way down), worker metrics must
surface shard-labeled in the coordinator registry with per-shard counts
matching the coordinator's own dispatch counters, and the explain
payload must account for every shard dispatched.
"""

from __future__ import annotations

import re
from dataclasses import replace

import pytest

from repro.core.search import _extract_query_features
from repro.obs import Obs
from repro.resilience import ResiliencePolicies
from repro.sharding import ShardedSearchEngine

N_SHARDS = 4


def _find(node, name):
    out = []
    if node["name"] == name:
        out.append(node)
    for child in node.get("children", ()):
        out.extend(_find(child, name))
    return out


def _counter_samples(text, family):
    pattern = re.compile(
        re.escape(family) + r'\{shard="(\d+)"(?:,(\w+)="([^"]*)")?\} (\S+)'
    )
    out = {}
    for line in text.splitlines():
        m = pattern.match(line)
        if m:
            out.setdefault(m.group(1), {})[m.group(3)] = float(m.group(4))
    return out


@pytest.fixture()
def obs_engine(ingested_system, shard_paths):
    obs = Obs(enabled=True, slow_query_ms=0.0001, slow_log_size=8)
    engine = ShardedSearchEngine(ingested_system.config, shard_paths, obs=obs)
    yield engine, obs
    engine.close()


@pytest.fixture(scope="module")
def query_vectors(ingested_system):
    return _extract_query_features(
        ingested_system.any_key_frame(),
        extractors=ingested_system.engine.extractors,
        names=["sch", "tamura"],
    )


class TestStitchedTrace:
    def test_one_trace_with_per_shard_subtrees(self, obs_engine, query_vectors):
        engine, obs = obs_engine
        engine.query_with_vectors(query_vectors, top_k=10)
        (trace,) = obs.recent_traces()
        (scatter,) = _find(trace, "search.scatter")
        subtrees = [
            c for c in scatter["children"] if c["name"] == "shard.score_vectors"
        ]
        assert len(subtrees) == N_SHARDS
        shards = sorted(c["attrs"]["shard"] for c in subtrees)
        assert shards == list(range(N_SHARDS))
        for sub in subtrees:
            assert sub["trace_id"] == trace["trace_id"]
            assert sub["parent_id"] == scatter["span_id"]
            # worker-side detail survives the wire
            features = [
                g["attrs"]["feature"]
                for g in sub["children"]
                if g["name"] == "shard.distance"
            ]
            assert features == ["sch", "tamura"]

    def test_video_query_stitches_too(self, obs_engine, ingested_system):
        engine, obs = obs_engine
        frames = ingested_system.get_video_frames(1)
        engine.query_video(frames[:3], top_k=3)
        trace = obs.recent_traces()[0]
        (scatter,) = _find(trace, "search.scatter")
        subtrees = [
            c for c in scatter["children"] if c["name"] == "shard.score_video"
        ]
        assert len(subtrees) == N_SHARDS
        assert all(c["trace_id"] == trace["trace_id"] for c in subtrees)

    def test_degraded_shard_marked_in_trace(
        self, ingested_system, shard_paths, query_vectors
    ):
        cfg = replace(ingested_system.config, fault_spec="shard.query:once")
        obs = Obs(enabled=True)
        engine = ShardedSearchEngine(
            cfg, shard_paths, obs=obs,
            policies=ResiliencePolicies.from_config(cfg, obs=obs),
        )
        try:
            results = engine.query_with_vectors(query_vectors, top_k=10)
        finally:
            engine.close()
        assert results.degraded_shards == [0]
        (trace,) = [
            t for t in obs.recent_traces()
            if t["name"] == "search.query_vectors"
        ]
        (scatter,) = _find(trace, "search.scatter")
        assert scatter["attrs"]["degraded_shards"] == "0"
        (marker,) = _find(scatter, "shard.degraded")
        assert marker["status"] == "error"
        assert marker["attrs"]["shard"] == 0
        assert marker["trace_id"] == trace["trace_id"]
        ok = [
            c["attrs"]["shard"]
            for c in scatter["children"]
            if c["name"] == "shard.score_vectors"
        ]
        assert sorted(ok) == [1, 2, 3]


class TestFleetMetrics:
    def test_shard_labeled_counts_match_coordinator(
        self, obs_engine, query_vectors
    ):
        engine, obs = obs_engine
        # distinct top_k values: identical queries would hit the result
        # cache after the first and never reach the shards
        for top_k in (5, 6, 7):
            engine.query_with_vectors(query_vectors, top_k=top_k)
        text = obs.registry.render_text()
        worker = _counter_samples(text, "repro_worker_queries_total")
        coord = _counter_samples(text, "repro_shard_queries_total")
        assert sorted(worker) == [str(s) for s in range(N_SHARDS)]
        for shard in worker:
            assert worker[shard]["vectors"] == coord[shard]["ok"] == 3.0

    def test_worker_histograms_surface_per_shard(self, obs_engine, query_vectors):
        engine, obs = obs_engine
        engine.query_with_vectors(query_vectors, top_k=5)
        text = obs.registry.render_text()
        for shard in range(N_SHARDS):
            assert f'repro_worker_query_seconds_count{{shard="{shard}"' in text
            assert f'repro_worker_rows_scored_count{{shard="{shard}"}} 1' in text

    def test_close_drains_residual_deltas(self, ingested_system, shard_paths):
        obs = Obs(enabled=True)
        engine = ShardedSearchEngine(ingested_system.config, shard_paths, obs=obs)
        query = ingested_system.any_key_frame()
        engine.query_frame(query, top_k=5)
        engine.close()
        text = obs.registry.render_text()
        drains = _counter_samples(text, "repro_worker_metric_drains_total")
        assert sorted(drains) == [str(s) for s in range(N_SHARDS)]

    def test_disabled_obs_ships_no_telemetry(self, ingested_system, shard_paths):
        engine = ShardedSearchEngine(ingested_system.config, shard_paths)
        try:
            results = engine.query_frame(ingested_system.any_key_frame(), top_k=5)
        finally:
            engine.close()
        assert results.explain is not None  # explain is independent of obs


class TestExplain:
    def test_per_shard_accounting(self, obs_engine, query_vectors):
        engine, _ = obs_engine
        results = engine.query_with_vectors(query_vectors, top_k=10)
        explain = results.explain
        assert explain["kind"] == "vectors"
        sharded = explain["sharded"]
        assert sharded["shards"] == N_SHARDS
        assert sharded["dispatched"] == N_SHARDS
        assert sharded["merge_ms"] >= 0
        per_shard = sharded["per_shard"]
        assert [p["shard"] for p in per_shard] == list(range(N_SHARDS))
        assert all(p["status"] == "ok" for p in per_shard)
        assert sum(p["candidates"] for p in per_shard) == results.n_candidates

    def test_degraded_shard_reported(
        self, ingested_system, shard_paths, query_vectors
    ):
        cfg = replace(ingested_system.config, fault_spec="shard.query:once")
        engine = ShardedSearchEngine(
            cfg, shard_paths, policies=ResiliencePolicies.from_config(cfg)
        )
        try:
            results = engine.query_with_vectors(query_vectors, top_k=10)
        finally:
            engine.close()
        explain = results.explain
        assert explain["degraded_shards"] == [0]
        by_shard = {p["shard"]: p for p in explain["sharded"]["per_shard"]}
        assert by_shard[0]["status"] == "error"
        assert "error" in by_shard[0]
        assert all(by_shard[s]["status"] == "ok" for s in (1, 2, 3))

    def test_frame_query_cache_markers(self, ingested_system, shard_paths):
        cfg = replace(ingested_system.config, query_cache_size=4)
        engine = ShardedSearchEngine(cfg, shard_paths, obs=Obs(enabled=True))
        try:
            query = ingested_system.any_key_frame()
            first = engine.query_frame(query, top_k=5)
            second = engine.query_frame(query, top_k=5)
        finally:
            engine.close()
        assert first.explain["cache"] == "miss"
        assert second.explain["cache"] == "hit"
        assert second.explain["sharded"]["dispatched"] == N_SHARDS
        assert second.explain["total_ms"] < first.explain["total_ms"]


class TestSlowLogIntegration:
    def test_sharded_query_lands_in_slow_log(self, obs_engine, query_vectors):
        engine, obs = obs_engine
        engine.query_with_vectors(query_vectors, top_k=5)
        entries = obs.slow_log.recent()
        assert entries
        entry = entries[0]
        assert entry["kind"] == "vectors"
        assert entry["trace_id"] == obs.recent_traces()[0]["trace_id"]
        assert entry["explain"]["sharded"]["dispatched"] == N_SHARDS
