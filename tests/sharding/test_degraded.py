"""Partial results under shard failure: faults, breakers, escalation.

The degraded-mode equivalence mirrors the extractor-degradation one: a
ranking missing shard *s* is not approximate -- it is *exactly* the
ranking an engine over the complement corpus (every partition but *s*)
produces.  Fault-point arithmetic: ``shard.query`` counts dispatch
attempts in shard-index order, so with all four shards dispatched,
``once`` fails shard 0, ``every=3`` shard 2, ``every=4`` shard 3, and
``every=2`` shards 1 and 3.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.search import _extract_query_features
from repro.resilience import FaultInjected, ResiliencePolicies
from repro.sharding import ShardedSearchEngine, shard_of


def _engine(ingested_system, shard_paths, spec, **overrides):
    cfg = replace(ingested_system.config, fault_spec=spec, **overrides)
    return ShardedSearchEngine(
        cfg, shard_paths, policies=ResiliencePolicies.from_config(cfg)
    )


@pytest.fixture(scope="module")
def query_vectors(ingested_system):
    return _extract_query_features(
        ingested_system.any_key_frame(),
        extractors=ingested_system.engine.extractors,
        names=["sch", "tamura"],
    )


def _key(results):
    return [(h.frame_id, h.distance, sorted(h.per_feature.items())) for h in results]


@pytest.mark.parametrize(
    "spec,failed",
    [
        ("shard.query:once", [0]),
        ("shard.query:every=3", [2]),
        ("shard.query:every=4", [3]),
        ("shard.query:every=2", [1, 3]),
    ],
)
def test_degraded_ranking_equals_complement_corpus(
    ingested_system, shard_paths, query_vectors, spec, failed
):
    engine = _engine(ingested_system, shard_paths, spec)
    try:
        results = engine.query_with_vectors(query_vectors, top_k=50)
    finally:
        engine.close()
    assert results.degraded
    assert results.degraded_shards == failed

    store = ingested_system.feature_store
    survivors = [
        fid
        for fid in store.frame_ids()
        if shard_of(store.get(fid).video_id, 4) not in failed
    ]
    reference = ingested_system.engine.query_with_vectors(
        query_vectors, top_k=50, candidate_ids=survivors
    )
    assert _key(results) == _key(reference)
    assert results.n_candidates == len(survivors)


def test_transient_fault_recovers(ingested_system, shard_paths, query_vectors):
    engine = _engine(ingested_system, shard_paths, "shard.query:once")
    try:
        first = engine.query_with_vectors(query_vectors, top_k=10)
        second = engine.query_with_vectors(query_vectors, top_k=10)
    finally:
        engine.close()
    assert first.degraded_shards == [0]
    assert second.degraded_shards == []
    clean = ingested_system.engine.query_with_vectors(query_vectors, top_k=10)
    assert _key(second) == _key(clean)


def test_partial_ok_false_escalates(ingested_system, shard_paths, query_vectors):
    engine = _engine(
        ingested_system, shard_paths, "shard.query:once", shard_partial_ok=False
    )
    try:
        with pytest.raises(FaultInjected):
            engine.query_with_vectors(query_vectors, top_k=5)
    finally:
        engine.close()


def test_every_shard_failing_escalates(ingested_system, shard_paths, query_vectors):
    # partial_ok permits *partial* answers, never empty ones
    engine = _engine(ingested_system, shard_paths, "shard.query:every=1")
    try:
        with pytest.raises(FaultInjected):
            engine.query_with_vectors(query_vectors, top_k=5)
    finally:
        engine.close()


def test_breaker_trips_open_and_short_circuits(
    ingested_system, shard_paths, query_vectors
):
    # every=4 fails shard 3 on each 4-dispatch query; the long cooldown
    # keeps the tripped breaker open for the rest of the test
    engine = _engine(
        ingested_system, shard_paths, "shard.query:every=4", breaker_cooldown=60.0
    )
    try:
        for _ in range(4):  # four consecutive failures reach min_calls
            results = engine.query_with_vectors(query_vectors, top_k=5)
            assert results.degraded_shards == [3]
            assert len(results) > 0
        breaker = engine.sharding_stats()["breakers"]["shard3"]
        assert breaker["state"] == "open"
        assert breaker["trips"] == 1
        # the open breaker now skips shard 3 without dispatching it; the
        # answer stays partial and the other shards keep serving
        results = engine.query_with_vectors(query_vectors, top_k=5)
        assert 3 in results.degraded_shards
        assert len(results) > 0
        assert engine.sharding_stats()["breakers"]["shard3"]["state"] == "open"
    finally:
        engine.close()


def test_breakers_built_per_shard(ingested_system, shard_paths):
    engine = _engine(ingested_system, shard_paths, None)
    try:
        stats = engine.sharding_stats()["breakers"]
        assert sorted(stats) == ["shard0", "shard1", "shard2", "shard3"]
        assert all(b["state"] == "closed" for b in stats.values())
    finally:
        engine.close()
