"""Property tests: the merge equivalence holds for *any* topology.

Hypothesis drives shard counts 1..8 and random candidate subsets over
the session corpus; every draw must reproduce the single-store ranking
byte-for-byte, and every simulated shard loss must reproduce the
complement-corpus ranking.  Examples are deliberately few -- each one
splits the corpus and boots real worker pools -- but each example checks
full-ranking equality, not just the head.
"""

from __future__ import annotations

import tempfile
from dataclasses import replace

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.search import _extract_query_features
from repro.resilience import ResiliencePolicies
from repro.sharding import (
    ShardedSearchEngine,
    read_manifest,
    shard_of,
    split_store,
)

_VECTOR_CACHE: dict = {}


def _vectors(ingested_system):
    if "v" not in _VECTOR_CACHE:
        _VECTOR_CACHE["v"] = _extract_query_features(
            ingested_system.any_key_frame(),
            extractors=ingested_system.engine.extractors,
            names=["sch", "glcm"],
        )
    return _VECTOR_CACHE["v"]


def _key(results):
    return [(h.frame_id, h.distance, sorted(h.per_feature.items())) for h in results]


@settings(max_examples=6, deadline=None)
@given(
    n_shards=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_any_shard_count_and_subset_reproduces_ranking(
    ingested_system, n_shards, seed
):
    vectors = _vectors(ingested_system)
    store = ingested_system.feature_store
    rng = np.random.default_rng(seed)
    ids = np.asarray(store.frame_ids())
    subset = [int(fid) for fid in rng.permutation(ids)[: max(1, ids.size // 2)]]
    base = ingested_system.engine.query_with_vectors(
        vectors, top_k=len(subset), candidate_ids=subset
    )
    with tempfile.TemporaryDirectory() as out:
        split_store(store, out, n_shards)
        _, paths = read_manifest(out)
        engine = ShardedSearchEngine(ingested_system.config, paths)
        try:
            sharded = engine.query_with_vectors(
                vectors, top_k=len(subset), candidate_ids=subset
            )
        finally:
            engine.close()
    assert _key(sharded) == _key(base)


@settings(max_examples=4, deadline=None)
@given(
    n_shards=st.integers(min_value=2, max_value=6),
    nth=st.integers(min_value=1, max_value=6),
)
def test_any_lost_shard_reproduces_complement_ranking(
    ingested_system, n_shards, nth
):
    """Killing the nth dispatched shard == querying the complement corpus."""
    vectors = _vectors(ingested_system)
    store = ingested_system.feature_store
    occupied = sorted(
        {shard_of(store.get(fid).video_id, n_shards) for fid in store.frame_ids()}
    )
    # the fault counter indexes *dispatched* shards (empty partitions are
    # skipped), so ``once`` kills the first occupied shard and
    # ``every=k`` with k in (D/2, D] fires exactly once, on the kth
    n_occupied = len(occupied)
    if nth % 2 == 0 or n_occupied == 1:
        spec, failed = "shard.query:once", occupied[0]
    else:
        k = n_occupied // 2 + 1 + (nth % (n_occupied - n_occupied // 2))
        spec, failed = f"shard.query:every={k}", occupied[k - 1]
    cfg = replace(ingested_system.config, fault_spec=spec)
    with tempfile.TemporaryDirectory() as out:
        split_store(store, out, n_shards)
        _, paths = read_manifest(out)
        engine = ShardedSearchEngine(
            cfg, paths, policies=ResiliencePolicies.from_config(cfg)
        )
        try:
            results = engine.query_with_vectors(vectors, top_k=200)
        finally:
            engine.close()
    assert results.degraded_shards == [failed]
    survivors = [
        fid
        for fid in store.frame_ids()
        if shard_of(store.get(fid).video_id, n_shards) != failed
    ]
    reference = ingested_system.engine.query_with_vectors(
        vectors, top_k=200, candidate_ids=survivors
    )
    assert _key(results) == _key(reference)
