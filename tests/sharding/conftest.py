"""Sharding fixtures: one session-shared corpus split four ways."""

from __future__ import annotations

import pytest

from repro.sharding import read_manifest, split_store


@pytest.fixture(scope="session")
def shard_dir(ingested_system, tmp_path_factory):
    """The session corpus split into 4 shard snapshots (read-only)."""
    out = tmp_path_factory.mktemp("shards4")
    split_store(ingested_system.feature_store, str(out), 4)
    return str(out)


@pytest.fixture(scope="session")
def shard_paths(shard_dir):
    _, paths = read_manifest(shard_dir)
    return paths
