"""Shard builder + manifest round trips."""

import json
import os

import pytest

from repro.core.snapshots import open_snapshot_store
from repro.sharding import (
    MANIFEST_NAME,
    ShardManifest,
    read_manifest,
    shard_of,
    split_store,
)
from repro.snapshot import Snapshot


def test_split_covers_corpus_exactly(ingested_system, shard_dir):
    store = ingested_system.feature_store
    manifest, paths = read_manifest(shard_dir)
    assert manifest.n_shards == 4
    seen_frames = []
    seen_videos = []
    for s, path in enumerate(paths):
        snap, sub = open_snapshot_store(path)
        try:
            seen_frames.extend(sub.frame_ids())
            for vid in sub.video_ids():
                seen_videos.append(vid)
                assert shard_of(vid, 4) == s
                # whole videos: every frame of the video is on this shard
                assert [r.frame_id for r in sub.frames_of_video(vid)] == [
                    r.frame_id for r in store.frames_of_video(vid)
                ]
        finally:
            snap.close()
    assert sorted(seen_frames) == store.frame_ids()
    assert sorted(seen_videos) == store.video_ids()


def test_shard_records_match_source(ingested_system, shard_paths):
    store = ingested_system.feature_store
    snap, sub = open_snapshot_store(shard_paths[0])
    try:
        for fid in sub.frame_ids():
            a, b = sub.get(fid), store.get(fid)
            assert (a.video_id, a.video_name, a.frame_name, a.category) == (
                b.video_id, b.video_name, b.frame_name, b.category
            )
            assert a.bucket == b.bucket
    finally:
        snap.close()


def test_shard_meta_stamps_topology(shard_paths):
    for s, path in enumerate(shard_paths):
        snap = Snapshot.open(path)
        try:
            assert snap.meta["shard"] == {"index": s, "of": len(shard_paths)}
        finally:
            snap.close()


def test_manifest_file_shape(shard_dir):
    with open(os.path.join(shard_dir, MANIFEST_NAME)) as fh:
        payload = json.load(fh)
    assert payload["version"] == 1
    assert payload["n_shards"] == 4
    assert payload["snapshots"] == [f"shard-{i:03d}.snap" for i in range(4)]


def test_manifest_rejects_length_mismatch():
    with pytest.raises(ValueError):
        ShardManifest(n_shards=2, snapshots=("only-one.snap",))


def test_read_manifest_rejects_unknown_version(tmp_path):
    path = tmp_path / MANIFEST_NAME
    path.write_text(json.dumps({"version": 99, "n_shards": 1, "snapshots": ["x"]}))
    with pytest.raises(ValueError, match="version"):
        read_manifest(str(tmp_path))


def test_empty_shards_still_written(ingested_system, tmp_path):
    # far more shards than videos: some must be empty yet still openable
    manifest = split_store(ingested_system.feature_store, str(tmp_path), 8)
    _, paths = read_manifest(str(tmp_path))
    assert manifest.n_shards == 8
    total = 0
    for path in paths:
        snap, sub = open_snapshot_store(path)
        try:
            total += len(sub)
        finally:
            snap.close()
    assert total == len(ingested_system.feature_store)


def test_split_rejects_bad_count(ingested_system, tmp_path):
    with pytest.raises(ValueError):
        split_store(ingested_system.feature_store, str(tmp_path), 0)
