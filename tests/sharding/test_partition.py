"""Partitioner: stability, determinism, and spread."""

import pytest

from repro.sharding import partition_video_ids, shard_of

# pinned assignments: shard_of is a serialization contract (the split
# that built a shard set and a later coordinator must agree forever)
PINNED = {
    (1, 4): shard_of(1, 4),
    (2, 4): shard_of(2, 4),
}


def test_range():
    for vid in range(200):
        for n in (1, 2, 3, 4, 8):
            assert 0 <= shard_of(vid, n) < n


def test_single_shard_is_identity():
    assert all(shard_of(vid, 1) == 0 for vid in range(50))


def test_deterministic_across_calls():
    first = [shard_of(vid, 8) for vid in range(100)]
    assert first == [shard_of(vid, 8) for vid in range(100)]


def test_pinned_values_are_stable():
    # recomputing in a fresh expression must match the import-time values
    assert PINNED[(1, 4)] == shard_of(1, 4)
    assert PINNED[(2, 4)] == shard_of(2, 4)


def test_spread_over_shards():
    # splitmix64 avalanches sequential ids: no shard may end up empty or
    # hoard the corpus on a realistic id range
    counts = [0] * 4
    for vid in range(1, 401):
        counts[shard_of(vid, 4)] += 1
    assert all(50 <= c <= 150 for c in counts), counts


def test_partition_video_ids_groups_and_preserves_order():
    groups = partition_video_ids(range(1, 41), 4)
    assert sum(len(g) for g in groups) == 40
    for s, group in enumerate(groups):
        assert group == sorted(group)
        assert all(shard_of(vid, 4) == s for vid in group)


def test_invalid_shard_count():
    with pytest.raises(ValueError):
        shard_of(1, 0)
