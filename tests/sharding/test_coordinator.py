"""Scatter-gather coordinator: byte-identical merge with the single store.

The load-bearing equivalence of the whole subsystem: for every query
kind (frame, vectors, video), any candidate set, and any feature
selection, the coordinator's merged ranking is *exactly* -- distances,
per-feature values, and tie order included -- the ranking the unsharded
engine computes over the same corpus.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.search import _extract_query_features
from repro.core.system import VideoRetrievalSystem
from repro.sharding import ShardedSearchEngine, read_manifest, shard_of, split_store
from repro.video.generator import VideoSpec, generate_video


def _key(results):
    """Everything a ranking is made of, exact floats included."""
    return [
        (h.frame_id, h.video_id, h.distance, sorted(h.per_feature.items()))
        for h in results
    ]


@pytest.fixture(scope="module")
def coordinator(ingested_system, shard_paths):
    engine = ShardedSearchEngine(ingested_system.config, shard_paths)
    yield engine
    engine.close()


@pytest.fixture(scope="module")
def query_vectors(ingested_system, coordinator):
    frame = ingested_system.any_key_frame()
    return _extract_query_features(
        frame, extractors=coordinator.extractors, names=["sch", "glcm", "tamura"]
    )


class TestFrameQueries:
    def test_fused_ranking_identical(self, ingested_system, coordinator, small_corpus):
        for video in small_corpus[:3]:
            query = video.frames[4]
            base = ingested_system.search(query, top_k=10)
            sharded = coordinator.query_frame(query, top_k=10)
            assert _key(sharded) == _key(base)
            assert sharded.n_candidates == base.n_candidates
            assert sharded.n_total == base.n_total
            assert not sharded.degraded
            assert sharded.degraded_shards == []

    @pytest.mark.parametrize("feature", ["sch", "tamura", "gabor"])
    def test_single_feature_ranking_identical(
        self, ingested_system, coordinator, small_corpus, feature
    ):
        query = small_corpus[5].frames[0]
        base = ingested_system.search(query, features=[feature], top_k=8)
        sharded = coordinator.query_frame(query, features=[feature], top_k=8)
        assert _key(sharded) == _key(base)

    def test_full_store_scan_identical(self, ingested_system, coordinator, small_corpus):
        query = small_corpus[2].frames[7]
        n = len(ingested_system.feature_store)
        base = ingested_system.search(query, top_k=n, use_index=False)
        sharded = coordinator.query_frame(query, top_k=n, use_index=False)
        assert base.n_candidates == n  # no pruning: every shard fully scored
        assert _key(sharded) == _key(base)


class TestVectorQueries:
    def test_candidate_subset_in_arbitrary_order(
        self, ingested_system, coordinator, query_vectors
    ):
        # descending order exercises the coordinator's promise to keep the
        # caller's candidate order through the split/merge round trip
        subset = ingested_system.feature_store.frame_ids()[::2][::-1]
        base = ingested_system.engine.query_with_vectors(
            query_vectors, top_k=6, candidate_ids=subset
        )
        sharded = coordinator.query_with_vectors(
            query_vectors, top_k=6, candidate_ids=subset
        )
        assert _key(sharded) == _key(base)
        assert sharded.n_candidates == len(subset)

    def test_weight_override_identical(
        self, ingested_system, coordinator, query_vectors
    ):
        weights = {"sch": 3.0, "glcm": 0.25, "tamura": 1.5}
        base = ingested_system.engine.query_with_vectors(
            query_vectors, top_k=12, weights=weights
        )
        sharded = coordinator.query_with_vectors(
            query_vectors, top_k=12, weights=weights
        )
        assert _key(sharded) == _key(base)

    def test_empty_candidate_list(self, coordinator, query_vectors):
        results = coordinator.query_with_vectors(
            query_vectors, top_k=5, candidate_ids=[]
        )
        assert len(results) == 0
        assert results.n_candidates == 0
        assert not results.degraded


class TestVideoQueries:
    def test_video_ranking_identical(self, ingested_system, coordinator, small_corpus):
        clip = small_corpus[4]
        base = ingested_system.search_by_video(clip, top_k=6)
        sharded = coordinator.query_video(clip, top_k=6)
        assert [(m.video_id, m.video_name, m.distance) for m in sharded] == [
            (m.video_id, m.video_name, m.distance) for m in base
        ]

    def test_video_single_feature_identical(
        self, ingested_system, coordinator, small_corpus
    ):
        clip = small_corpus[9]
        base = ingested_system.search_by_video(clip, features=["acc"], top_k=4)
        sharded = coordinator.query_video(clip, features=["acc"], top_k=4)
        assert [(m.video_id, m.distance) for m in sharded] == [
            (m.video_id, m.distance) for m in base
        ]


class TestTieOrdering:
    def test_exact_cross_shard_ties_rank_identically(self, tmp_path):
        # four byte-identical videos under distinct ids: every distance is
        # an exact tie, and the pinned partitioner spreads ids 1..4 over
        # two shards -- so tie-breaking must agree *across* shard replies
        video = generate_video(
            VideoSpec(category="news", seed=5, n_shots=2, frames_per_shot=4)
        )
        assert len({shard_of(vid, 4) for vid in (1, 2, 3, 4)}) >= 2
        system = VideoRetrievalSystem.in_memory()
        admin = system.login_admin()
        for i in range(4):
            admin.add_video(replace(video, name=f"{video.name}-{i}"))
        split_store(system.feature_store, str(tmp_path), 4)
        _, paths = read_manifest(str(tmp_path))
        engine = ShardedSearchEngine(system.config, paths)
        try:
            query = video.frames[0]
            n = len(system.feature_store)
            base = system.search(query, top_k=n, use_index=False)
            sharded = engine.query_frame(query, top_k=n, use_index=False)
            assert _key(sharded) == _key(base)
            distances = [h.distance for h in base]
            assert len(set(distances)) < len(distances)  # ties really occurred
        finally:
            engine.close()
            system.close()


class TestIntrospection:
    def test_sharding_stats_topology(self, ingested_system, coordinator):
        stats = coordinator.sharding_stats()
        assert stats["shards"] == 4
        assert len(stats["paths"]) == 4
        assert stats["partial_ok"] is True
        assert sum(stats["frames_per_shard"]) == len(ingested_system.feature_store)
        assert stats["breakers"] == {}  # NULL_POLICIES: no breakers built

    def test_rejects_ann_config(self, ingested_system, shard_paths):
        cfg = replace(ingested_system.config, ann=True, shards=1, shard_paths=None)
        with pytest.raises(ValueError, match="ann"):
            ShardedSearchEngine(cfg, shard_paths)

    def test_rejects_empty_shard_paths(self, ingested_system):
        with pytest.raises(ValueError, match="shard_paths"):
            ShardedSearchEngine(ingested_system.config, [])
