"""The store-level WAL: append/replay, torn tails, staleness, splices."""

import pytest

from repro.snapshot import (
    CorruptWalError,
    StaleWalError,
    WalWriter,
    read_wal,
    remove_wal,
    wal_depth,
    wal_path_for,
)


@pytest.fixture()
def snap_path(tmp_path):
    # the WAL rides next to this path; the snapshot itself is not needed
    return str(tmp_path / "lib.snap")


class TestWriterAndReader:
    def test_absent_wal_is_empty(self, snap_path):
        assert read_wal(wal_path_for(snap_path), 3, 3) == []
        assert wal_depth(snap_path, (3, 3)) == 0

    def test_round_trip(self, snap_path):
        writer = WalWriter(wal_path_for(snap_path), 5, 4)
        assert writer.append("add_video", {"video_id": 1}) == 1
        assert writer.append("rename_video", {"video_id": 1, "name": "x"}) == 2
        assert writer.depth == 2
        entries = read_wal(wal_path_for(snap_path), 5, 4)
        assert [e["op"] for e in entries] == ["add_video", "rename_video"]
        assert [e["seq"] for e in entries] == [1, 2]
        assert wal_depth(snap_path, (5, 4)) == 2

    def test_writer_continues_existing_sequence(self, snap_path):
        WalWriter(wal_path_for(snap_path), 5, 4).append("add_video", {"video_id": 1})
        writer = WalWriter(wal_path_for(snap_path), 5, 4)
        assert writer.depth == 1
        assert writer.append("delete_video", {"video_id": 1}) == 2
        assert len(read_wal(wal_path_for(snap_path), 5, 4)) == 2

    def test_remove_wal(self, snap_path):
        WalWriter(wal_path_for(snap_path), 5, 4).append("add_video", {})
        remove_wal(snap_path)
        assert read_wal(wal_path_for(snap_path), 5, 4) == []
        remove_wal(snap_path)  # idempotent


class TestDamage:
    def test_torn_final_line_dropped(self, snap_path):
        writer = WalWriter(wal_path_for(snap_path), 5, 4)
        writer.append("add_video", {"video_id": 1})
        with open(wal_path_for(snap_path), "ab") as fh:
            fh.write(b'deadbeef {"seq": 2, "op": "add_vi')  # crash mid-append
        entries = read_wal(wal_path_for(snap_path), 5, 4)
        assert [e["seq"] for e in entries] == [1]

    def test_damage_before_tail_is_corruption(self, snap_path):
        writer = WalWriter(wal_path_for(snap_path), 5, 4)
        writer.append("add_video", {"video_id": 1})
        writer.append("delete_video", {"video_id": 1})
        wal = wal_path_for(snap_path)
        with open(wal, "rb") as fh:
            lines = fh.read().split(b"\n")
        lines[1] = b"garbage " + lines[1][8:]
        with open(wal, "wb") as fh:
            fh.write(b"\n".join(lines))
        with pytest.raises(CorruptWalError):
            read_wal(wal, 5, 4)

    def test_stale_base_generation(self, snap_path):
        WalWriter(wal_path_for(snap_path), 5, 4).append("add_video", {})
        with pytest.raises(StaleWalError):
            read_wal(wal_path_for(snap_path), 6, 5)
        # wal_depth treats stale as empty rather than erroring
        assert wal_depth(snap_path, (6, 5)) == 0

    def test_sequence_gap(self, snap_path):
        writer = WalWriter(wal_path_for(snap_path), 5, 4)
        for i in range(3):
            writer.append("add_video", {"video_id": i})
        wal = wal_path_for(snap_path)
        with open(wal, "rb") as fh:
            lines = fh.read().split(b"\n")
        del lines[2]  # splice out seq=2
        with open(wal, "wb") as fh:
            fh.write(b"\n".join(lines))
        with pytest.raises(CorruptWalError, match="sequence gap"):
            read_wal(wal, 5, 4)
