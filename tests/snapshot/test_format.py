"""The binary snapshot layout: round trip, validation, rejection."""

import struct

import numpy as np
import pytest

from repro.snapshot import (
    MAGIC,
    CorruptSnapshotError,
    Snapshot,
    SnapshotError,
    SnapshotVersionError,
    write_snapshot,
)

_PREAMBLE_SIZE = struct.calcsize("<8sIIIQ")


@pytest.fixture()
def arrays():
    rng = np.random.default_rng(7)
    return {
        "matrix": rng.normal(size=(5, 12)),
        "ids": np.arange(5, dtype=np.int64) * 3,
        "empty": np.zeros((0, 4), dtype=np.float64),
    }


@pytest.fixture()
def snap_path(tmp_path, arrays):
    path = str(tmp_path / "test.snap")
    write_snapshot(path, arrays, {"kind": "test", "answer": 42})
    return path


class TestRoundTrip:
    def test_sections_byte_identical(self, snap_path, arrays):
        snap = Snapshot.open(snap_path)
        assert snap.section_names() == list(arrays)
        for name, original in arrays.items():
            view = snap.section(name)
            assert view.shape == original.shape
            assert view.tobytes() == np.ascontiguousarray(original).tobytes()

    def test_meta_round_trips(self, snap_path):
        snap = Snapshot.open(snap_path)
        assert snap.meta == {"kind": "test", "answer": 42}

    def test_sections_are_read_only(self, snap_path):
        view = Snapshot.open(snap_path).section("matrix")
        with pytest.raises(ValueError):
            view[0, 0] = 1.0

    def test_verify_clean(self, snap_path):
        assert Snapshot.open(snap_path).verify() == []

    def test_contains_and_missing_section(self, snap_path):
        snap = Snapshot.open(snap_path)
        assert "matrix" in snap
        assert "nope" not in snap
        with pytest.raises(KeyError):
            snap.section("nope")

    def test_info_lists_sections(self, snap_path):
        info = Snapshot.open(snap_path).info()
        assert {s["name"] for s in info["sections"]} == {"matrix", "ids", "empty"}
        assert info["version"] == 1

    def test_atomic_overwrite(self, snap_path):
        write_snapshot(snap_path, {"only": np.ones(3)}, {"kind": "second"})
        snap = Snapshot.open(snap_path)
        assert snap.section_names() == ["only"]
        assert snap.meta["kind"] == "second"

    def test_closed_snapshot_refuses_reads(self, snap_path):
        snap = Snapshot.open(snap_path)
        snap.close()
        with pytest.raises(SnapshotError):
            snap.section("matrix")


def _flip(path: str, offset: int) -> None:
    with open(path, "r+b") as fh:
        fh.seek(offset)
        byte = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([byte[0] ^ 0xFF]))


class TestRejection:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            Snapshot.open(str(tmp_path / "absent.snap"))

    def test_bad_magic(self, snap_path):
        _flip(snap_path, 0)
        with pytest.raises(CorruptSnapshotError, match="bad magic"):
            Snapshot.open(snap_path)

    def test_unknown_version(self, snap_path):
        with open(snap_path, "r+b") as fh:
            fh.seek(len(MAGIC))
            fh.write(struct.pack("<I", 99))
        with pytest.raises(SnapshotVersionError, match="version 99"):
            Snapshot.open(snap_path)

    def test_foreign_endianness(self, snap_path):
        with open(snap_path, "r+b") as fh:
            fh.seek(len(MAGIC) + 4)
            fh.write(struct.pack("<I", 0x04030201))
        with pytest.raises(SnapshotVersionError, match="endianness"):
            Snapshot.open(snap_path)

    def test_header_checksum(self, snap_path):
        _flip(snap_path, _PREAMBLE_SIZE + 2)
        with pytest.raises(CorruptSnapshotError, match="header checksum"):
            Snapshot.open(snap_path)

    def test_truncated_preamble(self, snap_path):
        with open(snap_path, "r+b") as fh:
            fh.truncate(10)
        with pytest.raises(CorruptSnapshotError):
            Snapshot.open(snap_path)

    def test_truncated_body(self, snap_path):
        import os

        with open(snap_path, "r+b") as fh:
            fh.truncate(os.path.getsize(snap_path) - 64)
        with pytest.raises(CorruptSnapshotError):
            Snapshot.open(snap_path)

    def test_flipped_section_byte_caught_by_verify(self, snap_path):
        # open() stays cheap (no full read), so a bit flip deep in a
        # section body is verify()'s job to catch
        offset = int(Snapshot.open(snap_path)._table["matrix"]["offset"])
        _flip(snap_path, offset + 5)
        snap = Snapshot.open(snap_path)
        assert snap.verify() == ["matrix"]
