"""System-level snapshot serving: byte identity, WAL replay, fallback.

The acceptance bar for the snapshot layer: a process that opens the mmap
snapshot must be indistinguishable -- to the byte -- from one that
rebuilt its store from SQL, across feature matrices, rankings, ANN
probes, and generation counters.
"""

import os

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.core.snapshots import SnapshotRequiredError
from repro.core.system import VideoRetrievalSystem
from repro.video.generator import VideoSpec, generate_video

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


def _video(seed, category="news", shots=2):
    return generate_video(
        VideoSpec(category=category, seed=seed, width=64, height=48,
                  n_shots=shots, frames_per_shot=4)
    )


def _ranking(system, query, **kwargs):
    return [
        (h.frame_id, h.distance, tuple(sorted(h.per_feature.items())))
        for h in system.search(query, top_k=8, **kwargs)
    ]


@pytest.fixture()
def library(tmp_path):
    """A durable library with a written snapshot; returns (path, query)."""
    lib = str(tmp_path / "lib.rdb")
    system = VideoRetrievalSystem.open(lib, SystemConfig(workers=1))
    for seed, category in ((11, "news"), (12, "sports"), (13, "cartoon")):
        system.admin.add_video(_video(seed, category))
    system.admin.checkpoint()  # writes lib.rdb.snap
    query = system.any_key_frame()
    system.close()
    assert os.path.exists(lib + ".snap")
    return lib, query


class TestMmapServing:
    def test_open_serves_from_mmap(self, library):
        lib, query = library
        system = VideoRetrievalSystem.open(lib, SystemConfig())
        assert system.snapshots.served_from == "mmap"
        assert len(system.search(query, top_k=5)) >= 1
        system.close()

    def test_feature_matrices_byte_identical_to_rebuild(self, library):
        lib, _ = library
        via_snap = VideoRetrievalSystem.open(lib, SystemConfig())
        via_sql = VideoRetrievalSystem.open(lib, SystemConfig(snapshot="off"))
        assert via_snap.snapshots.served_from == "mmap"
        for name in via_snap.config.features:
            a = via_snap._store.feature_matrix(name)
            b = via_sql._store.feature_matrix(name)
            assert a.dtype == b.dtype
            assert a.tobytes() == b.tobytes()
        via_snap.close()
        via_sql.close()

    def test_rankings_byte_identical_to_rebuild(self, library):
        lib, query = library
        via_snap = VideoRetrievalSystem.open(lib, SystemConfig())
        via_sql = VideoRetrievalSystem.open(lib, SystemConfig(snapshot="off"))
        for use_index in (True, False):
            assert _ranking(via_snap, query, use_index=use_index) == \
                _ranking(via_sql, query, use_index=use_index)
        via_snap.close()
        via_sql.close()

    def test_generation_counters_restored(self, library):
        lib, _ = library
        via_snap = VideoRetrievalSystem.open(lib, SystemConfig())
        via_sql = VideoRetrievalSystem.open(lib, SystemConfig(snapshot="off"))
        assert via_snap._store.generation == via_sql._store.generation
        assert (via_snap._store.structure_generation
                == via_sql._store.structure_generation)
        via_snap.close()
        via_sql.close()

    def test_scalar_path_reads_lazy_features(self, library):
        lib, query = library
        config = SystemConfig(batch_distances=False, query_cache_size=0)
        via_snap = VideoRetrievalSystem.open(lib, config)
        via_sql = VideoRetrievalSystem.open(
            lib, SystemConfig(snapshot="off", batch_distances=False,
                              query_cache_size=0))
        assert via_snap.snapshots.served_from == "mmap"
        assert _ranking(via_snap, query) == _ranking(via_sql, query)
        via_snap.close()
        via_sql.close()

    def test_video_metadata_survives(self, library):
        lib, _ = library
        system = VideoRetrievalSystem.open(lib, SystemConfig())
        records = system.key_frames_of(1)
        assert records and records[0].video_name
        assert records[0].category == "news"
        clip_matches = system.search_by_video(_video(11), top_k=3)
        assert clip_matches
        system.close()


class TestWalReplay:
    def test_incremental_ingest_replays_identically(self, library):
        lib, query = library
        writer = VideoRetrievalSystem.open(lib, SystemConfig())
        writer.admin.add_video(_video(44, "movies"))
        assert writer.snapshots.wal_depth == 1
        writer.close()

        replayed = VideoRetrievalSystem.open(lib, SystemConfig())
        rebuilt = VideoRetrievalSystem.open(lib, SystemConfig(snapshot="off"))
        assert replayed.snapshots.served_from == "mmap"
        assert replayed.n_key_frames() == rebuilt.n_key_frames()
        assert replayed._store.generation == rebuilt._store.generation
        assert _ranking(replayed, query) == _ranking(rebuilt, query)
        replayed.close()
        rebuilt.close()

    def test_delete_and_rename_replay(self, library):
        lib, query = library
        writer = VideoRetrievalSystem.open(lib, SystemConfig())
        writer.admin.delete_video(2)
        writer.admin.rename_video(3, "renamed")
        assert writer.snapshots.wal_depth == 2
        writer.close()

        replayed = VideoRetrievalSystem.open(lib, SystemConfig())
        rebuilt = VideoRetrievalSystem.open(lib, SystemConfig(snapshot="off"))
        assert replayed.snapshots.served_from == "mmap"
        assert replayed.key_frames_of(3)[0].video_name == "renamed"
        assert not replayed.key_frames_of(2)
        assert _ranking(replayed, query) == _ranking(rebuilt, query)
        replayed.close()
        rebuilt.close()

    def test_checkpoint_compacts_wal(self, library):
        lib, _ = library
        system = VideoRetrievalSystem.open(lib, SystemConfig())
        system.admin.add_video(_video(45, "movies"))
        assert system.snapshots.wal_depth == 1
        system.admin.checkpoint()
        assert system.snapshots.wal_depth == 0
        system.close()
        fresh = VideoRetrievalSystem.open(lib, SystemConfig())
        assert fresh.snapshots.served_from == "mmap"
        assert fresh.n_videos() == 4
        fresh.close()

    def test_auto_compaction_threshold(self, library):
        lib, _ = library
        system = VideoRetrievalSystem.open(
            lib, SystemConfig(snapshot_compact_every=2))
        system.admin.rename_video(1, "a")
        assert system.snapshots.wal_depth == 1
        system.admin.rename_video(1, "b")  # hits the threshold -> compacted
        assert system.snapshots.wal_depth == 0
        system.close()

    def test_kill_mid_compact_leaves_valid_state(self, library):
        """Fault point ``snapshot.compact``: the old snapshot + WAL survive."""
        lib, query = library
        system = VideoRetrievalSystem.open(
            lib,
            SystemConfig(snapshot_compact_every=1,
                         fault_spec="snapshot.compact:once"),
        )
        system.admin.add_video(_video(46, "movies"))
        # compaction was attempted (threshold 1) and died on the fault;
        # the mutation stays in the WAL
        assert system.snapshots.wal_depth == 1
        # next mutation retries compaction, which now succeeds
        system.admin.rename_video(1, "after-crash")
        assert system.snapshots.wal_depth == 0
        system.close()

        replayed = VideoRetrievalSystem.open(lib, SystemConfig())
        rebuilt = VideoRetrievalSystem.open(lib, SystemConfig(snapshot="off"))
        assert replayed.snapshots.served_from == "mmap"
        assert _ranking(replayed, query) == _ranking(rebuilt, query)
        assert replayed.key_frames_of(1)[0].video_name == "after-crash"
        replayed.close()
        rebuilt.close()


class TestFallbackAndRequire:
    def test_corrupt_snapshot_falls_back_to_sql(self, library):
        lib, query = library
        with open(lib + ".snap", "r+b") as fh:
            fh.seek(30)  # inside the header JSON: checksum mismatch on open
            fh.write(b"\xff\xff")
        system = VideoRetrievalSystem.open(lib, SystemConfig())
        assert system.snapshots.served_from == "rebuild"
        assert len(system.search(query, top_k=5)) >= 1
        system.close()

    def test_missing_snapshot_falls_back(self, library):
        lib, query = library
        os.remove(lib + ".snap")
        system = VideoRetrievalSystem.open(lib, SystemConfig())
        assert system.snapshots.served_from == "rebuild"
        assert len(system.search(query, top_k=5)) >= 1
        system.close()

    def test_stale_snapshot_detected(self, library):
        """A snapshot missing later transactions must not serve silently."""
        lib, _ = library
        # mutate with snapshots off: the DB moves, the snapshot does not
        writer = VideoRetrievalSystem.open(lib, SystemConfig(snapshot="off"))
        writer.admin.add_video(_video(47, "movies"))
        writer.close()
        system = VideoRetrievalSystem.open(lib, SystemConfig())
        assert system.snapshots.served_from == "rebuild"
        assert system.n_videos() == 4
        system.close()

    def test_require_mode_raises_without_snapshot(self, library):
        lib, _ = library
        os.remove(lib + ".snap")
        with pytest.raises(SnapshotRequiredError):
            VideoRetrievalSystem.open(lib, SystemConfig(snapshot="require"))

    def test_snapshot_off_never_reads_the_file(self, library):
        lib, _ = library
        with open(lib + ".snap", "wb") as fh:
            fh.write(b"garbage")  # would fail loudly if opened
        system = VideoRetrievalSystem.open(lib, SystemConfig(snapshot="off"))
        assert system.snapshot_stats() is None
        system.close()

    def test_read_replica_serves_without_database(self, library):
        """in_memory + snapshot_path + require: rankings without SQL."""
        lib, query = library
        replica = VideoRetrievalSystem.in_memory(
            SystemConfig(snapshot="require", snapshot_path=lib + ".snap")
        )
        rebuilt = VideoRetrievalSystem.open(lib, SystemConfig(snapshot="off"))
        assert replica.snapshots.served_from == "mmap"
        assert replica.n_key_frames() == rebuilt.n_key_frames()
        assert _ranking(replica, query) == _ranking(rebuilt, query)
        replica.close()
        rebuilt.close()


class TestAnnState:
    def test_ivf_rides_in_snapshot_without_retrain(self, library):
        lib, query = library
        config = SystemConfig(ann=True, ann_cells=3, query_cache_size=0)
        trainer = VideoRetrievalSystem.open(lib, config)
        trainer.search(query, top_k=5, use_index=False)  # trains the IVF
        assert trainer.ann_stats()["builds"] >= 1
        trainer.admin.checkpoint()  # snapshot now carries the trained state
        expected = _ranking(trainer, query, use_index=False)
        trainer.close()

        served = VideoRetrievalSystem.open(lib, config)
        assert served.snapshots.served_from == "mmap"
        assert _ranking(served, query, use_index=False) == expected
        assert served.ann_stats()["builds"] == 0  # restored, not retrained
        served.close()


class TestWorkerAccess:
    def test_worker_maps_feature_matrix(self, library):
        from repro.core.snapshots import (
            init_worker_snapshot,
            worker_feature_matrix,
            worker_snapshot_path,
        )

        lib, _ = library
        system = VideoRetrievalSystem.open(lib, SystemConfig())
        try:
            init_worker_snapshot(lib + ".snap")
            assert worker_snapshot_path() == lib + ".snap"
            name = system.config.features[0]
            mapped = worker_feature_matrix(name)
            assert mapped is not None
            assert mapped.tobytes() == system._store.feature_matrix(name).tobytes()
            with pytest.raises(KeyError):
                worker_feature_matrix("no-such-feature")
        finally:
            init_worker_snapshot(None)
            assert worker_feature_matrix("any") is None
            system.close()

    def test_pool_initializer_installed_on_mmap_open(self, library):
        lib, _ = library
        system = VideoRetrievalSystem.open(lib, SystemConfig())
        assert system.snapshots.served_from == "mmap"
        assert system._pool._initializer is not None
        system.close()


class TestPreparedCacheUnification:
    def test_engines_share_store_prepared_cache(self, library):
        """structure_generation fix: one prepared matrix per store, not
        one per engine (core/search.py used to keep a private dict)."""
        lib, query = library
        system = VideoRetrievalSystem.open(lib, SystemConfig())
        name = system.config.features[0]
        engine = system._engine
        a = engine._prepared_matrix(name)
        assert a is system._store.prepared_matrix(name, engine.extractors[name])
        system.search(query, top_k=3)
        assert engine._prepared_matrix(name) is a  # stable while unmutated
        system.admin.rename_video(1, "zzz")  # generation bump, same structure
        system.admin.add_video(_video(48, "movies"))  # structural change
        assert engine._prepared_matrix(name) is not a
        system.close()
