"""Frame-distance and cut-detection tests."""

import pytest

from repro.imaging.image import Image
from repro.video.shots import cut_indices, frame_distance, frame_distances


def _flat(v):
    return Image.blank(16, 12, v)


class TestFrameDistance:
    def test_identical_zero(self):
        assert frame_distance(_flat(7), _flat(7)) == 0.0

    def test_mean_absolute(self):
        assert frame_distance(_flat(0), _flat(10)) == pytest.approx(10.0)

    def test_symmetric(self):
        a, b = _flat(3), _flat(90)
        assert frame_distance(a, b) == frame_distance(b, a)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            frame_distance(_flat(0), Image.blank(8, 8, 0))


class TestDistances:
    def test_length(self):
        frames = [_flat(i) for i in range(5)]
        assert len(frame_distances(frames)) == 4

    def test_empty_and_single(self):
        assert frame_distances([]) == []
        assert frame_distances([_flat(0)]) == []


class TestCuts:
    def test_detects_single_cut(self):
        frames = [_flat(10)] * 4 + [_flat(200)] * 4
        assert cut_indices(frames) == [4]

    def test_no_cut_in_smooth_sequence(self):
        frames = [_flat(50 + i) for i in range(8)]
        assert cut_indices(frames) == []

    def test_short_sequences(self):
        assert cut_indices([]) == []
        assert cut_indices([_flat(0)]) == []

    def test_floor_suppresses_noise_cuts(self):
        # all distances tiny: even 3x the median stays below the floor
        frames = [_flat(100 + (i % 2)) for i in range(10)]
        assert cut_indices(frames, floor=8.0) == []
