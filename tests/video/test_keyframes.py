"""§4.1 key-frame extraction tests."""

import numpy as np
import pytest

from repro.imaging.image import Image
from repro.video.keyframes import (
    KeyFrameExtractor,
    extract_key_frames,
    frame_signature,
    frame_signature_distance,
)


def _flat(color):
    return Image.blank(32, 24, color)


class TestSignature:
    def test_shape(self, gradient_image):
        sig = frame_signature(gradient_image)
        assert sig.shape == (25, 3)

    def test_flat_image_signature_constant(self):
        sig = frame_signature(_flat((10, 20, 30)))
        assert np.allclose(sig, [10, 20, 30])

    def test_signature_scale_invariant(self, gradient_image):
        from repro.imaging.resize import resize

        small = frame_signature(gradient_image)
        big = frame_signature(resize(gradient_image, 128, 96))
        assert np.abs(small - big).max() < 12  # same content, same signature

    def test_distance_zero_for_identical(self, gradient_image):
        assert frame_signature_distance(gradient_image, gradient_image) == 0.0

    def test_distance_symmetric(self, gradient_image, noise_image):
        d1 = frame_signature_distance(gradient_image, noise_image)
        d2 = frame_signature_distance(noise_image, gradient_image)
        assert d1 == pytest.approx(d2)

    def test_distance_scales_with_difference(self):
        base = _flat((0, 0, 0))
        near = _flat((10, 10, 10))
        far = _flat((200, 200, 200))
        assert frame_signature_distance(base, near) < frame_signature_distance(base, far)

    def test_flat_color_distance_value(self):
        # 25 points, each Euclidean distance 30 -> total 750
        d = frame_signature_distance(_flat((0, 0, 0)), _flat((30, 0, 0)))
        assert d == pytest.approx(750.0)


class TestExtractor:
    def test_empty_input(self):
        assert extract_key_frames([]) == []

    def test_single_frame(self):
        frames = [_flat((5, 5, 5))]
        kept = extract_key_frames(frames)
        assert [i for i, _f in kept] == [0]

    def test_identical_frames_collapse_to_one(self):
        frames = [_flat((50, 60, 70))] * 8
        kept = extract_key_frames(frames)
        assert [i for i, _f in kept] == [0]

    def test_two_distinct_shots(self):
        # jump of 200 gray levels -> signature distance 25*200*sqrt(3) >> 800
        frames = [_flat((10, 10, 10))] * 4 + [_flat((210, 210, 210))] * 4
        kept = extract_key_frames(frames)
        assert [i for i, _f in kept] == [0, 4]

    def test_first_frame_always_kept(self):
        frames = [_flat((i, i, i)) for i in (0, 255, 0, 255)]
        kept = extract_key_frames(frames)
        assert kept[0][0] == 0

    def test_threshold_zero_keeps_everything_distinct(self):
        frames = [_flat((i * 20, 0, 0)) for i in range(5)]
        kept = extract_key_frames(frames, threshold=0.0)
        assert [i for i, _f in kept] == [0, 1, 2, 3, 4]

    def test_huge_threshold_keeps_only_first(self):
        frames = [_flat((i * 50, 0, 0)) for i in range(5)]
        kept = extract_key_frames(frames, threshold=1e9)
        assert [i for i, _f in kept] == [0]

    def test_paper_threshold_separates_shots(self, sample_video):
        kept = extract_key_frames(list(sample_video.frames), base_size=150)
        indices = [i for i, _f in kept]
        assert 0 in indices
        # a key frame at (or right after) the shot boundary
        assert any(sample_video.spec.frames_per_shot <= i for i in indices)

    def test_run_semantics_distance_from_kept_frame(self):
        """Frames drift gradually; each kept frame anchors its run, so a
        slow drift past the threshold still produces a new key frame."""
        frames = [_flat((i * 12, i * 12, i * 12)) for i in range(12)]
        kept = extract_key_frames(frames)  # 25*12*sqrt(3) ~ 520 per step
        indices = [i for i, _f in kept]
        assert len(indices) >= 2  # cumulative drift crosses 800
        assert indices[0] == 0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            KeyFrameExtractor(threshold=-1)
        with pytest.raises(ValueError):
            KeyFrameExtractor(grid=0)

    def test_returned_frames_are_the_inputs(self):
        frames = [_flat((0, 0, 0)), _flat((255, 255, 255))]
        kept = extract_key_frames(frames)
        assert kept[0][1] is frames[0]
        assert kept[1][1] is frames[1]
