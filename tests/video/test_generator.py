"""Synthetic corpus generator tests."""

import numpy as np
import pytest

from repro.video.generator import (
    CATEGORIES,
    SyntheticVideo,
    VideoSpec,
    generate_video,
    make_corpus,
)
from repro.video.shots import cut_indices, frame_distances


class TestVideoSpec:
    def test_rejects_unknown_category(self):
        with pytest.raises(ValueError):
            VideoSpec(category="documentary", seed=1)

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            VideoSpec(category="sports", seed=1, n_shots=0)
        with pytest.raises(ValueError):
            VideoSpec(category="sports", seed=1, frames_per_shot=0)

    def test_rejects_tiny_frames(self):
        with pytest.raises(ValueError):
            VideoSpec(category="sports", seed=1, width=4)


class TestGenerateVideo:
    @pytest.mark.parametrize("category", CATEGORIES)
    def test_every_category_renders(self, category):
        v = generate_video(
            VideoSpec(category=category, seed=3, n_shots=1, frames_per_shot=2)
        )
        assert v.n_frames == 2
        assert v.frames[0].shape == (96, 128, 3)
        assert v.category == category

    def test_deterministic(self):
        spec = VideoSpec(category="news", seed=5, n_shots=2, frames_per_shot=3)
        a = generate_video(spec)
        b = generate_video(spec)
        assert a.frames == b.frames

    def test_different_seeds_differ(self):
        a = generate_video(VideoSpec(category="news", seed=1, n_shots=1, frames_per_shot=1))
        b = generate_video(VideoSpec(category="news", seed=2, n_shots=1, frames_per_shot=1))
        assert a.frames[0] != b.frames[0]

    def test_custom_dimensions(self):
        v = generate_video(
            VideoSpec(category="movies", seed=1, width=64, height=48, n_shots=1, frames_per_shot=1)
        )
        assert v.frames[0].shape == (48, 64, 3)

    def test_name_default_and_override(self):
        spec = VideoSpec(category="cartoon", seed=9, n_shots=1, frames_per_shot=1)
        assert generate_video(spec).name == "cartoon_00009"
        assert generate_video(spec, name="custom").name == "custom"

    def test_shot_boundaries_property(self):
        v = generate_video(VideoSpec(category="sports", seed=2, n_shots=3, frames_per_shot=4))
        assert v.shot_boundaries == [4, 8]

    def test_shots_produce_detectable_cuts(self):
        v = generate_video(
            VideoSpec(category="cartoon", seed=8, n_shots=3, frames_per_shot=6)
        )
        cuts = cut_indices(v.frames)
        assert set(v.shot_boundaries) <= set(cuts)

    def test_intra_shot_motion_smaller_than_cuts(self):
        v = generate_video(
            VideoSpec(category="sports", seed=4, n_shots=2, frames_per_shot=6)
        )
        dists = frame_distances(v.frames)
        cut = dists[5]  # boundary between shot 0 and 1
        intra = [d for i, d in enumerate(dists) if i != 5]
        assert cut > 2 * max(intra)


class TestMakeCorpus:
    def test_counts_and_categories(self):
        corpus = make_corpus(videos_per_category=2, seed=1, n_shots=1, frames_per_shot=2)
        assert len(corpus) == 2 * len(CATEGORIES)
        by_cat = {}
        for v in corpus:
            by_cat.setdefault(v.category, []).append(v)
        assert set(by_cat) == set(CATEGORIES)
        assert all(len(vs) == 2 for vs in by_cat.values())

    def test_unique_names(self):
        corpus = make_corpus(videos_per_category=3, seed=1, n_shots=1, frames_per_shot=1)
        names = [v.name for v in corpus]
        assert len(names) == len(set(names))

    def test_deterministic(self):
        a = make_corpus(videos_per_category=1, seed=6, n_shots=1, frames_per_shot=2)
        b = make_corpus(videos_per_category=1, seed=6, n_shots=1, frames_per_shot=2)
        assert all(x.frames == y.frames for x, y in zip(a, b))

    def test_rejects_zero_videos(self):
        with pytest.raises(ValueError):
            make_corpus(videos_per_category=0)

    def test_spec_overrides_forwarded(self):
        corpus = make_corpus(videos_per_category=1, seed=1, n_shots=1,
                             frames_per_shot=2, width=64, height=48)
        assert corpus[0].frames[0].shape == (48, 64, 3)


class TestCategorySeparation:
    def test_same_category_closer_than_cross_category(self):
        """The corpus's core property: intra-category frame distances are
        smaller on average than inter-category ones (else retrieval by
        low-level features could not work at all)."""
        from repro.video.keyframes import frame_signature_distance

        corpus = make_corpus(videos_per_category=2, seed=13, n_shots=1, frames_per_shot=1)
        frames = {(v.category, v.name): v.frames[0] for v in corpus}
        intra, inter = [], []
        items = list(frames.items())
        for i, ((cat_a, _na), fa) in enumerate(items):
            for (cat_b, _nb), fb in items[i + 1:]:
                d = frame_signature_distance(fa, fb, base_size=64)
                (intra if cat_a == cat_b else inter).append(d)
        assert np.mean(intra) < np.mean(inter)
