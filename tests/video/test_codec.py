"""RVF container format tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.imaging.image import Image
from repro.video.codec import (
    RvfError,
    RvfReader,
    RvfWriter,
    encode_rvf_bytes,
    read_rvf,
    rle_decode,
    rle_encode,
    write_rvf,
)


def _frames(seed, n, h=12, w=16, gray=False):
    gen = np.random.default_rng(seed)
    shape = (h, w) if gray else (h, w, 3)
    return [Image(gen.integers(0, 256, shape, dtype=np.uint8)) for _ in range(n)]


class TestRle:
    def test_empty(self):
        assert rle_encode(b"") == b""
        assert rle_decode(b"", 0) == b""

    def test_simple_runs(self):
        data = b"\x05" * 300 + b"\x07" * 2
        encoded = rle_encode(data)
        assert rle_decode(encoded, len(data)) == data
        # 300 = 255 + 45 -> two pairs, plus one pair for the 7s
        assert len(encoded) == 6

    def test_alternating_worst_case(self):
        data = bytes(range(256)) * 2
        encoded = rle_encode(data)
        assert len(encoded) == 2 * len(data)
        assert rle_decode(encoded, len(data)) == data

    def test_decode_length_mismatch(self):
        with pytest.raises(RvfError):
            rle_decode(rle_encode(b"abc"), 5)

    def test_decode_odd_length(self):
        with pytest.raises(RvfError):
            rle_decode(b"\x01\x02\x03", 1)

    @settings(max_examples=50, deadline=None)
    @given(st.binary(min_size=0, max_size=2000))
    def test_roundtrip_property(self, data):
        assert rle_decode(rle_encode(data), len(data)) == data


class TestWriterReader:
    def test_roundtrip_rgb(self):
        frames = _frames(0, 5)
        reader = RvfReader(encode_rvf_bytes(frames))
        assert len(reader) == 5
        assert list(reader) == frames
        assert reader.width == 16 and reader.height == 12 and reader.channels == 3

    def test_roundtrip_gray(self):
        frames = _frames(1, 3, gray=True)
        reader = RvfReader(encode_rvf_bytes(frames))
        assert reader.channels == 1
        assert list(reader) == frames

    def test_random_access_and_negative_index(self):
        frames = _frames(2, 6)
        reader = RvfReader(encode_rvf_bytes(frames))
        assert reader[3] == frames[3]
        assert reader[-1] == frames[-1]
        assert reader[1:4] == frames[1:4]

    def test_index_out_of_range(self):
        reader = RvfReader(encode_rvf_bytes(_frames(3, 2)))
        with pytest.raises(IndexError):
            reader[5]

    def test_empty_stream_rejected(self):
        with pytest.raises(RvfError):
            RvfWriter().to_bytes()

    def test_shape_mismatch_rejected(self):
        w = RvfWriter()
        w.append(Image.blank(8, 8, 0))
        with pytest.raises(RvfError):
            w.append(Image.blank(9, 8, 0))

    def test_non_image_rejected(self):
        with pytest.raises(TypeError):
            RvfWriter().append(np.zeros((4, 4), dtype=np.uint8))

    def test_fps_metadata(self):
        w = RvfWriter(fps=30)
        w.append(Image.blank(4, 4, 0))
        assert RvfReader(w.to_bytes()).fps == 30

    def test_unknown_codec_rejected(self):
        with pytest.raises(ValueError):
            RvfWriter(codec="h264")


class TestCodecSelection:
    def test_auto_picks_rle_for_flat_frames(self):
        frames = [Image.blank(32, 32, (i, i, i)) for i in range(4)]
        auto = encode_rvf_bytes(frames, codec="auto")
        raw = encode_rvf_bytes(frames, codec="raw")
        assert len(auto) < len(raw)

    def test_auto_picks_raw_for_noise(self):
        frames = _frames(4, 3, h=20, w=20)
        auto = encode_rvf_bytes(frames, codec="auto")
        rle = encode_rvf_bytes(frames, codec="rle")
        assert len(auto) < len(rle)

    def test_forced_rle_roundtrips_noise(self):
        frames = _frames(5, 2)
        assert list(RvfReader(encode_rvf_bytes(frames, codec="rle"))) == frames


class TestCorruption:
    def test_bad_magic(self):
        with pytest.raises(RvfError):
            RvfReader(b"XXXX" + b"\x00" * 64)

    def test_short_data(self):
        with pytest.raises(RvfError):
            RvfReader(b"RV")

    def test_truncated_frame_table(self):
        data = encode_rvf_bytes(_frames(6, 4))
        with pytest.raises(RvfError):
            RvfReader(data[:40])

    def test_truncated_frame_data(self):
        data = encode_rvf_bytes(_frames(7, 4))
        with pytest.raises(RvfError):
            RvfReader(data[:-10])


class TestFileIo:
    def test_write_and_read_file(self, tmp_path):
        frames = _frames(8, 4)
        path = tmp_path / "clip.rvf"
        write_rvf(frames, path)
        assert read_rvf(path) == frames
