"""Motion descriptor tests (extension)."""

import numpy as np
import pytest

from repro.imaging.draw import Canvas
from repro.imaging.image import Image
from repro.video.motion import (
    MOTION_DIMS,
    block_motion_vectors,
    motion_activity,
    motion_energy,
)


def _moving_square_frames(n=6, step=3, size=64):
    frames = []
    for i in range(n):
        c = Canvas(size, size, background=(20, 20, 20))
        x = 8 + i * step
        c.rect(x, 24, x + 16, 40, (220, 220, 220))
        frames.append(c.to_image())
    return frames


class TestMotionEnergy:
    def test_static_clip_zero(self):
        frames = [Image.blank(32, 32, (50, 50, 50))] * 4
        assert motion_energy(frames) == [0.0, 0.0, 0.0]

    def test_length(self):
        frames = _moving_square_frames(5)
        assert len(motion_energy(frames)) == 4

    def test_faster_motion_higher_energy(self):
        slow = motion_energy(_moving_square_frames(4, step=1))
        fast = motion_energy(_moving_square_frames(4, step=6))
        assert np.mean(fast) > np.mean(slow)


class TestBlockMatching:
    def test_static_frames_zero_vectors(self):
        a = Image.blank(48, 48, (90, 90, 90))
        vectors = block_motion_vectors(a, a)
        assert np.all(vectors == 0)

    def test_rightward_shift_detected(self):
        frames = _moving_square_frames(2, step=3)
        vectors = block_motion_vectors(frames[0], frames[1], block=16, radius=4)
        moving = vectors[(vectors[:, 0] != 0) | (vectors[:, 1] != 0)]
        assert moving.size > 0
        # the dominant horizontal displacement matches the step
        assert np.median(moving[:, 0]) == pytest.approx(3, abs=1)
        assert np.all(np.abs(moving[:, 1]) <= 1)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            block_motion_vectors(Image.blank(32, 32, 0), Image.blank(16, 16, 0))


class TestMotionActivity:
    def test_dims(self):
        desc = motion_activity(_moving_square_frames(5))
        assert desc.shape == (MOTION_DIMS,)

    def test_static_clip(self):
        frames = [Image.blank(48, 48, (30, 30, 30))] * 4
        desc = motion_activity(frames)
        assert np.all(desc == 0)

    def test_direction_histogram_normalized(self):
        desc = motion_activity(_moving_square_frames(6, step=4))
        hist = desc[4:]
        assert hist.sum() == pytest.approx(1.0) or hist.sum() == 0.0

    def test_high_motion_fraction(self):
        fast = motion_activity(_moving_square_frames(5, step=8), high_motion_threshold=1.0)
        assert fast[3] == 1.0  # every transition exceeds the low threshold

    def test_requires_two_frames(self):
        with pytest.raises(ValueError):
            motion_activity([Image.blank(16, 16, 0)])

    def test_discriminates_static_from_dynamic_categories(self):
        """Generator sanity: sports clips carry more motion than e-learning."""
        from repro.video.generator import VideoSpec, generate_video

        sports = generate_video(
            VideoSpec(category="sports", seed=8, n_shots=1, frames_per_shot=6, noise_sigma=0.0)
        )
        slides = generate_video(
            VideoSpec(category="elearning", seed=8, n_shots=1, frames_per_shot=6, noise_sigma=0.0)
        )
        e_sports = np.mean(motion_energy(list(sports.frames)))
        e_slides = np.mean(motion_energy(list(slides.frames)))
        assert e_sports > e_slides
