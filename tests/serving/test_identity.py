"""Batched rankings are byte-identical to serial execution.

The central serving invariant: ``query_batch`` never changes a single
bit of any ranking -- batching buys amortised overhead (and one scatter
per shard when sharded), not approximate answers.  Hypothesis drives
mixed frame/vector batches with varying top_k, feature subsets, and
candidate subsets over the session corpus; every outcome must equal the
serial result exactly (frame ids, fused distances, and raw per-feature
distances).  One test runs the comparison through the real MicroBatcher
on an event loop, one through a 3-shard scatter-gather engine.
"""

from __future__ import annotations

import asyncio
import tempfile

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.search import QueryRequest, _extract_query_features
from repro.serving import MicroBatcher
from repro.sharding import ShardedSearchEngine, read_manifest, split_store

_FEATURES = ["sch", "glcm", "gabor"]
_CACHE: dict = {}


def _vectors(system, names):
    key = tuple(names)
    if key not in _CACHE:
        _CACHE[key] = _extract_query_features(
            system.any_key_frame(), extractors=system.engine.extractors, names=list(names)
        )
    return _CACHE[key]


def _key(results):
    return [(h.frame_id, h.distance, sorted(h.per_feature.items())) for h in results]


def _draw_requests(system, rng, n_requests):
    """Mixed frame/vector requests over the session corpus."""
    ids = np.asarray(system.feature_store.frame_ids())
    requests, serial = [], []
    for i in range(n_requests):
        top_k = int(rng.integers(1, 30))
        names = list(rng.permutation(_FEATURES)[: int(rng.integers(1, 4))])
        if i % 2 == 0:
            image = system.any_key_frame()
            requests.append(QueryRequest(image=image, features=names, top_k=top_k))
            serial.append(lambda im=image, ns=names, k=top_k: system.engine.query_frame(
                im, features=ns, top_k=k
            ))
        else:
            subset = [int(f) for f in rng.permutation(ids)[: max(1, ids.size // 2)]]
            vectors = _vectors(system, sorted(names))
            requests.append(
                QueryRequest(query_vectors=vectors, top_k=top_k, candidate_ids=subset)
            )
            serial.append(
                lambda v=vectors, k=top_k, s=subset:
                system.engine.query_with_vectors(v, top_k=k, candidate_ids=s)
            )
    return requests, serial


@settings(max_examples=8, deadline=None)
@given(
    n_requests=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_query_batch_matches_serial_byte_for_byte(ingested_system, n_requests, seed):
    rng = np.random.default_rng(seed)
    requests, serial = _draw_requests(ingested_system, rng, n_requests)
    batched = ingested_system.engine.query_batch(requests)
    for outcome, make_serial in zip(batched, serial):
        reference = make_serial()
        assert not isinstance(outcome, BaseException)
        assert _key(outcome) == _key(reference)
        assert outcome.n_candidates == reference.n_candidates


@settings(max_examples=4, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_sharded_query_batch_matches_serial(ingested_system, seed):
    rng = np.random.default_rng(seed)
    store = ingested_system.feature_store
    ids = np.asarray(store.frame_ids())
    vectors = _vectors(ingested_system, ["glcm", "sch"])
    requests = []
    for _ in range(4):
        subset = [int(f) for f in rng.permutation(ids)[: max(1, ids.size // 2)]]
        requests.append(
            QueryRequest(query_vectors=vectors, top_k=len(subset), candidate_ids=subset)
        )
    with tempfile.TemporaryDirectory() as out:
        split_store(store, out, 3)
        _, paths = read_manifest(out)
        engine = ShardedSearchEngine(ingested_system.config, paths)
        try:
            batched = engine.query_batch(requests)
            serial = [
                engine.query_with_vectors(
                    r.query_vectors, top_k=r.top_k, candidate_ids=r.candidate_ids
                )
                for r in requests
            ]
        finally:
            engine.close()
    for outcome, reference in zip(batched, serial):
        assert not isinstance(outcome, BaseException)
        assert _key(outcome) == _key(reference)


def test_micro_batched_concurrent_requests_match_serial(ingested_system):
    """End to end through the real batcher: one event loop, 8 concurrent
    submissions coalescing into shared batches, all byte-identical."""
    rng = np.random.default_rng(7)
    requests, serial = _draw_requests(ingested_system, rng, 8)
    batcher = MicroBatcher(
        ingested_system.engine.query_batch, window_ms=20.0, batch_max=4
    )

    async def run():
        await batcher.start()
        try:
            return await asyncio.gather(
                *(batcher.submit(r) for r in requests), return_exceptions=True
            )
        finally:
            await batcher.stop()

    outcomes = asyncio.run(run())
    for outcome, make_serial in zip(outcomes, serial):
        assert not isinstance(outcome, BaseException)
        assert _key(outcome) == _key(make_serial())
