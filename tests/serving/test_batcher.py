"""MicroBatcher edge cases, engine-free.

A stub ``execute`` stands in for ``engine.query_batch`` so these tests
pin the queueing mechanics alone: window expiry with a single request,
``batch_max`` overflow splitting, cancelled and deadline-expired
requests leaving the batch before dispatch, and per-request exception
isolation (one poisoned query never fails its batchmates).
"""

from __future__ import annotations

import asyncio
from types import SimpleNamespace

import pytest

from repro.resilience import Deadline, DeadlineExceeded
from repro.serving import MicroBatcher


def _request(deadline=None):
    """The only attribute the batcher reads off a request is ``deadline``."""
    return SimpleNamespace(deadline=deadline)


class _Recorder:
    """An ``execute`` stub recording batch sizes and echoing requests."""

    def __init__(self, outcome=None):
        self.batches = []
        self._outcome = outcome

    def __call__(self, requests):
        self.batches.append(len(requests))
        if self._outcome is not None:
            return self._outcome(requests)
        return [("ok", id(r)) for r in requests]


async def _with_batcher(execute, window_ms, batch_max, body):
    batcher = MicroBatcher(execute, window_ms=window_ms, batch_max=batch_max)
    await batcher.start()
    try:
        return await body(batcher)
    finally:
        await batcher.stop()


def test_single_request_dispatches_after_window_expiry():
    recorder = _Recorder()

    async def body(batcher):
        return await batcher.submit(_request())

    result = asyncio.run(_with_batcher(recorder, 20.0, 8, body))
    assert result[0] == "ok"
    assert recorder.batches == [1]


def test_batch_max_overflow_splits_into_multiple_batches():
    recorder = _Recorder()

    async def body(batcher):
        return await asyncio.gather(*(batcher.submit(_request()) for _ in range(10)))

    results = asyncio.run(_with_batcher(recorder, 50.0, 4, body))
    assert len(results) == 10 and all(r[0] == "ok" for r in results)
    assert sum(recorder.batches) == 10
    assert max(recorder.batches) <= 4
    assert len(recorder.batches) >= 3


def test_cancelled_request_leaves_the_batch():
    recorder = _Recorder()

    async def body(batcher):
        doomed = asyncio.ensure_future(batcher.submit(_request()))
        survivor = asyncio.ensure_future(batcher.submit(_request()))
        await asyncio.sleep(0)  # both queued, window still open
        doomed.cancel()
        result = await survivor
        with pytest.raises(asyncio.CancelledError):
            await doomed
        return result

    result = asyncio.run(_with_batcher(recorder, 100.0, 8, body))
    assert result[0] == "ok"
    assert recorder.batches == [1]


def test_expired_deadline_fails_in_queue_without_dispatch():
    recorder = _Recorder()

    async def body(batcher):
        expired = Deadline(1e-9)
        await asyncio.sleep(0.001)  # guarantee the budget is burnt
        doomed = asyncio.ensure_future(batcher.submit(_request(deadline=expired)))
        survivor = asyncio.ensure_future(batcher.submit(_request()))
        result = await survivor
        with pytest.raises(DeadlineExceeded) as err:
            await doomed
        assert err.value.stage == "serving.queue"
        return result

    result = asyncio.run(_with_batcher(recorder, 100.0, 8, body))
    assert result[0] == "ok"
    assert recorder.batches == [1]  # the expired request never reached execute


def test_poisoned_request_does_not_fail_batchmates():
    def poison_first(requests):
        return [ValueError("poisoned")] + [("ok", i) for i in range(1, len(requests))]

    recorder = _Recorder(outcome=poison_first)

    async def body(batcher):
        futures = [asyncio.ensure_future(batcher.submit(_request())) for _ in range(4)]
        return await asyncio.gather(*futures, return_exceptions=True)

    results = asyncio.run(_with_batcher(recorder, 100.0, 8, body))
    assert recorder.batches == [4]
    assert isinstance(results[0], ValueError)
    assert [r[0] for r in results[1:]] == ["ok", "ok", "ok"]


def test_engine_level_failure_fails_the_whole_batch():
    def explode(requests):
        raise RuntimeError("store is gone")

    recorder = _Recorder(outcome=explode)

    async def body(batcher):
        futures = [asyncio.ensure_future(batcher.submit(_request())) for _ in range(3)]
        return await asyncio.gather(*futures, return_exceptions=True)

    results = asyncio.run(_with_batcher(recorder, 50.0, 8, body))
    assert all(isinstance(r, RuntimeError) for r in results)


def test_drain_only_mode_batches_whatever_is_queued():
    recorder = _Recorder()

    async def body(batcher):
        return await asyncio.gather(*(batcher.submit(_request()) for _ in range(5)))

    results = asyncio.run(_with_batcher(recorder, 0.0, 8, body))
    assert len(results) == 5
    assert sum(recorder.batches) == 5


def test_stop_fails_requests_queued_behind_shutdown():
    async def body():
        batcher = MicroBatcher(lambda requests: [("ok", 0)], window_ms=0.0, batch_max=1)
        await batcher.start()
        # The shutdown sentinel enqueues first; the request lands behind it
        # and must fail loudly instead of hanging its client forever.
        stop_task = asyncio.ensure_future(batcher.stop())
        doomed = asyncio.ensure_future(batcher.submit(_request()))
        await stop_task
        with pytest.raises(RuntimeError, match="batcher stopped"):
            await doomed

    asyncio.run(body())
