"""Serving fixtures: systems sized for batching tests plus an HTTP helper."""

from __future__ import annotations

import http.client
import json

import pytest

from repro.core.config import SystemConfig
from repro.core.system import VideoRetrievalSystem
from repro.serving import make_async_server


def build_system(small_corpus, config: SystemConfig, n_videos: int = 4):
    system = VideoRetrievalSystem.in_memory(config)
    admin = system.login_admin()
    for video in small_corpus[:n_videos]:
        admin.add_video(video)
    return system


@pytest.fixture(scope="module")
def serving_system(small_corpus):
    """A module-shared system behind no server (engine-level tests)."""
    system = build_system(small_corpus, SystemConfig(workers=1))
    yield system
    system.close()


class ServerHarness:
    """One running asyncio server plus blunt HTTP client helpers."""

    def __init__(self, system):
        self.system = system
        self.server = make_async_server(system)
        base = self.server.start_in_thread()
        self.netloc = base.split("//", 1)[1]

    def connection(self, timeout: float = 30.0) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.netloc, timeout=timeout)

    def request(self, method: str, path: str, body: bytes = b"", conn=None):
        """Returns ``(status, headers-dict, decoded-json-or-bytes)``."""
        own = conn is None
        conn = conn or self.connection()
        try:
            conn.request(method, path, body=body)
            response = conn.getresponse()
            payload = response.read()
            headers = {k.lower(): v for k, v in response.getheaders()}
            if headers.get("content-type", "").startswith("application/json"):
                payload = json.loads(payload)
            return response.status, headers, payload
        finally:
            if own:
                conn.close()

    def metric_value(self, name: str) -> float:
        """Sum of a family's samples (counter value or histogram count)."""
        _, _, payload = self.request("GET", "/metrics?format=json")
        family = payload.get(name)
        if not family:
            return 0.0
        return sum(s.get("value", s.get("count", 0)) for s in family["samples"])

    def close(self):
        self.server.stop()
        self.system.close()


@pytest.fixture(scope="module")
def harness(small_corpus):
    """A module-shared running server over a default-config system."""
    h = ServerHarness(build_system(small_corpus, SystemConfig(workers=1)))
    yield h
    h.close()


@pytest.fixture()
def make_harness(small_corpus):
    """Factory for servers with bespoke configs; closes them on teardown."""
    created = []

    def factory(config: SystemConfig, n_videos: int = 4) -> ServerHarness:
        h = ServerHarness(build_system(small_corpus, config, n_videos))
        created.append(h)
        return h

    yield factory
    for h in created:
        h.close()
