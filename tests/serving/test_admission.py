"""AdmissionController: the degrade-before-shed ladder, engine-free."""

from __future__ import annotations

import pytest

from repro.core.config import SystemConfig
from repro.serving import AdmissionController, OverloadedError


def _controller(**overrides):
    defaults = dict(
        serving_queue_limit=8,
        serving_degrade_depth=4,
        serving_degrade_features=2,
        batch_max=4,
        batch_window_ms=10.0,
    )
    defaults.update(overrides)
    return AdmissionController(SystemConfig(**defaults))


def test_below_degrade_depth_admits_untouched():
    assert _controller().admit(0) is None
    assert _controller().admit(3) is None


def test_between_degrade_and_limit_degrades():
    config = SystemConfig(
        serving_queue_limit=8,
        serving_degrade_depth=4,
        serving_degrade_features=2,
        ann=True,
        ann_nprobe=6,
    )
    decision = AdmissionController(config).admit(5)
    assert decision is not None
    assert decision.features == tuple(config.features[:2])
    assert decision.nprobe == 3  # ann_nprobe halved


def test_degrade_without_ann_leaves_nprobe_alone():
    decision = _controller(ann=False).admit(6)
    assert decision is not None
    assert decision.nprobe is None


def test_degrade_depth_zero_disables_the_rung():
    controller = _controller(serving_degrade_depth=0)
    assert controller.admit(7) is None  # admitted untouched right up to the limit


def test_at_limit_sheds_with_retry_after():
    controller = _controller()
    with pytest.raises(OverloadedError) as err:
        controller.admit(8)
    assert err.value.retry_after >= 1
    assert "queue full" in str(err.value)


def test_retry_after_grows_with_backlog():
    controller = _controller(batch_window_ms=500.0, batch_max=1)
    assert controller.retry_after(1) <= controller.retry_after(50)
    assert controller.retry_after(50) >= 25  # 50 windows of 0.5s


def test_shed_and_degrade_are_counted(ingested_system):
    obs = ingested_system.obs
    config = SystemConfig(serving_queue_limit=2, serving_degrade_depth=1)
    controller = AdmissionController(config, obs=obs)
    before = obs.registry.render_json()
    controller.admit(0)
    controller.admit(1)  # degraded
    with pytest.raises(OverloadedError):
        controller.admit(2)  # shed
    after = obs.registry.render_json()

    def total(state, name):
        family = state.get(name) or {"samples": []}
        return sum(s.get("value", 0) for s in family["samples"])

    assert total(after, "repro_serving_shed_total") - total(before, "repro_serving_shed_total") == 1
    assert (
        total(after, "repro_serving_degraded_total")
        - total(before, "repro_serving_degraded_total")
        == 1
    )
    assert (
        total(after, "repro_serving_admitted_total")
        - total(before, "repro_serving_admitted_total")
        == 2
    )
