"""The asyncio front-end over real sockets: happy path, blocking-route
parity, overload shedding (429 + Retry-After, counters matching), and
deadline overruns mapping to 504."""

from __future__ import annotations

import json
import threading

from repro.core.config import SystemConfig


def _search_body(harness):
    return harness.system.any_key_frame().encode("ppm")


def _burst(harness, n, path, body):
    results = [None] * n

    def worker(i):
        results[i] = harness.request("POST", path, body=body)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return results


def test_search_matches_blocking_api(harness):
    body = _search_body(harness)
    status, _, payload = harness.request("POST", "/search?top_k=5", body=body)
    assert status == 200
    blocking = harness.server.api.handle("POST", "/search", body=body, query={"top_k": "5"})
    reference = json.loads(blocking[2])
    assert payload["results"] == reference["results"]
    assert payload["n_candidates"] == reference["n_candidates"]


def test_keep_alive_and_cache_interplay(harness):
    body = _search_body(harness)
    conn = harness.connection()
    try:
        status, _, first = harness.request(
            "POST", "/search?top_k=3&explain=1", body=body, conn=conn
        )
        assert status == 200
        status, _, second = harness.request(
            "POST", "/search?top_k=3&explain=1", body=body, conn=conn
        )
        assert status == 200
        assert second["explain"]["cache"] == "hit"
        assert [r["frame_id"] for r in first["results"]] == [
            r["frame_id"] for r in second["results"]
        ]
    finally:
        conn.close()


def test_concurrent_burst_all_succeed_and_batch(harness):
    body = _search_body(harness)
    batches_before = harness.metric_value("repro_serving_batches_total")
    results = _burst(harness, 8, "/search?top_k=4", body)
    assert all(r[0] == 200 for r in results)
    first = results[0][2]["results"]
    assert all(r[2]["results"] == first for r in results)
    assert harness.metric_value("repro_serving_batches_total") > batches_before


def test_blocking_routes_served_by_executor(harness):
    status, _, payload = harness.request("GET", "/videos")
    assert status == 200
    assert len(payload["videos"]) == harness.system.n_videos()
    status, _, _ = harness.request("GET", "/nope")
    assert status == 404


def test_bad_request_maps_to_400(harness):
    status, _, _ = harness.request("POST", "/search", body=b"not an image")
    assert status == 400
    status, _, payload = harness.request("POST", "/search", body=b"")
    assert status == 400
    assert payload["error_type"] in ("api_error", "bad_request")


def test_overload_sheds_429_never_5xx(make_harness):
    """A saturating burst against a tiny queue: every response is 200 or
    429, every 429 carries Retry-After, nothing hangs, and the server's
    shed counter equals the client-observed rejection count."""
    config = SystemConfig(
        workers=1,
        serving_queue_limit=2,
        serving_degrade_depth=0,
        batch_window_ms=150.0,
        batch_max=2,
    )
    harness = make_harness(config, n_videos=2)
    body = harness.system.any_key_frame().encode("ppm")
    results = _burst(harness, 16, "/search?top_k=3", body)
    statuses = [r[0] for r in results]
    assert set(statuses) <= {200, 429}
    assert 200 in statuses
    shed_observed = statuses.count(429)
    assert shed_observed > 0
    for status, headers, payload in results:
        if status == 429:
            assert int(headers["retry-after"]) >= 1
            assert payload["error_type"] == "overloaded"
    assert harness.metric_value("repro_serving_shed_total") == shed_observed


def test_degraded_admission_under_load(make_harness):
    config = SystemConfig(
        workers=1,
        serving_queue_limit=32,
        serving_degrade_depth=1,
        serving_degrade_features=1,
        batch_window_ms=100.0,
        batch_max=4,
    )
    harness = make_harness(config, n_videos=2)
    body = harness.system.any_key_frame().encode("ppm")
    results = _burst(harness, 12, "/search?top_k=3&explain=1", body)
    assert all(r[0] == 200 for r in results)
    degraded = [r for r in results if r[1].get("x-degraded") == "load"]
    assert degraded, "expected at least one load-degraded admission"
    for _, _, payload in degraded:
        assert payload["explain"]["features"] == list(config.features[:1])


def test_queue_wait_burns_request_deadline_to_504(make_harness):
    config = SystemConfig(
        workers=1,
        resilience=True,
        serving_queue_limit=64,
        serving_degrade_depth=0,
        batch_window_ms=120.0,  # the window alone out-waits the budget
        batch_max=8,
    )
    harness = make_harness(config, n_videos=2)
    # Armed after ingest so only serving pays the (tiny) budget.
    harness.system.resilience.request_deadline = 0.02
    body = harness.system.any_key_frame().encode("ppm")
    status, _, payload = harness.request("POST", "/search?top_k=3", body=body)
    assert status == 504
    assert payload["error_type"] == "deadline_exceeded"
    assert "serving.queue" in payload["error"]
