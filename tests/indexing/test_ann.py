"""IVF inverted-file candidate index tests (kmeans, probing, maintenance)."""

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.core.system import VideoRetrievalSystem
from repro.indexing.ann import IVFIndex, kmeans
from repro.video.generator import VideoSpec, generate_video


class TestKMeans:
    def _blobs(self, seed=3, n=60, d=4):
        gen = np.random.default_rng(seed)
        centers = gen.normal(size=(3, d)) * 10
        return np.vstack([c + gen.normal(scale=0.1, size=(n // 3, d)) for c in centers])

    def test_deterministic(self):
        data = self._blobs()
        c1, a1 = kmeans(data, 3, seed=11)
        c2, a2 = kmeans(data, 3, seed=11)
        assert np.array_equal(c1, c2)
        assert np.array_equal(a1, a2)

    def test_recovers_separated_blobs(self):
        data = self._blobs()
        _, assign = kmeans(data, 3)
        # each true blob maps to exactly one cluster label
        for i in range(3):
            assert len(set(assign[i * 20 : (i + 1) * 20].tolist())) == 1

    def test_k_clamped_to_n_points(self):
        data = np.arange(6, dtype=np.float64).reshape(3, 2)
        centroids, assign = kmeans(data, 10)
        assert centroids.shape[0] == 3
        assert sorted(assign.tolist()) == [0, 1, 2]

    def test_duplicate_points_fill_all_clusters(self):
        # only 2 distinct values but k=4: empty-cluster reseeding must not
        # loop or crash, and every point must have a valid assignment
        data = np.repeat(np.array([[0.0], [9.0]]), 5, axis=0)
        centroids, assign = kmeans(data, 4)
        assert centroids.shape[0] == 4
        assert assign.min() >= 0 and assign.max() < 4

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            kmeans(np.empty((0, 3)), 2)


class TestIVFIndexBasics:
    def test_ctor_validation(self, ingested_system):
        store = ingested_system._store
        with pytest.raises(ValueError):
            IVFIndex(store, ["sch"], n_cells=0)
        with pytest.raises(ValueError):
            IVFIndex(store, [])
        with pytest.raises(ValueError):
            IVFIndex(store, ["sch"], rebuild_drift=0.0)
        with pytest.raises(ValueError):
            IVFIndex(store, ["sch"], n_assign=0)

    def test_build_indexes_every_frame(self, ingested_system):
        store = ingested_system._store
        index = IVFIndex(store, list(ingested_system.config.features), n_cells=4)
        index.build()
        assert index.n_indexed() == len(store)
        # multi-assignment files frames into n_assign cells, so the lists
        # hold more memberships than there are frames (when cells > 1)
        assert sum(index.cell_sizes()) >= len(store)

    def test_probe_returns_sorted_subset(self, ingested_system):
        store = ingested_system._store
        names = list(ingested_system.config.features)
        index = IVFIndex(store, names, n_cells=4)
        rec = store.get(store.frame_ids()[0])
        got = index.probe(rec.features, nprobe=1)
        assert got == sorted(got)
        assert set(got) <= set(store.frame_ids())
        # the queried frame's own cell is its nearest: it must be probed
        assert rec.frame_id in got

    def test_probe_all_cells_returns_everything(self, ingested_system):
        store = ingested_system._store
        names = list(ingested_system.config.features)
        index = IVFIndex(store, names, n_cells=4)
        rec = store.get(store.frame_ids()[0])
        assert index.probe(rec.features, nprobe=4) == store.frame_ids()

    def test_probe_missing_feature_falls_back(self, ingested_system):
        store = ingested_system._store
        names = list(ingested_system.config.features)
        index = IVFIndex(store, names, n_cells=4)
        rec = store.get(store.frame_ids()[0])
        partial = {names[0]: rec.features[names[0]]}
        assert index.probe(partial, nprobe=2) is None

    def test_probe_rejects_bad_nprobe(self, ingested_system):
        store = ingested_system._store
        index = IVFIndex(store, ["sch"], n_cells=4)
        rec = store.get(store.frame_ids()[0])
        with pytest.raises(ValueError):
            index.probe(rec.features, nprobe=0)

    def test_deterministic_partition(self, ingested_system):
        store = ingested_system._store
        names = list(ingested_system.config.features)
        a = IVFIndex(store, names, n_cells=4)
        b = IVFIndex(store, names, n_cells=4)
        a.build()
        b.build()
        assert a.cell_sizes() == b.cell_sizes()
        assert a._cells_of == b._cells_of


def _tiny_video(seed, category="news", n_shots=2, frames_per_shot=4):
    return generate_video(
        VideoSpec(
            category=category, seed=seed, n_shots=n_shots, frames_per_shot=frames_per_shot
        )
    )


class TestIncrementalMaintenance:
    @pytest.fixture()
    def system(self):
        system = VideoRetrievalSystem.in_memory(SystemConfig(workers=1))
        admin = system.login_admin()
        for seed in (51, 52):
            admin.add_video(_tiny_video(seed))
        return system

    def test_incremental_add_matches_fresh_rebuild(self, system):
        store = system._store
        names = list(system.config.features)
        index = IVFIndex(store, names, n_cells=3)
        index.build()
        assert index.stats.n_builds == 1

        # 2 new frames against 16 trained ones: below the drift threshold,
        # so the index folds them in incrementally instead of retraining
        system.admin.add_video(
            _tiny_video(53, category="sports", n_shots=1, frames_per_shot=2)
        )
        rec = store.get(store.frame_ids()[0])
        got = index.probe(rec.features, nprobe=3)
        assert index.stats.n_builds == 1
        assert index.stats.n_incremental_adds > 0
        assert index.n_indexed() == len(store)

        fresh = IVFIndex(store, names, n_cells=3)
        fresh.build()
        # probing every cell is exhaustive on both, so they agree exactly
        assert got == fresh.probe(rec.features, nprobe=3)
        assert got == store.frame_ids()

    def test_incremental_remove_matches_fresh_rebuild(self, system):
        store = system._store
        names = list(system.config.features)
        # generous drift threshold so the removal stays incremental
        index = IVFIndex(store, names, n_cells=3, rebuild_drift=0.9)
        index.build()

        victim = store.video_ids()[0]
        gone = {rec.frame_id for rec in store.frames_of_video(victim)}
        system.admin.delete_video(victim)
        rec = store.get(store.frame_ids()[0])
        got = index.probe(rec.features, nprobe=3)
        assert index.stats.n_builds == 1
        assert index.stats.n_incremental_removes > 0
        assert index.n_indexed() == len(store)
        assert not (set(got) & gone)

        fresh = IVFIndex(store, names, n_cells=3)
        fresh.build()
        assert got == fresh.probe(rec.features, nprobe=3)

    def test_drift_triggers_rebuild(self, system):
        store = system._store
        names = list(system.config.features)
        index = IVFIndex(store, names, n_cells=3, rebuild_drift=0.05)
        index.build()
        system.admin.add_video(_tiny_video(54, category="sports"))
        rec = store.get(store.frame_ids()[0])
        index.probe(rec.features, nprobe=1)
        assert index.stats.n_builds == 2
        assert index.stats.n_incremental_adds == 0
        assert index.n_indexed() == len(store)

    def test_empty_store_probe(self):
        system = VideoRetrievalSystem.in_memory(SystemConfig(workers=1))
        index = IVFIndex(system._store, ["sch"], n_cells=4)
        assert index.probe({}, nprobe=2) == []
