"""§4.2 range-finder tests."""

import numpy as np
import pytest

from repro.imaging.image import Image
from repro.indexing.rangefinder import Bucket, RangeFinder, paper_range_finder


def _hist_concentrated(lo, hi, total=10000):
    """All mass uniformly inside [lo, hi]."""
    hist = np.zeros(256)
    hist[lo : hi + 1] = total / (hi - lo + 1)
    return hist


class TestBucket:
    def test_width_and_level(self):
        assert Bucket(0, 255).width == 256
        assert Bucket(0, 255).level == 0
        assert Bucket(128, 255).level == 1
        assert Bucket(64, 127).level == 2
        assert Bucket(32, 63).level == 3

    def test_halves(self):
        left, right = Bucket(0, 255).halves()
        assert left == Bucket(0, 127)
        assert right == Bucket(128, 255)

    def test_validation(self):
        with pytest.raises(ValueError):
            Bucket(-1, 10)
        with pytest.raises(ValueError):
            Bucket(10, 5)
        with pytest.raises(ValueError):
            Bucket(0, 256)

    def test_contains_and_same_path(self):
        root = Bucket(0, 255)
        leaf = Bucket(32, 63)
        sibling = Bucket(0, 31)
        assert root.contains(leaf)
        assert root.on_same_path(leaf) and leaf.on_same_path(root)
        assert not leaf.on_same_path(sibling)

    def test_too_narrow_to_split(self):
        with pytest.raises(ValueError):
            Bucket(5, 5).halves()


class TestRangeFinder:
    def test_dark_image_descends_left(self):
        hist = _hist_concentrated(0, 25)
        b = RangeFinder().bucket_for_histogram(hist)
        assert b == Bucket(0, 31)

    def test_bright_image_descends_right(self):
        hist = _hist_concentrated(230, 255)
        b = RangeFinder().bucket_for_histogram(hist)
        assert b == Bucket(224, 255)

    def test_spread_image_stays_at_root(self):
        hist = np.full(256, 100.0)  # uniform: neither half exceeds 55%
        b = RangeFinder().bucket_for_histogram(hist)
        assert b == Bucket(0, 255)

    def test_mid_concentration_stops_mid_level(self):
        # mass spans [0, 127] evenly: descends once, then stops
        hist = _hist_concentrated(0, 127)
        b = RangeFinder().bucket_for_histogram(hist)
        assert b == Bucket(0, 127)

    def test_max_level_bounds_descent(self):
        hist = _hist_concentrated(0, 3)
        b = RangeFinder(max_level=2).bucket_for_histogram(hist)
        assert b == Bucket(0, 63)

    def test_deeper_descent_allowed(self):
        hist = _hist_concentrated(0, 3)
        b = RangeFinder(max_level=6).bucket_for_histogram(hist)
        assert b.width == 4

    def test_image_wrapper_uses_gray(self):
        img = Image.blank(10, 10, (255, 255, 255))  # gray 255
        b = RangeFinder().bucket_for_image(img)
        assert b == Bucket(224, 255)

    def test_validation(self):
        with pytest.raises(ValueError):
            RangeFinder(first_threshold=0)
        with pytest.raises(ValueError):
            RangeFinder(max_level=0)
        with pytest.raises(ValueError):
            RangeFinder().bucket_for_histogram(np.zeros(256))
        with pytest.raises(ValueError):
            RangeFinder().bucket_for_histogram(np.ones(128))


class TestPaperExact:
    def test_first_level_always_descends(self):
        # uniform histogram: generalized finder stays at root, the paper's
        # listing always takes the else-branch to [128, 255]
        hist = np.full(256, 100.0)
        general = RangeFinder().bucket_for_histogram(hist)
        paper = paper_range_finder().bucket_for_histogram(hist)
        assert general == Bucket(0, 255)
        assert paper == Bucket(128, 255)

    def test_agrees_on_concentrated_histograms(self):
        for lo, hi in ((0, 20), (200, 250), (70, 120)):
            hist = _hist_concentrated(lo, hi)
            general = RangeFinder().bucket_for_histogram(hist)
            paper = paper_range_finder().bucket_for_histogram(hist)
            assert paper.on_same_path(general)
