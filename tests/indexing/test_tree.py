"""Range-index tree tests."""

import pytest

from repro.imaging.image import Image
from repro.indexing.rangefinder import Bucket, RangeFinder
from repro.indexing.tree import RangeIndex


def _flat(v):
    return Image.blank(12, 10, v)


class TestInsertRemove:
    def test_insert_and_lookup(self):
        idx = RangeIndex()
        bucket = idx.insert("f1", _flat(10))  # dark -> deep left bucket
        assert "f1" in idx
        assert idx.bucket_of("f1") == bucket
        assert bucket.max <= 127

    def test_reinsert_moves(self):
        idx = RangeIndex()
        idx.insert("f1", _flat(10))
        idx.insert("f1", _flat(250))
        assert len(idx) == 1
        assert idx.bucket_of("f1").min >= 128

    def test_remove(self):
        idx = RangeIndex()
        idx.insert("f1", _flat(10))
        idx.remove("f1")
        assert "f1" not in idx
        assert len(idx) == 0
        with pytest.raises(KeyError):
            idx.remove("f1")

    def test_stats(self):
        idx = RangeIndex()
        idx.insert("a", _flat(10))
        idx.insert("b", _flat(12))
        idx.insert("c", _flat(250))
        stats = idx.stats()
        assert stats.n_entries == 3
        assert stats.n_buckets == 2
        assert stats.bucket_sizes[stats.largest_bucket] == 2
        assert stats.mean_bucket_size == pytest.approx(1.5)


class TestCandidates:
    def test_same_bucket_found(self):
        idx = RangeIndex()
        idx.insert("a", _flat(10))
        idx.insert("b", _flat(12))
        assert idx.candidates(_flat(11)) == {"a", "b"}

    def test_disjoint_bucket_pruned(self):
        idx = RangeIndex()
        idx.insert("dark", _flat(10))
        idx.insert("bright", _flat(250))
        cands = idx.candidates(_flat(11))
        assert "dark" in cands and "bright" not in cands

    def test_ancestor_bucket_included(self):
        # a frame bucketed at the root must be a candidate for any query
        idx = RangeIndex()
        spread = Image.blank(16, 16, 0).pixels.copy()
        import numpy as np

        gen = np.random.default_rng(0)
        spread = Image(gen.integers(0, 256, (16, 16), dtype=np.uint8))
        root_bucket = idx.insert("spread", spread)
        assert root_bucket == Bucket(0, 255)
        assert "spread" in idx.candidates(_flat(10))
        assert "spread" in idx.candidates(_flat(250))

    def test_candidates_for_bucket_direct(self):
        idx = RangeIndex()
        idx.insert_bucket("x", Bucket(0, 31))
        idx.insert_bucket("y", Bucket(0, 127))
        idx.insert_bucket("z", Bucket(128, 255))
        cands = idx.candidates_for_bucket(Bucket(0, 63))
        assert cands == {"x", "y"}

    def test_pruning_factor(self):
        idx = RangeIndex()
        for i in range(5):
            idx.insert(f"d{i}", _flat(10 + i))
        for i in range(5):
            idx.insert(f"b{i}", _flat(245 + i))
        factor = idx.pruning_factor([_flat(12), _flat(247)])
        assert factor == pytest.approx(0.5)

    def test_empty_index(self):
        idx = RangeIndex()
        assert idx.candidates(_flat(5)) == set()
        assert idx.pruning_factor([_flat(5)]) == 0.0
        assert idx.stats().largest_bucket is None
