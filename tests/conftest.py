"""Shared fixtures.

Heavy objects (the demo corpus and a fully-ingested system) are
session-scoped: building them once keeps the suite fast while letting many
test modules exercise the same realistic state.  Tests that mutate a
system build their own.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.system import VideoRetrievalSystem
from repro.eval.groundtruth import CategoryGroundTruth
from repro.imaging.image import Image
from repro.video.generator import VideoSpec, generate_video, make_corpus


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    """An ambient REPRO_FAULTS would arm chaos in every system a test
    builds; tests opt in explicitly (monkeypatch.setenv) instead."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture()
def fresh_rng():
    return np.random.default_rng(999)


@pytest.fixture(scope="session")
def gradient_image() -> Image:
    """A deterministic RGB test image with structure in every channel."""
    h, w = 48, 64
    ys, xs = np.mgrid[0:h, 0:w]
    arr = np.stack(
        [
            (xs * 255 // max(1, w - 1)),
            (ys * 255 // max(1, h - 1)),
            ((xs + ys) * 255 // max(1, w + h - 2)),
        ],
        axis=-1,
    ).astype(np.uint8)
    return Image(arr)


@pytest.fixture(scope="session")
def noise_image() -> Image:
    gen = np.random.default_rng(77)
    return Image(gen.integers(0, 256, (40, 56, 3), dtype=np.uint8))


@pytest.fixture(scope="session")
def sample_video():
    """One small 2-shot synthetic video."""
    return generate_video(
        VideoSpec(category="cartoon", seed=31, n_shots=2, frames_per_shot=5)
    )


@pytest.fixture(scope="session")
def small_corpus():
    """Two videos per category, short clips (session-shared, read-only)."""
    return make_corpus(videos_per_category=2, seed=7, n_shots=2, frames_per_shot=5)


@pytest.fixture(scope="session")
def ingested_system(small_corpus):
    """A system with the small corpus ingested (session-shared, read-only).

    Mutating tests must build their own system instead of using this one.
    """
    system = VideoRetrievalSystem.in_memory()
    admin = system.login_admin()
    for video in small_corpus:
        admin.add_video(video)
    return system


@pytest.fixture(scope="session")
def ground_truth(ingested_system) -> CategoryGroundTruth:
    return CategoryGroundTruth.from_store(ingested_system._store)
