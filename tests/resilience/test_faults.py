"""Fault spec parsing and deterministic trigger behavior."""

from __future__ import annotations

import pytest

from repro.obs import Obs
from repro.resilience import (
    FAULTS_ENV_VAR,
    FaultInjected,
    FaultRegistry,
    FaultSpec,
    parse_fault_spec,
    spec_from_env,
)


# -- parsing -------------------------------------------------------------------


def test_parse_every_once_p_and_seed():
    specs = parse_fault_spec(
        "extractor.gabor:every=2; db.execute:once; ann.probe:p=0.25,seed=9"
    )
    assert [s.point for s in specs] == ["extractor.gabor", "db.execute", "ann.probe"]
    assert specs[0].mode == "every" and specs[0].n == 2
    assert specs[1].mode == "once"
    assert specs[2].mode == "p" and specs[2].p == 0.25 and specs[2].seed == 9


def test_parse_skips_empty_clauses():
    assert parse_fault_spec(";;codec.decode:once;") == [
        FaultSpec(point="codec.decode", mode="once")
    ]


@pytest.mark.parametrize(
    "bad",
    [
        "no-colon-here",
        "db.execute:",  # no trigger
        "db.execute:sometimes",  # unknown option
        "not.a.point:once",  # unknown point
        "extractor.Gabor:once",  # extractor names are lowercase identifiers
        "db.execute:every=0",  # every needs N >= 1
        "db.execute:p=0",  # p must be in (0, 1]
        "db.execute:p=1.5",
    ],
)
def test_parse_rejects_malformed_specs(bad):
    with pytest.raises(ValueError):
        parse_fault_spec(bad)


def test_spec_from_env_reads_and_strips(monkeypatch):
    monkeypatch.setenv(FAULTS_ENV_VAR, "  db.execute:once  ")
    assert spec_from_env() == "db.execute:once"
    monkeypatch.setenv(FAULTS_ENV_VAR, "   ")
    assert spec_from_env() is None
    monkeypatch.delenv(FAULTS_ENV_VAR)
    assert spec_from_env() is None


def test_config_validates_fault_spec_eagerly():
    from repro.core.config import SystemConfig

    with pytest.raises(ValueError):
        SystemConfig(fault_spec="db.execute:sometimes")
    SystemConfig(fault_spec="db.execute:once")  # well-formed is fine


# -- triggers ------------------------------------------------------------------


def _fire_pattern(registry: FaultRegistry, point: str, calls: int) -> list:
    out = []
    for _ in range(calls):
        try:
            registry.fire(point)
            out.append(False)
        except FaultInjected:
            out.append(True)
    return out


def test_unarmed_registry_is_inert():
    registry = FaultRegistry()
    assert not registry.armed
    assert _fire_pattern(registry, "db.execute", 5) == [False] * 5


def test_once_fires_exactly_first_call():
    registry = FaultRegistry("db.execute:once")
    assert _fire_pattern(registry, "db.execute", 4) == [True, False, False, False]
    assert registry.stats()["db.execute"] == {"calls": 4, "fired": 1}


def test_every_n_fires_on_multiples():
    registry = FaultRegistry("ann.probe:every=3")
    assert _fire_pattern(registry, "ann.probe", 7) == [
        False, False, True, False, False, True, False,
    ]


def test_unarmed_point_in_armed_registry_never_fires():
    registry = FaultRegistry("db.execute:once")
    assert _fire_pattern(registry, "codec.decode", 3) == [False] * 3


def test_p_mode_is_deterministic_across_runs():
    a = _fire_pattern(FaultRegistry("db.execute:p=0.5,seed=11"), "db.execute", 64)
    b = _fire_pattern(FaultRegistry("db.execute:p=0.5,seed=11"), "db.execute", 64)
    assert a == b  # identical seeded Bernoulli stream
    assert any(a) and not all(a)  # p=0.5 over 64 draws fires some, not all
    c = _fire_pattern(FaultRegistry("db.execute:p=0.5,seed=12"), "db.execute", 64)
    assert a != c  # a different seed draws a different stream


def test_fire_counts_into_obs():
    obs = Obs(enabled=True)
    registry = FaultRegistry("db.execute:every=1", obs=obs)
    for _ in range(3):
        with pytest.raises(FaultInjected):
            registry.fire("db.execute")
    fam = obs.registry.render_json()["repro_resilience_faults_injected_total"]
    assert fam["samples"][0]["value"] == 3


def test_fault_injected_carries_point_and_count():
    registry = FaultRegistry("codec.decode:every=1")
    with pytest.raises(FaultInjected) as info:
        registry.fire("codec.decode")
    assert info.value.point == "codec.decode"
    assert info.value.fire_count == 1
