"""Graceful degradation of search under armed extractor faults.

The load-bearing equivalence: a degraded ranking is not approximate --
skipping a faulted extractor and renormalizing the fusion weights over
the survivors produces *exactly* the ranking an explicit query without
that feature produces.
"""

from __future__ import annotations

import pytest

from repro.core.config import SystemConfig
from repro.core.system import VideoRetrievalSystem
from repro.resilience import RetryExhausted


def _build(small_corpus, **config_kwargs):
    system = VideoRetrievalSystem.in_memory(SystemConfig(**config_kwargs))
    admin = system.login_admin()
    for video in small_corpus[:4]:
        admin.add_video(video)
    return system


@pytest.fixture(scope="module")
def clean_system(small_corpus):
    return _build(small_corpus)


def test_faulted_extractor_degrades_not_fails(small_corpus, clean_system):
    system = _build(small_corpus, fault_spec="extractor.gabor:every=1")
    query = system.any_key_frame()
    results = system.search(query, top_k=8)
    assert results.degraded
    assert results.degraded_features == ["gabor"]
    assert len(results) >= 1  # index pruning may cap below top_k


def test_degraded_ranking_equals_no_gabor_reference(small_corpus, clean_system):
    system = _build(small_corpus, fault_spec="extractor.gabor:every=1")
    query = system.any_key_frame()
    degraded = system.search(query, top_k=8)
    survivors = [f for f in clean_system.config.features if f != "gabor"]
    reference = clean_system.search(query, features=survivors, top_k=8)
    assert not reference.degraded
    assert [h.frame_id for h in degraded] == [h.frame_id for h in reference]
    for d, r in zip(degraded, reference):
        assert d.distance == pytest.approx(r.distance, abs=1e-12)


def test_all_but_one_faulted_still_ranks(small_corpus, clean_system):
    doomed = [f for f in SystemConfig().features if f != "glcm"]
    spec = ";".join(f"extractor.{f}:every=1" for f in doomed)
    system = _build(small_corpus, fault_spec=spec)
    query = system.any_key_frame()
    results = system.search(query, top_k=8)
    assert results.degraded
    assert sorted(results.degraded_features) == sorted(doomed)
    assert len(results) >= 1
    # a glcm-only ranking is still a valid, fully-ordered ranking
    reference = clean_system.search(query, features=["glcm"], top_k=8)
    assert [h.frame_id for h in results] == [h.frame_id for h in reference]
    distances = [h.distance for h in results]
    assert distances == sorted(distances)


def test_every_extractor_faulted_fails_the_query(small_corpus):
    spec = ";".join(f"extractor.{f}:every=1" for f in SystemConfig().features)
    system = _build(small_corpus, fault_spec=spec)
    query = system.any_key_frame()
    with pytest.raises(Exception):  # the last extractor's error propagates
        system.search(query, top_k=5)


def test_armed_faults_bypass_query_cache(small_corpus):
    system = _build(small_corpus, fault_spec="extractor.gabor:every=1")
    query = system.any_key_frame()
    r1 = system.search(query, top_k=5)
    r2 = system.search(query, top_k=5)
    assert r1.degraded and r2.degraded
    # both queries really ran: the gabor fault point fired twice
    assert system.resilience.faults.stats()["extractor.gabor"]["fired"] == 2
    assert system.cache_stats()["hits"] == 0


def test_clean_run_is_not_degraded_and_caches(small_corpus, clean_system):
    query = clean_system.any_key_frame()
    r1 = clean_system.search(query, top_k=5)
    assert not r1.degraded and r1.degraded_features == []


def test_degraded_counter_recorded(small_corpus):
    system = _build(small_corpus, fault_spec="extractor.gabor:every=1")
    system.search(system.any_key_frame(), top_k=5)
    fam = system.obs.registry.render_json()["repro_resilience_degraded_total"]
    samples = {s["labels"]["reason"]: s["value"] for s in fam["samples"]}
    assert samples["extractor.gabor"] == 1


def test_codec_decode_retry_exhausts_on_permanent_fault(small_corpus):
    system = _build(small_corpus, fault_spec="codec.decode:every=1")
    with pytest.raises(RetryExhausted) as info:
        system.get_video_frames(1)
    assert info.value.point == "codec.decode"
    assert info.value.attempts == system.config.retry_attempts


def test_codec_decode_recovers_from_transient_fault(small_corpus):
    system = _build(small_corpus, fault_spec="codec.decode:once")
    frames = system.get_video_frames(1)  # first attempt faults, retry succeeds
    assert frames
    fam = system.obs.registry.render_json()["repro_resilience_retries_total"]
    samples = {s["labels"]["point"]: s["value"] for s in fam["samples"]}
    assert samples["codec.decode"] == 1
