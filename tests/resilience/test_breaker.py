"""CircuitBreaker state machine: transitions, guards, and properties.

A fake clock drives every cooldown, so the tests never block, and the
hypothesis property feeds arbitrary outcome sequences through the
machine to pin the invariants (the state is always one of the three,
a trip always empties the window, `guard()` refuses exactly the open
state before cooldown).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resilience import BREAKER_STATES, CircuitBreaker, CircuitOpenError


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _breaker(**kwargs):
    kwargs.setdefault("window", 8)
    kwargs.setdefault("failure_threshold", 0.5)
    kwargs.setdefault("min_calls", 4)
    kwargs.setdefault("cooldown", 1.0)
    clock = kwargs.setdefault("clock", _Clock())
    return CircuitBreaker("test", **kwargs), clock


def test_stays_closed_below_min_calls():
    b, _ = _breaker()
    for _ in range(3):
        b.record_failure()
    assert b.state == "closed"  # 3 failures but min_calls is 4


def test_trips_open_at_failure_rate_threshold():
    b, _ = _breaker()
    b.record_success()
    b.record_success()
    b.record_success()
    b.record_failure()
    assert b.state == "closed"  # 1/4 < 0.5 even with min_calls samples
    b.record_failure()
    b.record_failure()
    assert b.state == "open"  # 3/6 >= 0.5
    assert b.trip_count == 1


def test_open_guard_raises_with_retry_after():
    b, clock = _breaker(min_calls=1, failure_threshold=1.0)
    b.record_failure()
    assert b.state == "open"
    with pytest.raises(CircuitOpenError) as info:
        b.guard()
    assert 0.0 < info.value.retry_after <= 1.0
    clock.now += 0.4
    assert b.retry_after() == pytest.approx(0.6)


def test_half_open_probe_success_closes():
    b, clock = _breaker(min_calls=1, failure_threshold=1.0)
    b.record_failure()
    clock.now += 1.0  # cooldown elapses
    assert b.state == "half_open"
    b.guard()  # probe admitted
    b.record_success()
    assert b.state == "closed"
    assert b.stats()["window_size"] == 0  # trip + close cleared history


def test_half_open_probe_failure_reopens():
    b, clock = _breaker(min_calls=1, failure_threshold=1.0)
    b.record_failure()
    clock.now += 1.0
    assert b.state == "half_open"
    b.record_failure()
    assert b.state == "open"
    assert b.trip_count == 2


def test_window_slides():
    b, _ = _breaker(window=4, min_calls=4, failure_threshold=0.75)
    for _ in range(4):
        b.record_failure()
    assert b.state == "open"  # 4/4
    # after cooldown-free reopen scenario is separate; here check sliding
    b2, _ = _breaker(window=4, min_calls=4, failure_threshold=1.0)
    b2.record_failure()
    b2.record_failure()
    for _ in range(4):
        b2.record_success()
    assert b2.stats()["window_failures"] == 0  # old failures slid out


def test_call_wrapper_records_outcomes():
    # threshold 0.6: [S, F] is 0.5 (closed), [S, F, F] is 0.667 (open)
    b, _ = _breaker(min_calls=2, failure_threshold=0.6)
    assert b.call(lambda: 42) == 42
    with pytest.raises(RuntimeError):
        b.call(lambda: (_ for _ in ()).throw(RuntimeError("x")))
    with pytest.raises(RuntimeError):
        b.call(lambda: (_ for _ in ()).throw(RuntimeError("x")))
    assert b.state == "open"
    with pytest.raises(CircuitOpenError):
        b.call(lambda: 42)


@given(
    outcomes=st.lists(st.booleans(), max_size=60),
    advance=st.lists(st.floats(min_value=0.0, max_value=2.0), max_size=60),
)
@settings(max_examples=80)
def test_state_machine_invariants(outcomes, advance):
    """Arbitrary outcome/clock sequences keep the machine well-formed."""
    b, clock = _breaker()
    trips_before = 0
    for i, failed in enumerate(outcomes):
        clock.now += advance[i] if i < len(advance) else 0.0
        state = b.state
        assert state in BREAKER_STATES
        if failed:
            b.record_failure()
        else:
            b.record_success()
        assert b.trip_count >= trips_before
        if b.trip_count > trips_before:
            # the trip that just happened emptied the outcome window
            assert len(b._outcomes) == 0
        trips_before = b.trip_count
        assert len(b._outcomes) <= b.window
