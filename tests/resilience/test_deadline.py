"""Deadline propagation: contextvars scopes and stage-boundary checks."""

from __future__ import annotations

import pytest

from repro.resilience import (
    Deadline,
    DeadlineExceeded,
    check_deadline,
    current_deadline,
    deadline_scope,
)


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_no_scope_means_noop_check():
    assert current_deadline() is None
    assert check_deadline("stage") is None


def test_none_budget_is_passthrough_scope():
    with deadline_scope(None):
        assert current_deadline() is None
        assert check_deadline("stage") is None


def test_scope_arms_and_disarms():
    clock = _Clock()
    with deadline_scope(5.0, clock=clock) as deadline:
        assert current_deadline() is deadline
        assert check_deadline("stage") == pytest.approx(5.0)
        clock.now = 2.0
        assert check_deadline("stage") == pytest.approx(3.0)
    assert current_deadline() is None


def test_expiry_raises_with_stage_name():
    clock = _Clock()
    with deadline_scope(1.0, clock=clock):
        clock.now = 1.5
        with pytest.raises(DeadlineExceeded) as info:
            check_deadline("search.score")
        assert info.value.stage == "search.score"
        assert info.value.budget == pytest.approx(1.0)
        assert info.value.elapsed == pytest.approx(1.5)
    assert current_deadline() is None  # scope unwinds even after the raise


def test_nested_scope_shadows_and_restores():
    outer_clock, inner_clock = _Clock(), _Clock()
    with deadline_scope(10.0, clock=outer_clock) as outer:
        with deadline_scope(1.0, clock=inner_clock) as inner:
            assert current_deadline() is inner
        assert current_deadline() is outer


def test_deadline_object_accessors():
    clock = _Clock()
    d = Deadline(2.0, clock=clock)
    clock.now = 0.5
    assert d.elapsed() == pytest.approx(0.5)
    assert d.remaining() == pytest.approx(1.5)
    assert not d.expired()
    clock.now = 2.5
    assert d.expired()
    with pytest.raises(ValueError):
        Deadline(0.0)
