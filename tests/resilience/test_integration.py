"""Resilience wired through the stack: ANN breaker, pool breaker,
db retry, request deadlines, and two-run chaos determinism."""

from __future__ import annotations

import pytest

from repro.core.config import SystemConfig
from repro.core.system import VideoRetrievalSystem
from repro.resilience import DeadlineExceeded


def _build(small_corpus, n_videos=4, **config_kwargs):
    system = VideoRetrievalSystem.in_memory(SystemConfig(**config_kwargs))
    admin = system.login_admin()
    for video in small_corpus[:n_videos]:
        admin.add_video(video)
    return system


# -- ANN breaker: brute-force fallback -----------------------------------------


def test_ann_fault_falls_back_to_exact_results(small_corpus):
    faulted = _build(
        small_corpus, ann=True, ann_cells=4, ann_nprobe=2,
        fault_spec="ann.probe:every=1",
    )
    exact = _build(small_corpus)  # no ANN at all: the exact reference
    query = faulted.any_key_frame()
    got = faulted.search(query, top_k=8)
    want = exact.search(query, top_k=8)
    # brute force is *better* than an IVF probe, so no degraded tag...
    assert not got.degraded
    # ...and the ranking is the exact one
    assert [h.frame_id for h in got] == [h.frame_id for h in want]
    fam = faulted.obs.registry.render_json()["repro_resilience_fallbacks_total"]
    samples = {s["labels"]["kind"]: s["value"] for s in fam["samples"]}
    assert samples["ann_brute_force"] >= 1


def test_ann_breaker_trips_after_repeated_faults(small_corpus):
    system = _build(
        small_corpus, ann=True, ann_cells=4, ann_nprobe=2,
        fault_spec="ann.probe:every=1", breaker_window=4,
        breaker_cooldown=3600.0,  # stays open for the whole test
    )
    query = system.any_key_frame()
    for _ in range(8):
        results = system.search(query, top_k=5)
        assert len(results) >= 1  # every query still answers
    breaker = system.resilience.ann_breaker
    assert breaker.trip_count >= 1
    assert breaker.state == "open"
    # once open, queries skip the probe entirely: fired stops growing
    fired = system.resilience.faults.stats()["ann.probe"]["fired"]
    system.search(query, top_k=5)
    assert system.resilience.faults.stats()["ann.probe"]["fired"] == fired


# -- pool breaker: serial fallback ---------------------------------------------


def test_pool_fault_degrades_to_serial_ingest(small_corpus):
    system = VideoRetrievalSystem.in_memory(
        SystemConfig(workers=2, fault_spec="pool.map:every=1")
    )
    admin = system.login_admin()
    report = admin.add_video(small_corpus[0])  # parallel path faults -> serial redo
    assert report.n_keyframes >= 1
    reg = system.obs.registry.render_json()
    pool_falls = {
        s["labels"]["reason"]: s["value"]
        for s in reg["repro_pool_fallbacks_total"]["samples"]
    }
    assert pool_falls.get("broken_pool", 0) >= 1
    assert system.resilience.pool_breaker.stats()["window_failures"] >= 1
    system.close()


def test_open_pool_breaker_short_circuits_to_serial(small_corpus):
    system = VideoRetrievalSystem.in_memory(
        SystemConfig(
            workers=2, fault_spec="pool.map:every=1",
            breaker_window=4, breaker_cooldown=3600.0,
        )
    )
    admin = system.login_admin()
    for video in small_corpus[:4]:
        admin.add_video(video)
    assert system.resilience.pool_breaker.state == "open"
    fired_before = system.resilience.faults.stats()["pool.map"]["fired"]
    admin.add_video(small_corpus[4])  # breaker open: parallel path never tried
    assert system.resilience.faults.stats()["pool.map"]["fired"] == fired_before
    reg = system.obs.registry.render_json()
    pool_falls = {
        s["labels"]["reason"]: s["value"]
        for s in reg["repro_pool_fallbacks_total"]["samples"]
    }
    assert pool_falls.get("breaker_open", 0) >= 1
    system.close()


# -- db retry ------------------------------------------------------------------


def test_db_execute_transient_fault_is_retried(small_corpus):
    system = _build(small_corpus, n_videos=1, fault_spec="db.execute:once")
    # the very first statement of construction faulted once and was
    # retried; the system came up and works end-to-end
    assert system.n_videos() == 1
    fam = system.obs.registry.render_json()["repro_resilience_retries_total"]
    samples = {s["labels"]["point"]: s["value"] for s in fam["samples"]}
    assert samples["db.execute"] == 1


# -- request deadlines ---------------------------------------------------------


def test_expired_deadline_fails_search(small_corpus):
    # ingest with no deadline, then arm an impossible one for the query
    system = _build(small_corpus)
    query_image = system.any_key_frame()
    system.resilience.request_deadline = 1e-9
    with pytest.raises(DeadlineExceeded) as info:
        system.search(query_image, top_k=5)
    assert info.value.stage.startswith("search.")


def test_generous_deadline_does_not_interfere(small_corpus):
    system = _build(small_corpus, request_deadline=3600.0)
    results = system.search(system.any_key_frame(), top_k=5)
    assert len(results) >= 1
    assert not results.degraded


def test_expired_deadline_fails_ingest(small_corpus):
    system = VideoRetrievalSystem.in_memory(SystemConfig(request_deadline=1e-9))
    with pytest.raises(DeadlineExceeded) as info:
        system.login_admin().add_video(small_corpus[0])
    assert info.value.stage.startswith("ingest.")


# -- determinism ---------------------------------------------------------------


def _chaos_run(small_corpus):
    """One seeded chaos run; returns every counter the policies kept."""
    system = _build(
        small_corpus, n_videos=3,
        fault_spec="extractor.gabor:every=2;db.execute:p=0.002,seed=5",
    )
    query = system.any_key_frame()
    for k in range(4):
        system.search(query, top_k=4 + k)
    reg = system.obs.registry.render_json()
    counters = {}
    for family in (
        "repro_resilience_retries_total",
        "repro_resilience_faults_injected_total",
        "repro_resilience_degraded_total",
        "repro_resilience_breaker_trips_total",
    ):
        for sample in reg.get(family, {}).get("samples", []):
            key = family + str(sorted(sample["labels"].items()))
            counters[key] = sample["value"]
    return counters, system.resilience.faults.stats()


def test_seeded_chaos_counters_reproduce_exactly(small_corpus):
    counters_a, faults_a = _chaos_run(small_corpus)
    counters_b, faults_b = _chaos_run(small_corpus)
    assert counters_a == counters_b
    assert faults_a == faults_b
    assert faults_a["extractor.gabor"]["fired"] >= 1


# -- surfaces ------------------------------------------------------------------


def test_metrics_snapshot_has_resilience_section(small_corpus):
    system = _build(small_corpus, n_videos=1, fault_spec="extractor.gabor:once")
    system.search(system.any_key_frame(), top_k=3)
    section = system.metrics()["resilience"]
    assert section["enabled"] is True
    assert section["armed_points"] == 1
    assert section["faults_fired"] == 1
    assert section["ann_breaker_state"] == "closed"


def test_stats_renders_resilience_line(small_corpus):
    from repro.obs import format_stats

    system = _build(small_corpus, n_videos=1)
    text = format_stats(system.metrics())
    assert "resilience" in text


def test_disabled_resilience_uses_null_policies(small_corpus):
    from repro.resilience import NULL_POLICIES

    system = VideoRetrievalSystem.in_memory(SystemConfig(resilience=False))
    assert system.resilience is NULL_POLICIES
    admin = system.login_admin()
    admin.add_video(small_corpus[0])
    results = system.search(system.any_key_frame(), top_k=3)
    assert len(results) >= 1
