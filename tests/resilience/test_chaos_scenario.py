"""The end-to-end armed chaos scenario the CI ``chaos`` job runs.

Arms ``REPRO_FAULTS`` the way an operator would (environment, not
config), drives the system through ingest + search, and asserts the
acceptance contract: the query completes, is flagged degraded, and its
ranking matches the explicit no-gabor reference exactly.  The CLI leg
checks the DEGRADED line a terminal user sees.
"""

from __future__ import annotations

import os

import pytest

from repro.cli import main
from repro.core.system import VideoRetrievalSystem
from repro.web.api import CbvrApi


def test_env_armed_search_degrades_and_matches_reference(
    monkeypatch, small_corpus
):
    monkeypatch.setenv("REPRO_FAULTS", "extractor.gabor:every=1")
    system = VideoRetrievalSystem.in_memory()
    assert system.resilience.faults.armed_points() == ["extractor.gabor"]
    admin = system.login_admin()
    for video in small_corpus[:4]:
        admin.add_video(video)
    query = system.any_key_frame()
    results = system.search(query, top_k=8)
    assert results.degraded and results.degraded_features == ["gabor"]

    monkeypatch.delenv("REPRO_FAULTS")
    clean = VideoRetrievalSystem.in_memory()
    clean_admin = clean.login_admin()
    for video in small_corpus[:4]:
        clean_admin.add_video(video)
    survivors = [f for f in clean.config.features if f != "gabor"]
    reference = clean.search(query, features=survivors, top_k=8)
    assert [h.frame_id for h in results] == [h.frame_id for h in reference]


def test_env_armed_metrics_scrape_shows_chaos(monkeypatch, small_corpus):
    monkeypatch.setenv("REPRO_FAULTS", "extractor.gabor:every=1")
    system = VideoRetrievalSystem.in_memory()
    admin = system.login_admin()
    admin.add_video(small_corpus[0])
    api = CbvrApi(system)
    import json

    status, _, body = api.handle(
        "POST", "/search", body=system.any_key_frame().encode("ppm")
    )
    assert status == 200
    payload = json.loads(body)
    assert payload["degraded"] is True
    assert payload["degraded_features"] == ["gabor"]

    status, ctype, scrape = api.handle("GET", "/metrics")
    assert status == 200
    text = scrape.decode("utf-8")
    assert 'repro_resilience_faults_injected_total{point="extractor.gabor"} 1' in text
    assert 'repro_resilience_degraded_total{reason="extractor.gabor"} 1' in text


def test_cli_search_prints_degraded_line(monkeypatch, tmp_path, capsys):
    corpus = str(tmp_path / "corpus")
    assert main(["demo-corpus", corpus, "--per-category", "1",
                 "--shots", "2", "--frames-per-shot", "4", "--seed", "3"]) == 0
    lib = str(tmp_path / "lib.rdb")
    videos = sorted(os.path.join(corpus, f) for f in os.listdir(corpus))
    assert main(["ingest", lib] + videos[:2]) == 0
    frame = str(tmp_path / "q.ppm")
    assert main(["export-frame", lib, "1", frame]) == 0
    capsys.readouterr()

    monkeypatch.setenv("REPRO_FAULTS", "extractor.gabor:every=1")
    assert main(["search", lib, frame, "--top-k", "3"]) == 0
    out = capsys.readouterr().out
    assert "DEGRADED: skipped gabor" in out
    assert "# 1" in out  # the ranking still printed

    monkeypatch.delenv("REPRO_FAULTS")
    assert main(["search", lib, frame, "--top-k", "3"]) == 0
    assert "DEGRADED" not in capsys.readouterr().out
