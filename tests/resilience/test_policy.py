"""Backoff and Retry: schedule properties and retry semantics.

The backoff schedule is a pure function of ``(seed, attempt)`` -- the
hypothesis properties pin the bounds (each delay lies in
``[(1 - jitter) * bound_k, bound_k]`` with monotone un-jittered bounds)
and the determinism (same seed -> identical schedule, different seed ->
different draws).  Retry is tested against fake clocks/sleeps so no test
actually blocks.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Obs
from repro.resilience import Backoff, FaultInjected, Retry, RetryExhausted

seeds = st.integers(min_value=0, max_value=2**31 - 1)
jitters = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
attempts = st.integers(min_value=0, max_value=12)


@given(seed=seeds, jitter=jitters, attempt=attempts)
@settings(max_examples=60)
def test_delay_lies_within_jitter_band(seed, jitter, attempt):
    b = Backoff(base=0.01, factor=2.0, cap=1.0, jitter=jitter, seed=seed)
    bound = b.bound(attempt)
    delay = b.delay(attempt)
    assert (1.0 - jitter) * bound - 1e-12 <= delay <= bound + 1e-12


@given(seed=seeds)
@settings(max_examples=40)
def test_unjittered_bounds_are_monotone_then_capped(seed):
    b = Backoff(base=0.01, factor=2.0, cap=1.0, jitter=0.5, seed=seed)
    bounds = [b.bound(k) for k in range(16)]
    assert all(a <= c for a, c in zip(bounds, bounds[1:]))
    assert bounds[-1] == b.cap  # 0.01 * 2**15 >> cap


@given(seed=seeds, n=st.integers(min_value=1, max_value=8))
@settings(max_examples=40)
def test_schedule_is_deterministic_under_fixed_seed(seed, n):
    a = Backoff(seed=seed).schedule(n)
    b = Backoff(seed=seed).schedule(n)
    assert a == b  # bit-identical, not approximately
    assert len(a) == n - 1


def test_different_seeds_draw_different_jitter():
    schedules = {tuple(Backoff(seed=s).schedule(4)) for s in range(8)}
    assert len(schedules) > 1


def test_backoff_rejects_bad_knobs():
    with pytest.raises(ValueError):
        Backoff(base=-1.0)
    with pytest.raises(ValueError):
        Backoff(factor=0.5)
    with pytest.raises(ValueError):
        Backoff(jitter=1.5)
    with pytest.raises(ValueError):
        Backoff().bound(-1)


# -- Retry ---------------------------------------------------------------------


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _retry(attempts=3, **kwargs):
    kwargs.setdefault("backoff", Backoff(base=0.01, seed=1))
    kwargs.setdefault("clock", _Clock())
    kwargs.setdefault("sleep", lambda s: None)
    return Retry(attempts=attempts, **kwargs)


def test_retry_returns_first_success():
    calls = []
    result = _retry().call("p", lambda: calls.append(1) or "ok")
    assert result == "ok"
    assert len(calls) == 1


def test_retry_retries_then_succeeds_with_recorded_sleeps():
    slept = []
    attempts_seen = []

    def flaky():
        attempts_seen.append(1)
        if len(attempts_seen) < 3:
            raise FaultInjected("p", len(attempts_seen))
        return "ok"

    retry = _retry(attempts=3, sleep=slept.append)
    assert retry.call("p", flaky) == "ok"
    assert len(attempts_seen) == 3
    # the sleeps are exactly the deterministic backoff schedule prefix
    assert slept == retry.backoff.schedule(3)


def test_retry_exhausted_chains_last_error():
    def always():
        raise FaultInjected("p", 1)

    with pytest.raises(RetryExhausted) as info:
        _retry(attempts=2).call("p", always)
    assert info.value.attempts == 2
    assert isinstance(info.value.last_error, FaultInjected)
    assert isinstance(info.value.__cause__, FaultInjected)


def test_retry_on_filters_exception_types():
    def boom():
        raise ValueError("semantic, not infrastructural")

    retry = _retry(retry_on=(FaultInjected,))
    with pytest.raises(ValueError):
        retry.call("p", boom)


def test_retry_respects_elapsed_budget():
    clock = _Clock()

    def failing():
        clock.now += 10.0  # each attempt burns 10s
        raise FaultInjected("p", 1)

    retry = _retry(attempts=5, max_elapsed=15.0, clock=clock)
    with pytest.raises(RetryExhausted) as info:
        retry.call("p", failing)
    assert info.value.attempts < 5  # budget, not attempts, ended it


def test_retry_counts_retries_in_obs():
    obs = Obs(enabled=True)
    retry = Retry(
        attempts=3,
        backoff=Backoff(seed=1),
        retry_on=(FaultInjected,),
        sleep=lambda s: None,
        obs=obs,
    )
    state = {"n": 0}

    def flaky():
        state["n"] += 1
        if state["n"] < 3:
            raise FaultInjected("p", state["n"])
        return "ok"

    retry.call("db.execute", flaky)
    fam = obs.registry.render_json()["repro_resilience_retries_total"]
    samples = {tuple(s["labels"].items()): s["value"] for s in fam["samples"]}
    assert samples[(("point", "db.execute"),)] == 2
