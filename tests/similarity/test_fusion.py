"""Feature fusion tests."""

import numpy as np
import pytest

from repro.similarity.fusion import CombinedScorer, FeatureWeights, normalize_scores


class TestNormalize:
    def test_maps_to_unit_interval(self):
        out = normalize_scores([2.0, 4.0, 6.0])
        assert out.tolist() == [0.0, 0.5, 1.0]

    def test_constant_maps_to_zero(self):
        assert normalize_scores([5.0, 5.0, 5.0]).tolist() == [0.0, 0.0, 0.0]

    def test_empty(self):
        assert normalize_scores([]).size == 0

    def test_order_preserved(self):
        raw = [9.0, 1.0, 5.0]
        out = normalize_scores(raw)
        assert np.argsort(out).tolist() == np.argsort(raw).tolist()


class TestWeights:
    def test_equal(self):
        w = FeatureWeights.equal(["a", "b"])
        assert w.get("a") == 1.0 and w.get("b") == 1.0
        assert w.get("missing") == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            FeatureWeights({"a": -1.0})

    def test_normalized(self):
        w = FeatureWeights({"a": 1.0, "b": 3.0}).normalized()
        assert w.get("a") == pytest.approx(0.25)
        assert w.get("b") == pytest.approx(0.75)

    def test_normalized_drops_zero_weights(self):
        w = FeatureWeights({"a": 1.0, "b": 0.0}).normalized()
        assert w.active() == ["a"]

    def test_normalize_all_zero_rejected(self):
        with pytest.raises(ValueError):
            FeatureWeights({"a": 0.0}).normalized()


class TestScorer:
    def test_requires_positive_weight(self):
        with pytest.raises(ValueError):
            CombinedScorer(FeatureWeights({"a": 0.0}))

    def test_equal_fusion(self):
        scorer = CombinedScorer(FeatureWeights.equal(["f", "g"]))
        fused = scorer.fuse({"f": [0.0, 1.0], "g": [1.0, 0.0]})
        assert fused.tolist() == [0.5, 0.5]

    def test_weighted_fusion(self):
        scorer = CombinedScorer(FeatureWeights({"f": 3.0, "g": 1.0}))
        fused = scorer.fuse({"f": [0.0, 1.0], "g": [1.0, 0.0]})
        assert fused[0] == pytest.approx(0.25)
        assert fused[1] == pytest.approx(0.75)

    def test_scales_cancel(self):
        """A feature measured in thousands must not dominate one in [0,1]."""
        scorer = CombinedScorer(FeatureWeights.equal(["big", "small"]))
        fused = scorer.fuse({
            "big": [0.0, 9000.0, 4500.0],
            "small": [1.0, 0.0, 0.5],
        })
        assert fused[2] == pytest.approx(0.5)
        assert fused[0] == pytest.approx(0.5)

    def test_missing_feature_rejected(self):
        scorer = CombinedScorer(FeatureWeights.equal(["f", "g"]))
        with pytest.raises(KeyError):
            scorer.fuse({"f": [0.0]})

    def test_mismatched_lengths_rejected(self):
        scorer = CombinedScorer(FeatureWeights.equal(["f", "g"]))
        with pytest.raises(ValueError):
            scorer.fuse({"f": [0.0, 1.0], "g": [1.0]})

    def test_rank(self):
        scorer = CombinedScorer(FeatureWeights.equal(["f"]))
        order = scorer.rank({"f": [5.0, 1.0, 3.0]})
        assert order.tolist() == [1, 2, 0]

    def test_fusion_recovers_consensus(self):
        """Item that two features agree is close must outrank an item each
        single feature disagrees about."""
        scorer = CombinedScorer(FeatureWeights.equal(["f", "g"]))
        fused = scorer.fuse({
            "f": [0.1, 0.0, 1.0],   # item 1 best by f
            "g": [0.1, 1.0, 0.0],   # item 2 best by g
        })
        assert np.argmin(fused) == 0  # consensus item wins
