"""Dynamic-programming sequence similarity tests."""

import numpy as np
import pytest

from repro.similarity.dp import (
    align_sequences,
    dtw_distance,
    pairwise_cost_matrix,
    sequence_similarity,
)


def scalar_cost(a, b):
    return abs(a - b)


class TestCostMatrix:
    def test_values(self):
        m = pairwise_cost_matrix([1, 2], [1, 3], scalar_cost)
        assert m.tolist() == [[0, 2], [1, 1]]


class TestDtw:
    def test_identical_sequences_zero(self):
        seq = [1.0, 5.0, 3.0]
        assert dtw_distance(seq, seq, scalar_cost) == 0.0

    def test_known_small_case(self):
        # classic: [0,0,1] vs [0,1]; optimal path cost 0
        assert dtw_distance([0, 0, 1], [0, 1], scalar_cost, normalize=False) == 0.0

    def test_shift_tolerated(self):
        a = [0, 0, 5, 0, 0]
        b = [0, 5, 0, 0, 0]
        # DTW absorbs the time shift; L1 on aligned positions would be 10
        assert dtw_distance(a, b, scalar_cost, normalize=False) == 0.0

    def test_different_sequences_positive(self):
        assert dtw_distance([0, 0], [9, 9], scalar_cost) > 0

    def test_normalization_divides_by_lengths(self):
        a, b = [0, 0], [9, 9]
        raw = dtw_distance(a, b, scalar_cost, normalize=False)
        norm = dtw_distance(a, b, scalar_cost, normalize=True)
        assert norm == pytest.approx(raw / 4)

    def test_window_band(self):
        a = list(range(10))
        b = list(range(10))
        assert dtw_distance(a, b, scalar_cost, window=1) == 0.0

    def test_window_smaller_than_length_gap_widened(self):
        # |len(a) - len(b)| > window must still admit a path
        a = list(range(8))
        b = list(range(3))
        d = dtw_distance(a, b, scalar_cost, window=1)
        assert np.isfinite(d)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            dtw_distance([], [1], scalar_cost)

    def test_symmetry(self):
        a = [1, 3, 2, 8]
        b = [2, 2, 9]
        assert dtw_distance(a, b, scalar_cost) == pytest.approx(
            dtw_distance(b, a, scalar_cost)
        )


class TestAlignment:
    def test_identical_full_match(self):
        total, pairs = align_sequences([1, 2, 3], [1, 2, 3], scalar_cost, gap_penalty=10)
        assert total == 0.0
        assert pairs == [(0, 0), (1, 1), (2, 2)]

    def test_insertion_gap(self):
        total, pairs = align_sequences([1, 3], [1, 2, 3], scalar_cost, gap_penalty=0.6)
        assert total == pytest.approx(0.6)
        assert (None, 1) in pairs

    def test_deletion_gap(self):
        total, pairs = align_sequences([1, 2, 3], [1, 3], scalar_cost, gap_penalty=0.6)
        assert (1, None) in pairs

    def test_expensive_gaps_force_matches(self):
        total, pairs = align_sequences([0, 10], [1, 11], scalar_cost, gap_penalty=100)
        assert pairs == [(0, 0), (1, 1)]
        assert total == pytest.approx(2.0)

    def test_cheap_gaps_avoid_bad_matches(self):
        total, pairs = align_sequences([0], [100], scalar_cost, gap_penalty=1)
        matched = [(i, j) for i, j in pairs if i is not None and j is not None]
        assert matched == []
        assert total == pytest.approx(2.0)

    def test_empty_sequences(self):
        total, pairs = align_sequences([], [1, 2], scalar_cost, gap_penalty=3)
        assert total == 6.0
        assert pairs == [(None, 0), (None, 1)]


class TestSequenceSimilarity:
    def test_dtw_method(self):
        assert sequence_similarity([1, 2], [1, 2], scalar_cost, method="dtw") == 0.0

    def test_align_method_requires_gap(self):
        with pytest.raises(ValueError):
            sequence_similarity([1], [1], scalar_cost, method="align")

    def test_align_method(self):
        d = sequence_similarity([1], [1], scalar_cost, method="align", gap_penalty=1)
        assert d == 0.0

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            sequence_similarity([1], [1], scalar_cost, method="lcs")

    def test_works_on_feature_vectors(self):
        from repro.features.base import FeatureVector
        from repro.similarity.measures import l2

        a = [FeatureVector(kind="x", values=np.array([float(i)])) for i in range(3)]
        b = [FeatureVector(kind="x", values=np.array([float(i)])) for i in range(3)]
        cost = lambda u, v: l2(u.values, v.values)
        assert dtw_distance(a, b, cost) == 0.0
