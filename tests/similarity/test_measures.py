"""Distance measure tests, including hypothesis-checked metric properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.similarity.measures import (
    canberra,
    chi_square,
    cosine_distance,
    histogram_intersection,
    jensen_shannon,
    l1,
    l2,
)

finite_vec = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=20,
)
nonneg_vec = st.lists(
    st.floats(min_value=0, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=20,
)

ALL_MEASURES = [l1, l2, canberra, chi_square, cosine_distance, histogram_intersection, jensen_shannon]


class TestKnownValues:
    def test_l1(self):
        assert l1([1, 2, 3], [2, 2, 5]) == 3.0

    def test_l2(self):
        assert l2([0, 0], [3, 4]) == 5.0

    def test_canberra(self):
        assert canberra([1, 0], [3, 0]) == pytest.approx(0.5)

    def test_chi_square(self):
        assert chi_square([2, 0], [0, 2]) == pytest.approx(4.0)

    def test_cosine_orthogonal(self):
        assert cosine_distance([1, 0], [0, 1]) == pytest.approx(1.0)

    def test_cosine_parallel(self):
        assert cosine_distance([1, 2], [2, 4]) == pytest.approx(0.0)

    def test_cosine_opposite(self):
        assert cosine_distance([1, 0], [-1, 0]) == pytest.approx(2.0)

    def test_intersection_identical(self):
        assert histogram_intersection([1, 3], [2, 6]) == pytest.approx(0.0)

    def test_intersection_disjoint(self):
        assert histogram_intersection([1, 0], [0, 1]) == pytest.approx(1.0)

    def test_jsd_disjoint_is_ln2(self):
        assert jensen_shannon([1, 0], [0, 1]) == pytest.approx(np.log(2))


class TestEdgeCases:
    def test_length_mismatch(self):
        for m in ALL_MEASURES:
            with pytest.raises(ValueError):
                m([1, 2], [1, 2, 3])

    def test_zero_vectors(self):
        assert cosine_distance([0, 0], [0, 0]) == 0.0
        assert cosine_distance([0, 0], [1, 0]) == 1.0
        assert histogram_intersection([0, 0], [0, 0]) == 0.0
        assert canberra([0, 0], [0, 0]) == 0.0

    def test_negative_inputs_rejected_where_required(self):
        with pytest.raises(ValueError):
            histogram_intersection([-1, 2], [1, 2])
        with pytest.raises(ValueError):
            jensen_shannon([-1, 2], [1, 2])


@pytest.mark.parametrize("measure", [l1, l2, canberra, chi_square])
class TestMetricPropertiesSigned:
    @settings(max_examples=30, deadline=None)
    @given(a=finite_vec)
    def test_identity(self, measure, a):
        assert measure(a, a) == pytest.approx(0.0, abs=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_symmetry_and_nonnegativity(self, measure, data):
        a = data.draw(finite_vec)
        b = data.draw(st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=len(a), max_size=len(a),
        ))
        d1, d2 = measure(a, b), measure(b, a)
        assert d1 >= 0
        assert d1 == pytest.approx(d2, rel=1e-9, abs=1e-12)


class TestTriangleInequalityL1L2:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_triangle(self, data):
        n = data.draw(st.integers(1, 10))
        fl = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False)
        a = data.draw(st.lists(fl, min_size=n, max_size=n))
        b = data.draw(st.lists(fl, min_size=n, max_size=n))
        c = data.draw(st.lists(fl, min_size=n, max_size=n))
        for m in (l1, l2):
            assert m(a, c) <= m(a, b) + m(b, c) + 1e-6
