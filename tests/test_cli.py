"""CLI tests (driving repro.cli.main directly)."""

import os

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def corpus_dir(tmp_path):
    out = str(tmp_path / "corpus")
    rc = main(["demo-corpus", out, "--per-category", "1",
               "--shots", "2", "--frames-per-shot", "4", "--seed", "3"])
    assert rc == 0
    return out


@pytest.fixture()
def library(tmp_path, corpus_dir, capsys):
    lib = str(tmp_path / "lib.rdb")
    videos = sorted(
        os.path.join(corpus_dir, f) for f in os.listdir(corpus_dir)
    )
    rc = main(["ingest", lib] + videos)
    assert rc == 0
    capsys.readouterr()
    return lib


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestDemoCorpus:
    def test_writes_rvf_files(self, corpus_dir):
        files = sorted(os.listdir(corpus_dir))
        assert len(files) == 5  # one per category
        assert all(f.endswith(".rvf") for f in files)

    def test_deterministic(self, tmp_path):
        a, b = str(tmp_path / "a"), str(tmp_path / "b")
        main(["demo-corpus", a, "--per-category", "1", "--shots", "1",
              "--frames-per-shot", "2", "--seed", "9"])
        main(["demo-corpus", b, "--per-category", "1", "--shots", "1",
              "--frames-per-shot", "2", "--seed", "9"])
        for f in os.listdir(a):
            with open(os.path.join(a, f), "rb") as fa, open(os.path.join(b, f), "rb") as fb:
                assert fa.read() == fb.read()


class TestIngestAndList:
    def test_list_shows_videos(self, library, capsys):
        rc = main(["list", library])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cartoon_000" in out and "key frames" in out

    def test_category_inferred_from_name(self, library, capsys):
        main(["list", library])
        out = capsys.readouterr().out
        assert "sports" in out

    def test_ingest_missing_file(self, tmp_path, capsys):
        rc = main(["ingest", str(tmp_path / "x.rdb"), str(tmp_path / "nope.rvf")])
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_empty_library_list(self, tmp_path, capsys):
        rc = main(["list", str(tmp_path / "fresh.rdb")])
        assert rc == 0
        assert "empty" in capsys.readouterr().out


class TestSearch:
    def test_search_with_exported_frame(self, library, tmp_path, capsys):
        frame_path = str(tmp_path / "query.ppm")
        rc = main(["export-frame", library, "1", frame_path])
        assert rc == 0
        capsys.readouterr()

        rc = main(["search", library, frame_path, "--top-k", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "# 1" in out and "d=0.0" in out

    def test_search_single_feature_no_index(self, library, tmp_path, capsys):
        frame_path = str(tmp_path / "q.ppm")
        main(["export-frame", library, "1", frame_path])
        capsys.readouterr()
        rc = main(["search", library, frame_path, "--features", "sch", "--no-index"])
        assert rc == 0
        assert "pruned 0%" in capsys.readouterr().out

    def test_search_bad_image(self, library, tmp_path, capsys):
        bad = tmp_path / "bad.ppm"
        bad.write_bytes(b"garbage")
        rc = main(["search", library, str(bad)])
        assert rc == 1

    def test_unknown_feature(self, library, tmp_path, capsys):
        frame_path = str(tmp_path / "q.ppm")
        main(["export-frame", library, "1", frame_path])
        rc = main(["search", library, frame_path, "--features", "sift"])
        assert rc == 1


class TestDeleteAndExport:
    def test_delete(self, library, capsys):
        rc = main(["delete", library, "1"])
        assert rc == 0
        capsys.readouterr()
        main(["list", library])
        out = capsys.readouterr().out
        assert "   1  " not in out

    def test_delete_unknown(self, library, capsys):
        rc = main(["delete", library, "99"])
        assert rc == 1

    def test_export_unknown_frame(self, library, tmp_path):
        rc = main(["export-frame", library, "999", str(tmp_path / "o.ppm")])
        assert rc == 1

    def test_export_roundtrip(self, library, tmp_path):
        from repro.imaging.image import read_image

        out = str(tmp_path / "frame.bmp")
        rc = main(["export-frame", library, "1", out])
        assert rc == 0
        img = read_image(out)
        assert img.width > 0


class TestStats:
    def test_live_library_table(self, library, capsys):
        rc = main(["stats", library])
        assert rc == 0
        out = capsys.readouterr().out
        assert "store    videos=5" in out
        assert "ann      (disabled)" in out
        assert "repro_ingest_videos_total" not in out  # fresh open: no ingest

    def test_search_image_populates_query_metrics(self, library, tmp_path,
                                                  capsys):
        frame = str(tmp_path / "q.ppm")
        main(["export-frame", library, "1", frame])
        capsys.readouterr()
        rc = main(["stats", library, "--search-image", frame])
        assert rc == 0
        out = capsys.readouterr().out
        assert "repro_search_queries_total" in out

    def test_json_dump_roundtrip(self, library, tmp_path, capsys):
        import json

        rc = main(["stats", library, "--json"])
        assert rc == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["store"]["videos"] == 5

        dump = tmp_path / "metrics.json"
        dump.write_text(json.dumps(snapshot), encoding="utf-8")
        rc = main(["stats", "--dump", str(dump)])
        assert rc == 0
        out = capsys.readouterr().out
        # --json sorts keys, so field order differs from the live table
        assert "videos=5" in out and out.startswith("store")

    def test_requires_exactly_one_source(self, capsys, tmp_path):
        assert main(["stats"]) == 2
        assert "not both" in capsys.readouterr().err
        dump = tmp_path / "d.json"
        dump.write_text("{}", encoding="utf-8")
        assert main(["stats", "lib.rdb", "--dump", str(dump)]) == 2


class TestSnapshot:
    def test_write_info_verify(self, library, capsys):
        rc = main(["snapshot", "write", library])
        assert rc == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        snap = library + ".snap"
        assert os.path.exists(snap)

        rc = main(["snapshot", "info", snap])
        assert rc == 0
        out = capsys.readouterr().out
        assert "generation" in out and "feat:" in out

        rc = main(["snapshot", "verify", snap])
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_info_json(self, library, capsys):
        import json

        main(["snapshot", "write", library])
        capsys.readouterr()
        rc = main(["snapshot", "info", library + ".snap", "--json"])
        assert rc == 0
        info = json.loads(capsys.readouterr().out)
        assert info["version"] == 1
        assert info["wal_depth"] == 0
        assert any(s["name"].startswith("feat:") for s in info["sections"])

    def test_verify_rejects_corruption(self, library, capsys):
        from repro.snapshot import Snapshot

        main(["snapshot", "write", library])
        snap = library + ".snap"
        handle = Snapshot.open(snap)
        offset = int(handle._table[handle.section_names()[0]]["offset"])
        handle.close()
        with open(snap, "r+b") as fh:
            fh.seek(offset + 3)
            byte = fh.read(1)
            fh.seek(offset + 3)
            fh.write(bytes([byte[0] ^ 0xFF]))
        capsys.readouterr()
        rc = main(["snapshot", "verify", snap])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_snapshot_file(self, tmp_path, capsys):
        rc = main(["snapshot", "info", str(tmp_path / "nope.snap")])
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestShard:
    def test_split_info_and_identical_sharded_search(self, library, tmp_path,
                                                     capsys):
        shards = str(tmp_path / "shards")
        rc = main(["shard", "split", library, shards, "--shards", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "wrote 3 shards" in out
        assert "shard-000.snap" in out

        rc = main(["shard", "info", shards])
        assert rc == 0
        assert "3 shards" in capsys.readouterr().out

        frame = str(tmp_path / "q.ppm")
        main(["export-frame", library, "1", frame])
        capsys.readouterr()
        rc = main(["search", library, frame, "--top-k", "3"])
        assert rc == 0
        plain = capsys.readouterr().out
        rc = main(["search", library, frame, "--top-k", "3", "--shards", shards])
        assert rc == 0
        # scatter-gather output is byte-identical to the unsharded ranking
        assert capsys.readouterr().out == plain

    def test_info_json(self, library, tmp_path, capsys):
        import json

        shards = str(tmp_path / "s")
        main(["shard", "split", library, shards, "--shards", "2"])
        capsys.readouterr()
        rc = main(["shard", "info", shards, "--json"])
        assert rc == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["n_shards"] == 2
        assert sum(s["frames"] for s in summary["shards"]) > 0

    def test_search_rejects_ann_with_shards(self, library, tmp_path, capsys):
        shards = str(tmp_path / "s")
        main(["shard", "split", library, shards, "--shards", "2"])
        frame = str(tmp_path / "q.ppm")
        main(["export-frame", library, "1", frame])
        capsys.readouterr()
        rc = main(["search", library, frame, "--ann", "--shards", shards])
        assert rc == 2
        assert "--ann" in capsys.readouterr().err


class TestExplainFlag:
    def test_search_explain_prints_payload(self, library, tmp_path, capsys):
        import json

        frame = str(tmp_path / "q.ppm")
        main(["export-frame", library, "1", frame])
        capsys.readouterr()
        rc = main(["search", library, frame, "--top-k", "3", "--explain"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "explain:" in out
        explain = json.loads(out.split("explain:", 1)[1])
        assert explain["kind"] == "frame"
        assert explain["total_ms"] >= 0
        assert explain["index"]["used"] is True

    def test_search_without_flag_stays_terse(self, library, tmp_path, capsys):
        frame = str(tmp_path / "q.ppm")
        main(["export-frame", library, "1", frame])
        capsys.readouterr()
        rc = main(["search", library, frame, "--top-k", "3"])
        assert rc == 0
        assert "explain" not in capsys.readouterr().out


class TestSlowFlag:
    def test_live_default_threshold_records_nothing(self, library, capsys):
        rc = main(["stats", library, "--slow"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "slow queries: 0 recorded" in out

    def test_dump_mode_prints_entries(self, tmp_path, capsys):
        import json

        dump = tmp_path / "metrics.json"
        dump.write_text(json.dumps({
            "store": {"videos": 1, "key_frames": 3, "generation": 1},
            "slow_log": {
                "threshold_ms": 5.0, "capacity": 8,
                "recorded_total": 2, "buffered": 1,
                "recent": [{
                    "ts": 0.0, "ms": 12.5, "kind": "frame",
                    "trace_id": "ab" * 16, "candidates": 9,
                    "degraded": False,
                }],
            },
        }), encoding="utf-8")
        rc = main(["stats", "--dump", str(dump), "--slow"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "slow queries: 2 recorded" in out
        assert "kind=frame" in out
        assert "ab" * 16 in out

    def test_dump_mode_disabled_log(self, tmp_path, capsys):
        import json

        dump = tmp_path / "metrics.json"
        dump.write_text(json.dumps({
            "store": {"videos": 0, "key_frames": 0, "generation": 0},
            "slow_log": None,
        }), encoding="utf-8")
        rc = main(["stats", "--dump", str(dump), "--slow"])
        assert rc == 0
        assert "(log disabled)" in capsys.readouterr().out
