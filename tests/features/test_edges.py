"""Edge histogram descriptor tests (extension feature)."""

import numpy as np
import pytest

from repro.features.edges import EdgeHistogram, edge_type_map
from repro.imaging.image import Image
from repro.imaging.synthetic import stripes


def _stripe_image(angle, period=8):
    return Image.from_array(stripes(64, 64, period=period, angle_deg=angle))


class TestEdgeTypeMap:
    def test_flat_image_no_edges(self):
        types = edge_type_map(np.full((16, 16), 90.0))
        assert (types == -1).all()

    def test_vertical_edges_detected(self):
        img = stripes(32, 32, period=8, angle_deg=0.0)  # varies along x
        types = edge_type_map(img)
        found = types[types >= 0]
        assert found.size > 0
        # vertical-edge filter (index 0) dominates
        assert np.bincount(found, minlength=5).argmax() == 0

    def test_horizontal_edges_detected(self):
        img = stripes(32, 32, period=8, angle_deg=90.0)
        types = edge_type_map(img)
        found = types[types >= 0]
        assert np.bincount(found, minlength=5).argmax() == 1

    def test_diagonal_edges_detected(self):
        img = stripes(64, 64, period=10, angle_deg=45.0)
        types = edge_type_map(img)
        found = types[types >= 0]
        # one of the two diagonal filters must dominate
        assert np.bincount(found, minlength=5).argmax() in (2, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            edge_type_map(np.zeros((4, 4, 3)))
        with pytest.raises(ValueError):
            edge_type_map(np.zeros((1, 10)))


class TestExtractor:
    def test_80_dims(self, noise_image):
        fv = EdgeHistogram().extract(noise_image)
        assert len(fv) == 80
        assert fv.tag == "EHD"

    def test_values_are_fractions(self, noise_image):
        fv = EdgeHistogram().extract(noise_image)
        assert np.all(fv.values >= 0) and np.all(fv.values <= 1)
        # per-cell histograms can't sum above 1 (edgeless blocks drop out)
        cells = fv.values.reshape(16, 5)
        assert np.all(cells.sum(axis=1) <= 1 + 1e-9)

    def test_flat_image_all_zero(self):
        fv = EdgeHistogram().extract(Image.blank(32, 32, (70, 70, 70)))
        assert np.all(fv.values == 0)

    def test_orientation_discrimination(self):
        ex = EdgeHistogram()
        v0 = ex.extract(_stripe_image(0.0))
        v0b = ex.extract(_stripe_image(0.0, period=10))
        v90 = ex.extract(_stripe_image(90.0))
        assert ex.distance(v0, v0b) < ex.distance(v0, v90)

    def test_spatial_layout_captured(self):
        # edges only in the top half vs only in the bottom half
        top = np.full((64, 64), 100.0)
        top[:32] = stripes(64, 32, period=6)
        bottom = np.full((64, 64), 100.0)
        bottom[32:] = stripes(64, 32, period=6)
        ex = EdgeHistogram()
        d = ex.distance(
            ex.extract(Image.from_array(top)), ex.extract(Image.from_array(bottom))
        )
        assert d > 0.5

    def test_resolution_independent(self):
        # bilinear upscale: nearest-neighbour integer upscaling would create
        # constant 2x2 blocks (pixel doubling) and legitimately erase the
        # block-level edges the descriptor measures
        from repro.imaging.resize import resize

        img = _stripe_image(0.0)
        big = resize(img, 128, 128, "bilinear")
        ex = EdgeHistogram()
        d = ex.distance(ex.extract(img), ex.extract(big))
        # upscaling halves gradient magnitude, so some blocks drop below the
        # edge threshold; the histogram may thin but not change character
        assert d < 8.0  # max possible is 32
        # and the dominant edge type stays vertical in both
        for fv in (ex.extract(img), ex.extract(big)):
            cells = fv.values.reshape(16, 5)
            assert cells.sum(axis=0).argmax() == 0

    def test_custom_grid(self, noise_image):
        fv = EdgeHistogram(grid=2).extract(noise_image)
        assert len(fv) == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            EdgeHistogram(grid=0)

    def test_registered(self):
        from repro.features.base import get_extractor

        assert isinstance(get_extractor("ehd"), EdgeHistogram)

    def test_system_integration(self, small_corpus):
        from repro.core.config import SystemConfig
        from repro.core.system import VideoRetrievalSystem

        config = SystemConfig(features=("sch", "ehd"))
        system = VideoRetrievalSystem.in_memory(config)
        system.admin.add_video(small_corpus[0])
        results = system.search(system.any_key_frame(), top_k=1)
        assert "ehd" in results[0].per_feature
        # the feature string survives the DB roundtrip
        row = system.db.execute("SELECT EHD FROM KEY_FRAMES WHERE I_ID = 1").scalar()
        assert row.startswith("EHD 80 ")
