"""Tamura texture tests."""

import numpy as np
import pytest

from repro.features.tamura import (
    TamuraTexture,
    coarseness,
    directionality,
    tamura_contrast,
)
from repro.imaging.image import Image
from repro.imaging.synthetic import checkerboard, stripes


class TestCoarseness:
    def test_coarse_texture_scores_higher(self):
        fine = checkerboard(64, 64, cell=2)
        coarse = checkerboard(64, 64, cell=16)
        assert coarseness(coarse) > coarseness(fine)

    def test_range(self):
        gen = np.random.default_rng(0)
        c = coarseness(gen.integers(0, 256, (32, 32)).astype(float))
        assert 2.0 <= c <= 2.0**5

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            coarseness(np.zeros((4, 4, 3)))


class TestContrast:
    def test_constant_image_zero(self):
        assert tamura_contrast(np.full((8, 8), 77.0)) == 0.0

    def test_high_contrast_beats_low(self):
        lo = np.full((16, 16), 100.0)
        lo[:, ::2] = 110.0
        hi = np.full((16, 16), 0.0)
        hi[:, ::2] = 255.0
        assert tamura_contrast(hi) > tamura_contrast(lo)

    def test_bimodal_value(self):
        # half 0, half 255: sigma = 127.5, kurtosis alpha4 = 1 -> contrast 127.5
        a = np.zeros((2, 8))
        a[:, 4:] = 255.0
        assert tamura_contrast(a) == pytest.approx(127.5)


class TestDirectionality:
    def test_vertical_stripes_concentrate_histogram(self):
        img = stripes(64, 64, period=8, angle_deg=0.0)
        hist = directionality(img)
        assert hist.sum() > 0
        # most mass in one dominant bin neighbourhood
        top2 = np.sort(hist)[-2:].sum()
        assert top2 / hist.sum() > 0.6

    def test_rotation_moves_peak(self):
        h0 = directionality(stripes(64, 64, period=8, angle_deg=0.0))
        h90 = directionality(stripes(64, 64, period=8, angle_deg=90.0))
        assert np.argmax(h0) != np.argmax(h90)

    def test_flat_image_empty_histogram(self):
        assert directionality(np.full((16, 16), 50.0)).sum() == 0


class TestExtractor:
    def test_vector_layout(self, noise_image):
        fv = TamuraTexture().extract(noise_image)
        assert len(fv) == 18
        assert fv.tag == "Tamura"
        assert fv.values[0] > 0  # coarseness
        assert fv.values[1] > 0  # contrast on a noisy image

    def test_custom_bins(self, noise_image):
        fv = TamuraTexture(bins=8).extract(noise_image)
        assert len(fv) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            TamuraTexture(bins=1)

    def test_texture_discrimination(self):
        ex = TamuraTexture()
        fine = Image.from_array(checkerboard(64, 64, cell=2))
        fine2 = Image.from_array(checkerboard(64, 64, cell=3))
        coarse = Image.from_array(checkerboard(64, 64, cell=16))
        d_near = ex.distance(ex.extract(fine), ex.extract(fine2))
        d_far = ex.distance(ex.extract(fine), ex.extract(coarse))
        assert d_near < d_far
