"""Feature framework tests: vectors, string round-trip, registry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features.base import (
    FeatureExtractor,
    FeatureVector,
    all_extractors,
    default_extractors,
    get_extractor,
    parse_feature_string,
)


class TestFeatureVector:
    def test_basic(self):
        fv = FeatureVector(kind="glcm", values=np.array([1.0, 2.0]))
        assert len(fv) == 2
        assert fv.tag == "glcm"  # defaults to kind

    def test_custom_tag(self):
        fv = FeatureVector(kind="sch", values=np.zeros(3), tag="RGB")
        assert fv.to_string().startswith("RGB 3 ")

    def test_values_immutable(self):
        fv = FeatureVector(kind="x", values=np.array([1.0]))
        with pytest.raises(ValueError):
            fv.values[0] = 2.0

    def test_equality_and_hash(self):
        a = FeatureVector(kind="x", values=np.array([1.0, 2.0]))
        b = FeatureVector(kind="x", values=np.array([1.0, 2.0]))
        c = FeatureVector(kind="y", values=np.array([1.0, 2.0]))
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_string_roundtrip_exact(self):
        values = np.array([0.1, -3.5e-17, 1e300, 42.0, 0.0])
        fv = FeatureVector(kind="t", values=values, tag="Tamura")
        rt = FeatureVector.from_string("t", fv.to_string())
        assert np.array_equal(rt.values, values)
        assert rt.tag == "Tamura"

    def test_from_string_validates_count(self):
        with pytest.raises(ValueError):
            FeatureVector.from_string("x", "TAG 3 1.0 2.0")

    def test_from_string_rejects_garbage(self):
        with pytest.raises(ValueError):
            FeatureVector.from_string("x", "TAG")
        with pytest.raises(ValueError):
            FeatureVector.from_string("x", "TAG notanumber 1.0")

    def test_parse_alias(self):
        fv = FeatureVector(kind="x", values=np.array([5.0]))
        assert parse_feature_string("x", fv.to_string()) == fv

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.floats(allow_nan=False, allow_infinity=False, width=64),
            min_size=0,
            max_size=40,
        )
    )
    def test_roundtrip_property(self, values):
        fv = FeatureVector(kind="p", values=np.array(values, dtype=np.float64))
        rt = FeatureVector.from_string("p", fv.to_string())
        assert np.array_equal(rt.values, fv.values)


class TestRegistry:
    def test_all_eight_registered(self):
        assert all_extractors() == [
            "acc", "ehd", "gabor", "glcm", "naive", "regions", "sch", "tamura",
        ]

    def test_get_by_name(self):
        ex = get_extractor("glcm")
        assert ex.name == "glcm"

    def test_get_with_kwargs(self):
        ex = get_extractor("acc", max_distance=2)
        assert ex.max_distance == 2

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_extractor("sift")

    def test_default_extractors_subset(self):
        exs = default_extractors(["sch", "gabor"])
        assert [e.name for e in exs] == ["sch", "gabor"]

    def test_default_extractors_all(self):
        assert len(default_extractors()) == 8


class TestDistanceValidation:
    def test_kind_mismatch_rejected(self):
        ex = get_extractor("glcm")
        a = FeatureVector(kind="glcm", values=np.zeros(6))
        b = FeatureVector(kind="sch", values=np.zeros(6))
        with pytest.raises(ValueError):
            ex.distance(a, b)

    def test_length_mismatch_rejected(self):
        ex = get_extractor("glcm")
        a = FeatureVector(kind="glcm", values=np.zeros(6))
        b = FeatureVector(kind="glcm", values=np.zeros(5))
        with pytest.raises(ValueError):
            ex.distance(a, b)


class TestAbstract:
    def test_extractor_is_abstract(self):
        with pytest.raises(TypeError):
            FeatureExtractor()
