"""Properties every extractor must satisfy (parametrized across all seven)."""

import numpy as np
import pytest

from repro.features.base import FeatureVector, all_extractors, get_extractor
from repro.imaging.image import Image

ALL = all_extractors()


@pytest.fixture(scope="module")
def images():
    gen = np.random.default_rng(42)
    return {
        "noise": Image(gen.integers(0, 256, (32, 40, 3), dtype=np.uint8)),
        "noise2": Image(gen.integers(0, 256, (32, 40, 3), dtype=np.uint8)),
        "flat": Image.blank(40, 32, (120, 60, 30)),
    }


@pytest.mark.parametrize("name", ALL)
class TestExtractorContract:
    def test_returns_feature_vector_of_right_kind(self, name, images):
        fv = get_extractor(name).extract(images["noise"])
        assert isinstance(fv, FeatureVector)
        assert fv.kind == name
        assert len(fv) > 0
        assert np.all(np.isfinite(fv.values))

    def test_deterministic(self, name, images):
        ex = get_extractor(name)
        a = ex.extract(images["noise"])
        b = ex.extract(images["noise"])
        assert a == b

    def test_self_distance_zero(self, name, images):
        ex = get_extractor(name)
        fv = ex.extract(images["noise"])
        assert ex.distance(fv, fv) == pytest.approx(0.0, abs=1e-9)

    def test_distance_symmetric(self, name, images):
        ex = get_extractor(name)
        a = ex.extract(images["noise"])
        b = ex.extract(images["noise2"])
        assert ex.distance(a, b) == pytest.approx(ex.distance(b, a))

    def test_distance_non_negative(self, name, images):
        ex = get_extractor(name)
        a = ex.extract(images["noise"])
        b = ex.extract(images["flat"])
        assert ex.distance(a, b) >= 0.0

    def test_string_roundtrip_preserves_distance(self, name, images):
        ex = get_extractor(name)
        a = ex.extract(images["noise"])
        b = ex.extract(images["flat"])
        a_rt = FeatureVector.from_string(name, a.to_string())
        assert ex.distance(a_rt, b) == pytest.approx(ex.distance(a, b))

    def test_gray_input_accepted(self, name, images):
        gray = images["noise"].to_gray()
        fv = get_extractor(name).extract(gray)
        assert len(fv) > 0

    def test_vector_length_stable_across_image_sizes(self, name):
        gen = np.random.default_rng(1)
        small = Image(gen.integers(0, 256, (24, 24, 3), dtype=np.uint8))
        large = Image(gen.integers(0, 256, (48, 64, 3), dtype=np.uint8))
        ex = get_extractor(name)
        assert len(ex.extract(small)) == len(ex.extract(large))
