"""§4.8 region growing tests (with scipy.ndimage as an independent oracle)."""

import numpy as np
import pytest
import scipy.ndimage as ndi

from repro.features.regions import (
    RegionGrowingResult,
    SimpleRegionGrowing,
    label_regions,
    preprocess_binary,
)
from repro.imaging.draw import Canvas
from repro.imaging.image import Image


class TestLabelRegions:
    def test_all_ones_single_region(self):
        r = label_regions(np.ones((5, 5), dtype=bool))
        assert r.n_regions == 1
        assert r.n_holes == 0
        assert r.region_sizes == {1: 25}

    def test_all_zeros_single_hole(self):
        r = label_regions(np.zeros((5, 5), dtype=bool))
        assert r.n_regions == 1
        assert r.n_holes == 1

    def test_two_separate_blobs(self):
        a = np.zeros((10, 10), dtype=bool)
        a[1:3, 1:3] = True
        a[6:9, 6:9] = True
        r = label_regions(a)
        # 2 foreground blobs + 1 background component
        assert r.n_regions == 3
        assert r.n_holes == 1
        assert sorted(r.region_sizes.values()) == [4, 9, 87]

    def test_8_connectivity_joins_diagonals(self):
        a = np.zeros((4, 4), dtype=bool)
        a[0, 0] = a[1, 1] = True
        r8 = label_regions(a, connectivity=8)
        r4 = label_regions(a, connectivity=4)
        fg8 = [s for lbl, s in r8.region_sizes.items()]
        assert r8.n_regions == r8.n_holes + 1  # diagonal pair joined
        assert r4.n_regions > r8.n_regions  # 4-conn splits them

    def test_interior_hole_counted(self):
        a = np.ones((7, 7), dtype=bool)
        a[3, 3] = False
        r = label_regions(a)
        assert r.n_regions == 2
        assert r.n_holes == 1

    def test_labels_cover_image(self):
        gen = np.random.default_rng(0)
        a = gen.random((12, 12)) > 0.5
        r = label_regions(a)
        assert (r.labels > 0).all()
        assert sum(r.region_sizes.values()) == a.size

    def test_matches_scipy_label_counts(self):
        """Cross-check against scipy.ndimage.label on random masks."""
        gen = np.random.default_rng(42)
        structure = np.ones((3, 3))  # 8-connectivity
        for _ in range(5):
            a = gen.random((20, 20)) > 0.55
            ours = label_regions(a, connectivity=8)
            _lbl_fg, n_fg = ndi.label(a, structure=structure)
            _lbl_bg, n_bg = ndi.label(~a, structure=structure)
            assert ours.n_regions == n_fg + n_bg
            assert ours.n_holes == n_bg

    def test_major_regions_threshold(self):
        a = np.zeros((10, 10), dtype=bool)
        a[0:6, 0:6] = True  # 36 px
        a[8, 8] = True  # 1 px
        r = label_regions(a)
        assert r.major_regions(min_pixels=10) == 2  # big blob + background
        assert r.major_regions(min_pixels=40) == 1  # only background (63 px)

    def test_validation(self):
        with pytest.raises(ValueError):
            label_regions(np.zeros((3, 3, 3)))
        with pytest.raises(ValueError):
            label_regions(np.zeros((3, 3)), connectivity=6)


class TestPreprocess:
    def test_binarizes_bimodal_scene(self):
        c = Canvas(40, 30, background=(20, 20, 20))
        c.rect(10, 8, 30, 22, (230, 230, 230))
        binary = preprocess_binary(c.to_image())
        assert binary[15, 20]  # inside the bright rect
        assert not binary[2, 2]  # dark background

    def test_morphology_removes_speckle(self):
        c = Canvas(40, 30, background=(10, 10, 10))
        c.rect(10, 8, 30, 22, (240, 240, 240))
        img = c.to_image().pixels.copy()
        img = np.ascontiguousarray(img)
        img[2, 2] = [250, 250, 250]  # single bright speckle
        binary = preprocess_binary(Image(img))
        assert not binary[2, 2]


class TestExtractor:
    def test_feature_layout(self):
        c = Canvas(40, 30, background=(15, 15, 15))
        c.rect(5, 5, 18, 25, (240, 240, 240))
        c.circle(30, 15, 6, (240, 240, 240))
        fv = SimpleRegionGrowing().extract(c.to_image())
        n_regions, n_holes, major = fv.values
        assert n_regions >= 3  # two shapes + background
        assert n_holes >= 1
        assert major >= 2

    def test_analyze_returns_result(self, gradient_image):
        result = SimpleRegionGrowing().analyze(gradient_image)
        assert isinstance(result, RegionGrowingResult)
        assert result.n_regions >= 1

    def test_counts_scale_with_scene_complexity(self):
        simple = Canvas(40, 40, background=(10, 10, 10))
        simple.rect(10, 10, 30, 30, (240, 240, 240))
        busy = Canvas(40, 40, background=(10, 10, 10))
        for i in range(4):
            busy.rect(2 + i * 10, 4, 8 + i * 10, 14, (240, 240, 240))
            busy.rect(2 + i * 10, 24, 8 + i * 10, 34, (240, 240, 240))
        ex = SimpleRegionGrowing()
        assert ex.extract(busy.to_image()).values[0] > ex.extract(simple.to_image()).values[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            SimpleRegionGrowing(major_fraction=0.0)
        with pytest.raises(ValueError):
            SimpleRegionGrowing(major_fraction=1.5)
