"""Property tests: the VARCHAR2 string form is lossless, and never admits
non-finite values (the satellite hardening of FeatureVector.from_string).

Two layers:

- pure FeatureVector round-trips over arbitrary finite float arrays
  (hypothesis-generated);
- every registered extractor's real output on synthetic frames survives
  to_string -> from_string bit-exactly, which is what the DB layer does on
  every ingest/reload cycle.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features.base import FeatureVector, all_extractors, get_extractor
from repro.imaging.image import Image
from repro.imaging.synthetic import checkerboard, smooth_noise, stripes

finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)


@given(st.lists(finite_floats, min_size=1, max_size=64))
def test_feature_vector_roundtrip_is_lossless(values):
    fv = FeatureVector(kind="prop", values=np.array(values), tag="PROP")
    restored = FeatureVector.from_string("prop", fv.to_string())
    assert restored == fv
    assert restored.tag == "PROP"


@given(st.lists(finite_floats, min_size=1, max_size=8))
def test_double_roundtrip_is_stable(values):
    """One round-trip reaches a fixed point: string form of the restored
    vector is identical to the original string."""
    fv = FeatureVector(kind="prop", values=np.array(values))
    text = fv.to_string()
    assert FeatureVector.from_string("prop", text).to_string() == text


def _synthetic_frame(seed: int) -> Image:
    """A 32x40 RGB frame mixing the corpus generator's building blocks."""
    rng = np.random.default_rng(seed)
    channels = [
        smooth_noise(40, 32, sigma=1.5, rng=rng),
        stripes(40, 32, period=5 + seed % 4),
        checkerboard(40, 32, cell=4 + seed % 3),
    ]
    arr = np.stack(channels, axis=-1)
    return Image(arr.astype(np.uint8))


@pytest.mark.parametrize("name", all_extractors())
@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_every_extractor_output_roundtrips(name, seed):
    extractor = get_extractor(name)
    fv = extractor.extract(_synthetic_frame(seed))
    restored = FeatureVector.from_string(name, fv.to_string())
    assert restored == fv
    assert restored.tag == fv.tag
    assert np.array_equal(restored.values, fv.values)


class TestNonFiniteRejection:
    def test_nan_token_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            FeatureVector.from_string("glcm", "GLCM 3 1.0 nan 2.0")

    @pytest.mark.parametrize("token", ["inf", "-inf", "Infinity", "-Infinity"])
    def test_infinite_tokens_rejected(self, token):
        with pytest.raises(ValueError, match="non-finite"):
            FeatureVector.from_string("glcm", f"GLCM 2 {token} 1.0")

    def test_non_numeric_token_has_clear_error(self):
        with pytest.raises(ValueError, match="non-numeric"):
            FeatureVector.from_string("glcm", "GLCM 2 1.0 bogus")

    def test_error_names_the_offending_tokens(self):
        with pytest.raises(ValueError, match="nan"):
            FeatureVector.from_string("sch", "RGB 2 nan 1.0")

    def test_finite_values_still_parse(self):
        fv = FeatureVector.from_string("sch", "RGB 3 0.0 -1.5 1e300")
        assert np.array_equal(fv.values, [0.0, -1.5, 1e300])
