"""§4.7 auto color correlogram tests."""

import numpy as np
import pytest

from repro.features.correlogram import (
    AutoColorCorrelogram,
    correlogram_counts,
    ring_offsets,
)
from repro.imaging.image import Image


class TestRingOffsets:
    @pytest.mark.parametrize("d", [1, 2, 3, 4])
    def test_ring_size_is_8d(self, d):
        offsets = ring_offsets(d)
        assert len(offsets) == 8 * d
        assert len(set(offsets)) == len(offsets)  # no duplicates

    def test_all_at_linf_distance_d(self):
        for d in (1, 3):
            for dx, dy in ring_offsets(d):
                assert max(abs(dx), abs(dy)) == d

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            ring_offsets(0)


class TestCounts:
    def test_solid_image_counts(self):
        # 4x4 solid color: pairs at distance 1 = sum over pixels of in-image
        # ring-1 neighbours; corner pixels have 3, edges 5, center 8
        q = np.zeros((4, 4), dtype=np.int64)
        counts = correlogram_counts(q, n_colors=2, max_distance=1)
        expected = 4 * 3 + 8 * 5 + 4 * 8  # corners, edges, interior
        assert counts[0, 0] == expected
        assert counts[1, 0] == 0

    def test_two_color_no_cross_pairs(self):
        q = np.zeros((2, 4), dtype=np.int64)
        q[:, 2:] = 1
        counts = correlogram_counts(q, n_colors=2, max_distance=1)
        # colors only pair with themselves; both halves are 2x2 blocks
        assert counts[0, 0] == counts[1, 0] > 0

    def test_hand_computed_1x2(self):
        q = np.array([[0, 0]], dtype=np.int64)
        counts = correlogram_counts(q, n_colors=1, max_distance=1)
        assert counts[0, 0] == 2  # each pixel sees the other

    def test_validation(self):
        with pytest.raises(ValueError):
            correlogram_counts(np.zeros((4,), dtype=np.int64), 2, 1)


class TestExtractor:
    def test_dimensions(self, noise_image):
        fv = AutoColorCorrelogram().extract(noise_image)
        assert len(fv) == 64 * 4
        assert fv.tag == "ACC"

    def test_max_normalization_bounds(self, noise_image):
        fv = AutoColorCorrelogram(normalization="max").extract(noise_image)
        assert fv.values.min() >= 0.0
        assert fv.values.max() <= 1.0 + 1e-12

    def test_probability_normalization_bounds(self, noise_image):
        fv = AutoColorCorrelogram(normalization="probability").extract(noise_image)
        assert fv.values.min() >= 0.0
        assert fv.values.max() <= 1.0 + 1e-12

    def test_solid_image_probability_interior(self):
        # on a large solid image most pixels have full rings: probability ~ 1
        img = Image.blank(32, 32, (200, 0, 0))
        fv = AutoColorCorrelogram(normalization="probability").extract(img)
        corr = fv.values.reshape(64, 4)
        occupied = corr[corr.sum(axis=1) > 0]
        assert occupied.shape[0] == 1  # one color present
        assert occupied[0, 0] > 0.85

    def test_spatial_structure_distinguishes_same_histogram(self):
        """Two images with the same color *histogram* but different layout
        must differ in the correlogram -- the paper's §4.7 motivation."""
        # clustered: left half red, right half blue
        clustered = np.zeros((16, 16, 3), dtype=np.uint8)
        clustered[:, :8, 0] = 255
        clustered[:, 8:, 2] = 255
        # interleaved columns: same 50/50 histogram, different adjacency
        striped = np.zeros((16, 16, 3), dtype=np.uint8)
        striped[:, ::2, 0] = 255
        striped[:, 1::2, 2] = 255
        ex = AutoColorCorrelogram(normalization="probability")
        d = ex.distance(ex.extract(Image(clustered)), ex.extract(Image(striped)))
        assert d > 0.5

    def test_custom_distance_count(self, noise_image):
        fv = AutoColorCorrelogram(max_distance=2).extract(noise_image)
        assert len(fv) == 64 * 2

    def test_validation(self):
        with pytest.raises(ValueError):
            AutoColorCorrelogram(max_distance=0)
        with pytest.raises(ValueError):
            AutoColorCorrelogram(normalization="l2")
