"""§4.6 naive signature tests."""

import numpy as np
import pytest

from repro.features.naive import NaiveSignature
from repro.imaging.image import Image


class TestNaiveSignature:
    def test_75_dims(self, gradient_image):
        fv = NaiveSignature().extract(gradient_image)
        assert len(fv) == 75
        assert fv.tag == "NaiveVector"

    def test_flat_image_constant_signature(self):
        fv = NaiveSignature().extract(Image.blank(20, 20, (9, 90, 200)))
        points = fv.values.reshape(25, 3)
        assert np.allclose(points, [9, 90, 200])

    def test_captures_spatial_layout(self):
        top = np.zeros((20, 20, 3), dtype=np.uint8)
        top[:10] = 255
        bottom = np.zeros((20, 20, 3), dtype=np.uint8)
        bottom[10:] = 255
        ex = NaiveSignature()
        ft = ex.extract(Image(top)).values.reshape(5, 5, 3)
        fb = ex.extract(Image(bottom)).values.reshape(5, 5, 3)
        assert ft[0].mean() > ft[4].mean()  # bright top rows
        assert fb[4].mean() > fb[0].mean()

    def test_distance_matches_keyframe_distance(self, gradient_image, noise_image):
        from repro.video.keyframes import frame_signature_distance

        ex = NaiveSignature()
        d_feature = ex.distance(ex.extract(gradient_image), ex.extract(noise_image))
        d_keyframe = frame_signature_distance(gradient_image, noise_image)
        assert d_feature == pytest.approx(d_keyframe)

    def test_grid_configurable(self, gradient_image):
        fv = NaiveSignature(grid=3).extract(gradient_image)
        assert len(fv) == 27

    def test_validation(self):
        with pytest.raises(ValueError):
            NaiveSignature(grid=0)
