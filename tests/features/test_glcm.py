"""§4.3 GLCM texture tests with hand-computed references."""

import numpy as np
import pytest

from repro.features.glcm import GlcmTexture, glcm_matrix, glcm_statistics
from repro.imaging.image import Image


class TestGlcmMatrix:
    def test_normalized(self):
        gen = np.random.default_rng(0)
        g = gen.integers(0, 256, (10, 12), dtype=np.uint8)
        m = glcm_matrix(g)
        assert m.sum() == pytest.approx(1.0)
        assert np.all(m >= 0)

    def test_symmetric(self):
        gen = np.random.default_rng(1)
        g = gen.integers(0, 256, (8, 8), dtype=np.uint8)
        m = glcm_matrix(g)
        assert np.allclose(m, m.T)

    def test_constant_image_single_entry(self):
        g = np.full((5, 5), 42, dtype=np.uint8)
        m = glcm_matrix(g)
        assert m[42, 42] == pytest.approx(1.0)

    def test_hand_computed_two_level(self):
        # one row [0, 1]: single horizontal pair (0,1), symmetric -> both
        # (0,1) and (1,0) get probability 0.5
        g = np.array([[0, 1]], dtype=np.uint8)
        m = glcm_matrix(g)
        assert m[0, 1] == pytest.approx(0.5)
        assert m[1, 0] == pytest.approx(0.5)
        assert m[0, 0] == 0 and m[1, 1] == 0

    def test_step_two(self):
        g = np.array([[0, 5, 0, 5]], dtype=np.uint8)
        m = glcm_matrix(g, step=2)
        # pairs at distance 2: (0,0) and (5,5)
        assert m[0, 0] == pytest.approx(0.5)
        assert m[5, 5] == pytest.approx(0.5)
        assert m[0, 5] == 0

    def test_reduced_levels(self):
        gen = np.random.default_rng(2)
        g = gen.integers(0, 256, (6, 6), dtype=np.uint8)
        m = glcm_matrix(g, levels=8)
        assert m.shape == (8, 8)
        assert m.sum() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            glcm_matrix(np.zeros((4, 4, 3)))
        with pytest.raises(ValueError):
            glcm_matrix(np.zeros((4, 4), dtype=np.uint8), step=4)


class TestStatistics:
    def test_constant_image_statistics(self):
        m = glcm_matrix(np.full((6, 6), 100, dtype=np.uint8))
        s = glcm_statistics(m)
        assert s["asm"] == pytest.approx(1.0)  # single cell with prob 1
        assert s["contrast"] == pytest.approx(0.0)
        assert s["idm"] == pytest.approx(1.0)
        assert s["entropy"] == pytest.approx(0.0)

    def test_checkerboard_contrast(self):
        # alternating 0/255 horizontally: every pair differs by 255
        g = np.zeros((4, 8), dtype=np.uint8)
        g[:, 1::2] = 255
        s = glcm_statistics(glcm_matrix(g))
        assert s["contrast"] == pytest.approx(255.0**2)
        assert s["idm"] == pytest.approx(1.0 / (1 + 255.0**2))

    def test_correlation_range(self):
        gen = np.random.default_rng(3)
        g = gen.integers(0, 256, (16, 16), dtype=np.uint8)
        s = glcm_statistics(glcm_matrix(g))
        assert -1.0 <= s["correlation"] <= 1.0

    def test_smooth_image_high_correlation(self):
        # horizontal ramp: neighbours are almost equal -> correlation ~ 1
        g = np.tile(np.arange(64, dtype=np.uint8) * 4, (8, 1))
        s = glcm_statistics(glcm_matrix(g))
        assert s["correlation"] > 0.9

    def test_paper_exact_correlation_differs(self):
        g = np.tile(np.arange(32, dtype=np.uint8) * 8, (4, 1))
        m = glcm_matrix(g)
        standard = glcm_statistics(m)["correlation"]
        paper = glcm_statistics(m, paper_exact=True)["correlation"]
        # the paper divides by the variance *product*, giving a tiny value
        assert abs(paper) < abs(standard)


class TestExtractor:
    def test_vector_layout(self, noise_image):
        fv = GlcmTexture().extract(noise_image)
        assert len(fv) == 6
        # pixelCounter = 2 * (300 - 1) * 300 after the paper's 300x300 rescale
        assert fv.values[0] == 2 * 299 * 300

    def test_no_preprocess_uses_native_size(self, noise_image):
        fv = GlcmTexture(preprocess=False).extract(noise_image)
        w, h = noise_image.width, noise_image.height
        assert fv.values[0] == 2 * (w - 1) * h

    def test_distinguishes_smooth_from_noisy(self):
        gen = np.random.default_rng(5)
        noisy = Image(gen.integers(0, 256, (32, 32), dtype=np.uint8))
        smooth = Image.from_array(np.tile(np.linspace(0, 255, 32), (32, 1)))
        ex = GlcmTexture(preprocess=False)
        f_noisy = ex.extract(noisy)
        f_smooth = ex.extract(smooth)
        # smooth image: higher IDM (index 4), lower contrast (index 2)
        assert f_smooth.values[4] > f_noisy.values[4]
        assert f_smooth.values[2] < f_noisy.values[2]

    def test_validation(self):
        with pytest.raises(ValueError):
            GlcmTexture(levels=1)
