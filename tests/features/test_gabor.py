"""§4.4 Gabor texture tests: filter bank structure + orientation/scale selectivity."""

import numpy as np
import pytest

from repro.features.gabor import GaborTexture, gabor_filter_bank, gabor_responses
from repro.imaging.image import Image
from repro.imaging.synthetic import stripes


def _stripe_image(period, angle):
    return Image.from_array(stripes(64, 64, period=period, angle_deg=angle))


class TestFilterBank:
    def test_shape_and_positivity(self):
        bank = gabor_filter_bank((32, 48), scales=5, orientations=6)
        assert bank.shape == (30, 32, 48)
        assert np.all(bank >= 0) and np.all(bank <= 1.0 + 1e-12)

    def test_each_filter_peaks_at_its_frequency(self):
        bank = gabor_filter_bank((64, 64), scales=3, orientations=4)
        for i in range(bank.shape[0]):
            assert bank[i].max() > 0.9  # peak close to 1 on the grid

    def test_validation(self):
        with pytest.raises(ValueError):
            gabor_filter_bank((8, 8), scales=1)
        with pytest.raises(ValueError):
            gabor_filter_bank((8, 8), orientations=0)
        with pytest.raises(ValueError):
            gabor_filter_bank((8, 8), ul=0.5, uh=0.4)


class TestResponses:
    def test_shape(self):
        gen = np.random.default_rng(0)
        mags = gabor_responses(gen.normal(size=(32, 32)))
        assert mags.shape == (30, 32, 32)
        assert np.all(mags >= 0)

    def test_orientation_selectivity(self):
        """Vertical stripes must excite the 0-degree filter (variation along
        x) far more than the 90-degree filter."""
        img = stripes(64, 64, period=8, angle_deg=0.0)  # varies along x
        mags = gabor_responses(img, scales=3, orientations=4)
        # orientation index 0 = theta 0 (u along x); index 2 = theta 90
        energy = mags.mean(axis=(1, 2)).reshape(3, 4)
        horizontal_energy = energy[:, 0].max()
        vertical_energy = energy[:, 2].max()
        assert horizontal_energy > 3 * vertical_energy

    def test_scale_selectivity(self):
        fine = stripes(64, 64, period=4, angle_deg=0.0)
        coarse = stripes(64, 64, period=16, angle_deg=0.0)
        m_fine = gabor_responses(fine, scales=5, orientations=4).mean(axis=(1, 2)).reshape(5, 4)[:, 0]
        m_coarse = gabor_responses(coarse, scales=5, orientations=4).mean(axis=(1, 2)).reshape(5, 4)[:, 0]
        # scales ascend in frequency: fine texture peaks at a higher-frequency
        # scale than coarse texture
        assert np.argmax(m_fine) > np.argmax(m_coarse)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            gabor_responses(np.zeros((4, 4, 3)))


class TestExtractor:
    def test_sixty_dims_by_default(self, noise_image):
        fv = GaborTexture().extract(noise_image)
        assert len(fv) == 60
        assert fv.tag == "gabor"

    def test_mean_std_interleaved(self):
        img = _stripe_image(8, 0.0)
        fv = GaborTexture(scales=2, orientations=2).extract(img)
        assert len(fv) == 8
        means = fv.values[0::2]
        stds = fv.values[1::2]
        assert np.all(means >= 0) and np.all(stds >= 0)

    def test_flat_image_zero_texture_energy(self):
        fv = GaborTexture().extract(Image.blank(32, 32, (100, 100, 100)))
        # a constant image has no pass-band energy (tiny numerical residue ok)
        assert fv.values.max() < 1e-6 * 100 * 32 * 32

    def test_orientation_discrimination_in_distance(self):
        ex = GaborTexture()
        v0 = ex.extract(_stripe_image(8, 0.0))
        v0b = ex.extract(_stripe_image(8, 5.0))
        v90 = ex.extract(_stripe_image(8, 90.0))
        assert ex.distance(v0, v0b) < ex.distance(v0, v90)
