"""§4.5 simple color histogram tests."""

import numpy as np
import pytest

from repro.features.color_histogram import SimpleColorHistogram
from repro.imaging.image import Image


class TestRgbHistogram:
    def test_counts_sum_to_pixels(self, noise_image):
        fv = SimpleColorHistogram().extract(noise_image)
        assert fv.values.sum() == noise_image.width * noise_image.height
        assert len(fv) == 256

    def test_flat_image_single_bin(self):
        img = Image.blank(10, 10, (255, 255, 255))
        fv = SimpleColorHistogram().extract(img)
        assert np.count_nonzero(fv.values) == 1
        assert fv.values.max() == 100
        assert fv.values[255] == 100  # white = last bin (7*8+7)*4+3

    def test_black_in_first_bin(self):
        fv = SimpleColorHistogram().extract(Image.blank(4, 4, (0, 0, 0)))
        assert fv.values[0] == 16

    def test_tag_matches_type(self, noise_image):
        assert SimpleColorHistogram().extract(noise_image).tag == "RGB"
        assert SimpleColorHistogram("HSV").extract(noise_image).tag == "HSV"

    def test_normalize_option(self, noise_image):
        fv = SimpleColorHistogram(normalize=True).extract(noise_image)
        assert fv.values.sum() == pytest.approx(1.0)

    def test_hsv_mode_64_bins(self, noise_image):
        fv = SimpleColorHistogram("HSV").extract(noise_image)
        assert len(fv) == 64
        assert fv.values.sum() == noise_image.width * noise_image.height

    def test_invalid_type_rejected(self):
        with pytest.raises(ValueError):
            SimpleColorHistogram("LAB")


class TestHistogramDistance:
    def test_size_invariant(self):
        ex = SimpleColorHistogram()
        small = Image.blank(8, 8, (200, 30, 40))
        large = Image.blank(64, 64, (200, 30, 40))
        assert ex.distance(ex.extract(small), ex.extract(large)) == pytest.approx(0.0)

    def test_max_distance_for_disjoint_colors(self):
        ex = SimpleColorHistogram()
        a = ex.extract(Image.blank(8, 8, (0, 0, 0)))
        b = ex.extract(Image.blank(8, 8, (255, 255, 255)))
        assert ex.distance(a, b) == pytest.approx(2.0)

    def test_distance_orders_by_similarity(self):
        ex = SimpleColorHistogram()
        base = ex.extract(Image.blank(8, 8, (200, 0, 0)))
        similar = ex.extract(Image.blank(8, 8, (210, 0, 0)))  # same R bin
        different = ex.extract(Image.blank(8, 8, (0, 200, 0)))
        assert ex.distance(base, similar) < ex.distance(base, different)
