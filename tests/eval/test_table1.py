"""Table 1 experiment driver tests (small corpus; shape logic, not scale)."""

import pytest

from repro.eval.table1 import (
    CUTOFFS,
    PAPER_TABLE1,
    Table1Result,
    build_table1_system,
    run_table1,
)
from repro.eval.userstudy import JudgePanel


@pytest.fixture(scope="module")
def tiny_setup():
    return build_table1_system(
        videos_per_category=2, seed=5, n_shots=2, frames_per_shot=4
    )


class TestPaperReference:
    def test_all_methods_and_cutoffs_present(self):
        assert set(PAPER_TABLE1) == {
            "glcm", "gabor", "tamura", "sch", "acc", "regions", "combined",
        }
        for vals in PAPER_TABLE1.values():
            assert set(vals) == set(CUTOFFS)

    def test_paper_combined_wins_everywhere(self):
        ref = Table1Result(
            precision=PAPER_TABLE1, n_queries=0, n_frames=0,
        )
        assert all(ref.combined_wins().values())
        assert all(ref.monotone_decreasing().values())


class TestRunner:
    def test_runs_and_produces_full_table(self, tiny_setup):
        system, gt = tiny_setup
        res = run_table1(
            system=system,
            ground_truth=gt,
            queries_per_category=2,
            cutoffs=(3, 5),
        )
        assert set(res.methods) == set(PAPER_TABLE1)
        for m in res.methods:
            for k in (3, 5):
                assert 0.0 <= res.precision[m][k] <= 1.0
        assert res.n_queries == 10

    def test_deterministic(self, tiny_setup):
        system, gt = tiny_setup
        kwargs = dict(system=system, ground_truth=gt, queries_per_category=1, cutoffs=(3,))
        a = run_table1(seed=7, **kwargs)
        b = run_table1(seed=7, **kwargs)
        assert a.precision == b.precision

    def test_noisy_panel_changes_numbers_not_validity(self, tiny_setup):
        system, gt = tiny_setup
        noisy = run_table1(
            system=system, ground_truth=gt, queries_per_category=2,
            cutoffs=(3,), judge_panel=JudgePanel(n_judges=3, error_rate=0.3, seed=1),
        )
        for m in noisy.methods:
            assert 0.0 <= noisy.precision[m][3] <= 1.0

    def test_mismatched_args_rejected(self, tiny_setup):
        system, _gt = tiny_setup
        with pytest.raises(ValueError):
            run_table1(system=system, ground_truth=None)

    def test_to_text_renders(self, tiny_setup):
        system, gt = tiny_setup
        res = run_table1(system=system, ground_truth=gt, queries_per_category=1, cutoffs=(3,))
        text = res.to_text(paper={m: {3: 0.5} for m in res.methods})
        assert "Combined" in text and "(paper)" in text

    def test_query_excluded_from_own_results(self, tiny_setup):
        """The sampled query frame must not count as its own hit."""
        system, gt = tiny_setup
        res = run_table1(
            system=system, ground_truth=gt, queries_per_category=1, cutoffs=(1,),
        )
        # with self-exclusion precision@1 can be < 1 but never > 1
        for m in res.methods:
            assert res.precision[m][1] <= 1.0
