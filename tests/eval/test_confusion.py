"""Confusion matrix analysis tests."""

import numpy as np
import pytest

from repro.eval.confusion import ConfusionResult, run_confusion


@pytest.fixture(scope="module")
def confusion(ingested_system, ground_truth):
    return run_confusion(
        ingested_system, ground_truth, top_k=3, queries_per_category=2, use_index=False
    )


class TestRunConfusion:
    def test_shape_and_rows_normalized(self, confusion):
        n = len(confusion.categories)
        assert confusion.matrix.shape == (n, n)
        assert np.allclose(confusion.matrix.sum(axis=1), 1.0)

    def test_diagonal_beats_chance(self, confusion):
        chance = 1.0 / len(confusion.categories)
        assert confusion.diagonal_mean() > 2 * chance

    def test_most_confused_is_off_diagonal(self, confusion):
        a, b, rate = confusion.most_confused()
        assert a != b
        assert 0.0 <= rate <= 1.0

    def test_to_text(self, confusion):
        text = confusion.to_text()
        for cat in confusion.categories:
            assert cat in text

    def test_n_queries(self, confusion):
        assert confusion.n_queries == 2 * len(confusion.categories)

    def test_validation(self, ingested_system, ground_truth):
        with pytest.raises(ValueError):
            run_confusion(ingested_system, ground_truth, top_k=0)

    def test_single_feature_mode(self, ingested_system, ground_truth):
        res = run_confusion(
            ingested_system, ground_truth, top_k=2,
            queries_per_category=1, features=["sch"], use_index=False,
        )
        assert np.allclose(res.matrix.sum(axis=1), 1.0)
