"""Retrieval metric tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.metrics import (
    average_precision,
    f1_at_k,
    mean_average_precision,
    precision_at_k,
    precision_recall_curve,
    recall_at_k,
)

rel_list = st.lists(st.booleans(), min_size=0, max_size=50)


class TestPrecisionAtK:
    def test_all_relevant(self):
        assert precision_at_k([True] * 10, 5) == 1.0

    def test_none_relevant(self):
        assert precision_at_k([False] * 10, 5) == 0.0

    def test_partial(self):
        assert precision_at_k([True, False, True, False], 4) == 0.5

    def test_short_list_padded_as_irrelevant(self):
        assert precision_at_k([True, True], 4) == 0.5

    def test_k_validation(self):
        with pytest.raises(ValueError):
            precision_at_k([True], 0)

    @settings(max_examples=40, deadline=None)
    @given(rel=rel_list, k=st.integers(1, 60))
    def test_bounds_property(self, rel, k):
        p = precision_at_k(rel, k)
        assert 0.0 <= p <= 1.0

    @settings(max_examples=40, deadline=None)
    @given(rel=rel_list)
    def test_monotone_in_prefix_hits(self, rel):
        # adding a relevant item at the front never lowers precision@k
        k = max(1, len(rel))
        assert precision_at_k([True] + rel, k) >= precision_at_k([False] + rel, k)


class TestRecall:
    def test_full_recall(self):
        assert recall_at_k([True, True], 2, n_relevant=2) == 1.0

    def test_half_recall(self):
        assert recall_at_k([True, False], 2, n_relevant=2) == 0.5

    def test_zero_relevant(self):
        assert recall_at_k([False], 1, n_relevant=0) == 0.0

    def test_capped_at_one(self):
        assert recall_at_k([True, True, True], 3, n_relevant=2) == 1.0


class TestF1:
    def test_harmonic_mean(self):
        # p = 0.5, r = 1.0 -> f1 = 2/3
        assert f1_at_k([True, False], 2, n_relevant=1) == pytest.approx(2 / 3)

    def test_zero_when_nothing_found(self):
        assert f1_at_k([False, False], 2, n_relevant=3) == 0.0


class TestAveragePrecision:
    def test_perfect_ranking(self):
        assert average_precision([True, True, False, False]) == 1.0

    def test_known_value(self):
        # relevant at ranks 1 and 3: AP = (1/1 + 2/3)/2
        assert average_precision([True, False, True]) == pytest.approx((1 + 2 / 3) / 2)

    def test_with_corpus_count(self):
        # same hits but 4 relevant in corpus: AP denominators change
        assert average_precision([True, False, True], n_relevant=4) == pytest.approx(
            (1 + 2 / 3) / 4
        )

    def test_empty(self):
        assert average_precision([]) == 0.0
        assert average_precision([False, False]) == 0.0

    def test_map(self):
        lists = [[True], [False]]
        assert mean_average_precision(lists) == pytest.approx(0.5)
        assert mean_average_precision([]) == 0.0

    def test_map_with_counts_validates(self):
        with pytest.raises(ValueError):
            mean_average_precision([[True]], n_relevant=[1, 2])

    @settings(max_examples=40, deadline=None)
    @given(rel=rel_list)
    def test_ap_bounds(self, rel):
        assert 0.0 <= average_precision(rel) <= 1.0


class TestPrCurve:
    def test_points(self):
        pts = precision_recall_curve([True, False, True], n_relevant=2)
        assert pts[0] == (0.5, 1.0)
        assert pts[1] == (0.5, 0.5)
        assert pts[2] == (1.0, 2 / 3)

    def test_recall_monotone(self):
        pts = precision_recall_curve([True, False, True, True], n_relevant=3)
        recalls = [r for r, _p in pts]
        assert recalls == sorted(recalls)
