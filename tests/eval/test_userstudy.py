"""Simulated user-study tests."""

import numpy as np
import pytest

from repro.eval.userstudy import JudgePanel, NoisyJudge


class TestNoisyJudge:
    def test_zero_error_is_exact(self):
        judge = NoisyJudge(error_rate=0.0, seed=1)
        truth = [True, False, True, True]
        assert judge.judge(truth) == truth

    def test_error_rate_approximate(self):
        judge = NoisyJudge(error_rate=0.2, seed=2)
        truth = [True] * 5000
        flipped = sum(1 for j in judge.judge(truth) if not j)
        assert 0.15 < flipped / 5000 < 0.25

    def test_validation(self):
        with pytest.raises(ValueError):
            NoisyJudge(error_rate=0.6, seed=1)
        with pytest.raises(ValueError):
            NoisyJudge(error_rate=-0.1, seed=1)

    def test_deterministic_per_seed(self):
        truth = [True, False] * 20
        a = NoisyJudge(0.3, seed=5).judge(truth)
        b = NoisyJudge(0.3, seed=5).judge(truth)
        assert a == b


class TestPanel:
    def test_majority_vote_suppresses_noise(self):
        truth = [True] * 2000
        single = NoisyJudge(0.2, seed=3).judge(truth)
        panel = JudgePanel(n_judges=9, error_rate=0.2, seed=3).judge(truth)
        assert sum(panel) > sum(single)
        # with 9 judges at 20% error, majority error rate is ~2%
        assert sum(panel) / 2000 > 0.95

    def test_zero_error_panel_exact(self):
        truth = [True, False, False, True]
        assert JudgePanel(n_judges=3, error_rate=0.0, seed=1).judge(truth) == truth

    def test_needs_a_judge(self):
        with pytest.raises(ValueError):
            JudgePanel(n_judges=0)

    def test_single_judge_panel(self):
        panel = JudgePanel(n_judges=1, error_rate=0.0, seed=1)
        assert panel.judge([True, False]) == [True, False]
