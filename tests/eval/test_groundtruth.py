"""Ground truth tests."""

import pytest

from repro.eval.groundtruth import CategoryGroundTruth


@pytest.fixture()
def gt():
    return CategoryGroundTruth({1: "a", 2: "a", 3: "b", 4: "b", 5: "b"})


class TestGroundTruth:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CategoryGroundTruth({})

    def test_category_and_membership(self, gt):
        assert gt.category_of(3) == "b"
        assert 3 in gt and 9 not in gt
        assert len(gt) == 5
        assert gt.categories() == ["a", "b"]

    def test_relevance(self, gt):
        assert gt.is_relevant(1, 2)
        assert not gt.is_relevant(1, 3)

    def test_relevance_list_unknown_ids_irrelevant(self, gt):
        assert gt.relevance_list(1, [2, 3, 99]) == [True, False, False]

    def test_n_relevant_excludes_self(self, gt):
        assert gt.n_relevant(3) == 2
        assert gt.n_relevant(3, exclude_self=False) == 3

    def test_ids_of_category(self, gt):
        assert gt.ids_of_category("b") == [3, 4, 5]

    def test_from_store(self, ingested_system):
        gt = CategoryGroundTruth.from_store(ingested_system._store)
        assert len(gt) == ingested_system.n_key_frames()
        assert set(gt.categories()) == {
            "cartoon", "elearning", "movies", "news", "sports",
        }
