"""Bootstrap statistics tests."""

import numpy as np
import pytest

from repro.eval.stats import bootstrap_ci, paired_bootstrap_pvalue


class TestBootstrapCi:
    def test_mean_and_interval_order(self):
        mean, low, high = bootstrap_ci([0.4, 0.6, 0.5, 0.7, 0.3])
        assert low <= mean <= high
        assert mean == pytest.approx(0.5)

    def test_constant_samples_degenerate_interval(self):
        mean, low, high = bootstrap_ci([0.5] * 10)
        assert mean == low == high == 0.5

    def test_narrower_with_more_data(self):
        gen = np.random.default_rng(1)
        small = gen.normal(0.5, 0.1, 10)
        large = gen.normal(0.5, 0.1, 1000)
        _m1, l1, h1 = bootstrap_ci(small, seed=2)
        _m2, l2, h2 = bootstrap_ci(large, seed=2)
        assert (h2 - l2) < (h1 - l1)

    def test_deterministic_given_seed(self):
        a = bootstrap_ci([0.1, 0.9, 0.4], seed=7)
        b = bootstrap_ci([0.1, 0.9, 0.4], seed=7)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([0.5], confidence=1.5)


class TestPairedBootstrap:
    def test_clear_winner_small_p(self):
        gen = np.random.default_rng(3)
        b = gen.uniform(0.3, 0.5, 40)
        a = b + 0.2  # a beats b on every query
        assert paired_bootstrap_pvalue(a, b) < 0.01

    def test_identical_methods_large_p(self):
        gen = np.random.default_rng(4)
        a = gen.uniform(0.3, 0.7, 40)
        p = paired_bootstrap_pvalue(a, a.copy())
        assert p == 1.0  # differences are exactly zero

    def test_noisy_tie_inconclusive(self):
        gen = np.random.default_rng(5)
        a = gen.uniform(0, 1, 30)
        b = gen.uniform(0, 1, 30)
        p = paired_bootstrap_pvalue(a, b)
        assert 0.01 < p < 0.99

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_bootstrap_pvalue([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            paired_bootstrap_pvalue([], [])

    def test_on_real_retrieval_samples(self, ingested_system, ground_truth):
        """Combined vs correlogram on the shared corpus: per-query paired
        precision@3 samples; combined should win decisively."""
        from repro.eval.metrics import precision_at_k

        combined, acc = [], []
        for fid in ingested_system._store.frame_ids():
            query = ingested_system.get_key_frame(fid)
            for features, out in ((None, combined), (["acc"], acc)):
                results = ingested_system.search(
                    query, features=features, top_k=4, use_index=False
                )
                ranked = [h.frame_id for h in results if h.frame_id != fid][:3]
                out.append(precision_at_k(ground_truth.relevance_list(fid, ranked), 3))
        p = paired_bootstrap_pvalue(combined, acc)
        assert p < 0.05
