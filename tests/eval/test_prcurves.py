"""Recall/MAP driver tests (small corpus)."""

import pytest

from repro.eval.prcurves import RecallResult, run_recall


class TestRunRecall:
    @pytest.fixture(scope="class")
    def result(self, ingested_system, ground_truth):
        return run_recall(
            ingested_system,
            ground_truth,
            queries_per_category=2,
            cutoffs=(2, 5),
            use_index=False,
        )

    def test_methods_present(self, result):
        assert "combined" in result.methods
        assert len(result.methods) == 7

    def test_bounds(self, result):
        for m in result.methods:
            assert 0.0 <= result.mean_ap[m] <= 1.0
            for k in result.cutoffs:
                assert 0.0 <= result.recall[m][k] <= 1.0

    def test_recall_monotone_in_k(self, result):
        for m in result.methods:
            assert result.recall[m][2] <= result.recall[m][5] + 1e-9

    def test_to_text(self, result):
        text = result.to_text()
        assert "MAP" in text and "combined" in text

    def test_combined_competitive(self, result):
        singles = [m for m in result.methods if m != "combined"]
        best = max(result.mean_ap[m] for m in singles)
        assert result.mean_ap["combined"] >= best - 0.15

    def test_empty_queries_rejected(self, ingested_system, ground_truth):
        with pytest.raises(ValueError):
            run_recall(ingested_system, ground_truth, queries_per_category=0)
