"""Stateful consistency testing: random admin operation sequences.

A hypothesis state machine drives add/delete/rename sequences against a
live system and checks, after every step, that the three views of the
corpus -- the SQL tables, the in-memory feature store, and the range
index -- agree exactly.  This is the class of bug (partial ingest, stale
index entries, orphaned rows) that single-scenario tests miss.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.core.config import SystemConfig
from repro.core.system import VideoRetrievalSystem
from repro.db.errors import DatabaseError
from repro.imaging.image import Image

# a tiny fast config: two cheap features, small rescale
_CONFIG = SystemConfig(features=("sch", "naive"), keyframe_base_size=60)


def _tiny_clip(seed: int):
    """Two-frame clip, 24x20, unique per seed."""
    gen = np.random.default_rng(seed)
    base = gen.integers(0, 256, (20, 24, 3), dtype=np.uint8)
    shifted = np.clip(base.astype(int) + 40, 0, 255).astype(np.uint8)
    return [Image(base), Image(shifted)]


class SystemConsistency(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.system = VideoRetrievalSystem.in_memory(_CONFIG)
        self.admin = self.system.login_admin()
        self.live_ids = set()
        self.counter = 0

    @rule(seed=st.integers(0, 10_000))
    def add_video(self, seed):
        self.counter += 1
        report = self.admin.add_video(
            _tiny_clip(seed), name=f"clip_{self.counter}", category="misc"
        )
        self.live_ids.add(report.video_id)

    @rule(pick=st.integers(0, 10_000))
    def delete_some_video(self, pick):
        if not self.live_ids:
            return
        victim = sorted(self.live_ids)[pick % len(self.live_ids)]
        self.admin.delete_video(victim)
        self.live_ids.discard(victim)

    @rule(pick=st.integers(0, 10_000))
    def delete_missing_video_fails(self, pick):
        missing = 100_000 + pick
        try:
            self.admin.delete_video(missing)
            raise AssertionError("deleting a missing video must fail")
        except DatabaseError:
            pass

    @rule(pick=st.integers(0, 10_000))
    def rename_some_video(self, pick):
        if not self.live_ids:
            return
        victim = sorted(self.live_ids)[pick % len(self.live_ids)]
        self.admin.rename_video(victim, f"renamed_{pick}")

    # -- invariants ------------------------------------------------------------

    @invariant()
    def views_agree(self):
        if not hasattr(self, "system"):
            return
        db_videos = {r["V_ID"] for r in self.system.list_videos()}
        assert db_videos == self.live_ids

        db_frames = {
            int(r["I_ID"]) for r in self.system.db.execute("SELECT I_ID FROM KEY_FRAMES").rows
        }
        store_frames = set(self.system._store.frame_ids())
        index_frames = self.system._index.all_ids()
        assert db_frames == store_frames == index_frames

        db_frame_videos = {
            int(r["V_ID"])
            for r in self.system.db.execute("SELECT V_ID FROM KEY_FRAMES").rows
        }
        assert db_frame_videos <= self.live_ids  # no orphaned key frames

    @invariant()
    def search_always_works(self):
        if not hasattr(self, "system") or not self.live_ids:
            return
        query = self.system.any_key_frame()
        results = self.system.search(query, top_k=3, use_index=False)
        assert len(results) >= 1
        assert {h.video_id for h in results} <= self.live_ids


TestSystemConsistency = SystemConsistency.TestCase
TestSystemConsistency.settings = settings(
    max_examples=12, stateful_step_count=14, deadline=None
)
