"""Full-pipeline integration tests: the paper's workflow end to end."""

import pytest

from repro.core.config import SystemConfig
from repro.core.system import VideoRetrievalSystem
from repro.eval.groundtruth import CategoryGroundTruth
from repro.eval.metrics import precision_at_k
from repro.video.generator import VideoSpec, generate_video


class TestEndToEnd:
    def test_ingest_search_delete_cycle(self, small_corpus):
        system = VideoRetrievalSystem.in_memory()
        admin = system.login_admin()
        reports = [admin.add_video(v) for v in small_corpus]
        assert system.n_videos() == len(small_corpus)

        # every stored key frame retrieves itself at rank 1
        for report in reports[:3]:
            for fid in report.keyframe_ids:
                hits = system.search(system.get_key_frame(fid), top_k=1)
                assert hits[0].frame_id == fid

        # delete half the corpus, search still consistent
        for report in reports[::2]:
            admin.delete_video(report.video_id)
        assert system.n_videos() == len(small_corpus) // 2
        results = system.search(system.any_key_frame(), top_k=100, use_index=False)
        assert results.n_candidates == system.n_key_frames()

    def test_retrieval_beats_chance_by_category(self, ingested_system, ground_truth):
        """Combined retrieval precision must beat the random baseline by a
        wide margin (5 categories -> chance ~ 0.2).  The small corpus has
        only ~3 key frames per category, so measure at k=2 where the
        ceiling is 1.0."""
        store = ingested_system._store
        precisions = []
        for fid in store.frame_ids():
            query = ingested_system.get_key_frame(fid)
            results = ingested_system.search(query, top_k=3, use_index=False)
            ranked = [h.frame_id for h in results if h.frame_id != fid][:2]
            rel = ground_truth.relevance_list(fid, ranked)
            precisions.append(precision_at_k(rel, 2))
        mean_p = sum(precisions) / len(precisions)
        assert mean_p > 0.55, f"mean precision@2 {mean_p:.2f} barely beats chance"

    def test_index_pruning_costs_little_precision(self, ingested_system, ground_truth):
        store = ingested_system._store
        p_indexed, p_full = [], []
        for fid in store.frame_ids()[::2]:
            query = ingested_system.get_key_frame(fid)
            for use_index, acc in ((True, p_indexed), (False, p_full)):
                results = ingested_system.search(query, top_k=3, use_index=use_index)
                ranked = [h.frame_id for h in results if h.frame_id != fid][:2]
                acc.append(precision_at_k(ground_truth.relevance_list(fid, ranked), 2))
        mean_indexed = sum(p_indexed) / len(p_indexed)
        mean_full = sum(p_full) / len(p_full)
        # Pruning trades recall for speed; on a tiny corpus (few relevant
        # frames per query) the cost can be large.  The invariants that must
        # hold: indexed retrieval still beats the 0.2 chance level, and the
        # full scan is never *worse* than the pruned search on average.
        assert mean_indexed > 0.2
        assert mean_full >= mean_indexed - 0.05

    def test_durable_system_full_cycle(self, tmp_path, small_corpus):
        path = str(tmp_path / "e2e.rdb")
        system = VideoRetrievalSystem.open(path)
        admin = system.login_admin()
        for v in small_corpus[:4]:
            admin.add_video(v)
        admin.checkpoint()
        admin.add_video(small_corpus[4])  # lives only in the WAL
        expected_frames = system.n_key_frames()
        query = system.get_key_frame(1)
        before = [h.frame_id for h in system.search(query, top_k=10, use_index=False)]
        system.close()

        reopened = VideoRetrievalSystem.open(path)
        assert reopened.n_key_frames() == expected_frames
        after = [h.frame_id for h in reopened.search(query, top_k=10, use_index=False)]
        assert after == before
        reopened.close()

    def test_web_and_core_agree(self, ingested_system, small_corpus):
        """The HTTP facade must return the same ranking as the core API."""
        import json

        from repro.web.api import CbvrApi

        api = CbvrApi(ingested_system)
        query = small_corpus[3].frames[0]
        core = ingested_system.search(query, top_k=5)
        _status, _ct, body = api.handle(
            "POST", "/search", body=query.encode("ppm"), query={"top_k": "5"}
        )
        web_ids = [r["frame_id"] for r in json.loads(body)["results"]]
        assert web_ids == core.frame_ids()

    def test_fresh_clip_video_retrieval(self, ingested_system):
        clip = generate_video(
            VideoSpec(category="movies", seed=31337, n_shots=2, frames_per_shot=5)
        )
        matches = ingested_system.search_by_video(clip, top_k=4)
        assert matches
        top_categories = [m.category for m in matches[:2]]
        assert "movies" in top_categories

    def test_config_variants_run(self, small_corpus):
        """Exercise non-default configurations through the whole pipeline."""
        config = SystemConfig(
            features=("sch", "gabor"),
            fusion_weights={"gabor": 2.0},
            use_index=False,
            keyframe_threshold=400.0,
            sequence_method="align",
        )
        system = VideoRetrievalSystem.in_memory(config)
        for v in small_corpus[:4]:
            system.admin.add_video(v)
        results = system.search(system.any_key_frame(), top_k=5)
        assert results
        assert set(results[0].per_feature) == {"sch", "gabor"}
