"""API layer tests (no sockets; requests dispatched directly)."""

import json

import pytest

from repro.core.config import SystemConfig
from repro.core.system import VideoRetrievalSystem
from repro.video.codec import encode_rvf_bytes
from repro.video.generator import VideoSpec, generate_video
from repro.web.api import CbvrApi

PASSWORD = "pw"


@pytest.fixture()
def api(small_corpus):
    system = VideoRetrievalSystem.in_memory(SystemConfig(admin_password=PASSWORD))
    admin = system.login_admin(PASSWORD)
    admin.add_video(small_corpus[0])
    admin.add_video(small_corpus[2])
    return CbvrApi(system)


def _json(response):
    status, ctype, body = response
    assert ctype == "application/json"
    return status, json.loads(body)


class TestUserRoutes:
    def test_root_status(self, api):
        status, payload = _json(api.handle("GET", "/"))
        assert status == 200
        assert payload["videos"] == 2

    def test_list_videos(self, api):
        status, payload = _json(api.handle("GET", "/videos"))
        assert status == 200
        assert len(payload["videos"]) == 2
        assert {"v_id", "name", "category", "stored"} <= set(payload["videos"][0])

    def test_get_video(self, api):
        status, payload = _json(api.handle("GET", "/videos/1"))
        assert status == 200
        assert payload["key_frames"]

    def test_get_video_404(self, api):
        status, _ = _json(api.handle("GET", "/videos/77"))
        assert status == 404

    def test_get_frame_returns_ppm(self, api):
        status, ctype, body = api.handle("GET", "/frames/1")
        assert status == 200
        assert ctype == "image/x-portable-pixmap"
        assert body[:2] == b"P6"

    def test_get_frame_404(self, api):
        status, _ = _json(api.handle("GET", "/frames/999"))
        assert status == 404

    def test_search(self, api, small_corpus):
        body = small_corpus[0].frames[0].encode("ppm")
        status, payload = _json(api.handle("POST", "/search", body=body,
                                           query={"top_k": "3"}))
        assert status == 200
        assert len(payload["results"]) <= 3
        assert payload["results"][0]["rank"] == 1

    def test_search_with_feature_selection(self, api, small_corpus):
        body = small_corpus[0].frames[0].encode("ppm")
        status, payload = _json(
            api.handle("POST", "/search", body=body, query={"features": "sch,gabor"})
        )
        assert status == 200

    def test_search_requires_body(self, api):
        status, payload = _json(api.handle("POST", "/search"))
        assert status == 400

    def test_search_bad_image(self, api):
        status, _ = _json(api.handle("POST", "/search", body=b"not an image"))
        assert status == 400

    def test_unknown_route(self, api):
        status, _ = _json(api.handle("GET", "/nope"))
        assert status == 404


class TestAdminRoutes:
    def _clip_bytes(self):
        clip = generate_video(VideoSpec(category="news", seed=77, n_shots=1, frames_per_shot=3))
        return encode_rvf_bytes(clip.frames)

    def test_upload_requires_password(self, api):
        status, _ = _json(api.handle("POST", "/admin/videos", body=self._clip_bytes(),
                                     query={"name": "x"}))
        assert status == 401
        status, _ = _json(api.handle(
            "POST", "/admin/videos", body=self._clip_bytes(),
            headers={"X-Admin-Password": "wrong"}, query={"name": "x"},
        ))
        assert status == 401

    def test_upload_and_delete(self, api):
        headers = {"X-Admin-Password": PASSWORD}
        status, payload = _json(api.handle(
            "POST", "/admin/videos", body=self._clip_bytes(),
            headers=headers, query={"name": "uploaded", "category": "news"},
        ))
        assert status == 201
        v_id = payload["v_id"]
        assert payload["key_frames"]

        status, listing = _json(api.handle("GET", "/videos"))
        assert any(v["name"] == "uploaded" for v in listing["videos"])

        status, payload = _json(api.handle(
            "DELETE", f"/admin/videos/{v_id}", headers=headers,
        ))
        assert status == 200
        assert payload["removed_frames"] >= 1

    def test_upload_requires_name(self, api):
        status, _ = _json(api.handle(
            "POST", "/admin/videos", body=self._clip_bytes(),
            headers={"X-Admin-Password": PASSWORD},
        ))
        assert status == 400

    def test_upload_requires_body(self, api):
        status, _ = _json(api.handle(
            "POST", "/admin/videos", headers={"X-Admin-Password": PASSWORD},
            query={"name": "x"},
        ))
        assert status == 400

    def test_upload_bad_rvf(self, api):
        status, _ = _json(api.handle(
            "POST", "/admin/videos", body=b"garbage",
            headers={"X-Admin-Password": PASSWORD}, query={"name": "x"},
        ))
        assert status == 400

    def test_delete_unknown(self, api):
        status, _ = _json(api.handle(
            "DELETE", "/admin/videos/999", headers={"X-Admin-Password": PASSWORD},
        ))
        assert status == 404
