"""Browse page and image-format route tests."""

import pytest

from repro.core.system import VideoRetrievalSystem
from repro.web.api import CbvrApi


@pytest.fixture()
def api(small_corpus):
    system = VideoRetrievalSystem.in_memory()
    system.admin.add_video(small_corpus[0])
    system.admin.add_video(small_corpus[2])
    return CbvrApi(system)


class TestFrameFormats:
    def test_bmp_format(self, api):
        status, ctype, body = api.handle("GET", "/frames/1", query={"format": "bmp"})
        assert status == 200
        assert ctype == "image/bmp"
        assert body[:2] == b"BM"

    def test_pgm_format(self, api):
        status, ctype, body = api.handle("GET", "/frames/1", query={"format": "pgm"})
        assert status == 200
        assert body[:2] == b"P5"

    def test_default_is_ppm(self, api):
        _status, _ctype, body = api.handle("GET", "/frames/1")
        assert body[:2] == b"P6"

    def test_unknown_format(self, api):
        status, _ctype, _body = api.handle("GET", "/frames/1", query={"format": "jpeg"})
        assert status == 400

    def test_bmp_decodes_to_stored_frame(self, api):
        from repro.imaging.image import decode_image

        _s, _c, body = api.handle("GET", "/frames/1", query={"format": "bmp"})
        assert decode_image(body) == api.system.get_key_frame(1)


class TestBrowsePage:
    def test_html_rendered(self, api):
        status, ctype, body = api.handle("GET", "/ui")
        assert status == 200
        assert ctype.startswith("text/html")
        html = body.decode("utf-8")
        assert "<h1>CBVR library</h1>" in html
        assert "elearning_000" in html
        assert 'src="/frames/1?format=bmp"' in html

    def test_every_video_listed(self, api):
        _s, _c, body = api.handle("GET", "/ui")
        html = body.decode("utf-8")
        for row in api.system.list_videos():
            assert f"#{row['V_ID']} " in html

    def test_names_escaped(self, small_corpus):
        system = VideoRetrievalSystem.in_memory()
        system.admin.add_video(
            list(small_corpus[0].frames), name="<script>x</script>", category="e&m"
        )
        api = CbvrApi(system)
        _s, _c, body = api.handle("GET", "/ui")
        html = body.decode("utf-8")
        assert "<script>x</script>" not in html
        assert "&lt;script&gt;" in html

    def test_empty_library(self):
        api = CbvrApi(VideoRetrievalSystem.in_memory())
        status, _c, body = api.handle("GET", "/ui")
        assert status == 200
        assert "0 videos" in body.decode("utf-8")
