"""Observability endpoints: /metrics, /traces/recent, request metrics."""

import json

import pytest

from repro.core.config import SystemConfig
from repro.core.system import VideoRetrievalSystem
from repro.web.api import PROMETHEUS_CONTENT_TYPE, CbvrApi

PASSWORD = "pw"

METRIC_FAMILIES = (
    "repro_ingest_videos_total",
    "repro_search_queries_total",
    "repro_ann_probes_total",
    "repro_cache_requests_total",
    "repro_db_statements_total",
    "repro_web_requests_total",
)


@pytest.fixture()
def api(small_corpus):
    system = VideoRetrievalSystem.in_memory(SystemConfig(admin_password=PASSWORD))
    system.login_admin(PASSWORD).add_video(small_corpus[0])
    yield CbvrApi(system)
    system.close()


def _json(response):
    status, ctype, body = response
    assert ctype == "application/json"
    return status, json.loads(body)


class TestMetricsEndpoint:
    def test_prometheus_text_covers_all_families(self, api, small_corpus):
        api.handle("POST", "/search",
                   body=small_corpus[0].frames[0].encode("ppm"))
        status, ctype, body = api.handle("GET", "/metrics")
        assert status == 200
        assert ctype == PROMETHEUS_CONTENT_TYPE
        text = body.decode("utf-8")
        for family in METRIC_FAMILIES:
            assert f"# TYPE {family} counter" in text
        assert 'repro_search_queries_total{kind="frame"} 1' in text

    def test_json_format(self, api):
        status, payload = _json(api.handle("GET", "/metrics",
                                           query={"format": "json"}))
        assert status == 200
        assert payload["repro_ingest_videos_total"]["samples"][0]["value"] == 1.0

    def test_unknown_format_is_400(self, api):
        status, payload = _json(api.handle("GET", "/metrics",
                                           query={"format": "xml"}))
        assert status == 400
        assert "unsupported" in payload["error"]

    def test_disabled_obs_serves_empty_scrape(self, small_corpus):
        system = VideoRetrievalSystem.in_memory(
            SystemConfig(admin_password=PASSWORD, obs_enabled=False)
        )
        system.login_admin(PASSWORD).add_video(small_corpus[0])
        api = CbvrApi(system)
        status, ctype, body = api.handle("GET", "/metrics")
        assert status == 200
        assert body == b""
        system.close()


class TestTracesEndpoint:
    def test_recent_traces_newest_first(self, api, small_corpus):
        api.handle("POST", "/search",
                   body=small_corpus[0].frames[0].encode("ppm"))
        status, payload = _json(api.handle("GET", "/traces/recent"))
        assert status == 200
        names = [t["name"] for t in payload["traces"]]
        assert names[0] == "search.query_frame"
        assert "ingest.add_video" in names

    def test_limit_param(self, api, small_corpus):
        for _ in range(3):
            api.handle("POST", "/search",
                       body=small_corpus[0].frames[0].encode("ppm"))
        status, payload = _json(api.handle("GET", "/traces/recent",
                                           query={"limit": "2"}))
        assert status == 200
        assert len(payload["traces"]) == 2

    def test_bad_limit_is_400(self, api):
        for bad in ("0", "-3", "many"):
            status, _ = _json(api.handle("GET", "/traces/recent",
                                         query={"limit": bad}))
            assert status == 400


class TestRequestMetrics:
    def _web_samples(self, api):
        registry = api.system.obs.registry.render_json()
        return {
            tuple(sorted(s["labels"].items())): s["value"]
            for s in registry["repro_web_requests_total"]["samples"]
        }

    def test_requests_labelled_by_route_and_status(self, api):
        api.handle("GET", "/videos")
        api.handle("GET", "/videos/1")
        api.handle("GET", "/videos/999")
        samples = self._web_samples(api)
        key = lambda route, status: (  # noqa: E731
            ("method", "GET"), ("route", route), ("status", str(status)))
        assert samples[key("/videos", 200)] == 1.0
        assert samples[key("/videos/{id}", 200)] == 1.0
        assert samples[key("/videos/{id}", 404)] == 1.0

    def test_unknown_paths_collapse_to_unmatched(self, api):
        api.handle("GET", "/nope")
        api.handle("GET", "/also/not/a/route")
        samples = self._web_samples(api)
        key = (("method", "GET"), ("route", "unmatched"), ("status", "404"))
        assert samples[key] == 2.0

    def test_latency_histogram_records(self, api):
        api.handle("GET", "/")
        registry = api.system.obs.registry.render_json()
        samples = registry["repro_web_request_seconds"]["samples"]
        root = [s for s in samples if s["labels"] == {"route": "/"}]
        assert root and root[0]["count"] == 1


class TestExplainParam:
    def test_search_explain_opt_in(self, api, small_corpus):
        body = small_corpus[0].frames[0].encode("ppm")
        status, payload = _json(api.handle("POST", "/search", body=body,
                                           query={"explain": "1"}))
        assert status == 200
        explain = payload["explain"]
        assert explain["kind"] == "frame"
        assert explain["cache"] in ("miss", "off")
        assert explain["total_ms"] >= 0
        assert "timings_ms" in explain

    def test_search_without_flag_omits_explain(self, api, small_corpus):
        body = small_corpus[0].frames[0].encode("ppm")
        status, payload = _json(api.handle("POST", "/search", body=body))
        assert status == 200
        assert "explain" not in payload


class TestSlowQueryEndpoint:
    @pytest.fixture()
    def slow_api(self, small_corpus):
        from repro.core.system import VideoRetrievalSystem

        config = SystemConfig(obs_slow_query_ms=0.0001, obs_slow_log_size=4)
        system = VideoRetrievalSystem.in_memory(config)
        system.admin.add_video(small_corpus[0])
        yield CbvrApi(system)
        system.close()

    def test_slow_queries_surface(self, slow_api, small_corpus):
        body = small_corpus[0].frames[0].encode("ppm")
        slow_api.handle("POST", "/search", body=body)
        status, payload = _json(slow_api.handle("GET", "/debug/slow"))
        assert status == 200
        assert payload["slow_log"]["threshold_ms"] == 0.0001
        (entry,) = [q for q in payload["queries"] if q["kind"] == "frame"]
        assert entry["ms"] >= 0
        assert entry["explain"]["kind"] == "frame"

    def test_limit_param(self, slow_api, small_corpus):
        body = small_corpus[0].frames[0].encode("ppm")
        for top_k in ("3", "4", "5"):
            slow_api.handle("POST", "/search", body=body,
                            query={"top_k": top_k})
        status, payload = _json(slow_api.handle("GET", "/debug/slow",
                                                query={"limit": "2"}))
        assert status == 200
        assert len(payload["queries"]) == 2

    def test_bad_limit_is_400(self, slow_api):
        status, _ = _json(slow_api.handle("GET", "/debug/slow",
                                          query={"limit": "0"}))
        assert status == 400

    def test_disabled_log_serves_empty(self, api):
        """The default fixture threshold (500ms) never trips on tests."""
        status, payload = _json(api.handle("GET", "/debug/slow"))
        assert status == 200
        assert payload["queries"] == []
