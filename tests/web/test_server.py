"""HTTP shell tests over a real socket."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.system import VideoRetrievalSystem
from repro.web.server import make_server


@pytest.fixture()
def server_url(small_corpus):
    system = VideoRetrievalSystem.in_memory()
    system.admin.add_video(small_corpus[0])
    server, port = make_server(system)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{port}", small_corpus[0]
    server.shutdown()


class TestHttp:
    def test_get_videos(self, server_url):
        base, _video = server_url
        with urllib.request.urlopen(f"{base}/videos") as resp:
            assert resp.status == 200
            payload = json.loads(resp.read())
        assert len(payload["videos"]) == 1

    def test_search_roundtrip(self, server_url):
        base, video = server_url
        body = video.frames[0].encode("ppm")
        req = urllib.request.Request(f"{base}/search?top_k=2", data=body, method="POST")
        with urllib.request.urlopen(req) as resp:
            payload = json.loads(resp.read())
        assert payload["results"]
        assert payload["results"][0]["video"] == video.name

    def test_404_status_propagated(self, server_url):
        base, _video = server_url
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(f"{base}/videos/999")
        assert exc.value.code == 404
