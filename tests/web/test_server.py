"""HTTP shell tests over a real socket."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.system import VideoRetrievalSystem
from repro.web.server import make_server


@pytest.fixture()
def server_url(small_corpus):
    system = VideoRetrievalSystem.in_memory()
    system.admin.add_video(small_corpus[0])
    server, port = make_server(system)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{port}", small_corpus[0]
    server.shutdown()


class TestHttp:
    def test_get_videos(self, server_url):
        base, _video = server_url
        with urllib.request.urlopen(f"{base}/videos") as resp:
            assert resp.status == 200
            payload = json.loads(resp.read())
        assert len(payload["videos"]) == 1

    def test_search_roundtrip(self, server_url):
        base, video = server_url
        body = video.frames[0].encode("ppm")
        req = urllib.request.Request(f"{base}/search?top_k=2", data=body, method="POST")
        with urllib.request.urlopen(req) as resp:
            payload = json.loads(resp.read())
        assert payload["results"]
        assert payload["results"][0]["video"] == video.name

    def test_404_status_propagated(self, server_url):
        base, _video = server_url
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(f"{base}/videos/999")
        assert exc.value.code == 404


class TestConcurrency:
    def test_server_is_threading(self):
        import socketserver

        from repro.web.server import CbvrHttpServer

        assert issubclass(CbvrHttpServer, socketserver.ThreadingMixIn)
        assert CbvrHttpServer.daemon_threads is True

    def test_concurrent_searches_all_succeed(self, server_url):
        # 8 simultaneous POST /search round trips: the threading server
        # must answer every one correctly with no serialization errors
        base, video = server_url
        body = video.frames[0].encode("ppm")
        results = [None] * 8
        errors = []

        def fetch(i):
            try:
                req = urllib.request.Request(
                    f"{base}/search?top_k=2", data=body, method="POST"
                )
                with urllib.request.urlopen(req, timeout=30) as resp:
                    results[i] = json.loads(resp.read())
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=fetch, args=(i,)) for i in range(len(results))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert all(r is not None for r in results)
        first = results[0]["results"]
        assert first[0]["video"] == video.name
        assert all(r["results"] == first for r in results)
