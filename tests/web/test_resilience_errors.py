"""Web error mapping for resilience failures: 504, 503 + Retry-After,
and the JSON envelope on unexpected exceptions (never a body-less 500)."""

import json

import pytest

from repro.core.config import SystemConfig
from repro.core.system import VideoRetrievalSystem
from repro.resilience import CircuitOpenError, DeadlineExceeded, RetryExhausted
from repro.web.api import CbvrApi
from repro.web.server import make_server


@pytest.fixture()
def api(small_corpus):
    system = VideoRetrievalSystem.in_memory(SystemConfig())
    system.login_admin().add_video(small_corpus[0])
    return CbvrApi(system)


def _json_full(response):
    status, ctype, body, headers = response
    assert ctype == "application/json"
    return status, json.loads(body), headers


def test_deadline_exceeded_maps_to_504(api, monkeypatch):
    def slow_search(*args, **kwargs):
        raise DeadlineExceeded("search.score", 0.1, 0.2)

    monkeypatch.setattr(api.system, "search", slow_search)
    image = api.system.any_key_frame().encode("ppm")
    status, payload, headers = _json_full(api.handle_full("POST", "/search", body=image))
    assert status == 504
    assert payload["error_type"] == "deadline_exceeded"
    assert "search.score" in payload["error"]
    assert "Retry-After" not in headers


def test_expired_request_deadline_end_to_end_504(small_corpus):
    system = VideoRetrievalSystem.in_memory(SystemConfig())
    system.login_admin().add_video(small_corpus[0])
    system.resilience.request_deadline = 1e-9  # arm after ingest
    api = CbvrApi(system)
    image = system.any_key_frame().encode("ppm")
    status, _, body, _ = api.handle_full("POST", "/search", body=image)
    assert status == 504
    assert json.loads(body)["error_type"] == "deadline_exceeded"


def test_circuit_open_maps_to_503_with_retry_after(api, monkeypatch):
    def refused(*args, **kwargs):
        raise CircuitOpenError("ann", 0.35)

    monkeypatch.setattr(api.system, "search", refused)
    image = api.system.any_key_frame().encode("ppm")
    status, payload, headers = _json_full(api.handle_full("POST", "/search", body=image))
    assert status == 503
    assert payload["error_type"] == "circuit_open"
    assert payload["retry_after"] == 1  # 0.35s rounded up to a whole second
    assert headers["Retry-After"] == "1"


def test_retry_exhausted_maps_to_503(api, monkeypatch):
    def exhausted(*args, **kwargs):
        raise RetryExhausted("db.execute", 3, RuntimeError("db down"))

    monkeypatch.setattr(api.system, "search", exhausted)
    image = api.system.any_key_frame().encode("ppm")
    status, payload, headers = _json_full(api.handle_full("POST", "/search", body=image))
    assert status == 503
    assert payload["error_type"] == "retry_exhausted"
    assert "Retry-After" not in headers


def test_unexpected_exception_returns_json_envelope_500(api, monkeypatch):
    def broken(*args, **kwargs):
        raise RuntimeError("wires crossed")

    monkeypatch.setattr(api.system, "search", broken)
    image = api.system.any_key_frame().encode("ppm")
    status, payload, headers = _json_full(api.handle_full("POST", "/search", body=image))
    assert status == 500
    assert payload["error_type"] == "internal"
    assert "RuntimeError" in payload["error"]


def test_handle_is_handle_full_without_headers(api):
    full = api.handle_full("GET", "/")
    short = api.handle("GET", "/")
    assert full[:3] == short
    assert len(short) == 3  # existing callers keep unpacking 3-tuples


def test_http_server_sends_retry_after_header(small_corpus, monkeypatch):
    import http.client
    import threading

    system = VideoRetrievalSystem.in_memory(SystemConfig())
    system.login_admin().add_video(small_corpus[0])
    server, port = make_server(system)

    def refused(*args, **kwargs):
        raise CircuitOpenError("ann", 2.0)

    monkeypatch.setattr(system, "search", refused)
    thread = threading.Thread(target=server.handle_request, daemon=True)
    thread.start()
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=5)
    conn.request("POST", "/search", body=system.any_key_frame().encode("ppm"))
    response = conn.getresponse()
    payload = json.loads(response.read())
    conn.close()
    thread.join(timeout=5)
    server.server_close()
    assert response.status == 503
    assert response.getheader("Retry-After") == "2"
    assert payload["error_type"] == "circuit_open"
