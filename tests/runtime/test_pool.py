"""Unit tests for the repro.runtime execution layer."""

import os

import pytest

from repro.runtime import WorkerPool, parallel_map, resolve_workers
from repro.runtime.pool import WORKERS_ENV_VAR


def _square(x):
    return x * x


def _boom(x):
    raise RuntimeError(f"task failed on {x}")


class TestResolveWorkers:
    def test_explicit_count_passes_through(self):
        assert resolve_workers(3) == 3

    def test_one_is_serial(self):
        assert resolve_workers(1) == 1

    def test_zero_means_auto(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        assert resolve_workers(0) == max(1, os.cpu_count() or 1)

    def test_none_means_auto(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        assert resolve_workers(None) >= 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "5")
        assert resolve_workers(0) == 5

    def test_bad_env_value(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "lots")
        with pytest.raises(ValueError):
            resolve_workers(0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-2)


class TestWorkerPool:
    def test_serial_map(self):
        with WorkerPool(workers=1) as pool:
            assert pool.map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_parallel_map_preserves_order(self):
        with WorkerPool(workers=2) as pool:
            assert pool.map(_square, list(range(20))) == [x * x for x in range(20)]

    def test_parallel_pool_is_reusable(self):
        with WorkerPool(workers=2) as pool:
            assert pool.map(_square, [1, 2]) == [1, 4]
            assert pool.map(_square, [5, 6]) == [25, 36]

    def test_empty_items(self):
        with WorkerPool(workers=2) as pool:
            assert pool.map(_square, []) == []

    def test_single_item_stays_serial(self):
        pool = WorkerPool(workers=4)
        try:
            assert pool.map(_square, [7]) == [49]
            assert pool._executor is None  # never spawned
        finally:
            pool.close()

    def test_unpicklable_fn_falls_back_to_serial(self):
        calls = []

        def local_fn(x):  # closures cannot be pickled
            calls.append(x)
            return x + 1

        with WorkerPool(workers=2) as pool:
            assert pool.map(local_fn, [1, 2, 3]) == [2, 3, 4]
        assert calls == [1, 2, 3]

    def test_task_exception_propagates(self):
        with WorkerPool(workers=2) as pool:
            with pytest.raises(RuntimeError, match="task failed"):
                pool.map(_boom, [1, 2, 3])

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=0)
        with pytest.raises(ValueError):
            WorkerPool(workers=2, chunk_size=0)


def test_parallel_map_convenience():
    assert parallel_map(_square, [2, 3], workers=2) == [4, 9]


def _pid():
    return os.getpid()


def _set_token(value):
    os.environ["REPRO_POOL_TEST_TOKEN"] = value


def _read_token():
    return os.environ.get("REPRO_POOL_TEST_TOKEN")


class TestSubmit:
    def test_result_value_and_memoization(self):
        with WorkerPool(workers=1) as pool:
            task = pool.submit(_square, 6)
            assert task.result() == 36
            assert task.result() == 36  # cached, not recomputed

    def test_ships_to_persistent_worker_even_when_serial(self):
        # unlike map, workers=1 still dispatches: the point of submit is
        # pinning per-process state in one long-lived worker
        with WorkerPool(workers=1) as pool:
            first = pool.submit(_pid)
            assert not first.inline
            worker_pid = first.result()
            assert worker_pid != os.getpid()
            assert pool.submit(_pid).result() == worker_pid  # same process

    def test_task_exception_propagates(self):
        with WorkerPool(workers=1) as pool:
            task = pool.submit(_boom, 3)
            with pytest.raises(RuntimeError, match="task failed on 3"):
                task.result()

    def test_unpicklable_fn_runs_inline_lazily(self):
        calls = []

        def local_fn(x):  # closures cannot be pickled
            calls.append(x)
            return x + 1

        with WorkerPool(workers=2) as pool:
            task = pool.submit(local_fn, 1)
            assert task.inline
            assert calls == []  # deferred until result() is asked for
            assert task.result() == 2
            assert calls == [1]

    def test_initializer_pins_worker_state(self, monkeypatch):
        monkeypatch.delenv("REPRO_POOL_TEST_TOKEN", raising=False)
        with WorkerPool(workers=1) as pool:
            pool.set_initializer(_set_token, ("shard-state",))
            assert pool.submit(_read_token).result() == "shard-state"
        assert _read_token() is None  # parent process untouched

    def test_changing_initializer_recycles_workers(self):
        with WorkerPool(workers=1) as pool:
            pool.set_initializer(_set_token, ("a",))
            first = pool.submit(_pid).result()
            pool.set_initializer(_set_token, ("b",))
            assert pool.submit(_read_token).result() == "b"
            assert pool.submit(_pid).result() != first
