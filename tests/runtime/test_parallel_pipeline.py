"""The runtime layer's pipeline guarantees.

Serial and parallel ingest must be indistinguishable byte-for-byte;
batched and scalar scoring must agree for every registered extractor; the
store's stacked-matrix cache must never serve stale data.
"""

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.core.system import VideoRetrievalSystem
from repro.features.base import all_extractors, get_extractor
from repro.imaging.image import Image
from repro.video.generator import VideoSpec, generate_video, make_corpus


@pytest.fixture(scope="module")
def tiny_corpus():
    return make_corpus(videos_per_category=1, seed=42, n_shots=2, frames_per_shot=4)[:3]


def _ingest_all(config, corpus):
    system = VideoRetrievalSystem.in_memory(config)
    for video in corpus:
        system.admin.add_video(video)
    return system


class TestSerialVsParallelIngest:
    @pytest.fixture(scope="class")
    def systems(self, tiny_corpus):
        serial = _ingest_all(SystemConfig(workers=1), tiny_corpus)
        parallel = _ingest_all(SystemConfig(workers=2), tiny_corpus)
        yield serial, parallel
        serial.close()
        parallel.close()

    def test_feature_strings_byte_identical(self, systems):
        serial, parallel = systems
        assert serial._store.frame_ids() == parallel._store.frame_ids()
        for fid in serial._store.frame_ids():
            a, b = serial._store.get(fid), parallel._store.get(fid)
            assert a.bucket == b.bucket
            assert set(a.features) == set(b.features)
            for name in a.features:
                assert a.features[name].to_string() == b.features[name].to_string()

    def test_query_frame_rankings_identical(self, systems, tiny_corpus):
        serial, parallel = systems
        for video in tiny_corpus:
            query = video.frames[1]
            hits_s = serial.search(query, top_k=10, use_index=False)
            hits_p = parallel.search(query, top_k=10, use_index=False)
            assert [h.frame_id for h in hits_s] == [h.frame_id for h in hits_p]
            assert [h.distance for h in hits_s] == [h.distance for h in hits_p]

    def test_db_rows_identical(self, systems):
        serial, parallel = systems
        rows_s = serial.db.execute("SELECT * FROM KEY_FRAMES ORDER BY I_ID").rows
        rows_p = parallel.db.execute("SELECT * FROM KEY_FRAMES ORDER BY I_ID").rows
        assert rows_s == rows_p


class TestBatchedVsScalarDistances:
    @pytest.fixture(scope="class")
    def vectors(self):
        rng = np.random.default_rng(8)
        images = [
            Image(rng.integers(0, 256, (40, 52, 3), dtype=np.uint8)) for _ in range(5)
        ]
        return {
            name: [get_extractor(name).extract(img) for img in images]
            for name in all_extractors()
        }

    @pytest.mark.parametrize("name", all_extractors())
    def test_every_registered_extractor_agrees(self, vectors, name):
        extractor = get_extractor(name)
        vecs = vectors[name]
        query, rest = vecs[0], vecs[1:]
        matrix = np.stack([v.values for v in rest])
        batched = extractor.batch_distance(query, matrix)
        scalar = np.array([extractor.distance(query, v) for v in rest])
        assert batched.shape == scalar.shape
        np.testing.assert_allclose(batched, scalar, atol=1e-9, rtol=0)

    def test_kind_mismatch_rejected(self, vectors):
        extractor = get_extractor("sch")
        wrong = vectors["glcm"][0]
        with pytest.raises(ValueError):
            extractor.batch_distance(wrong, np.zeros((2, len(wrong))))

    def test_width_mismatch_rejected(self, vectors):
        extractor = get_extractor("sch")
        query = vectors["sch"][0]
        with pytest.raises(ValueError):
            extractor.batch_distance(query, np.zeros((2, len(query) + 1)))

    def test_base_fallback_loops_overridden_scalar(self):
        from repro.features.base import FeatureExtractor, FeatureVector

        class Oddball(FeatureExtractor):
            name = "oddball"
            tag = "ODD"

            def extract(self, image):  # pragma: no cover - unused
                raise NotImplementedError

            def distance(self, a, b):
                self._check_pair(a, b)
                return float(np.max(np.abs(a.values - b.values)))

        ex = Oddball()
        q = FeatureVector(kind="oddball", values=np.array([1.0, 2.0]))
        matrix = np.array([[1.0, 2.0], [4.0, 0.0]])
        np.testing.assert_allclose(ex.batch_distance(q, matrix), [0.0, 3.0])


class TestFeatureMatrixCache:
    def _make_system(self, tiny_corpus):
        return _ingest_all(SystemConfig(), tiny_corpus[:2])

    def test_rows_match_records(self, tiny_corpus):
        system = self._make_system(tiny_corpus)
        store = system._store
        ids = store.frame_ids()
        matrix = store.feature_matrix("sch", ids)
        for row, fid in zip(matrix, ids):
            np.testing.assert_array_equal(row, store.get(fid).features["sch"].values)
        system.close()

    def test_full_matrix_is_cached_and_readonly(self, tiny_corpus):
        system = self._make_system(tiny_corpus)
        store = system._store
        first = store.feature_matrix("sch")
        assert store.feature_matrix("sch") is first
        assert not first.flags.writeable
        system.close()

    def test_invalidated_on_add(self, tiny_corpus):
        system = self._make_system(tiny_corpus)
        store = system._store
        before = store.feature_matrix("sch")
        system.admin.add_video(tiny_corpus[2])
        after = store.feature_matrix("sch")
        assert after.shape[0] == before.shape[0] + len(
            store.frames_of_video(3)
        )
        assert after.shape[0] == len(store)
        system.close()

    def test_invalidated_on_remove_video(self, tiny_corpus):
        system = self._make_system(tiny_corpus)
        store = system._store
        before = store.feature_matrix("sch")
        removed = len(store.frames_of_video(1))
        system.admin.delete_video(1)
        after = store.feature_matrix("sch")
        assert after.shape[0] == before.shape[0] - removed
        assert store.frames_of_video(1) == []
        system.close()

    def test_unknown_frame_id_raises(self, tiny_corpus):
        system = self._make_system(tiny_corpus)
        with pytest.raises(KeyError):
            system._store.feature_matrix("sch", [99999])
        system.close()


class TestBatchedVsScalarSearch:
    @pytest.fixture(scope="class")
    def pair(self, tiny_corpus):
        batched = _ingest_all(SystemConfig(batch_distances=True), tiny_corpus)
        scalar = _ingest_all(SystemConfig(batch_distances=False), tiny_corpus)
        yield batched, scalar
        batched.close()
        scalar.close()

    def test_query_frame_identical_rankings(self, pair, tiny_corpus):
        batched, scalar = pair
        query = tiny_corpus[0].frames[2]
        hits_b = batched.search(query, top_k=10, use_index=False)
        hits_s = scalar.search(query, top_k=10, use_index=False)
        assert [h.frame_id for h in hits_b] == [h.frame_id for h in hits_s]
        np.testing.assert_allclose(
            [h.distance for h in hits_b], [h.distance for h in hits_s], atol=1e-9
        )

    def test_query_video_identical_rankings(self, pair):
        batched, scalar = pair
        clip = generate_video(
            VideoSpec(category="news", seed=321, n_shots=2, frames_per_shot=4)
        )
        matches_b = batched.search_by_video(clip, top_k=5)
        matches_s = scalar.search_by_video(clip, top_k=5)
        assert [m.video_id for m in matches_b] == [m.video_id for m in matches_s]
        np.testing.assert_allclose(
            [m.distance for m in matches_b],
            [m.distance for m in matches_s],
            atol=1e-9,
        )


class TestRenameInPlace:
    def test_rename_updates_store_without_rebuild(self, tiny_corpus):
        system = _ingest_all(SystemConfig(), tiny_corpus[:2])
        store = system._store
        matrix_before = store.feature_matrix("sch")
        frame_ids = [r.frame_id for r in store.frames_of_video(1)]
        system.admin.rename_video(1, "fresh_name")
        assert all(
            store.get(fid).video_name == "fresh_name" for fid in frame_ids
        )
        # metadata-only: other videos untouched, matrix cache still valid
        assert store.frames_of_video(2)[0].video_name != "fresh_name"
        assert store.feature_matrix("sch") is matrix_before
        assert system.list_videos()[0]["V_NAME"] == "fresh_name"
        system.close()
