"""Fuzz tests: malformed inputs must fail with the *typed* error, never
an unexpected exception.  Every parser/codec boundary in the system gets a
hypothesis-driven hostile-input pass.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database
from repro.db.errors import DatabaseError
from repro.db.storage import Storage
from repro.imaging.image import Image, ImageFormatError, decode_image
from repro.video.codec import RvfError, RvfReader, encode_rvf_bytes


def _valid_rvf():
    gen = np.random.default_rng(5)
    frames = [
        Image(gen.integers(0, 256, (8, 10, 3), dtype=np.uint8)) for _ in range(3)
    ]
    return frames, encode_rvf_bytes(frames)


class TestRvfFuzz:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_truncation_is_typed_error_or_decodes(self, data):
        frames, blob = _valid_rvf()
        cut = data.draw(st.integers(0, len(blob)))
        try:
            reader = RvfReader(blob[:cut])
            decoded = list(reader)
        except RvfError:
            return
        assert decoded == frames  # only the full file can fully decode

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_bitflip_never_raises_unexpected(self, data):
        _frames, blob = _valid_rvf()
        pos = data.draw(st.integers(0, len(blob) - 1))
        bit = data.draw(st.integers(0, 7))
        corrupted = bytearray(blob)
        corrupted[pos] ^= 1 << bit
        try:
            list(RvfReader(bytes(corrupted)))
        except RvfError:
            pass  # typed failure is fine; silent wrong pixels are possible
                  # (the format carries no CRC) but must not crash

    @settings(max_examples=60, deadline=None)
    @given(blob=st.binary(min_size=0, max_size=200))
    def test_random_bytes(self, blob):
        try:
            list(RvfReader(blob))
        except RvfError:
            pass


class TestImageCodecFuzz:
    @settings(max_examples=80, deadline=None)
    @given(blob=st.binary(min_size=0, max_size=300))
    def test_random_bytes(self, blob):
        try:
            decode_image(blob)
        except ImageFormatError:
            pass

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_truncated_valid_images(self, data):
        img = Image(np.arange(48, dtype=np.uint8).reshape(4, 4, 3))
        fmt = data.draw(st.sampled_from(["ppm", "pgm", "bmp"]))
        blob = img.encode(fmt)
        cut = data.draw(st.integers(0, len(blob)))
        try:
            decoded = decode_image(blob[:cut])
            # a prefix that decodes must be the complete file
            assert cut == len(blob)
            if fmt == "pgm":
                assert decoded == img.to_gray()
            else:
                assert decoded == img
        except ImageFormatError:
            pass


class TestSqlFuzz:
    _TOKENS = [
        "SELECT", "FROM", "WHERE", "INSERT", "INTO", "VALUES", "UPDATE",
        "SET", "DELETE", "CREATE", "TABLE", "DROP", "AND", "OR", "NOT",
        "NULL", "PRIMARY", "KEY", "GROUP", "BY", "ORDER", "LIMIT",
        "COUNT", "T", "X", "NUMBER", "VARCHAR2", "(", ")", ",", "*", "=",
        "<", ">", "<=", "?", "'abc'", "42", "3.5", ";",
    ]

    @settings(max_examples=150, deadline=None)
    @given(tokens=st.lists(st.sampled_from(_TOKENS), min_size=1, max_size=14))
    def test_token_soup_parses_or_typed_error(self, tokens):
        from repro.db.errors import SqlSyntaxError
        from repro.db.sql import parse

        text = " ".join(tokens)
        try:
            parse(text)
        except SqlSyntaxError:
            pass

    @settings(max_examples=80, deadline=None)
    @given(text=st.text(max_size=60))
    def test_arbitrary_text(self, text):
        from repro.db.errors import SqlSyntaxError
        from repro.db.sql import parse

        try:
            parse(text)
        except SqlSyntaxError:
            pass

    @settings(max_examples=60, deadline=None)
    @given(tokens=st.lists(st.sampled_from(_TOKENS), min_size=1, max_size=10))
    def test_execute_token_soup(self, tokens):
        db = Database()
        db.execute("CREATE TABLE T (X NUMBER)")
        try:
            db.execute(" ".join(tokens))
        except DatabaseError:
            pass


class TestStorageFuzz:
    def _make_files(self, tmp_path):
        path = str(tmp_path / "fuzz.rdb")
        db = Database.open(path)
        db.execute("CREATE TABLE T (ID NUMBER PRIMARY KEY, NAME VARCHAR2(10))")
        db.execute("INSERT INTO T (ID, NAME) VALUES (1, 'a')")
        db.checkpoint()
        db.execute("INSERT INTO T (ID, NAME) VALUES (2, 'b')")
        db.close()
        return path

    @pytest.mark.parametrize("which", ["snapshot", "wal"])
    @pytest.mark.parametrize("fraction", [0.0, 0.3, 0.7, 0.95])
    def test_truncations(self, tmp_path, which, fraction):
        path = self._make_files(tmp_path)
        target = path if which == "snapshot" else path + ".wal"
        with open(target, "rb") as fh:
            data = fh.read()
        with open(target, "wb") as fh:
            fh.write(data[: int(len(data) * fraction)])
        try:
            db = Database.open(path)
            # if it opens, the surviving state must still be queryable
            if "T" in db.table_names():
                db.execute("SELECT COUNT(*) FROM T")
            db.close()
        except DatabaseError:
            # StorageError (corrupt file) or a replay error after losing
            # the snapshot (WAL statements referencing a vanished table)
            pass

    def test_random_bytes_in_snapshot(self, tmp_path):
        from repro.db.errors import StorageError

        path = self._make_files(tmp_path)
        gen = np.random.default_rng(0)
        with open(path, "rb") as fh:
            data = bytearray(fh.read())
        # corrupt 5 random bytes beyond the magic
        for pos in gen.integers(4, len(data), size=5):
            data[pos] ^= 0xFF
        with open(path, "wb") as fh:
            fh.write(bytes(data))
        try:
            Database.open(path).close()
        except (StorageError, DatabaseError):
            pass
