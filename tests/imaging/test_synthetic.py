"""Procedural texture tests."""

import numpy as np
import pytest

from repro.imaging.synthetic import (
    checkerboard,
    grass_texture,
    halftone_dots,
    smooth_noise,
    stripes,
)


class TestSmoothNoise:
    def test_range_and_shape(self, fresh_rng):
        t = smooth_noise(20, 14, 2.0, fresh_rng, lo=10, hi=90)
        assert t.shape == (14, 20)
        assert t.min() == pytest.approx(10) and t.max() == pytest.approx(90)

    def test_smoothing_reduces_gradient(self):
        rough = smooth_noise(30, 30, 0.0, np.random.default_rng(1))
        smooth = smooth_noise(30, 30, 3.0, np.random.default_rng(1))
        assert np.abs(np.diff(smooth, axis=1)).mean() < np.abs(np.diff(rough, axis=1)).mean()

    def test_deterministic_given_rng_seed(self):
        a = smooth_noise(10, 10, 1.0, np.random.default_rng(7))
        b = smooth_noise(10, 10, 1.0, np.random.default_rng(7))
        assert np.array_equal(a, b)


class TestStripes:
    def test_periodicity_horizontal(self):
        t = stripes(40, 8, period=10, angle_deg=0.0)
        assert np.allclose(t[:, 0], t[:, 10], atol=1e-9)
        assert np.allclose(t[:, 3], t[:, 13], atol=1e-9)

    def test_orientation_90_varies_vertically(self):
        t = stripes(8, 40, period=10, angle_deg=90.0)
        assert np.allclose(t[0, :], t[0, 0])  # constant along x
        assert t[:, 0].std() > 0

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            stripes(8, 8, 0)


class TestCheckerboard:
    def test_alternation(self):
        t = checkerboard(8, 8, cell=2, lo=0, hi=255)
        assert t[0, 0] == 0 and t[0, 2] == 255 and t[2, 0] == 255 and t[2, 2] == 0

    def test_rejects_bad_cell(self):
        with pytest.raises(ValueError):
            checkerboard(8, 8, 0)


class TestGrass:
    def test_range(self, fresh_rng):
        t = grass_texture(24, 24, fresh_rng)
        assert t.min() >= 0 and t.max() <= 255

    def test_high_frequency(self, fresh_rng):
        t = grass_texture(32, 32, fresh_rng)
        # neighbouring pixels should differ noticeably (it is noise-based)
        assert np.abs(np.diff(t, axis=1)).mean() > 5


class TestDots:
    def test_grid_positions(self):
        t = halftone_dots(30, 30, spacing=10, radius=2)
        assert t[5, 5] == 255.0  # dot center at spacing/2
        assert t[0, 0] == 0.0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            halftone_dots(10, 10, 0, 1)
