"""Fast paths vs. reference paths.

Every optimisation behind ``accel.fast_paths_enabled()`` claims to be a
drop-in for the original code it replaced.  These tests hold it to that:
imaging primitives must match bit for bit, and whole feature vectors must
match exactly (or to tight floating tolerance where the fast path reorders
float ops -- gabor's FFT convolution, glcm's accumulation order).
"""

import numpy as np
import pytest

from repro.features.base import get_extractor
from repro.imaging import accel
from repro.imaging.color import quantize_uniform, rgb_to_gray, rgb_to_hsv
from repro.imaging.image import Image
from repro.imaging.resize import resize_array

# extractor -> (rtol, atol); None means bitwise equality is required
_TOLERANCES = {
    "sch": None,
    "acc": None,
    "tamura": None,
    "regions": None,
    "glcm": (1e-12, 1e-15),
    "gabor": (1e-6, 1e-12),
}


@pytest.fixture(params=["gradient", "noise"])
def pixels(request, gradient_image, noise_image):
    return {"gradient": gradient_image, "noise": noise_image}[request.param].pixels


def test_accel_toggles():
    assert accel.fast_paths_enabled()
    with accel.reference_paths():
        assert not accel.fast_paths_enabled()
        with accel.reference_paths():  # reentrant
            assert not accel.fast_paths_enabled()
    assert accel.fast_paths_enabled()


class TestImagingPrimitives:
    def test_rgb_to_gray(self, pixels):
        fast = rgb_to_gray(pixels)
        with accel.reference_paths():
            ref = rgb_to_gray(pixels)
        assert np.array_equal(fast, ref)

    def test_rgb_to_hsv(self, pixels):
        fast = rgb_to_hsv(pixels)
        with accel.reference_paths():
            ref = rgb_to_hsv(pixels)
        assert np.array_equal(fast, ref)

    def test_quantize_uniform(self):
        values = np.linspace(-10.0, 270.0, 997)
        fast = quantize_uniform(values, 16)
        with accel.reference_paths():
            ref = quantize_uniform(values, 16)
        assert np.array_equal(fast, ref)

    @pytest.mark.parametrize("size", [(17, 23), (300, 300), (8, 120)])
    def test_resize_nearest(self, pixels, size):
        w, h = size
        fast = resize_array(pixels, w, h)
        with accel.reference_paths():
            ref = resize_array(pixels, w, h)
        assert np.array_equal(fast, ref)
        gray = rgb_to_gray(pixels)
        fast2 = resize_array(gray, w, h)
        with accel.reference_paths():
            ref2 = resize_array(gray, w, h)
        assert np.array_equal(fast2, ref2)


class TestExtractorEquivalence:
    @pytest.mark.parametrize("name", sorted(_TOLERANCES))
    def test_fast_matches_reference(self, name, pixels):
        extractor = get_extractor(name)
        # fresh Image per run: the fast path memoizes gray() on the instance
        fast = extractor.extract(Image(pixels.copy())).values
        with accel.reference_paths():
            ref = extractor.extract(Image(pixels.copy())).values
        tol = _TOLERANCES[name]
        if tol is None:
            assert np.array_equal(fast, ref), name
        else:
            rtol, atol = tol
            assert np.allclose(fast, ref, rtol=rtol, atol=atol), name


class TestStoreGather:
    def test_subset_matrix_matches_reference(self, ingested_system):
        store = ingested_system._store
        ids = store.frame_ids()
        subsets = [ids, ids[::2], ids[:3], list(reversed(ids[:4])), [ids[0], ids[0]]]
        for subset in subsets:
            fast = store.feature_matrix("sch", subset)
            with accel.reference_paths():
                ref = store.feature_matrix("sch", subset)
            assert np.array_equal(fast, ref)

    def test_unknown_id_raises_on_both_paths(self, ingested_system):
        store = ingested_system._store
        missing = max(store.frame_ids()) + 1000
        with pytest.raises(KeyError):
            store.feature_matrix("sch", [missing])
        with accel.reference_paths():
            with pytest.raises(KeyError):
                store.feature_matrix("sch", [missing])

    def test_matrix_rows_round_trip(self, ingested_system):
        store = ingested_system._store
        ids = store.frame_ids()
        subset = ids[1::3]
        rows = store.matrix_rows(subset)
        base = store.feature_matrix("sch")
        assert np.array_equal(base[rows], store.feature_matrix("sch", subset))
        with pytest.raises(KeyError):
            store.matrix_rows([max(ids) + 7])


class TestSearchEquivalence:
    def test_query_results_match_reference_paths(self, ingested_system):
        from dataclasses import replace

        from repro.core.search import SearchEngine

        # a cacheless engine, so the reference run can't hit the fast run's
        # cached entry and skip its own scoring
        cfg = replace(ingested_system.config, query_cache_size=0)
        engine = SearchEngine(
            cfg,
            ingested_system._store,
            ingested_system._index,
            pool=ingested_system._engine._pool,
        )
        query = ingested_system.any_key_frame()
        fast = engine.query_frame(query, top_k=10, use_index=False).hits
        with accel.reference_paths():
            ref = engine.query_frame(query, top_k=10, use_index=False).hits
        assert [h.frame_id for h in fast] == [h.frame_id for h in ref]
        assert np.allclose(
            [h.distance for h in fast],
            [h.distance for h in ref],
            rtol=1e-6,
            atol=1e-9,
        )
