"""Color conversion and quantization tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.imaging.color import (
    GRAY_WEIGHTS,
    hsv_to_rgb,
    quantize_hsv,
    quantize_rgb_to_index,
    quantize_uniform,
    rgb_to_gray,
    rgb_to_hsv,
)


class TestGray:
    def test_weights_are_bt601(self):
        assert GRAY_WEIGHTS == (0.299, 0.587, 0.114)

    def test_pure_channels(self):
        reds = np.full((2, 2, 3), 0, dtype=np.uint8)
        reds[..., 0] = 255
        assert rgb_to_gray(reds)[0, 0] == 76
        greens = np.zeros((1, 1, 3), dtype=np.uint8)
        greens[..., 1] = 255
        assert rgb_to_gray(greens)[0, 0] == 150
        blues = np.zeros((1, 1, 3), dtype=np.uint8)
        blues[..., 2] = 255
        assert rgb_to_gray(blues)[0, 0] == 29

    def test_white_and_black(self):
        assert rgb_to_gray(np.full((1, 1, 3), 255, dtype=np.uint8))[0, 0] == 255
        assert rgb_to_gray(np.zeros((1, 1, 3), dtype=np.uint8))[0, 0] == 0

    def test_gray_input_passthrough(self):
        g = np.arange(6, dtype=np.uint8).reshape(2, 3)
        assert np.array_equal(rgb_to_gray(g), g)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            rgb_to_gray(np.zeros((2, 2, 4)))


class TestHsv:
    def test_known_colors(self):
        # red -> H=0, S=1, V=1
        hsv = rgb_to_hsv(np.array([[[255, 0, 0]]], dtype=np.uint8))[0, 0]
        assert hsv[0] == pytest.approx(0.0)
        assert hsv[1] == pytest.approx(1.0)
        assert hsv[2] == pytest.approx(1.0)
        # green -> H=120
        hsv = rgb_to_hsv(np.array([[[0, 255, 0]]], dtype=np.uint8))[0, 0]
        assert hsv[0] == pytest.approx(120.0)
        # blue -> H=240
        hsv = rgb_to_hsv(np.array([[[0, 0, 255]]], dtype=np.uint8))[0, 0]
        assert hsv[0] == pytest.approx(240.0)

    def test_gray_has_zero_saturation(self):
        hsv = rgb_to_hsv(np.full((1, 1, 3), 128, dtype=np.uint8))[0, 0]
        assert hsv[1] == pytest.approx(0.0)
        assert hsv[2] == pytest.approx(128 / 255)

    def test_black_has_zero_value(self):
        hsv = rgb_to_hsv(np.zeros((1, 1, 3), dtype=np.uint8))[0, 0]
        assert hsv[2] == 0.0 and hsv[1] == 0.0

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_roundtrip_property(self, seed):
        gen = np.random.default_rng(seed)
        rgb = gen.integers(0, 256, (6, 6, 3), dtype=np.uint8)
        back = hsv_to_rgb(rgb_to_hsv(rgb))
        assert np.abs(back.astype(int) - rgb.astype(int)).max() <= 1

    def test_hue_wraps(self):
        a = hsv_to_rgb(np.array([[[0.0, 1.0, 1.0]]]))
        b = hsv_to_rgb(np.array([[[360.0, 1.0, 1.0]]]))
        assert np.array_equal(a, b)


class TestQuantizers:
    def test_uniform_bounds(self):
        vals = np.array([0.0, 127.0, 255.0])
        q = quantize_uniform(vals, 4)
        assert q.tolist() == [0, 1, 3]

    def test_uniform_single_level(self):
        assert quantize_uniform(np.array([0, 255]), 1).tolist() == [0, 0]

    def test_uniform_rejects_zero_levels(self):
        with pytest.raises(ValueError):
            quantize_uniform(np.array([1.0]), 0)

    def test_hsv_quantizer_range(self):
        gen = np.random.default_rng(3)
        rgb = gen.integers(0, 256, (16, 16, 3), dtype=np.uint8)
        q = quantize_hsv(rgb, 8, 4, 2)
        assert q.min() >= 0 and q.max() < 64

    def test_hsv_quantizer_separates_hues(self):
        red = quantize_hsv(np.array([[[255, 0, 0]]], dtype=np.uint8))
        green = quantize_hsv(np.array([[[0, 255, 0]]], dtype=np.uint8))
        assert red[0, 0] != green[0, 0]

    def test_rgb_index_range(self):
        gen = np.random.default_rng(4)
        rgb = gen.integers(0, 256, (8, 8, 3), dtype=np.uint8)
        q = quantize_rgb_to_index(rgb, 4)
        assert q.min() >= 0 and q.max() < 64

    def test_rgb_index_extremes(self):
        black = quantize_rgb_to_index(np.zeros((1, 1, 3), dtype=np.uint8), 4)
        white = quantize_rgb_to_index(np.full((1, 1, 3), 255, dtype=np.uint8), 4)
        assert black[0, 0] == 0
        assert white[0, 0] == 63
