"""Canvas rasterizer tests."""

import numpy as np
import pytest

from repro.imaging.draw import Canvas
from repro.imaging.image import Image


class TestCanvasBasics:
    def test_background(self):
        c = Canvas(8, 6, background=(10, 20, 30))
        img = c.to_image()
        assert img.width == 8 and img.height == 6
        assert img.pixels[0, 0].tolist() == [10, 20, 30]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Canvas(0, 5)

    def test_fill(self):
        c = Canvas(4, 4)
        c.fill((200, 0, 0))
        assert np.all(c.to_image().pixels[..., 0] == 200)


class TestPrimitives:
    def test_rect_covers_half_open_box(self):
        c = Canvas(10, 10)
        c.rect(2, 3, 5, 7, (255, 255, 255))
        img = c.to_image().pixels
        assert np.all(img[3:7, 2:5] == 255)
        assert np.all(img[:3] == 0) and np.all(img[:, :2] == 0)
        assert np.all(img[7:] == 0) and np.all(img[:, 5:] == 0)

    def test_rect_clips_to_canvas(self):
        c = Canvas(6, 6)
        c.rect(-5, -5, 100, 100, (9, 9, 9))
        assert np.all(c.to_image().pixels == 9)

    def test_rect_with_swapped_corners(self):
        c = Canvas(6, 6)
        c.rect(4, 4, 1, 1, (50, 50, 50))
        assert np.all(c.to_image().pixels[1:4, 1:4] == 50)

    def test_circle_center_and_radius(self):
        c = Canvas(21, 21)
        c.circle(10, 10, 5, (255, 0, 0))
        img = c.to_image().pixels
        assert img[10, 10, 0] == 255
        assert img[10, 15, 0] == 255  # on the radius
        assert img[10, 17, 0] == 0  # outside

    def test_circle_zero_radius_noop(self):
        c = Canvas(5, 5)
        c.circle(2, 2, 0, (255, 255, 255))
        assert np.all(c.to_image().pixels == 0)

    def test_circle_clipped_offscreen(self):
        c = Canvas(5, 5)
        c.circle(-10, -10, 3, (255, 255, 255))
        assert np.all(c.to_image().pixels == 0)

    def test_line_endpoints(self):
        c = Canvas(10, 10)
        c.line(1, 1, 8, 8, (0, 255, 0))
        img = c.to_image().pixels
        assert img[1, 1, 1] == 255 and img[8, 8, 1] == 255
        assert img[4, 4, 1] == 255  # diagonal passes through

    def test_vertical_gradient_monotone(self):
        c = Canvas(4, 20)
        c.vertical_gradient((0, 0, 0), (200, 200, 200))
        col = c.to_image().pixels[:, 0, 0].astype(int)
        assert col[0] == 0 and col[-1] == 200
        assert np.all(np.diff(col) >= 0)

    def test_text_block_draws_rows(self):
        c = Canvas(40, 40)
        c.text_block(2, 2, 30, 3, (255, 255, 255), line_height=4,
                     rng=np.random.default_rng(0))
        img = c.to_image().pixels
        assert img[2:6, 2:10].max() == 255  # first line
        assert img[20:].max() == 0  # nothing below the block

    def test_noise_changes_pixels(self):
        c = Canvas(8, 8, background=(100, 100, 100))
        c.add_noise(5.0, np.random.default_rng(1))
        assert c.to_image().pixels.std() > 0

    def test_noise_zero_sigma_noop(self):
        c = Canvas(8, 8, background=(100, 100, 100))
        c.add_noise(0.0, np.random.default_rng(1))
        assert np.all(c.to_image().pixels == 100)

    def test_blend_texture(self):
        c = Canvas(6, 4, background=(0, 0, 0))
        c.blend_texture(np.full((4, 6), 200.0), alpha=0.5)
        assert np.all(c.to_image().pixels == 100)

    def test_blend_texture_shape_check(self):
        c = Canvas(6, 4)
        with pytest.raises(ValueError):
            c.blend_texture(np.zeros((5, 5)), 0.5)

    def test_to_image_clips(self):
        c = Canvas(3, 3, background=(300, -5, 128))
        img = c.to_image()
        assert isinstance(img, Image)
        assert img.pixels[0, 0].tolist() == [255, 0, 128]
