"""Automatic thresholding tests."""

import numpy as np
import pytest

from repro.imaging.threshold import binarize, min_fuzziness_threshold, otsu_threshold


def _bimodal_hist(lo, hi, n_lo=400, n_hi=600):
    hist = np.zeros(256)
    hist[lo] = n_lo
    hist[hi] = n_hi
    return hist


class TestMinFuzziness:
    def test_bimodal_splits_between_modes(self):
        t = min_fuzziness_threshold(_bimodal_hist(40, 200))
        assert 40 <= t < 200

    def test_spread_bimodal(self):
        gen = np.random.default_rng(0)
        hist = np.zeros(256)
        for v in gen.normal(60, 8, 3000):
            hist[int(np.clip(v, 0, 255))] += 1
        for v in gen.normal(190, 10, 3000):
            hist[int(np.clip(v, 0, 255))] += 1
        t = min_fuzziness_threshold(hist)
        assert 80 < t < 170

    def test_constant_image(self):
        hist = np.zeros(256)
        hist[99] = 500
        assert min_fuzziness_threshold(hist) == 99

    def test_empty_histogram_rejected(self):
        with pytest.raises(ValueError):
            min_fuzziness_threshold(np.zeros(256))

    def test_short_histogram_rejected(self):
        with pytest.raises(ValueError):
            min_fuzziness_threshold(np.array([5.0]))


class TestOtsu:
    def test_bimodal_splits_between_modes(self):
        t = otsu_threshold(_bimodal_hist(30, 220))
        assert 30 <= t < 220

    def test_agrees_with_fuzzy_on_clean_bimodal(self):
        hist = _bimodal_hist(50, 180)
        tf = min_fuzziness_threshold(hist)
        to = otsu_threshold(hist)
        assert abs(tf - to) < 70  # both land between the modes

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            otsu_threshold(np.zeros(10))


class TestBinarize:
    def test_explicit_threshold(self):
        a = np.array([[10, 200], [90, 150]], dtype=np.uint8)
        out = binarize(a, threshold=100)
        assert out.tolist() == [[False, True], [False, True]]

    def test_auto_threshold_separates_modes(self):
        a = np.zeros((10, 10), dtype=np.uint8)
        a[:, 5:] = 220
        a[:, :5] = 30
        out = binarize(a)
        assert out[:, 5:].all() and not out[:, :5].any()

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            binarize(np.zeros((2, 2, 3)))
