"""Binary morphology tests."""

import numpy as np
import pytest

from repro.imaging.morphology import (
    PAPER_KERNEL,
    binary_close,
    binary_dilate,
    binary_erode,
    binary_open,
)

CROSS = np.array([[0, 1, 0], [1, 1, 1], [0, 1, 0]], dtype=bool)


def _square(n, size, at):
    a = np.zeros((n, n), dtype=bool)
    y, x = at
    a[y : y + size, x : x + size] = True
    return a


class TestKernel:
    def test_paper_kernel_shape(self):
        assert PAPER_KERNEL.shape == (5, 5)
        # only the central 3x3 is active
        assert PAPER_KERNEL.sum() == 9
        assert not PAPER_KERNEL[0].any() and not PAPER_KERNEL[-1].any()


class TestDilate:
    def test_single_pixel_grows_to_kernel(self):
        a = np.zeros((7, 7), dtype=bool)
        a[3, 3] = True
        out = binary_dilate(a)
        assert out.sum() == 9
        assert out[2:5, 2:5].all()

    def test_cross_kernel(self):
        a = np.zeros((5, 5), dtype=bool)
        a[2, 2] = True
        out = binary_dilate(a, CROSS)
        assert out.sum() == 5
        assert out[2, 1] and out[1, 2] and not out[1, 1]

    def test_empty_stays_empty(self):
        assert not binary_dilate(np.zeros((6, 6), dtype=bool)).any()

    def test_monotone(self):
        gen = np.random.default_rng(0)
        a = gen.random((10, 10)) > 0.7
        b = a | (gen.random((10, 10)) > 0.7)
        da, db = binary_dilate(a), binary_dilate(b)
        assert np.all(da <= db)  # a subset of b dilates to a subset


class TestErode:
    def test_square_shrinks(self):
        a = _square(9, 5, (2, 2))
        out = binary_erode(a)
        assert out.sum() == 9  # 5x5 erodes to 3x3 under a 3x3 kernel
        assert out[3:6, 3:6].all()

    def test_border_pixels_eroded(self):
        a = np.ones((6, 6), dtype=bool)
        out = binary_erode(a)
        assert not out[0].any() and not out[:, 0].any()
        assert out[1:-1, 1:-1].all()

    def test_erode_then_dilate_subset_of_original(self):
        gen = np.random.default_rng(5)
        a = gen.random((16, 16)) > 0.5
        assert np.all(binary_open(a) <= a)

    def test_dilate_then_erode_superset_of_original_interior(self):
        # erosion treats out-of-image pixels as unset, so closing can only
        # lose pixels at the 1-pixel border; the interior must be a superset
        gen = np.random.default_rng(6)
        a = gen.random((16, 16)) > 0.5
        closed = binary_close(a)
        assert np.all(closed[1:-1, 1:-1] >= a[1:-1, 1:-1])


class TestOpenClose:
    def test_open_removes_speckle(self):
        a = _square(15, 6, (4, 4))
        a[1, 1] = True  # isolated speckle
        out = binary_open(a)
        assert not out[1, 1]
        assert out[6, 6]  # body survives

    def test_close_fills_hole(self):
        a = _square(15, 7, (4, 4))
        a[7, 7] = False  # small interior hole
        out = binary_close(a)
        assert out[7, 7]

    def test_validation(self):
        with pytest.raises(ValueError):
            binary_dilate(np.zeros((2, 2, 2)))
