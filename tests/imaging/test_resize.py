"""Rescaling tests."""

import numpy as np
import pytest

from repro.imaging.image import Image
from repro.imaging.resize import resize, resize_array


class TestNearest:
    def test_identity(self):
        a = np.arange(12, dtype=np.uint8).reshape(3, 4)
        out = resize_array(a, 4, 3, "nearest")
        assert np.array_equal(out, a)
        assert out is not a  # must be a copy

    def test_upscale_replicates(self):
        a = np.array([[0, 255]], dtype=np.uint8)
        out = resize_array(a, 4, 1, "nearest")
        assert out.tolist() == [[0, 0, 255, 255]]

    def test_downscale_samples(self):
        a = np.arange(16, dtype=np.uint8).reshape(4, 4)
        out = resize_array(a, 2, 2, "nearest")
        assert out.shape == (2, 2)
        # values must come from the source
        assert set(out.ravel().tolist()) <= set(a.ravel().tolist())

    def test_rgb_channels_preserved(self):
        a = np.zeros((2, 2, 3), dtype=np.uint8)
        a[..., 1] = 200
        out = resize_array(a, 5, 5, "nearest")
        assert out.shape == (5, 5, 3)
        assert np.all(out[..., 1] == 200) and np.all(out[..., 0] == 0)


class TestBilinear:
    def test_identity(self):
        a = np.arange(20, dtype=np.uint8).reshape(4, 5)
        assert np.array_equal(resize_array(a, 5, 4, "bilinear"), a)

    def test_flat_stays_flat(self):
        a = np.full((6, 6), 100, dtype=np.uint8)
        out = resize_array(a, 13, 9, "bilinear")
        assert np.all(out == 100)

    def test_interpolates_between(self):
        a = np.array([[0, 100]], dtype=np.float64)
        out = resize_array(a, 4, 1, "bilinear")
        assert out[0, 0] <= out[0, 1] <= out[0, 2] <= out[0, 3]
        assert 0 < out[0, 1] < 100

    def test_uint8_output_clipped(self):
        a = np.array([[0, 255]], dtype=np.uint8)
        out = resize_array(a, 3, 1, "bilinear")
        assert out.dtype == np.uint8


class TestValidation:
    def test_rejects_zero_target(self):
        with pytest.raises(ValueError):
            resize_array(np.zeros((2, 2)), 0, 2)

    def test_rejects_unknown_interpolation(self):
        with pytest.raises(ValueError):
            resize_array(np.zeros((2, 2)), 2, 2, "bicubic")

    def test_image_wrapper(self, gradient_image):
        out = resize(gradient_image, 300, 300)
        assert isinstance(out, Image)
        assert out.width == 300 and out.height == 300
