"""Image container and codec tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.imaging.image import (
    Image,
    ImageFormatError,
    decode_image,
    encode_bmp,
    encode_pgm,
    encode_ppm,
    read_image,
    write_image,
)


def _rand_rgb(seed, h, w):
    gen = np.random.default_rng(seed)
    return gen.integers(0, 256, (h, w, 3), dtype=np.uint8)


class TestImageContainer:
    def test_rgb_properties(self):
        img = Image(_rand_rgb(0, 5, 9))
        assert img.width == 9
        assert img.height == 5
        assert img.is_rgb and not img.is_gray
        assert img.shape == (5, 9, 3)

    def test_gray_properties(self):
        img = Image(np.zeros((4, 6), dtype=np.uint8))
        assert img.is_gray and not img.is_rgb
        assert img.shape == (4, 6)

    def test_rejects_wrong_dtype(self):
        with pytest.raises(TypeError):
            Image(np.zeros((4, 4), dtype=np.float64))

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            Image(np.zeros((4, 4, 2), dtype=np.uint8))
        with pytest.raises(ValueError):
            Image(np.zeros((4,), dtype=np.uint8))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Image(np.zeros((0, 4), dtype=np.uint8))

    def test_pixels_immutable(self):
        img = Image(np.zeros((3, 3), dtype=np.uint8))
        with pytest.raises(ValueError):
            img.pixels[0, 0] = 1

    def test_source_array_not_aliased(self):
        arr = np.zeros((3, 3), dtype=np.uint8)
        img = Image(arr)
        arr[0, 0] = 99
        assert img.pixels[0, 0] == 0

    def test_from_array_clips_and_rounds(self):
        img = Image.from_array(np.array([[-5.0, 300.0, 127.6]]))
        assert img.pixels.tolist() == [[0, 255, 128]]

    def test_blank_gray_and_rgb(self):
        g = Image.blank(4, 3, 7)
        assert g.is_gray and g.pixels.max() == 7 == g.pixels.min()
        c = Image.blank(4, 3, (1, 2, 3))
        assert c.is_rgb and c.pixels[0, 0].tolist() == [1, 2, 3]

    def test_to_rgb_roundtrip_gray(self):
        g = Image.blank(4, 3, 9)
        rgb = g.to_rgb()
        assert rgb.is_rgb
        assert np.all(rgb.pixels == 9)
        assert rgb.to_gray() == g

    def test_to_gray_uses_bt601(self):
        img = Image.blank(2, 2, (255, 0, 0))
        assert img.to_gray().pixels[0, 0] == 76  # round(0.299*255)

    def test_equality_and_hash(self):
        a = Image(_rand_rgb(1, 4, 4))
        b = Image(a.pixels.copy())
        c = Image(_rand_rgb(2, 4, 4))
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert a != "not an image"


class TestCodecs:
    @pytest.mark.parametrize("fmt", ["ppm", "bmp"])
    def test_rgb_roundtrip(self, fmt):
        img = Image(_rand_rgb(3, 17, 23))
        assert decode_image(img.encode(fmt)) == img

    def test_pgm_roundtrip_gray(self):
        gen = np.random.default_rng(4)
        img = Image(gen.integers(0, 256, (11, 13), dtype=np.uint8))
        assert decode_image(img.encode("pgm")) == img

    def test_pgm_converts_rgb_to_gray(self):
        img = Image(_rand_rgb(5, 8, 8))
        decoded = decode_image(img.encode("pgm"))
        assert decoded.is_gray
        assert decoded == img.to_gray()

    def test_bmp_row_padding(self):
        # widths not divisible by 4 exercise BMP's row padding
        for w in (1, 2, 3, 5):
            img = Image(_rand_rgb(w, 7, w))
            assert decode_image(encode_bmp(img)) == img

    def test_ascii_pnm_decodes(self):
        text = b"P2\n# comment\n3 2\n255\n0 1 2\n3 4 5\n"
        img = decode_image(text)
        assert img.pixels.tolist() == [[0, 1, 2], [3, 4, 5]]

    def test_ascii_ppm_decodes(self):
        text = b"P3\n1 1\n255\n10 20 30\n"
        img = decode_image(text)
        assert img.pixels[0, 0].tolist() == [10, 20, 30]

    def test_unknown_format_rejected(self):
        with pytest.raises(ImageFormatError):
            decode_image(b"GIF89a....")

    def test_truncated_ppm_rejected(self):
        data = encode_ppm(Image(_rand_rgb(6, 6, 6)))
        with pytest.raises(ImageFormatError):
            decode_image(data[: len(data) // 2])

    def test_truncated_bmp_rejected(self):
        data = encode_bmp(Image(_rand_rgb(7, 6, 6)))
        with pytest.raises(ImageFormatError):
            decode_image(data[:30])

    def test_bad_maxval_rejected(self):
        with pytest.raises(ImageFormatError):
            decode_image(b"P5\n2 2\n65535\n\x00\x00\x00\x00")

    def test_unsupported_encode_format(self):
        with pytest.raises(ValueError):
            Image(_rand_rgb(8, 4, 4)).encode("jpeg")

    def test_file_roundtrip(self, tmp_path):
        img = Image(_rand_rgb(9, 10, 12))
        for ext in ("ppm", "bmp"):
            path = tmp_path / f"frame.{ext}"
            write_image(img, path)
            assert read_image(path) == img

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        h=st.integers(1, 24),
        w=st.integers(1, 24),
    )
    def test_ppm_roundtrip_property(self, seed, h, w):
        img = Image(_rand_rgb(seed, h, w))
        assert decode_image(encode_ppm(img)) == img

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        h=st.integers(1, 24),
        w=st.integers(1, 24),
    )
    def test_bmp_roundtrip_property(self, seed, h, w):
        img = Image(_rand_rgb(seed, h, w))
        assert decode_image(encode_bmp(img)) == img
