"""Convolution and kernel tests."""

import numpy as np
import pytest

from repro.imaging.filters import (
    SOBEL_X,
    SOBEL_Y,
    box_kernel,
    convolve2d,
    gaussian_kernel,
    sobel_gradients,
)


class TestConvolve:
    def test_identity_kernel(self):
        gen = np.random.default_rng(0)
        a = gen.normal(size=(12, 15))
        k = np.zeros((3, 3))
        k[1, 1] = 1.0
        assert np.allclose(convolve2d(a, k), a)

    def test_shift_kernel_is_true_convolution(self):
        # true convolution flips the kernel: weight left of center means
        # out[y, x] = a[y, x + 1], i.e. content shifts LEFT
        a = np.zeros((5, 5))
        a[2, 2] = 1.0
        k = np.zeros((3, 3))
        k[1, 0] = 1.0  # offset (0, -1) in kernel space
        out = convolve2d(a, k, mode="constant")
        assert out[2, 1] == pytest.approx(1.0)
        assert out[2, 2] == pytest.approx(0.0)

    def test_flat_preserved_by_normalized_kernels(self):
        a = np.ones((20, 20))
        for k in (box_kernel(3), box_kernel(5), gaussian_kernel(1.3)):
            assert np.allclose(convolve2d(a, k), 1.0)

    def test_fft_path_matches_direct(self):
        gen = np.random.default_rng(1)
        a = gen.normal(size=(30, 34))
        k = gen.normal(size=(13, 13))  # big enough for the FFT path
        direct = _direct_conv(a, k)
        fast = convolve2d(a, k)
        assert np.allclose(fast, direct, atol=1e-9)

    def test_even_kernel_supported(self):
        a = np.ones((8, 8))
        k = np.full((2, 2), 0.25)
        assert convolve2d(a, k).shape == (8, 8)

    def test_constant_mode_zero_pads(self):
        a = np.ones((4, 4))
        out = convolve2d(a, box_kernel(3), mode="constant")
        assert out[0, 0] == pytest.approx(4 / 9)
        assert out[1, 1] == pytest.approx(1.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            convolve2d(np.zeros(4), np.zeros((3, 3)))
        with pytest.raises(ValueError):
            convolve2d(np.zeros((4, 4)), np.zeros((3, 3)), mode="wrap")


def _direct_conv(a, k):
    """Naive O(n^2 m^2) reference convolution with reflect padding."""
    kh, kw = k.shape
    top, bottom = (kh - 1) // 2, kh // 2
    left, right = (kw - 1) // 2, kw // 2
    padded = np.pad(a, ((top, bottom), (left, right)), mode="reflect")
    kf = k[::-1, ::-1]
    out = np.empty_like(a)
    for y in range(a.shape[0]):
        for x in range(a.shape[1]):
            out[y, x] = np.sum(padded[y : y + kh, x : x + kw] * kf)
    return out


class TestKernels:
    def test_gaussian_normalized_and_symmetric(self):
        k = gaussian_kernel(2.0)
        assert k.sum() == pytest.approx(1.0)
        assert np.allclose(k, k.T)
        assert np.allclose(k, k[::-1, ::-1])

    def test_gaussian_radius_default(self):
        k = gaussian_kernel(1.0)
        assert k.shape == (7, 7)  # ceil(3*sigma) = 3 -> 2*3+1

    def test_gaussian_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            gaussian_kernel(0.0)

    def test_box_rejects_bad_size(self):
        with pytest.raises(ValueError):
            box_kernel(0)

    def test_sobel_kernels_are_transposes(self):
        assert np.array_equal(SOBEL_X.T, SOBEL_Y)


class TestSobel:
    def test_vertical_edge_detected_by_gx(self):
        a = np.zeros((10, 10))
        a[:, 5:] = 100.0
        gx, gy, mag, _theta = sobel_gradients(a)
        assert np.abs(gx).max() > 0
        # interior rows: gy must be ~0 on a purely vertical edge
        assert np.abs(gy[2:-2]).max() == pytest.approx(0.0)
        assert mag.max() == pytest.approx(np.abs(gx).max())

    def test_flat_image_zero_gradient(self):
        _gx, _gy, mag, _theta = sobel_gradients(np.full((8, 8), 42.0))
        assert mag.max() == pytest.approx(0.0)
