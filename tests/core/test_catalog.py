"""Schema bootstrap tests."""

from repro.core.catalog import FEATURE_COLUMNS, bootstrap, is_bootstrapped
from repro.db import Database
from repro.db.types import BLOB, DATE, NUMBER, ORD_IMAGE, ORD_VIDEO, VARCHAR2


class TestBootstrap:
    def test_creates_both_tables(self):
        db = Database()
        assert not is_bootstrapped(db)
        bootstrap(db)
        assert is_bootstrapped(db)
        assert set(db.table_names()) == {"KEY_FRAMES", "VIDEO_STORE"}

    def test_idempotent(self):
        db = Database()
        bootstrap(db)
        bootstrap(db)  # must not raise
        assert is_bootstrapped(db)

    def test_video_store_schema_matches_paper(self):
        db = Database()
        bootstrap(db)
        schema = db.schema_of("VIDEO_STORE")
        assert schema.primary_key == ["V_ID"]
        assert isinstance(schema.column("V_ID").sql_type, NUMBER)
        assert isinstance(schema.column("V_NAME").sql_type, VARCHAR2)
        assert isinstance(schema.column("VIDEO").sql_type, ORD_VIDEO)
        assert isinstance(schema.column("STREAM").sql_type, BLOB)
        assert isinstance(schema.column("DOSTORE").sql_type, DATE)

    def test_key_frames_schema(self):
        db = Database()
        bootstrap(db)
        schema = db.schema_of("KEY_FRAMES")
        assert schema.primary_key == ["I_ID"]
        assert isinstance(schema.column("IMAGE").sql_type, ORD_IMAGE)
        for column in FEATURE_COLUMNS.values():
            assert schema.has_column(column)
        assert schema.has_column("MIN") and schema.has_column("MAX")
        assert schema.has_column("MAJORREGIONS")

    def test_v_id_secondary_index_built(self):
        db = Database()
        bootstrap(db)
        assert db.tables["KEY_FRAMES"].has_index("V_ID")
