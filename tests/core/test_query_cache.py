"""Query-result cache: LRU unit behaviour and engine-level invalidation."""

import numpy as np
import pytest

from repro.core.cache import QueryCache, digest_array, digest_vectors
from repro.core.config import SystemConfig
from repro.core.system import VideoRetrievalSystem
from repro.features.base import FeatureVector
from repro.video.generator import VideoSpec, generate_video


class TestDigests:
    def test_array_digest_content_sensitive(self):
        a = np.arange(12, dtype=np.float64)
        assert digest_array(a) == digest_array(a.copy())
        assert digest_array(a) != digest_array(a + 1)
        # same bytes, different shape/dtype must not collide
        assert digest_array(a) != digest_array(a.reshape(3, 4))
        assert digest_array(np.zeros(2, np.float64)) != digest_array(
            np.zeros(16, np.uint8)
        )

    def test_vector_digest_order_free(self):
        va = FeatureVector(kind="sch", values=np.arange(4.0))
        vb = FeatureVector(kind="acc", values=np.ones(3))
        assert digest_vectors({"sch": va, "acc": vb}) == digest_vectors(
            {"acc": vb, "sch": va}
        )
        vc = FeatureVector(kind="acc", values=np.zeros(3))
        assert digest_vectors({"sch": va, "acc": vb}) != digest_vectors(
            {"sch": va, "acc": vc}
        )


class TestQueryCacheUnit:
    def test_roundtrip_and_counters(self):
        cache = QueryCache(max_entries=4)
        assert cache.get("k", 1) is None
        cache.put("k", 1, "value")
        assert cache.get("k", 1) == "value"
        assert cache.stats() == {
            "entries": 1,
            "hits": 1,
            "misses": 1,
            "invalidations": 0,
            "evictions": 0,
        }

    def test_lru_evicts_least_recent(self):
        cache = QueryCache(max_entries=2)
        cache.put("a", 1, 1)
        cache.put("b", 1, 2)
        assert cache.get("a", 1) == 1  # refresh a; b is now the oldest
        cache.put("c", 1, 3)
        assert cache.get("b", 1) is None
        assert cache.get("a", 1) == 1
        assert cache.get("c", 1) == 3

    def test_generation_change_drops_everything(self):
        cache = QueryCache(max_entries=4)
        cache.put("a", 1, 1)
        cache.put("b", 1, 2)
        assert cache.get("a", 2) is None
        assert cache.get("b", 2) is None
        assert cache.stats()["invalidations"] == 1
        assert len(cache) == 0

    def test_disabled_cache(self):
        cache = QueryCache(max_entries=0)
        assert not cache.enabled
        cache.put("a", 1, 1)
        assert cache.get("a", 1) is None
        assert len(cache) == 0


def _system(**overrides):
    config = SystemConfig(workers=1, **overrides)
    system = VideoRetrievalSystem.in_memory(config)
    admin = system.login_admin()
    for seed in (71, 72):
        admin.add_video(
            generate_video(
                VideoSpec(category="news", seed=seed, n_shots=2, frames_per_shot=4)
            )
        )
    return system


class TestEngineCache:
    def test_repeat_query_hits(self):
        system = _system(query_cache_size=64)
        query = system.any_key_frame()
        first = system.search(query, top_k=5)
        second = system.search(query, top_k=5)
        stats = system.cache_stats()
        assert stats["hits"] == 1
        assert [h.frame_id for h in second] == [h.frame_id for h in first]
        assert [h.distance for h in second] == [h.distance for h in first]
        # a different top_k is a different query
        system.search(query, top_k=3)
        assert system.cache_stats()["hits"] == 1

    def test_ingest_invalidates(self):
        system = _system(query_cache_size=64)
        query = system.any_key_frame()
        system.search(query, top_k=5)
        system.admin.add_video(
            generate_video(
                VideoSpec(category="sports", seed=73, n_shots=1, frames_per_shot=3)
            )
        )
        results = system.search(query, top_k=5)
        stats = system.cache_stats()
        assert stats["hits"] == 0
        assert stats["invalidations"] == 1
        # the rebuilt entry reflects the new corpus
        assert results.n_total == system.n_key_frames()

    def test_remove_invalidates(self):
        system = _system(query_cache_size=64)
        victim = system._store.video_ids()[0]
        survivor_fid = system._store.frames_of_video(system._store.video_ids()[1])[
            0
        ].frame_id
        query = system.get_key_frame(survivor_fid)
        system.search(query, top_k=10)
        gone = {r.frame_id for r in system._store.frames_of_video(victim)}
        system.admin.delete_video(victim)
        results = system.search(query, top_k=10)
        assert system.cache_stats()["hits"] == 0
        assert not ({h.frame_id for h in results} & gone)

    def test_rename_invalidates(self):
        system = _system(query_cache_size=64)
        query = system.any_key_frame()
        system.search(query, top_k=5)
        system.admin.rename_video(system._store.video_ids()[0], "renamed")
        system.search(query, top_k=5)
        assert system.cache_stats()["hits"] == 0

    def test_hits_are_defensive_copies(self):
        system = _system(query_cache_size=64)
        query = system.any_key_frame()
        first = system.search(query, top_k=5)
        first.hits[0].per_feature.clear()
        second = system.search(query, top_k=5)
        assert system.cache_stats()["hits"] >= 1
        assert second.hits[0].per_feature  # not poisoned by the mutation

    def test_disabled_cache_never_hits(self):
        system = _system(query_cache_size=0)
        query = system.any_key_frame()
        a = system.search(query, top_k=5)
        b = system.search(query, top_k=5)
        assert system.cache_stats()["hits"] == 0
        assert [h.frame_id for h in b] == [h.frame_id for h in a]

    def test_feedback_vector_queries_cached(self):
        system = _system(query_cache_size=64)
        fid = system._store.frame_ids()[0]
        vectors = dict(system._store.get(fid).features)
        first = system._engine.query_with_vectors(dict(vectors), top_k=5)
        second = system._engine.query_with_vectors(dict(vectors), top_k=5)
        assert system.cache_stats()["hits"] == 1
        assert [h.frame_id for h in second.hits] == [h.frame_id for h in first.hits]


class TestConfigValidation:
    def test_negative_cache_size_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(query_cache_size=-1)
