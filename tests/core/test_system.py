"""VideoRetrievalSystem facade tests (ingest, roles, content access)."""

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.core.system import AuthenticationError, VideoRetrievalSystem
from repro.db.errors import DatabaseError
from repro.imaging.image import Image
from repro.video.generator import VideoSpec, generate_video


@pytest.fixture()
def system(small_corpus):
    """A fresh mutable system with two videos ingested."""
    s = VideoRetrievalSystem.in_memory()
    admin = s.login_admin()
    admin.add_video(small_corpus[0])
    admin.add_video(small_corpus[2])  # a sports video
    return s


class TestIngest:
    def test_report_contents(self, small_corpus):
        s = VideoRetrievalSystem.in_memory()
        report = s.admin.add_video(small_corpus[0])
        assert report.video_id == 1
        assert report.video_name == small_corpus[0].name
        assert report.n_frames == small_corpus[0].n_frames
        assert report.n_keyframes >= 1

    def test_db_rows_written(self, system):
        assert system.n_videos() == 2
        vids = system.list_videos()
        assert [v["V_ID"] for v in vids] == [1, 2]
        n_kf = system.db.execute("SELECT I_ID FROM KEY_FRAMES").rowcount
        assert n_kf == system.n_key_frames() > 0

    def test_feature_strings_stored(self, system):
        row = system.db.execute("SELECT * FROM KEY_FRAMES WHERE I_ID = 1").rows[0]
        for column in ("SCH", "GLCM", "GABOR", "TAMURA", "ACC", "REGIONS"):
            assert row[column], f"column {column} empty"
        assert row["MIN"] is not None and row["MAX"] is not None
        assert row["MAJORREGIONS"] >= 0

    def test_raw_frames_require_name(self):
        s = VideoRetrievalSystem.in_memory()
        frames = [Image.blank(32, 24, (100, 0, 0))]
        with pytest.raises(ValueError):
            s.admin.add_video(frames)
        report = s.admin.add_video(frames, name="manual", category="misc")
        assert report.video_name == "manual"

    def test_empty_video_rejected(self):
        s = VideoRetrievalSystem.in_memory()
        with pytest.raises(ValueError):
            s.admin.add_video([], name="empty")

    def test_ingest_failure_rolls_back(self, small_corpus, monkeypatch):
        """If a feature extractor blows up mid-video, no partial rows survive."""
        s = VideoRetrievalSystem.in_memory()
        s.admin.add_video(small_corpus[0])
        n_before = s.db.execute("SELECT I_ID FROM KEY_FRAMES").rowcount

        calls = {"n": 0}
        ingestor = s._ingestor
        real = ingestor.extractors["sch"].extract

        def flaky(image):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise RuntimeError("extractor crash")
            return real(image)

        monkeypatch.setattr(ingestor.extractors["sch"], "extract", flaky)
        with pytest.raises(RuntimeError):
            s.admin.add_video(small_corpus[1])
        assert s.n_videos() == 1
        assert s.db.execute("SELECT I_ID FROM KEY_FRAMES").rowcount == n_before
        assert s.n_key_frames() == n_before


class TestDelete:
    def test_delete_removes_everything(self, system):
        n_frames_before = system.n_key_frames()
        removed = system.admin.delete_video(1)
        assert removed >= 1
        assert system.n_videos() == 1
        assert system.n_key_frames() == n_frames_before - removed
        assert system.db.execute(
            "SELECT I_ID FROM KEY_FRAMES WHERE V_ID = 1"
        ).rowcount == 0

    def test_delete_unknown_video(self, system):
        with pytest.raises(DatabaseError):
            system.admin.delete_video(999)

    def test_deleted_video_not_searchable(self, system, small_corpus):
        query = small_corpus[0].frames[0]
        system.admin.delete_video(1)
        results = system.search(query, top_k=50, use_index=False)
        assert 1 not in {h.video_id for h in results}


class TestRename:
    def test_rename_updates_results(self, system, small_corpus):
        system.admin.rename_video(1, "renamed_clip")
        assert system.list_videos()[0]["V_NAME"] == "renamed_clip"
        results = system.search(small_corpus[0].frames[0], top_k=1, use_index=False)
        assert results[0].video_name == "renamed_clip"

    def test_rename_unknown(self, system):
        with pytest.raises(DatabaseError):
            system.admin.rename_video(999, "x")


class TestAuth:
    def test_open_access_by_default(self):
        s = VideoRetrievalSystem.in_memory()
        assert s.login_admin() is not None

    def test_password_enforced(self):
        s = VideoRetrievalSystem.in_memory(SystemConfig(admin_password="pw"))
        with pytest.raises(AuthenticationError):
            s.login_admin("wrong")
        with pytest.raises(AuthenticationError):
            s.login_admin(None)
        assert s.login_admin("pw") is not None


class TestContentAccess:
    def test_get_video_frames_roundtrip(self, system, small_corpus):
        frames = system.get_video_frames(1)
        assert frames == list(small_corpus[0].frames)

    def test_get_key_frame(self, system):
        img = system.get_key_frame(1)
        assert img.is_rgb

    def test_unknown_ids(self, system):
        with pytest.raises(KeyError):
            system.get_video_frames(99)
        with pytest.raises(KeyError):
            system.get_key_frame(999)

    def test_key_frames_of(self, system):
        records = system.key_frames_of(1)
        assert records and all(r.video_id == 1 for r in records)
        assert [r.frame_id for r in records] == sorted(r.frame_id for r in records)

    def test_any_key_frame(self, system):
        assert system.any_key_frame().is_rgb

    def test_any_key_frame_empty_system(self):
        with pytest.raises(KeyError):
            VideoRetrievalSystem.in_memory().any_key_frame()


class TestPersistence:
    def test_reopen_restores_store_and_index(self, tmp_path, small_corpus):
        path = str(tmp_path / "lib.rdb")
        s = VideoRetrievalSystem.open(path)
        s.login_admin().add_video(small_corpus[0])
        n_frames = s.n_key_frames()
        stats = s.index_stats()
        s.close()

        s2 = VideoRetrievalSystem.open(path)
        assert s2.n_key_frames() == n_frames
        assert s2.index_stats().n_entries == stats.n_entries
        # features must be identical after the string roundtrip
        query = small_corpus[0].frames[0]
        r = s2.search(query, top_k=1)
        assert r[0].distance == pytest.approx(0.0, abs=1e-9)
        s2.close()

    def test_checkpoint_through_admin(self, tmp_path, small_corpus):
        path = str(tmp_path / "lib2.rdb")
        s = VideoRetrievalSystem.open(path)
        admin = s.login_admin()
        admin.add_video(small_corpus[0])
        admin.checkpoint()
        import os

        assert os.path.getsize(path) > 0
        s.close()
