"""Motion-aware video retrieval tests (extension)."""

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.core.system import VideoRetrievalSystem
from repro.video.generator import VideoSpec, generate_video
from repro.video.motion import MOTION_DIMS


@pytest.fixture(scope="module")
def motion_system(small_corpus):
    config = SystemConfig(video_motion_weight=0.5)
    system = VideoRetrievalSystem.in_memory(config)
    admin = system.login_admin()
    for v in small_corpus:
        admin.add_video(v)
    return system


class TestMotionStorage:
    def test_motion_column_written(self, motion_system):
        text = motion_system.db.execute(
            "SELECT MOTION FROM VIDEO_STORE WHERE V_ID = 1"
        ).scalar()
        assert text.startswith("MOTION 12 ")

    def test_store_holds_descriptor(self, motion_system):
        desc = motion_system._store.video_motion(1)
        assert desc is not None
        assert len(desc) == MOTION_DIMS

    def test_descriptor_survives_reopen(self, tmp_path, small_corpus):
        path = str(tmp_path / "m.rdb")
        s = VideoRetrievalSystem.open(path)
        s.admin.add_video(small_corpus[0])
        original = s._store.video_motion(1)
        s.close()
        s2 = VideoRetrievalSystem.open(path)
        reloaded = s2._store.video_motion(1)
        assert reloaded is not None
        assert np.allclose(reloaded.values, original.values)
        s2.close()

    def test_single_frame_clip_gets_zero_motion(self):
        from repro.imaging.image import Image

        s = VideoRetrievalSystem.in_memory()
        s.admin.add_video([Image.blank(32, 24, (9, 9, 9))], name="still")
        assert np.all(s._store.video_motion(1).values == 0)

    def test_deleted_video_motion_dropped(self, small_corpus):
        s = VideoRetrievalSystem.in_memory()
        s.admin.add_video(small_corpus[0])
        s.admin.delete_video(1)
        assert s._store.video_motion(1) is None


class TestMotionBlendedSearch:
    def test_blend_changes_distances_not_validity(self, motion_system, small_corpus):
        clip = small_corpus[2]  # a stored sports video queried against itself
        matches = motion_system.search_by_video(clip, top_k=5)
        assert matches[0].video_name == clip.name  # self still ranks first
        assert all(0.0 <= m.distance <= 1.0 + 1e-9 for m in matches)

    def test_zero_weight_is_appearance_only(self, small_corpus):
        plain = VideoRetrievalSystem.in_memory(SystemConfig(video_motion_weight=0.0))
        for v in small_corpus[:4]:
            plain.admin.add_video(v)
        clip = generate_video(
            VideoSpec(category="sports", seed=606, n_shots=2, frames_per_shot=5)
        )
        a = plain.search_by_video(clip, top_k=4)
        b = plain.search_by_video(clip, top_k=4)
        assert [m.video_id for m in a] == [m.video_id for m in b]

    def test_motion_weight_affects_ranking_scores(self, small_corpus):
        clip = generate_video(
            VideoSpec(category="cartoon", seed=707, n_shots=2, frames_per_shot=5)
        )
        results = {}
        for w in (0.0, 1.0):
            s = VideoRetrievalSystem.in_memory(SystemConfig(video_motion_weight=w))
            for v in small_corpus[:6]:
                s.admin.add_video(v)
            results[w] = s.search_by_video(clip, top_k=6)
        d0 = [m.distance for m in results[0.0]]
        d1 = [m.distance for m in results[1.0]]
        assert d0 != d1  # the blend really participates

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(video_motion_weight=-1.0)
