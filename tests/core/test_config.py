"""SystemConfig tests."""

import pytest

from repro.core.config import TABLE1_FEATURES, SystemConfig


class TestConfig:
    def test_defaults(self):
        c = SystemConfig()
        assert c.features == TABLE1_FEATURES
        assert c.keyframe_threshold == 800.0
        assert c.use_index is True
        assert c.admin_password is None

    def test_unknown_feature_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(features=("sift",))

    def test_empty_features_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(features=())

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(keyframe_threshold=-1)

    def test_bad_sequence_method_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(sequence_method="greedy")

    def test_weights(self):
        c = SystemConfig(features=("sch", "glcm"), fusion_weights={"sch": 2.0})
        assert c.weight_of("sch") == 2.0
        assert c.weight_of("glcm") == 1.0  # default
        assert c.weights_dict() == {"sch": 2.0, "glcm": 1.0}

    def test_with_creates_modified_copy(self):
        base = SystemConfig()
        variant = base.with_(use_index=False)
        assert variant.use_index is False
        assert base.use_index is True
        assert variant.features == base.features

    def test_frozen(self):
        with pytest.raises(Exception):
            SystemConfig().use_index = False
