"""ANN-accelerated search: recall, exactness, fallback, index composition."""

from dataclasses import replace

import pytest

from repro.core.config import SystemConfig
from repro.core.search import SearchEngine
from repro.core.system import VideoRetrievalSystem
from repro.video.generator import VideoSpec, generate_video


def _engine(system, **overrides):
    """A fresh SearchEngine over the (read-only) ingested store."""
    cfg = replace(system.config, query_cache_size=0, **overrides)
    return SearchEngine(cfg, system._store, system._index, pool=system._engine._pool)


@pytest.fixture(scope="module")
def brute(ingested_system):
    return _engine(ingested_system, ann=False)


@pytest.fixture(scope="module")
def ann(ingested_system):
    # cells scaled to the 20-frame fixture corpus; nprobe is the default
    return _engine(ingested_system, ann=True, ann_cells=4)


class TestRecallAndExactness:
    def test_recall_at_10(self, ingested_system, brute, ann):
        assert ann.config.ann_nprobe == SystemConfig().ann_nprobe
        hits = total = 0
        for fid in ingested_system._store.frame_ids():
            query = ingested_system.get_key_frame(fid)
            truth = {
                h.frame_id
                for h in brute.query_frame(query, top_k=10, use_index=False).hits
            }
            got = {
                h.frame_id
                for h in ann.query_frame(query, top_k=10, use_index=False).hits
            }
            hits += len(truth & got)
            total += len(truth)
        assert hits / total >= 0.9

    def test_probing_every_cell_is_byte_identical(self, ingested_system, brute):
        exhaustive = _engine(ingested_system, ann=True, ann_nprobe=SystemConfig().ann_cells)
        assert exhaustive.config.ann_nprobe == exhaustive.config.ann_cells
        for fid in ingested_system._store.frame_ids()[:5]:
            query = ingested_system.get_key_frame(fid)
            want = brute.query_frame(query, top_k=10, use_index=False)
            got = exhaustive.query_frame(query, top_k=10, use_index=False)
            assert [h.frame_id for h in got.hits] == [h.frame_id for h in want.hits]
            # exact re-rank over all cells: distances match bit for bit
            assert [h.distance for h in got.hits] == [h.distance for h in want.hits]
            assert got.n_candidates == want.n_candidates

    def test_ann_prunes_candidates(self, ingested_system):
        # a single probed cell can't hold the whole multi-assigned store
        narrow = _engine(ingested_system, ann=True, ann_cells=4, ann_nprobe=1)
        query = ingested_system.any_key_frame()
        results = narrow.query_frame(query, top_k=5, use_index=False)
        assert results.n_candidates < results.n_total
        stats = narrow.ann_stats()
        assert stats is not None and stats["probes"] > 0

    def test_missing_feature_falls_back_to_full_scan(self, ingested_system, brute, ann):
        # the IVF index spans every configured feature; a single-feature
        # query can't be placed in centroid space, so ANN must stand aside
        fid = ingested_system._store.frame_ids()[0]
        vec = {"sch": ingested_system._store.get(fid).features["sch"]}
        got = ann.query_with_vectors(dict(vec), top_k=5)
        want = brute.query_with_vectors(dict(vec), top_k=5)
        assert got.n_candidates == got.n_total
        assert [h.frame_id for h in got.hits] == [h.frame_id for h in want.hits]
        assert [h.distance for h in got.hits] == [h.distance for h in want.hits]

    def test_composes_with_range_index(self, ingested_system, ann):
        # pruned by range index AND ivf probe: the exact frame still wins
        for fid in ingested_system._store.frame_ids()[:5]:
            query = ingested_system.get_key_frame(fid)
            results = ann.query_frame(query, top_k=1, use_index=True)
            assert results.hits and results.hits[0].frame_id == fid


class TestSystemLevelANN:
    def test_end_to_end_with_ingest(self):
        config = SystemConfig(workers=1, ann=True, ann_cells=3, query_cache_size=0)
        system = VideoRetrievalSystem.in_memory(config)
        admin = system.login_admin()
        for seed in (61, 62):
            admin.add_video(
                generate_video(
                    VideoSpec(category="news", seed=seed, n_shots=2, frames_per_shot=4)
                )
            )
        fid = system._store.frame_ids()[0]
        results = system.search(system.get_key_frame(fid), top_k=1, use_index=False)
        assert results[0].frame_id == fid
        n_before = system.ann_stats()["builds"]
        assert n_before >= 1

        # the index follows ingest: new frames are findable immediately
        admin.add_video(
            generate_video(
                VideoSpec(category="sports", seed=63, n_shots=2, frames_per_shot=4)
            )
        )
        new_fid = system._store.frame_ids()[-1]
        results = system.search(system.get_key_frame(new_fid), top_k=1, use_index=False)
        assert results[0].frame_id == new_fid

    def test_ann_stats_absent_when_disabled(self, ingested_system):
        assert ingested_system.ann_stats() is None
