"""Search engine tests (frame queries, video queries, feature selection)."""

import pytest

from repro.video.generator import VideoSpec, generate_video


class TestFrameQuery:
    def test_exact_frame_ranks_first(self, ingested_system):
        query = ingested_system.get_key_frame(1)
        results = ingested_system.search(query, top_k=5)
        assert results[0].frame_id == 1
        assert results[0].distance == pytest.approx(0.0, abs=1e-9)

    def test_top_k_respected(self, ingested_system):
        query = ingested_system.any_key_frame()
        assert len(ingested_system.search(query, top_k=3)) <= 3

    def test_results_sorted_ascending(self, ingested_system):
        query = ingested_system.any_key_frame()
        results = ingested_system.search(query, top_k=20, use_index=False)
        distances = [h.distance for h in results]
        assert distances == sorted(distances)

    def test_single_feature_query(self, ingested_system):
        query = ingested_system.any_key_frame()
        results = ingested_system.search(query, features="gabor", top_k=5)
        assert all(set(h.per_feature) == {"gabor"} for h in results)

    def test_combined_populates_all_features(self, ingested_system):
        query = ingested_system.any_key_frame()
        results = ingested_system.search(query, top_k=3)
        expected = set(ingested_system.config.features)
        assert all(set(h.per_feature) == expected for h in results)

    def test_unknown_feature_rejected(self, ingested_system):
        with pytest.raises(ValueError):
            ingested_system.search(ingested_system.any_key_frame(), features=["sift"])

    def test_empty_feature_list_rejected(self, ingested_system):
        with pytest.raises(ValueError):
            ingested_system.search(ingested_system.any_key_frame(), features=[])

    def test_index_prunes_candidates(self, ingested_system):
        query = ingested_system.any_key_frame()
        with_index = ingested_system.search(query, top_k=100, use_index=True)
        without = ingested_system.search(query, top_k=100, use_index=False)
        assert with_index.n_candidates <= without.n_candidates
        assert without.n_candidates == ingested_system.n_key_frames()
        assert without.pruning_fraction == 0.0

    def test_index_keeps_exact_match(self, ingested_system):
        # the query IS a stored frame: pruning must never lose it
        for fid in ingested_system._store.frame_ids()[:5]:
            query = ingested_system.get_key_frame(fid)
            results = ingested_system.search(query, top_k=1, use_index=True)
            assert results[0].frame_id == fid

    def test_same_category_preferred(self, ingested_system, small_corpus):
        """Search with fresh frames (not stored): majority of top-3 should
        share the query's category -- the paper's core claim in miniature."""
        hits = 0
        total = 0
        for video in small_corpus:
            query = video.frames[-1]
            results = ingested_system.search(query, top_k=3, use_index=False)
            total += len(results)
            hits += sum(1 for h in results if h.category == video.category)
        assert hits / total > 0.6

    def test_empty_system(self):
        from repro.core.system import VideoRetrievalSystem
        from repro.imaging.image import Image

        s = VideoRetrievalSystem.in_memory()
        results = s.search(Image.blank(32, 24, (5, 5, 5)), top_k=5)
        assert len(results) == 0


class TestVideoQuery:
    def test_stored_video_matches_itself(self, ingested_system, small_corpus):
        matches = ingested_system.search_by_video(small_corpus[0], top_k=3)
        assert matches[0].video_name == small_corpus[0].name
        assert matches[0].distance == pytest.approx(0.0, abs=1e-6)

    def test_fresh_clip_finds_its_category(self, ingested_system):
        clip = generate_video(
            VideoSpec(category="news", seed=4242, n_shots=2, frames_per_shot=5)
        )
        matches = ingested_system.search_by_video(clip, top_k=3)
        assert any(m.category == "news" for m in matches)

    def test_top_k(self, ingested_system, small_corpus):
        assert len(ingested_system.search_by_video(small_corpus[0], top_k=2)) == 2

    def test_empty_query_rejected(self, ingested_system):
        with pytest.raises(ValueError):
            ingested_system.search_by_video([])

    def test_align_method(self, small_corpus):
        from repro.core.config import SystemConfig
        from repro.core.system import VideoRetrievalSystem

        s = VideoRetrievalSystem.in_memory(SystemConfig(sequence_method="align"))
        s.admin.add_video(small_corpus[0])
        s.admin.add_video(small_corpus[4])
        matches = s.search_by_video(small_corpus[0], top_k=2)
        assert matches[0].video_name == small_corpus[0].name


class TestResultsContainer:
    def test_video_ids_deduplicated(self, ingested_system):
        results = ingested_system.search(ingested_system.any_key_frame(), top_k=50, use_index=False)
        vids = results.video_ids()
        assert len(vids) == len(set(vids))

    def test_to_rows_shape(self, ingested_system):
        results = ingested_system.search(ingested_system.any_key_frame(), top_k=2)
        rows = results.to_rows()
        assert rows[0]["rank"] == 1
        assert {"frame_id", "video", "category", "distance"} <= set(rows[0])

    def test_metadata_search(self, ingested_system):
        rows = ingested_system.search_by_name("%_000")
        assert len(rows) == 5  # one per category
        assert all(r["V_NAME"].endswith("_000") for r in rows)


class TestStableTopK:
    """_stable_topk must reproduce np.argsort(kind='stable')[:k] exactly."""

    def _check(self, fused, k):
        import numpy as np

        from repro.core.search import _stable_topk

        want = np.argsort(fused, kind="stable")[: max(0, k)]
        got = _stable_topk(np.asarray(fused, dtype=np.float64), max(0, k))
        assert np.array_equal(got, want), (fused, k)

    def test_tie_heavy_random_arrays(self):
        import numpy as np

        gen = np.random.default_rng(4242)
        for trial in range(50):
            n = int(gen.integers(1, 40))
            # few distinct values -> ties everywhere, including at the
            # selection boundary where argpartition ordering is arbitrary
            fused = gen.integers(0, 4, n).astype(np.float64)
            for k in (0, 1, n // 2, n - 1, n, n + 5):
                self._check(fused, k)

    def test_all_equal(self):
        self._check([2.0] * 7, 3)
        self._check([2.0] * 7, 7)

    def test_distinct_values(self):
        import numpy as np

        gen = np.random.default_rng(7)
        fused = gen.permutation(20).astype(np.float64)
        for k in (1, 5, 19, 20, 25):
            self._check(fused, k)

    def test_boundary_tie_straddles_cut(self):
        # value 1.0 occupies ranks 1..4; k=3 cuts through the tie run and
        # the stable order must keep the lowest original indices
        self._check([5.0, 1.0, 1.0, 0.0, 1.0, 1.0, 9.0], 3)

    def test_empty(self):
        self._check([], 0)
        self._check([], 3)
