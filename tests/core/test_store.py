"""FeatureStore tests."""

import numpy as np
import pytest

from repro.core.store import FeatureStore, FrameRecord
from repro.features.base import FeatureVector
from repro.indexing.rangefinder import Bucket


def _record(frame_id, video_id=1, category="sports"):
    return FrameRecord(
        frame_id=frame_id,
        video_id=video_id,
        video_name=f"v{video_id}",
        frame_name=f"f{frame_id}",
        category=category,
        bucket=Bucket(0, 127),
        features={"sch": FeatureVector(kind="sch", values=np.ones(4))},
    )


class TestStore:
    def test_add_and_get(self):
        store = FeatureStore()
        store.add(_record(1))
        assert 1 in store and len(store) == 1
        assert store.get(1).frame_name == "f1"

    def test_duplicate_id_rejected(self):
        store = FeatureStore()
        store.add(_record(1))
        with pytest.raises(KeyError):
            store.add(_record(1))

    def test_frames_of_video_ordered(self):
        store = FeatureStore()
        store.add(_record(5, video_id=2))
        store.add(_record(3, video_id=2))
        store.add(_record(9, video_id=1))
        assert [r.frame_id for r in store.frames_of_video(2)] == [3, 5]
        assert store.video_ids() == [1, 2]

    def test_remove_video(self):
        store = FeatureStore()
        store.add(_record(1, video_id=1))
        store.add(_record(2, video_id=1))
        store.add(_record(3, video_id=2))
        removed = store.remove_video(1)
        assert sorted(removed) == [1, 2]
        assert len(store) == 1
        assert store.frames_of_video(1) == []

    def test_clear(self):
        store = FeatureStore()
        store.add(_record(1))
        store.clear()
        assert len(store) == 0

    def test_rebuild_from_db_matches_live_store(self, ingested_system):
        rebuilt = FeatureStore()
        rebuilt.rebuild_from_db(
            ingested_system.db, list(ingested_system.config.features)
        )
        live = ingested_system._store
        assert rebuilt.frame_ids() == live.frame_ids()
        for fid in live.frame_ids():
            a, b = live.get(fid), rebuilt.get(fid)
            assert a.video_id == b.video_id
            assert a.category == b.category
            assert a.bucket == b.bucket
            assert set(a.features) == set(b.features)
            for kind in a.features:
                assert np.allclose(a.features[kind].values, b.features[kind].values)
