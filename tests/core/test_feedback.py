"""Relevance feedback tests."""

import numpy as np
import pytest

from repro.core.feedback import FeedbackSession, rocchio_move, separation_weights
from repro.features.base import FeatureVector


def _fv(*values):
    return FeatureVector(kind="x", values=np.array(values, dtype=np.float64))


class TestRocchioMove:
    def test_no_marks_scaled_query(self):
        moved = rocchio_move(_fv(2.0, 4.0), [], [], alpha=1.0)
        assert np.allclose(moved.values, [2.0, 4.0])

    def test_moves_toward_relevant(self):
        q = _fv(0.0, 0.0)
        moved = rocchio_move(q, [_fv(4.0, 0.0), _fv(8.0, 0.0)], [], beta=0.5)
        assert np.allclose(moved.values, [3.0, 0.0])

    def test_moves_away_from_irrelevant_clipped(self):
        q = _fv(1.0, 1.0)
        moved = rocchio_move(q, [], [_fv(10.0, 0.0)], gamma=0.5)
        assert np.allclose(moved.values, [0.0, 1.0])  # clipped at zero

    def test_kind_and_tag_preserved(self):
        q = FeatureVector(kind="sch", values=np.ones(3), tag="RGB")
        moved = rocchio_move(q, [q], [])
        assert moved.kind == "sch" and moved.tag == "RGB"


class TestSeparationWeights:
    def test_good_separator_upweighted(self):
        w = separation_weights({"f": [1.0, 1.0]}, {"f": [5.0, 7.0]})
        assert w["f"] == pytest.approx(6.0)

    def test_bad_separator_downweighted(self):
        w = separation_weights({"f": [6.0]}, {"f": [2.0]})
        assert w["f"] == pytest.approx(1 / 3)

    def test_single_class_neutral(self):
        assert separation_weights({"f": [1.0]}, {"f": []})["f"] == 1.0
        assert separation_weights({"f": []}, {"f": [1.0]})["f"] == 1.0

    def test_clipping(self):
        w = separation_weights({"f": [1e-3]}, {"f": [1e6]})
        assert w["f"] == 10.0
        w = separation_weights({"f": [1e6]}, {"f": [1e-3]})
        assert w["f"] == 0.1

    def test_zero_relevant_distance_gets_ceiling(self):
        assert separation_weights({"f": [0.0]}, {"f": [1.0]})["f"] == 10.0


class TestFeedbackSession:
    @pytest.fixture()
    def session(self, ingested_system, small_corpus):
        query = small_corpus[0].frames[0]
        return FeedbackSession(ingested_system, query)

    def test_initial_search_matches_plain_search(self, session, ingested_system, small_corpus):
        plain = ingested_system.search(small_corpus[0].frames[0], top_k=5, use_index=False)
        via_session = session.search(top_k=5)
        assert via_session.frame_ids() == plain.frame_ids()

    def test_refine_requires_marks(self, session):
        with pytest.raises(ValueError):
            session.refine()

    def test_mark_unknown_frame(self, session):
        with pytest.raises(KeyError):
            session.mark_relevant(9999)

    def test_marks_are_exclusive(self, session, ingested_system):
        fid = ingested_system._store.frame_ids()[0]
        session.mark_relevant(fid)
        session.mark_irrelevant(fid)
        assert session.n_marked == 1
        assert fid in session._irrelevant and fid not in session._relevant

    def test_refine_runs_and_counts_rounds(self, session, ingested_system, ground_truth):
        results = session.search(top_k=10)
        # mark by ground truth: same-category relevant, others irrelevant
        qcat = "elearning"
        for hit in results[:6]:
            if hit.category == qcat:
                session.mark_relevant(hit.frame_id)
            else:
                session.mark_irrelevant(hit.frame_id)
        refined = session.refine(top_k=10)
        assert session.rounds == 1
        assert len(refined) > 0

    def test_feedback_improves_or_holds_precision(self, ingested_system, ground_truth, small_corpus):
        """Across several queries, one round of truthful feedback must not
        hurt mean precision@5 (and usually helps)."""
        from repro.eval.metrics import precision_at_k

        base_ps, fb_ps = [], []
        for video in small_corpus[::2]:
            query = video.frames[-1]
            session = FeedbackSession(ingested_system, query)
            first = session.search(top_k=10)
            if len(first) < 6:
                continue
            for hit in first[:6]:
                if hit.category == video.category:
                    session.mark_relevant(hit.frame_id)
                else:
                    session.mark_irrelevant(hit.frame_id)
            try:
                refined = session.refine(top_k=10)
            except ValueError:
                continue
            rel_first = [h.category == video.category for h in first[:5]]
            rel_ref = [h.category == video.category for h in refined[:5]]
            base_ps.append(precision_at_k(rel_first, 5))
            fb_ps.append(precision_at_k(rel_ref, 5))
        assert base_ps, "no queries executed"
        assert np.mean(fb_ps) >= np.mean(base_ps) - 0.05

    def test_weights_adapt(self, session, ingested_system):
        results = session.search(top_k=8)
        session.mark_relevant(results[1].frame_id)
        session.mark_irrelevant(results[-1].frame_id)
        before = dict(session.weights)
        session.refine()
        assert session.weights != before
