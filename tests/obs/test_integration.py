"""System-level observability: metrics(), traces, cache counters, stats."""

import pytest

from repro.core.config import SystemConfig
from repro.core.system import VideoRetrievalSystem
from repro.obs import NULL_OBS, format_stats
from repro.video.generator import VideoSpec, generate_video


def _video(seed, category="news"):
    return generate_video(
        VideoSpec(category=category, seed=seed, n_shots=2, frames_per_shot=4)
    )


@pytest.fixture()
def system():
    s = VideoRetrievalSystem.in_memory(SystemConfig(workers=1))
    s.login_admin().add_video(_video(41))
    yield s
    s.close()


class TestMetricsSurface:
    def test_sections_and_registry(self, system):
        system.search(system.any_key_frame(), top_k=3)
        m = system.metrics()
        assert set(m) == {
            "store", "index", "ann", "cache", "snapshot", "sharding",
            "resilience", "slow_log", "registry",
        }
        assert m["slow_log"]["recorded_total"] == 0  # 500ms default: untripped
        assert m["sharding"] is None  # default config: single store
        assert m["store"]["videos"] == 1
        assert m["store"]["key_frames"] == len(system._store)
        assert m["index"]["entries"] == m["store"]["key_frames"]
        assert m["ann"] is None  # default config: ANN off
        # one cold frame query misses twice: the frame-keyed layer, then
        # the vector-keyed layer underneath it
        assert m["cache"]["misses"] == 2
        reg = m["registry"]
        assert reg["repro_ingest_videos_total"]["samples"][0]["value"] == 1.0
        # ANN families are registered (at zero) even when disabled
        assert reg["repro_ann_probes_total"]["samples"] == []

    def test_shims_agree_with_metrics(self, system):
        m = system.metrics()
        assert system.cache_stats() == m["cache"]
        assert system.ann_stats() == m["ann"]
        assert system.index_stats().n_entries == m["index"]["entries"]

    def test_ann_section_when_enabled(self):
        s = VideoRetrievalSystem.in_memory(
            SystemConfig(workers=1, ann=True, ann_cells=3, query_cache_size=0)
        )
        s.login_admin().add_video(_video(42))
        s.search(s.any_key_frame(), top_k=2, use_index=False)
        m = s.metrics()
        assert m["ann"]["builds"] >= 1
        assert m["ann"]["probes"] >= 1
        s.close()

    def test_recent_traces_capture_request_tree(self, system):
        system.search(system.any_key_frame(), top_k=3)
        traces = system.recent_traces()
        names = [t["name"] for t in traces]
        assert names[0] == "search.query_frame"
        assert "ingest.add_video" in names
        search = traces[0]
        child_names = {c["name"] for c in search["children"]}
        assert "search.index.prune" in child_names
        assert "search.extract" in child_names
        ingest = traces[names.index("ingest.add_video")]
        stages = {c["name"] for c in ingest["children"]}
        assert {"ingest.encode", "ingest.keyframes", "ingest.features",
                "ingest.db_txn", "ingest.mirror"} <= stages

    def test_trace_buffer_respects_config(self):
        s = VideoRetrievalSystem.in_memory(
            SystemConfig(workers=1, obs_trace_buffer=2, query_cache_size=0)
        )
        s.login_admin().add_video(_video(43))
        for _ in range(4):
            s.search(s.any_key_frame(), top_k=1)
        assert len(s.recent_traces()) == 2
        s.close()


class TestCacheCountersAcrossInvalidation:
    def test_hit_miss_invalidation_flow(self, system):
        query = system.any_key_frame()
        system.search(query, top_k=3)  # cold: frame-layer + vector-layer miss
        system.search(query, top_k=3)  # warm: one frame-layer hit
        assert system.cache_stats()["hits"] == 1
        assert system.cache_stats()["misses"] == 2

        # ingest bumps the store generation: next lookup drops the cache
        system.login_admin().add_video(_video(44, category="sports"))
        system.search(query, top_k=3)  # invalidation + cold double miss
        stats = system.cache_stats()
        assert stats == {
            "entries": 2, "hits": 1, "misses": 4,
            "invalidations": 1, "evictions": 0,
        }

        reg = system.metrics()["registry"]
        samples = {
            tuple(s["labels"].items()): s["value"]
            for s in reg["repro_cache_requests_total"]["samples"]
        }
        assert samples[(("result", "hit"),)] == 1.0
        assert samples[(("result", "miss"),)] == 4.0
        assert reg["repro_cache_invalidations_total"]["samples"][0]["value"] == 1.0


class TestDisabledSystem:
    def test_disabled_system_records_nothing(self):
        s = VideoRetrievalSystem.in_memory(
            SystemConfig(workers=1, obs_enabled=False)
        )
        s.login_admin().add_video(_video(45))
        s.search(s.any_key_frame(), top_k=2)
        assert s.metrics()["registry"] == {}
        assert s.recent_traces() == []
        # the engine's handles are the shared null objects: the disabled
        # path costs one no-op call per instrumentation point
        assert s._engine._obs.registry is NULL_OBS.registry
        assert s._engine._obs.span("x") is NULL_OBS.span("y")
        # counters still work (plain python attributes, not the registry)
        assert s.cache_stats()["misses"] == 2
        s.close()


class TestStatsRendering:
    def test_format_stats_renders_live_snapshot(self, system):
        system.search(system.any_key_frame(), top_k=3)
        text = format_stats(system.metrics())
        assert "store    videos=1" in text
        assert "ann      (disabled)" in text
        assert "repro_ingest_videos_total" in text
        assert "repro_search_queries_total" in text

    def test_format_stats_handles_empty_registry(self):
        s = VideoRetrievalSystem.in_memory(
            SystemConfig(workers=1, obs_enabled=False)
        )
        text = format_stats(s.metrics())
        assert "(no metric samples recorded)" in text
        s.close()
