"""Tracer unit tests: nesting, exceptions, the ring buffer, null twins."""

import pytest

from repro.obs import NULL_SPAN, NULL_TRACER, Tracer


class TestNesting:
    def test_children_attach_to_parent(self):
        tracer = Tracer(capacity=4)
        with tracer.span("root", request=1) as root:
            with tracer.span("child.a"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child.b"):
                pass
            root.annotate(hits=3)
        (trace,) = tracer.recent()
        assert trace["name"] == "root"
        assert trace["attrs"] == {"request": 1, "hits": 3}
        assert [c["name"] for c in trace["children"]] == ["child.a", "child.b"]
        assert trace["children"][0]["children"][0]["name"] == "grandchild"
        assert trace["status"] == "ok"
        assert trace["duration_ms"] >= 0

    def test_only_roots_enter_the_buffer(self):
        tracer = Tracer(capacity=4)
        with tracer.span("root"):
            with tracer.span("inner"):
                pass
        assert [t["name"] for t in tracer.recent()] == ["root"]

    def test_sibling_roots_are_separate_traces(self):
        tracer = Tracer(capacity=4)
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [t["name"] for t in tracer.recent()] == ["second", "first"]


class TestExceptions:
    def test_error_status_and_propagation(self):
        tracer = Tracer(capacity=4)
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("root"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        (trace,) = tracer.recent()
        assert trace["status"] == "error"
        assert trace["error"] == "ValueError: boom"
        inner = trace["children"][0]
        assert inner["status"] == "error"
        assert inner["duration_ms"] is not None

    def test_nesting_recovers_after_exception(self):
        tracer = Tracer(capacity=4)
        with pytest.raises(RuntimeError):
            with tracer.span("broken"):
                raise RuntimeError("x")
        with tracer.span("after"):
            pass
        names = [t["name"] for t in tracer.recent()]
        assert names == ["after", "broken"]


class TestRingBuffer:
    def test_capacity_drops_oldest(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            with tracer.span(f"t{i}"):
                pass
        assert [t["name"] for t in tracer.recent()] == ["t4", "t3", "t2"]

    def test_limit_and_clear(self):
        tracer = Tracer(capacity=8)
        for i in range(4):
            with tracer.span(f"t{i}"):
                pass
        assert len(tracer.recent(2)) == 2
        tracer.clear()
        assert tracer.recent() == []

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestNullTwins:
    def test_null_spans_are_one_shared_object(self):
        assert NULL_TRACER.span("a") is NULL_SPAN
        assert NULL_TRACER.span("b", attr=1) is NULL_SPAN
        with NULL_TRACER.span("c") as sp:
            assert sp.annotate(x=1) is NULL_SPAN
        assert NULL_TRACER.recent() == []

    def test_null_span_never_swallows(self):
        with pytest.raises(KeyError):
            with NULL_TRACER.span("x"):
                raise KeyError("k")
