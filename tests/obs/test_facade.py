"""Obs facade tests: the enabled/disabled gate and its structural cost."""

from repro.obs import (
    NULL_METRIC,
    NULL_OBS,
    NULL_REGISTRY,
    NULL_SPAN,
    NULL_TRACER,
    MetricsRegistry,
    Obs,
)


class TestEnabled:
    def test_owns_registry_and_tracer(self):
        a, b = Obs(), Obs()
        assert a.registry is not b.registry
        assert a.tracer is not b.tracer
        a.counter("x_total").inc()
        assert "x_total" in a.registry.render_text()
        assert "x_total" not in b.registry.render_text()

    def test_injected_registry_is_used(self):
        registry = MetricsRegistry()
        obs = Obs(registry=registry)
        obs.gauge("g").set(1)
        assert registry.get("g") is not None

    def test_spans_reach_recent_traces(self):
        obs = Obs(trace_buffer=2)
        with obs.span("one"):
            pass
        with obs.span("two"):
            pass
        with obs.span("three"):
            pass
        assert [t["name"] for t in obs.recent_traces()] == ["three", "two"]


class TestDisabledIsStructurallyFree:
    """Disabled obs hands out shared singletons: no allocation, no state.

    This is the ``obs_enabled=false`` fast path the benchmark gate
    (``benchmarks/regress.py obs_overhead``) quantifies; here we pin the
    *mechanism* -- every handle is one shared no-op object, so the cost
    per instrumentation point is a single no-op method call.
    """

    def test_disabled_obs_uses_shared_null_twins(self):
        obs = Obs(enabled=False)
        assert obs.registry is NULL_REGISTRY
        assert obs.tracer is NULL_TRACER
        assert obs.counter("a_total") is NULL_METRIC
        assert obs.gauge("b") is NULL_METRIC
        assert obs.histogram("c_seconds") is NULL_METRIC

    def test_every_disabled_span_is_the_same_object(self):
        assert NULL_OBS.span("x") is NULL_OBS.span("y")
        assert NULL_OBS.span("x") is NULL_SPAN

    def test_disabled_surfaces_are_empty(self):
        assert NULL_OBS.recent_traces() == []
        assert NULL_OBS.registry.render_text() == ""
        assert NULL_OBS.registry.render_json() == {}

    def test_null_obs_is_shared_and_disabled(self):
        assert NULL_OBS.enabled is False
