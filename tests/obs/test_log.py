"""Structured logging tests: kv formatting, logger tree, level gating."""

import logging

import pytest

from repro.obs import log


@pytest.fixture()
def capture():
    """A list-backed handler on the ``repro`` logger, cleaned up after."""
    records = []

    class _Capture(logging.Handler):
        def emit(self, record):
            records.append(record)

    handler = _Capture()
    root = logging.getLogger("repro")
    old_level = root.level
    root.addHandler(handler)
    yield records
    root.removeHandler(handler)
    root.setLevel(old_level)


class TestKvFormat:
    def test_plain_fields(self):
        line = log.kv_format("ingest.video", {"video_id": 3, "frames": 120})
        assert line == "ingest.video video_id=3 frames=120"

    def test_floats_are_compact(self):
        assert log.kv_format("e", {"ms": 12.345678901}) == "e ms=12.3457"

    def test_strings_with_spaces_are_quoted(self):
        line = log.kv_format("e", {"name": "two words", "tag": "plain"})
        assert line == "e name='two words' tag=plain"

    def test_empty_string_is_quoted(self):
        assert log.kv_format("e", {"name": ""}) == "e name=''"

    def test_none_and_bool(self):
        assert log.kv_format("e", {"a": None, "b": True}) == "e a=None b=True"


class TestLoggerTree:
    def test_loggers_are_cached_and_rooted(self):
        a = log.get_logger("repro.core.ingest")
        b = log.get_logger("repro.core.ingest")
        assert a is b
        assert a.stdlib.name == "repro.core.ingest"
        outside = log.get_logger("someplace.else")
        assert outside.stdlib.name == "repro.someplace.else"
        assert log.get_logger().stdlib.name == "repro"

    def test_set_level_rejects_garbage(self):
        with pytest.raises(ValueError):
            log.set_level("LOUD")


class TestEmission:
    def test_info_respects_level(self, capture):
        logger = log.get_logger("repro.test.emission")
        log.set_level("WARNING")
        logger.info("quiet.event", x=1)
        assert capture == []
        log.set_level("INFO")
        logger.info("loud.event", x=1, name="two words")
        assert len(capture) == 1
        assert capture[0].getMessage() == "loud.event x=1 name='two words'"
        assert capture[0].levelno == logging.INFO

    def test_exception_attaches_traceback(self, capture):
        logger = log.get_logger("repro.test.exc")
        log.set_level("ERROR")
        try:
            raise ValueError("boom")
        except ValueError:
            logger.exception("failed.event", stage="demo")
        assert len(capture) == 1
        assert capture[0].exc_info is not None
        assert "failed.event stage=demo" in capture[0].getMessage()
