"""Metrics registry unit tests: primitives, families, renderers, threads."""

import math
import threading

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    NULL_METRIC,
    NULL_REGISTRY,
    MetricError,
    MetricsRegistry,
)
from repro.obs.metrics import Counter, Gauge, Histogram


class TestPrimitives:
    def test_counter_monotonic(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(MetricError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge()
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12.0

    def test_histogram_bucket_edges_are_inclusive(self):
        # Prometheus semantics: le is <=, so a value exactly on a bound
        # lands in that bound's bucket, not the next one
        h = Histogram(buckets=(1.0, 2.0, 5.0))
        for v in (0.5, 1.0, 1.0000001, 2.0, 5.0, 6.0):
            h.observe(v)
        cum = dict(h.cumulative_counts())
        assert cum[1.0] == 2  # 0.5 and exactly-1.0
        assert cum[2.0] == 4  # + 1.0000001 and exactly-2.0
        assert cum[5.0] == 5  # + exactly-5.0
        assert cum[math.inf] == 6  # everything
        assert h.count == 6
        assert h.sum == pytest.approx(0.5 + 1.0 + 1.0000001 + 2.0 + 5.0 + 6.0)

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(MetricError):
            Histogram(buckets=())
        with pytest.raises(MetricError):
            Histogram(buckets=(1.0, 1.0))
        with pytest.raises(MetricError):
            Histogram(buckets=(2.0, 1.0))

    def test_default_buckets_strictly_increase(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))


class TestFamiliesAndRegistry:
    def test_get_or_create_returns_same_family(self):
        r = MetricsRegistry()
        a = r.counter("x_total", "X.")
        b = r.counter("x_total")
        assert a is b

    def test_kind_mismatch_rejected(self):
        r = MetricsRegistry()
        r.counter("x_total")
        with pytest.raises(MetricError):
            r.gauge("x_total")

    def test_labelname_mismatch_rejected(self):
        r = MetricsRegistry()
        r.counter("x_total", labelnames=("kind",))
        with pytest.raises(MetricError):
            r.counter("x_total", labelnames=("other",))

    def test_invalid_names_rejected(self):
        r = MetricsRegistry()
        with pytest.raises(MetricError):
            r.counter("bad-name")
        with pytest.raises(MetricError):
            r.counter("ok_total", labelnames=("bad-label",))

    def test_labeled_family_needs_labels(self):
        r = MetricsRegistry()
        fam = r.counter("x_total", labelnames=("kind",))
        with pytest.raises(MetricError):
            fam.inc()
        with pytest.raises(MetricError):
            fam.labels(wrong="frame")
        fam.labels(kind="frame").inc()
        fam.labels(kind="frame").inc()
        fam.labels(kind="video").inc()
        assert fam.labels(kind="frame").value == 2.0

    def test_label_less_family_proxies_to_single_child(self):
        r = MetricsRegistry()
        fam = r.histogram("h_seconds", buckets=(1.0,))
        fam.observe(0.5)
        assert fam.labels().count == 1
        assert fam.labels().sum == 0.5


class TestRenderers:
    def _loaded(self):
        r = MetricsRegistry()
        r.counter("q_total", "Queries.", labelnames=("kind",)).labels(
            kind="frame"
        ).inc(3)
        r.gauge("depth", "Depth.").set(7)
        h = r.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(2.0)
        return r

    def test_prometheus_text(self):
        text = self._loaded().render_text()
        assert "# HELP q_total Queries.\n# TYPE q_total counter" in text
        assert 'q_total{kind="frame"} 3' in text
        assert "depth 7" in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_sum 2.55" in text
        assert "lat_seconds_count 3" in text
        assert text.endswith("\n")

    def test_zero_sample_families_still_render(self):
        r = MetricsRegistry()
        r.counter("never_total", "Never incremented.", labelnames=("kind",))
        text = r.render_text()
        assert "# TYPE never_total counter" in text

    def test_label_value_escaping(self):
        r = MetricsRegistry()
        r.counter("e_total", labelnames=("p",)).labels(p='a"b\\c\nd').inc()
        line = [l for l in r.render_text().splitlines() if l.startswith("e_total{")][0]
        assert line == 'e_total{p="a\\"b\\\\c\\nd"} 1'

    def test_json_rendering(self):
        data = self._loaded().render_json()
        assert data["q_total"]["type"] == "counter"
        assert data["q_total"]["samples"] == [
            {"labels": {"kind": "frame"}, "value": 3.0}
        ]
        hist = data["lat_seconds"]["samples"][0]
        assert hist["count"] == 3
        assert hist["buckets"][-1] == {"le": "+Inf", "count": 3}


class TestThreadSafety:
    def test_concurrent_counter_and_histogram(self):
        r = MetricsRegistry()
        fam = r.counter("c_total", labelnames=("worker",))
        hist = r.histogram("h_seconds", buckets=(0.5,))

        def work(i):
            child = fam.labels(worker=str(i % 4))
            for _ in range(1000):
                child.inc()
                hist.observe(0.25)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = sum(child.value for _v, child in fam.children())
        assert total == 8000.0
        assert hist.labels().count == 8000

    def test_concurrent_registration_yields_one_family(self):
        r = MetricsRegistry()
        seen = []

        def register():
            seen.append(r.counter("same_total", "Same."))

        threads = [threading.Thread(target=register) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(f is seen[0] for f in seen)


class TestNullTwins:
    def test_null_registry_hands_out_shared_null_metric(self):
        assert NULL_REGISTRY.counter("a_total") is NULL_METRIC
        assert NULL_REGISTRY.gauge("b") is NULL_METRIC
        assert NULL_REGISTRY.histogram("c_seconds") is NULL_METRIC
        assert NULL_METRIC.labels(kind="x") is NULL_METRIC
        NULL_METRIC.inc()
        NULL_METRIC.set(3)
        NULL_METRIC.observe(0.1)
        assert NULL_REGISTRY.render_text() == ""
        assert NULL_REGISTRY.render_json() == {}
