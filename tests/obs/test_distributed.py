"""Distributed-tracing primitives: serialization, stitching, fleet merge.

The coordinator/worker contract rests on three invariants tested here:
span dict round-trips are byte-stable (``span_from_dict(d).to_dict() ==
d``), subtree capture inherits exactly the propagated trace context (and
detaches the caller's current span so inline fallbacks never
double-record), and registry deltas merge idempotently across worker
recycles.  The slow-query ring buffer's bound must hold under
concurrent writers.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    MetricsRegistry,
    SlowQueryLog,
    Tracer,
    capture_subtree,
    current_trace_context,
    diff_state,
    free_span,
    new_span_id,
    new_trace_id,
    span_from_dict,
)
from repro.obs.slowlog import NULL_SLOW_LOG


class TestIdentifiers:
    def test_formats(self):
        assert len(new_trace_id()) == 32
        assert len(new_span_id()) == 16
        int(new_trace_id(), 16)
        int(new_span_id(), 16)

    def test_span_ids_unique(self):
        ids = {new_span_id() for _ in range(1000)}
        assert len(ids) == 1000

    def test_roots_get_trace_ids(self):
        tracer = Tracer(capacity=4)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        a, b = tracer.recent()
        assert a["trace_id"] != b["trace_id"]

    def test_children_share_root_trace_id(self):
        tracer = Tracer(capacity=4)
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grand:
                    pass
        assert child.trace_id == root.trace_id
        assert grand.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert grand.parent_id == child.span_id


class TestRoundTrip:
    def _sample_tree(self):
        tracer = Tracer(capacity=2)
        with tracer.span("root", corpus=32) as root:
            with tracer.span("child.ok", rows=7):
                pass
            try:
                with tracer.span("child.err"):
                    raise ValueError("boom")
            except ValueError:
                pass
            root.annotate(merged=True)
        (trace,) = tracer.recent()
        return trace

    def test_round_trip_is_byte_stable(self):
        d = self._sample_tree()
        restored = span_from_dict(d).to_dict()
        assert restored == d
        # key *order* matters too: the CI artifact diffing relies on
        # serialized traces being canonical
        assert list(restored) == list(d)
        assert [list(c) for c in restored["children"]] == [
            list(c) for c in d["children"]
        ]

    def test_round_trip_preserves_error_subtree(self):
        d = self._sample_tree()
        restored = span_from_dict(d).to_dict()
        err = [c for c in restored["children"] if c["name"] == "child.err"]
        assert err and err[0]["status"] == "error"
        assert "ValueError" in err[0]["error"]

    def test_attach_inherits_identity(self):
        parent = free_span("scatter")
        with parent:
            pass
        child = span_from_dict(
            {
                "name": "shard.score",
                "span_id": new_span_id(),
                "start_time": 0.0,
                "duration_ms": 1.0,
                "status": "ok",
            }
        )
        parent.attach(child)
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id

    def test_attach_keeps_existing_identity(self):
        """A shard subtree stitched back carries the *propagated* ids."""
        parent = free_span("scatter")
        tid, pid = new_trace_id(), new_span_id()
        child = span_from_dict(
            {
                "name": "shard.score",
                "span_id": new_span_id(),
                "trace_id": tid,
                "parent_id": pid,
                "start_time": 0.0,
                "duration_ms": 1.0,
                "status": "ok",
            }
        )
        parent.attach(child)
        assert child.trace_id == tid
        assert child.parent_id == pid


class TestCaptureSubtree:
    def test_inherits_propagated_context(self):
        ctx = {"trace_id": new_trace_id(), "span_id": new_span_id()}
        with capture_subtree("shard.score", ctx, shard=2) as root:
            with free_span("shard.distance", feature="sch"):
                pass
        d = root.to_dict()
        assert d["trace_id"] == ctx["trace_id"]
        assert d["parent_id"] == ctx["span_id"]
        assert d["children"][0]["trace_id"] == ctx["trace_id"]
        assert d["children"][0]["parent_id"] == d["span_id"]
        assert d["attrs"] == {"shard": 2}

    def test_new_trace_without_context(self):
        with capture_subtree("shard.score") as root:
            pass
        d = root.to_dict()
        assert len(d["trace_id"]) == 32
        assert "parent_id" not in d

    def test_detaches_callers_current_span(self):
        """Inline fallback: the captured subtree must NOT nest under the
        coordinator's live span (it ships serialized and is re-attached),
        and the caller's span stack must survive the capture."""
        tracer = Tracer(capacity=4)
        with tracer.span("search.scatter") as scatter:
            ctx = current_trace_context()
            with capture_subtree("shard.score", ctx) as sub:
                inner = free_span("shard.distance")
                with inner:
                    pass
            assert current_trace_context()["span_id"] == scatter.span_id
        (trace,) = tracer.recent()
        assert trace.get("children") is None  # nothing double-recorded
        assert inner._parent is sub


class TestFleetMerge:
    def _worker_round(self, registry, queries=3):
        c = registry.counter("repro_worker_queries_total", "q", ("kind",))
        h = registry.histogram("repro_worker_query_seconds", "t")
        for _ in range(queries):
            c.labels(kind="vectors").inc()
            h.observe(0.01)

    def test_delta_then_merge_matches_totals(self):
        worker = MetricsRegistry()
        coord = MetricsRegistry()
        last = {}
        for round_queries in (3, 2):
            self._worker_round(worker, round_queries)
            current = worker.state()
            delta = diff_state(current, last)
            last = current
            coord.merge_state(delta, {"shard": "1"})
        text = coord.render_text()
        assert 'repro_worker_queries_total{shard="1",kind="vectors"} 5' in text
        assert 'repro_worker_query_seconds_count{shard="1"} 5' in text

    def test_merge_is_idempotent_under_recycle(self):
        """A recycled worker starts a fresh registry *and* a fresh
        ``last`` baseline together, so the coordinator never re-counts
        or under-counts across the recycle boundary."""
        coord = MetricsRegistry()
        # worker generation 1: two queries, drained once
        w1 = MetricsRegistry()
        self._worker_round(w1, 2)
        coord.merge_state(diff_state(w1.state(), {}), {"shard": "0"})
        # generation 2 replaces it: both registry and baseline reset
        w2 = MetricsRegistry()
        self._worker_round(w2, 3)
        coord.merge_state(diff_state(w2.state(), {}), {"shard": "0"})
        text = coord.render_text()
        assert 'repro_worker_queries_total{shard="0",kind="vectors"} 5' in text

    def test_empty_delta_merges_to_nothing(self):
        worker = MetricsRegistry()
        self._worker_round(worker)
        state = worker.state()
        assert diff_state(state, state) == {}
        coord = MetricsRegistry()
        coord.merge_state(diff_state(state, state), {"shard": "0"})
        assert coord.render_json() == {}

    def test_shards_stay_separate(self):
        coord = MetricsRegistry()
        for shard in ("0", "1"):
            w = MetricsRegistry()
            self._worker_round(w, 1 + int(shard))
            coord.merge_state(diff_state(w.state(), {}), {"shard": shard})
        text = coord.render_text()
        assert 'repro_worker_queries_total{shard="0",kind="vectors"} 1' in text
        assert 'repro_worker_queries_total{shard="1",kind="vectors"} 2' in text


class TestSlowQueryLog:
    def test_threshold_filters(self):
        slow = SlowQueryLog(capacity=4, threshold_ms=100.0)
        assert not slow.record(99.9, kind="frame")
        assert slow.record(100.0, kind="frame")
        (entry,) = slow.recent()
        assert entry["ms"] == 100.0
        assert entry["kind"] == "frame"

    def test_newest_first_and_capacity(self):
        slow = SlowQueryLog(capacity=3, threshold_ms=1.0)
        for i in range(5):
            slow.record(10.0 + i, seq=i)
        entries = slow.recent()
        assert [e["seq"] for e in entries] == [4, 3, 2]
        assert slow.stats()["recorded_total"] == 5
        assert slow.stats()["buffered"] == 3

    def test_bounded_under_concurrent_writers(self):
        slow = SlowQueryLog(capacity=16, threshold_ms=1.0)
        n_threads, per_thread = 8, 200
        barrier = threading.Barrier(n_threads)

        def pound(tid):
            barrier.wait()
            for i in range(per_thread):
                slow.record(10.0 + i, thread=tid, seq=i)

        threads = [
            threading.Thread(target=pound, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = slow.stats()
        assert stats["recorded_total"] == n_threads * per_thread
        assert stats["buffered"] == 16
        assert len(slow.recent()) == 16

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_ms=0.0)

    def test_null_twin_guard_never_trips(self):
        assert not (10_000.0 >= NULL_SLOW_LOG.threshold_ms)
        assert not NULL_SLOW_LOG.record(10_000.0)
        assert NULL_SLOW_LOG.recent() == []
        assert NULL_SLOW_LOG.stats() is None
