"""GROUP BY tests."""

import pytest

from repro.db import Database
from repro.db.errors import SqlSyntaxError


@pytest.fixture()
def db():
    d = Database()
    d.execute("CREATE TABLE KF (I_ID NUMBER PRIMARY KEY, V_ID NUMBER, SIZE NUMBER)")
    rows = [
        (1, 10, 100), (2, 10, 200), (3, 10, None),
        (4, 20, 50), (5, 20, 150),
        (6, 30, 75),
    ]
    for i_id, v_id, size in rows:
        d.execute("INSERT INTO KF (I_ID, V_ID, SIZE) VALUES (?, ?, ?)", (i_id, v_id, size))
    return d


class TestGroupBy:
    def test_count_per_group(self, db):
        rows = db.execute(
            "SELECT V_ID, COUNT(*) FROM KF GROUP BY V_ID ORDER BY V_ID"
        ).rows
        assert rows == [
            {"V_ID": 10, "COUNT(*)": 3},
            {"V_ID": 20, "COUNT(*)": 2},
            {"V_ID": 30, "COUNT(*)": 1},
        ]

    def test_count_column_skips_nulls_per_group(self, db):
        rows = db.execute(
            "SELECT V_ID, COUNT(SIZE) FROM KF GROUP BY V_ID ORDER BY V_ID"
        ).rows
        assert [r["COUNT(SIZE)"] for r in rows] == [2, 2, 1]

    def test_sum_and_avg(self, db):
        rows = db.execute(
            "SELECT V_ID, SUM(SIZE) FROM KF GROUP BY V_ID ORDER BY V_ID"
        ).rows
        assert [r["SUM(SIZE)"] for r in rows] == [300, 200, 75]
        rows = db.execute(
            "SELECT V_ID, AVG(SIZE) FROM KF GROUP BY V_ID ORDER BY V_ID"
        ).rows
        assert rows[0]["AVG(SIZE)"] == pytest.approx(150.0)

    def test_where_filters_before_grouping(self, db):
        rows = db.execute(
            "SELECT V_ID, COUNT(*) FROM KF WHERE SIZE > 90 GROUP BY V_ID ORDER BY V_ID"
        ).rows
        assert rows == [
            {"V_ID": 10, "COUNT(*)": 2},
            {"V_ID": 20, "COUNT(*)": 1},
        ]

    def test_order_desc_and_limit(self, db):
        rows = db.execute(
            "SELECT V_ID, COUNT(*) FROM KF GROUP BY V_ID ORDER BY V_ID DESC LIMIT 2"
        ).rows
        assert [r["V_ID"] for r in rows] == [30, 20]

    def test_aggregate_only_projection(self, db):
        rows = db.execute(
            "SELECT COUNT(*) FROM KF GROUP BY V_ID ORDER BY V_ID"
        ).rows
        assert [list(r) for r in rows] == [["V_ID", "COUNT(*)"]] * 3

    def test_empty_result(self, db):
        rows = db.execute(
            "SELECT V_ID, COUNT(*) FROM KF WHERE V_ID = 99 GROUP BY V_ID"
        ).rows
        assert rows == []


class TestGroupBySyntax:
    def test_plain_column_without_group_by_rejected(self, db):
        with pytest.raises(SqlSyntaxError):
            db.execute("SELECT V_ID, COUNT(*) FROM KF")

    def test_group_by_without_aggregate_rejected(self, db):
        with pytest.raises(SqlSyntaxError):
            db.execute("SELECT V_ID FROM KF GROUP BY V_ID")

    def test_selected_column_must_be_grouped(self, db):
        with pytest.raises(SqlSyntaxError):
            db.execute("SELECT SIZE, COUNT(*) FROM KF GROUP BY V_ID")

    def test_order_by_must_use_group_columns(self, db):
        with pytest.raises(SqlSyntaxError):
            db.execute("SELECT V_ID, COUNT(*) FROM KF GROUP BY V_ID ORDER BY SIZE")

    def test_two_aggregates_rejected(self, db):
        with pytest.raises(SqlSyntaxError):
            db.execute("SELECT COUNT(*), SUM(SIZE) FROM KF GROUP BY V_ID")

    def test_system_usage(self, ingested_system):
        """The real KEY_FRAMES table: key frames per video."""
        rows = ingested_system.db.execute(
            "SELECT V_ID, COUNT(*) FROM KEY_FRAMES GROUP BY V_ID ORDER BY V_ID"
        ).rows
        assert len(rows) == ingested_system.n_videos()
        total = sum(r["COUNT(*)"] for r in rows)
        assert total == ingested_system.n_key_frames()
