"""SQL tokenizer and parser tests."""

import pytest

from repro.db import sql
from repro.db.errors import SqlSyntaxError
from repro.db.types import NUMBER, ORD_VIDEO, VARCHAR2


class TestTokenizer:
    def test_basic_kinds(self):
        toks = sql.tokenize("SELECT x FROM t WHERE y = 3.5")
        kinds = [t.kind for t in toks]
        assert kinds == ["ident", "ident", "ident", "ident", "ident", "ident", "op", "number"]

    def test_idents_uppercased(self):
        toks = sql.tokenize('select "MyCol" from tbl')
        assert toks[1].value == "MYCOL"
        assert toks[0].value == "SELECT"

    def test_string_with_escaped_quote(self):
        toks = sql.tokenize("SELECT x FROM t WHERE n = 'it''s'")
        assert toks[-1].kind == "string"
        assert toks[-1].value == "'it''s'"

    def test_comments_skipped(self):
        toks = sql.tokenize("SELECT x -- trailing comment\nFROM t")
        assert [t.value for t in toks] == ["SELECT", "X", "FROM", "T"]

    def test_negative_number(self):
        toks = sql.tokenize("WHERE x = -5")
        assert toks[-1].kind == "number" and toks[-1].value == "-5"

    def test_unexpected_char(self):
        with pytest.raises(SqlSyntaxError):
            sql.tokenize("SELECT @ FROM t")


class TestCreateTable:
    def test_paper_ddl_verbatim(self):
        stmt, n = sql.parse('''CREATE TABLE  "VIDEO_STORE"
           ( "V_ID" NUMBER NOT NULL ENABLE,
         "V_NAME" VARCHAR2(60),
         "VIDEO" ORD_ Video,
         "STREAM" BLOB,
         "DOSTORE" DATE,
         PRIMARY KEY ("V_ID") ENABLE
           )''')
        assert n == 0
        schema = stmt.schema
        assert schema.name == "VIDEO_STORE"
        assert schema.primary_key == ["V_ID"]
        assert isinstance(schema.column("V_NAME").sql_type, VARCHAR2)
        assert schema.column("V_NAME").sql_type.max_length == 60
        assert isinstance(schema.column("VIDEO").sql_type, ORD_VIDEO)
        assert not schema.column("V_ID").nullable

    def test_inline_primary_key(self):
        stmt, _ = sql.parse("CREATE TABLE T (ID NUMBER PRIMARY KEY, X NUMBER)")
        assert stmt.schema.primary_key == ["ID"]

    def test_composite_primary_key(self):
        stmt, _ = sql.parse("CREATE TABLE T (A NUMBER, B NUMBER, PRIMARY KEY (A, B))")
        assert stmt.schema.primary_key == ["A", "B"]

    def test_pk_references_unknown_column(self):
        with pytest.raises(SqlSyntaxError):
            sql.parse("CREATE TABLE T (A NUMBER, PRIMARY KEY (B))")

    def test_unknown_type(self):
        with pytest.raises(SqlSyntaxError):
            sql.parse("CREATE TABLE T (A GEOGRAPHY)")

    def test_ddl_roundtrip(self):
        stmt, _ = sql.parse(
            "CREATE TABLE T (ID NUMBER PRIMARY KEY, N VARCHAR2(10) NOT NULL, B BLOB)"
        )
        stmt2, _ = sql.parse(stmt.schema.render_ddl())
        assert stmt2.schema == stmt.schema


class TestInsert:
    def test_with_columns_and_params(self):
        stmt, n = sql.parse("INSERT INTO T (A, B) VALUES (?, ?)")
        assert n == 2
        assert stmt.columns == ("A", "B")
        assert stmt.values == (sql.Param(0), sql.Param(1))

    def test_without_columns(self):
        stmt, _ = sql.parse("INSERT INTO T VALUES (1, 'x', NULL)")
        assert stmt.columns == ()
        assert stmt.values == (sql.Literal(1), sql.Literal("x"), sql.Literal(None))

    def test_count_mismatch(self):
        with pytest.raises(SqlSyntaxError):
            sql.parse("INSERT INTO T (A, B) VALUES (1)")

    def test_string_escape(self):
        stmt, _ = sql.parse("INSERT INTO T (A) VALUES ('it''s')")
        assert stmt.values[0] == sql.Literal("it's")

    def test_negative_and_float_literals(self):
        stmt, _ = sql.parse("INSERT INTO T (A, B, C) VALUES (-7, 2.5, 1e3)")
        assert stmt.values == (sql.Literal(-7), sql.Literal(2.5), sql.Literal(1000.0))


class TestSelect:
    def test_star(self):
        stmt, _ = sql.parse("SELECT * FROM T")
        assert stmt.columns == ()
        assert stmt.where is None

    def test_columns_where_order_limit(self):
        stmt, n = sql.parse(
            "SELECT A, B FROM T WHERE A > 3 AND B LIKE 'x%' ORDER BY B DESC, A LIMIT 10"
        )
        assert n == 0
        assert stmt.columns == ("A", "B")
        assert stmt.limit == 10
        assert stmt.order_by == (
            sql.OrderItem("B", descending=True),
            sql.OrderItem("A", descending=False),
        )
        assert isinstance(stmt.where, sql.And)

    def test_between_in_isnull(self):
        stmt, _ = sql.parse(
            "SELECT * FROM T WHERE (A BETWEEN 1 AND 5) OR A IN (7, 9) OR B IS NOT NULL"
        )
        assert isinstance(stmt.where, sql.Or)

    def test_not_variants(self):
        stmt, _ = sql.parse("SELECT * FROM T WHERE A NOT BETWEEN 1 AND 2")
        assert stmt.where.negated
        stmt, _ = sql.parse("SELECT * FROM T WHERE A NOT IN (1)")
        assert stmt.where.negated
        stmt, _ = sql.parse("SELECT * FROM T WHERE NOT A = 1")
        assert isinstance(stmt.where, sql.Not)

    def test_parenthesized_boolean(self):
        stmt, _ = sql.parse("SELECT * FROM T WHERE (A = 1 OR B = 2) AND C = 3")
        assert isinstance(stmt.where, sql.And)
        assert isinstance(stmt.where.left, sql.Or)

    def test_nested_parens(self):
        stmt, _ = sql.parse("SELECT * FROM T WHERE ((A = 1))")
        assert isinstance(stmt.where, sql.Compare)

    def test_neq_spellings(self):
        a, _ = sql.parse("SELECT * FROM T WHERE A <> 1")
        b, _ = sql.parse("SELECT * FROM T WHERE A != 1")
        assert a.where.op == b.where.op == "!="

    def test_params_in_where(self):
        stmt, n = sql.parse("SELECT * FROM T WHERE A = ? AND B < ?")
        assert n == 2

    def test_negative_limit_rejected(self):
        with pytest.raises(SqlSyntaxError):
            sql.parse("SELECT * FROM T LIMIT -1")


class TestUpdateDelete:
    def test_update(self):
        stmt, n = sql.parse("UPDATE T SET A = 1, B = ? WHERE C = 2")
        assert n == 1
        assert stmt.assignments == (("A", sql.Literal(1)), ("B", sql.Param(0)))

    def test_delete(self):
        stmt, _ = sql.parse("DELETE FROM T WHERE A = 1")
        assert isinstance(stmt.where, sql.Compare)

    def test_delete_all(self):
        stmt, _ = sql.parse("DELETE FROM T")
        assert stmt.where is None


class TestDropAndErrors:
    def test_drop(self):
        stmt, _ = sql.parse("DROP TABLE T")
        assert stmt.table == "T" and not stmt.if_exists

    def test_drop_if_exists(self):
        stmt, _ = sql.parse("DROP TABLE IF EXISTS T")
        assert stmt.if_exists

    def test_unknown_statement(self):
        with pytest.raises(SqlSyntaxError):
            sql.parse("GRANT ALL ON T")

    def test_empty_statement(self):
        with pytest.raises(SqlSyntaxError):
            sql.parse("   ")

    def test_trailing_garbage(self):
        with pytest.raises(SqlSyntaxError):
            sql.parse("SELECT * FROM T extra stuff")

    def test_trailing_semicolon_ok(self):
        stmt, _ = sql.parse("SELECT * FROM T;")
        assert stmt.table == "T"

    def test_incomplete_where(self):
        with pytest.raises(SqlSyntaxError):
            sql.parse("SELECT * FROM T WHERE A =")

    def test_date_literal(self):
        stmt, _ = sql.parse("SELECT * FROM T WHERE D = DATE '2012-10-01'")
        assert stmt.where.right == sql.Literal("2012-10-01")


class TestStatementBuilders:
    """build_select/build_insert/build_delete: the R4-sanctioned way to
    assemble SQL from runtime identifiers."""

    def test_build_select_parses(self):
        text = sql.build_select("KEY_FRAMES", ("I_ID", "V_ID"), where_eq="V_ID",
                                order_by=("I_ID",))
        stmt, n_params = sql.parse(text)
        assert stmt.table == "KEY_FRAMES"
        assert stmt.columns == ("I_ID", "V_ID")
        assert n_params == 1
        assert stmt.order_by[0].column == "I_ID"

    def test_build_select_star(self):
        stmt, n_params = sql.parse(sql.build_select("VIDEO_STORE"))
        assert stmt.columns == () and n_params == 0

    def test_build_insert_parses_with_param_per_column(self):
        text = sql.build_insert("KEY_FRAMES", ("I_ID", "V_ID", "SCH"))
        stmt, n_params = sql.parse(text)
        assert stmt.table == "KEY_FRAMES"
        assert stmt.columns == ("I_ID", "V_ID", "SCH")
        assert n_params == 3

    def test_build_delete_parses(self):
        stmt, n_params = sql.parse(sql.build_delete("VIDEO_STORE", where_eq="V_ID"))
        assert stmt.table == "VIDEO_STORE" and n_params == 1

    def test_build_insert_requires_columns(self):
        with pytest.raises(SqlSyntaxError):
            sql.build_insert("T", ())

    @pytest.mark.parametrize("bad", ["", "1BAD", "a b", "T;DROP", 'x"y', None])
    def test_injection_shaped_identifiers_rejected(self, bad):
        with pytest.raises(SqlSyntaxError):
            sql.quote_ident(bad)

    def test_quote_ident_accepts_paper_style_names(self):
        for name in ("V_ID", "KEY_FRAMES", "MAJORREGIONS", "col$x", "a#b"):
            assert sql.quote_ident(name) == name
