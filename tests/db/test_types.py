"""Column type and value-codec tests."""

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.errors import StorageError, TypeMismatchError
from repro.db.types import (
    BLOB,
    DATE,
    NUMBER,
    ORD_IMAGE,
    ORD_VIDEO,
    VARCHAR2,
    decode_value,
    encode_value,
    type_from_name,
)


class TestNumber:
    def test_accepts_int_and_float(self):
        assert NUMBER().validate(5) == 5
        assert NUMBER().validate(2.5) == 2.5

    def test_rejects_bool_str_nan(self):
        with pytest.raises(TypeMismatchError):
            NUMBER().validate(True)
        with pytest.raises(TypeMismatchError):
            NUMBER().validate("5")
        with pytest.raises(TypeMismatchError):
            NUMBER().validate(float("nan"))


class TestVarchar:
    def test_length_enforced(self):
        t = VARCHAR2(3)
        assert t.validate("abc") == "abc"
        with pytest.raises(TypeMismatchError):
            t.validate("abcd")

    def test_rejects_non_str(self):
        with pytest.raises(TypeMismatchError):
            VARCHAR2(10).validate(b"bytes")

    def test_render(self):
        assert VARCHAR2(60).render() == "VARCHAR2(60)"

    def test_bad_length(self):
        with pytest.raises(TypeMismatchError):
            VARCHAR2(0)


class TestDate:
    def test_accepts_date_datetime_iso(self):
        d = datetime.date(2012, 10, 5)
        assert DATE().validate(d) == d
        assert DATE().validate(datetime.datetime(2012, 10, 5, 12, 30)) == d
        assert DATE().validate("2012-10-05") == d

    def test_rejects_garbage(self):
        with pytest.raises(TypeMismatchError):
            DATE().validate("October 5")
        with pytest.raises(TypeMismatchError):
            DATE().validate(123)


class TestBlob:
    def test_accepts_bytes_and_bytearray(self):
        assert BLOB().validate(b"\x00\x01") == b"\x00\x01"
        assert BLOB().validate(bytearray(b"xy")) == b"xy"

    def test_rejects_str(self):
        with pytest.raises(TypeMismatchError):
            BLOB().validate("text")


class TestOrdTypes:
    def test_ord_video_decodes_rvf(self):
        from repro.imaging.image import Image
        from repro.video.codec import encode_rvf_bytes

        frames = [Image.blank(8, 6, 5)]
        data = ORD_VIDEO.decode(encode_rvf_bytes(frames))
        assert list(data) == frames

    def test_ord_image_decodes_ppm(self):
        from repro.imaging.image import Image

        img = Image.blank(4, 4, (1, 2, 3))
        assert ORD_IMAGE.decode(img.encode("ppm")) == img


class TestTypeFromName:
    def test_standard_names(self):
        assert isinstance(type_from_name("NUMBER"), NUMBER)
        assert isinstance(type_from_name("number"), NUMBER)
        assert isinstance(type_from_name("DATE"), DATE)
        assert isinstance(type_from_name("BLOB"), BLOB)

    def test_varchar_with_length(self):
        t = type_from_name("VARCHAR2", 40)
        assert isinstance(t, VARCHAR2) and t.max_length == 40

    def test_ord_spellings(self):
        for spelling in ("ORD_VIDEO", "ORDVideo", "ORD_ Video", "ord_video"):
            assert isinstance(type_from_name(spelling), ORD_VIDEO)
        assert isinstance(type_from_name("ORD_ Image"), ORD_IMAGE)

    def test_unknown_rejected(self):
        with pytest.raises(TypeMismatchError):
            type_from_name("CLOB")

    def test_length_on_lengthless_type_rejected(self):
        with pytest.raises(TypeMismatchError):
            type_from_name("NUMBER", 10)


class TestValueCodec:
    CASES = [
        None,
        0,
        -(2**62),
        2**62,
        3.14159,
        -0.0,
        "",
        "héllo wörld",
        b"",
        b"\x00\xff" * 100,
        datetime.date(1999, 12, 31),
    ]

    @pytest.mark.parametrize("value", CASES, ids=repr)
    def test_roundtrip(self, value):
        buf = encode_value(value)
        decoded, offset = decode_value(buf, 0)
        assert decoded == value
        assert offset == len(buf)

    def test_stream_of_values(self):
        buf = b"".join(encode_value(v) for v in self.CASES)
        offset = 0
        for expected in self.CASES:
            value, offset = decode_value(buf, offset)
            assert value == expected

    def test_bool_rejected(self):
        with pytest.raises(TypeMismatchError):
            encode_value(True)

    def test_unencodable_rejected(self):
        with pytest.raises(TypeMismatchError):
            encode_value(object())

    def test_truncated_stream(self):
        buf = encode_value("hello")
        with pytest.raises(StorageError):
            decode_value(buf[:3], 0)
        with pytest.raises(StorageError):
            decode_value(b"", 0)

    def test_unknown_tag(self):
        with pytest.raises(StorageError):
            decode_value(b"\xfe", 0)

    @settings(max_examples=50, deadline=None)
    @given(
        st.one_of(
            st.none(),
            st.integers(min_value=-(2**63), max_value=2**63 - 1),
            st.floats(allow_nan=False),
            st.text(max_size=50),
            st.binary(max_size=50),
            st.dates(),
        )
    )
    def test_roundtrip_property(self, value):
        decoded, _ = decode_value(encode_value(value), 0)
        assert decoded == value
