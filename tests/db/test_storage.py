"""Durability tests: snapshots, WAL replay, crash tolerance."""

import datetime
import os

import pytest

from repro.db import Database
from repro.db.errors import StorageError
from repro.db.storage import Storage


@pytest.fixture()
def path(tmp_path):
    return str(tmp_path / "test.rdb")


def _populate(db):
    db.execute(
        "CREATE TABLE T (ID NUMBER PRIMARY KEY, NAME VARCHAR2(20), DATA BLOB, D DATE)"
    )
    db.execute(
        "INSERT INTO T (ID, NAME, DATA, D) VALUES (?, ?, ?, ?)",
        (1, "one", b"\x00\x01", datetime.date(2012, 10, 1)),
    )
    db.execute("INSERT INTO T (ID, NAME) VALUES (2, 'two')")


class TestWalReplay:
    def test_reopen_replays_wal(self, path):
        db = Database.open(path)
        _populate(db)
        db.close()

        db2 = Database.open(path)
        rows = db2.execute("SELECT * FROM T ORDER BY ID").rows
        assert len(rows) == 2
        assert rows[0]["DATA"] == b"\x00\x01"
        assert rows[0]["D"] == datetime.date(2012, 10, 1)
        db2.close()

    def test_wal_accumulates_across_sessions(self, path):
        db = Database.open(path)
        _populate(db)
        db.close()
        db = Database.open(path)
        db.execute("INSERT INTO T (ID, NAME) VALUES (3, 'three')")
        db.close()
        db = Database.open(path)
        assert len(db.execute("SELECT * FROM T").rows) == 3
        db.close()

    def test_selects_not_logged(self, path):
        db = Database.open(path)
        _populate(db)
        size_before = os.path.getsize(path + ".wal")
        for _ in range(5):
            db.execute("SELECT * FROM T")
        assert os.path.getsize(path + ".wal") == size_before
        db.close()

    def test_rolled_back_statements_not_logged(self, path):
        db = Database.open(path)
        _populate(db)
        db.begin()
        db.execute("DELETE FROM T")
        db.rollback()
        db.close()
        db2 = Database.open(path)
        assert len(db2.execute("SELECT * FROM T").rows) == 2
        db2.close()

    def test_committed_transaction_logged(self, path):
        db = Database.open(path)
        _populate(db)
        with db.transaction():
            db.execute("DELETE FROM T WHERE ID = 2")
        db.close()
        db2 = Database.open(path)
        assert len(db2.execute("SELECT * FROM T").rows) == 1
        db2.close()


class TestCheckpoint:
    def test_checkpoint_truncates_wal(self, path):
        db = Database.open(path)
        _populate(db)
        assert os.path.getsize(path + ".wal") > 4
        db.checkpoint()
        assert os.path.getsize(path + ".wal") == 4  # magic only
        assert os.path.getsize(path) > 0
        db.close()

    def test_snapshot_plus_wal(self, path):
        db = Database.open(path)
        _populate(db)
        db.checkpoint()
        db.execute("INSERT INTO T (ID, NAME) VALUES (9, 'after')")
        db.close()
        db2 = Database.open(path)
        names = {r["NAME"] for r in db2.execute("SELECT NAME FROM T").rows}
        assert names == {"one", "two", "after"}
        db2.close()

    def test_checkpoint_preserves_schema(self, path):
        db = Database.open(path)
        _populate(db)
        db.checkpoint()
        db.close()
        db2 = Database.open(path)
        # the PK constraint must survive the snapshot roundtrip
        from repro.db.errors import ConstraintError

        with pytest.raises(ConstraintError):
            db2.execute("INSERT INTO T (ID) VALUES (1)")
        db2.close()


class TestCrashTolerance:
    def test_torn_wal_record_ignored(self, path):
        db = Database.open(path)
        _populate(db)
        db.close()
        # simulate a crash mid-append: chop bytes off the last record
        with open(path + ".wal", "rb") as fh:
            data = fh.read()
        with open(path + ".wal", "wb") as fh:
            fh.write(data[:-7])
        db2 = Database.open(path)
        # last insert lost, earlier statements intact
        assert len(db2.execute("SELECT * FROM T").rows) == 1
        db2.close()

    def test_corrupt_crc_stops_replay(self, path):
        db = Database.open(path)
        _populate(db)
        db.close()
        with open(path + ".wal", "rb") as fh:
            data = bytearray(fh.read())
        data[-2] ^= 0xFF  # flip a bit in the last record's CRC
        with open(path + ".wal", "wb") as fh:
            fh.write(bytes(data))
        db2 = Database.open(path)
        assert len(db2.execute("SELECT * FROM T").rows) == 1
        db2.close()

    def test_bad_wal_magic_rejected(self, path):
        with open(path + ".wal", "wb") as fh:
            fh.write(b"XXXX")
        with pytest.raises(StorageError):
            Database.open(path)

    def test_bad_snapshot_magic_rejected(self, path):
        with open(path, "wb") as fh:
            fh.write(b"NOPE....")
        with pytest.raises(StorageError):
            Database.open(path)

    def test_load_into_requires_empty(self, path):
        db = Database()
        db.execute("CREATE TABLE X (A NUMBER)")
        with pytest.raises(StorageError):
            Storage(path).load_into(db)

    def test_empty_files_mean_empty_db(self, path):
        db = Database.open(path)
        assert db.table_names() == []
        db.close()
