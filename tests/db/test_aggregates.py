"""SQL aggregate tests (COUNT/MIN/MAX/SUM/AVG)."""

import pytest

from repro.db import Database
from repro.db.errors import CatalogError, DatabaseError, SqlSyntaxError


@pytest.fixture()
def db():
    d = Database()
    d.execute("CREATE TABLE T (ID NUMBER PRIMARY KEY, NAME VARCHAR2(20), SCORE NUMBER)")
    d.execute("INSERT INTO T (ID, NAME, SCORE) VALUES (1, 'a', 10)")
    d.execute("INSERT INTO T (ID, NAME, SCORE) VALUES (2, 'b', 30)")
    d.execute("INSERT INTO T (ID, NAME) VALUES (3, 'c')")  # NULL score
    return d


class TestCount:
    def test_count_star(self, db):
        assert db.execute("SELECT COUNT(*) FROM T").scalar() == 3

    def test_count_star_with_where(self, db):
        assert db.execute("SELECT COUNT(*) FROM T WHERE ID > 1").scalar() == 2

    def test_count_column_skips_nulls(self, db):
        assert db.execute("SELECT COUNT(SCORE) FROM T").scalar() == 2

    def test_count_empty(self, db):
        assert db.execute("SELECT COUNT(*) FROM T WHERE ID > 99").scalar() == 0

    def test_result_label(self, db):
        row = db.execute("SELECT COUNT(*) FROM T").rows[0]
        assert list(row) == ["COUNT(*)"]


class TestMinMaxSumAvg:
    def test_min_max(self, db):
        assert db.execute("SELECT MIN(SCORE) FROM T").scalar() == 10
        assert db.execute("SELECT MAX(SCORE) FROM T").scalar() == 30

    def test_min_on_strings(self, db):
        assert db.execute("SELECT MIN(NAME) FROM T").scalar() == "a"

    def test_sum_avg(self, db):
        assert db.execute("SELECT SUM(SCORE) FROM T").scalar() == 40
        assert db.execute("SELECT AVG(SCORE) FROM T").scalar() == pytest.approx(20.0)

    def test_empty_set_is_null(self, db):
        assert db.execute("SELECT MAX(SCORE) FROM T WHERE ID > 99").scalar() is None
        assert db.execute("SELECT SUM(SCORE) FROM T WHERE ID > 99").scalar() is None

    def test_sum_requires_numbers(self, db):
        with pytest.raises(DatabaseError):
            db.execute("SELECT SUM(NAME) FROM T")

    def test_unknown_column(self, db):
        with pytest.raises(CatalogError):
            db.execute("SELECT MAX(BOGUS) FROM T")


class TestSyntax:
    def test_star_only_for_count(self, db):
        with pytest.raises(SqlSyntaxError):
            db.execute("SELECT MAX(*) FROM T")

    def test_no_order_by_with_aggregate(self, db):
        with pytest.raises(SqlSyntaxError):
            db.execute("SELECT COUNT(*) FROM T ORDER BY ID")

    def test_no_limit_with_aggregate(self, db):
        with pytest.raises(SqlSyntaxError):
            db.execute("SELECT COUNT(*) FROM T LIMIT 1")

    def test_count_as_plain_ident_still_works(self, db):
        # a column actually named COUNT must still be selectable
        d = Database()
        d.execute("CREATE TABLE C (COUNT NUMBER)")
        d.execute("INSERT INTO C (COUNT) VALUES (7)")
        assert d.execute("SELECT COUNT FROM C").scalar() == 7
