"""Database engine tests: CRUD, predicates, transactions."""

import datetime

import pytest

from repro.db import Database
from repro.db.errors import (
    CatalogError,
    ConstraintError,
    DatabaseError,
    SqlSyntaxError,
    TransactionError,
    TypeMismatchError,
)


@pytest.fixture()
def db():
    d = Database()
    d.execute(
        "CREATE TABLE T (ID NUMBER PRIMARY KEY, NAME VARCHAR2(20), "
        "SCORE NUMBER, DATA BLOB, D DATE)"
    )
    d.execute("INSERT INTO T (ID, NAME, SCORE) VALUES (1, 'alpha', 10)")
    d.execute("INSERT INTO T (ID, NAME, SCORE) VALUES (2, 'beta', 20)")
    d.execute("INSERT INTO T (ID, NAME) VALUES (3, 'gamma')")
    return d


class TestDdl:
    def test_create_and_list(self, db):
        assert db.table_names() == ["T"]
        db.execute("CREATE TABLE U (X NUMBER)")
        assert db.table_names() == ["T", "U"]

    def test_duplicate_table_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE T (X NUMBER)")

    def test_drop(self, db):
        db.execute("DROP TABLE T")
        assert db.table_names() == []
        with pytest.raises(CatalogError):
            db.execute("DROP TABLE T")
        db.execute("DROP TABLE IF EXISTS T")  # no error

    def test_unknown_table(self, db):
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM NOPE")


class TestInsert:
    def test_rowcount(self, db):
        r = db.execute("INSERT INTO T (ID, NAME) VALUES (9, 'x')")
        assert r.rowcount == 1

    def test_duplicate_pk(self, db):
        with pytest.raises(ConstraintError):
            db.execute("INSERT INTO T (ID) VALUES (1)")

    def test_pk_int_float_equivalence(self, db):
        with pytest.raises(ConstraintError):
            db.execute("INSERT INTO T (ID) VALUES (1.0)")

    def test_not_null_enforced(self, db):
        with pytest.raises(ConstraintError):
            db.execute("INSERT INTO T (NAME) VALUES ('no id')")

    def test_type_checked(self, db):
        with pytest.raises(TypeMismatchError):
            db.execute("INSERT INTO T (ID, NAME) VALUES (5, 42)")

    def test_varchar_overflow(self, db):
        with pytest.raises(TypeMismatchError):
            db.execute(f"INSERT INTO T (ID, NAME) VALUES (5, '{'x' * 30}')")

    def test_unknown_column(self, db):
        with pytest.raises(CatalogError):
            db.execute("INSERT INTO T (ID, BOGUS) VALUES (5, 1)")

    def test_blob_param(self, db):
        db.execute("INSERT INTO T (ID, DATA) VALUES (?, ?)", (5, b"\x00\x01"))
        row = db.execute("SELECT DATA FROM T WHERE ID = 5").rows[0]
        assert row["DATA"] == b"\x00\x01"

    def test_date_param_and_literal(self, db):
        db.execute("INSERT INTO T (ID, D) VALUES (?, ?)", (6, datetime.date(2012, 1, 1)))
        db.execute("INSERT INTO T (ID, D) VALUES (7, DATE '2012-06-15')")
        rows = db.execute("SELECT ID FROM T WHERE D IS NOT NULL ORDER BY ID").rows
        assert [r["ID"] for r in rows] == [6, 7]

    def test_param_count_mismatch(self, db):
        with pytest.raises(SqlSyntaxError):
            db.execute("INSERT INTO T (ID) VALUES (?)", (1, 2))
        with pytest.raises(SqlSyntaxError):
            db.execute("INSERT INTO T (ID) VALUES (?)")

    def test_positional_insert(self, db):
        db.execute("INSERT INTO T VALUES (8, 'h', 1, ?, NULL)", (b"d",))
        assert db.execute("SELECT NAME FROM T WHERE ID = 8").scalar() == "h"


class TestSelect:
    def test_where_comparisons(self, db):
        assert len(db.execute("SELECT * FROM T WHERE SCORE > 10").rows) == 1
        assert len(db.execute("SELECT * FROM T WHERE SCORE >= 10").rows) == 2
        assert len(db.execute("SELECT * FROM T WHERE SCORE != 10").rows) == 1

    def test_null_semantics(self, db):
        # SCORE of row 3 is NULL: comparisons with NULL are never true
        assert len(db.execute("SELECT * FROM T WHERE SCORE < 1000").rows) == 2
        assert len(db.execute("SELECT * FROM T WHERE SCORE IS NULL").rows) == 1
        assert len(db.execute("SELECT * FROM T WHERE SCORE IS NOT NULL").rows) == 2

    def test_like(self, db):
        rows = db.execute("SELECT NAME FROM T WHERE NAME LIKE '%a'").rows
        assert {r["NAME"] for r in rows} == {"alpha", "beta", "gamma"}
        rows = db.execute("SELECT NAME FROM T WHERE NAME LIKE 'al%'").rows
        assert [r["NAME"] for r in rows] == ["alpha"]
        rows = db.execute("SELECT NAME FROM T WHERE NAME LIKE '_eta'").rows
        assert [r["NAME"] for r in rows] == ["beta"]

    def test_in_and_between(self, db):
        assert len(db.execute("SELECT * FROM T WHERE ID IN (1, 3)").rows) == 2
        assert len(db.execute("SELECT * FROM T WHERE ID BETWEEN 2 AND 3").rows) == 2
        assert len(db.execute("SELECT * FROM T WHERE ID NOT IN (1, 3)").rows) == 1

    def test_boolean_combinations(self, db):
        rows = db.execute(
            "SELECT ID FROM T WHERE (ID = 1 OR ID = 2) AND NOT NAME = 'beta'"
        ).rows
        assert [r["ID"] for r in rows] == [1]

    def test_order_by(self, db):
        rows = db.execute("SELECT ID FROM T ORDER BY ID DESC").rows
        assert [r["ID"] for r in rows] == [3, 2, 1]

    def test_order_by_nulls_last(self, db):
        rows = db.execute("SELECT ID FROM T ORDER BY SCORE").rows
        assert rows[-1]["ID"] == 3

    def test_order_by_multi_key(self, db):
        db.execute("INSERT INTO T (ID, NAME, SCORE) VALUES (4, 'alpha', 5)")
        rows = db.execute("SELECT ID FROM T ORDER BY NAME, SCORE DESC").rows
        assert [r["ID"] for r in rows][:2] == [1, 4]

    def test_limit(self, db):
        assert len(db.execute("SELECT * FROM T ORDER BY ID LIMIT 2").rows) == 2
        assert len(db.execute("SELECT * FROM T LIMIT 0").rows) == 0

    def test_projection(self, db):
        row = db.execute("SELECT NAME FROM T WHERE ID = 1").rows[0]
        assert set(row) == {"NAME"}

    def test_unknown_column_in_projection(self, db):
        with pytest.raises(CatalogError):
            db.execute("SELECT BOGUS FROM T")

    def test_unknown_column_in_where(self, db):
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM T WHERE BOGUS = 1")

    def test_unknown_column_in_order_by(self, db):
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM T ORDER BY BOGUS")

    def test_scalar(self, db):
        assert db.execute("SELECT NAME FROM T WHERE ID = 2").scalar() == "beta"
        with pytest.raises(DatabaseError):
            db.execute("SELECT NAME FROM T").scalar()

    def test_pk_fast_path(self, db):
        rows = db.execute("SELECT * FROM T WHERE ID = ?", (2,)).rows
        assert rows[0]["NAME"] == "beta"
        # reversed operand order hits the same fast path
        rows = db.execute("SELECT * FROM T WHERE 2 = ID").rows
        assert rows[0]["NAME"] == "beta"

    def test_secondary_index_lookup(self, db):
        db.create_index("T", "NAME")
        rows = db.execute("SELECT ID FROM T WHERE NAME = 'beta'").rows
        assert [r["ID"] for r in rows] == [2]

    def test_incomparable_types(self, db):
        with pytest.raises(DatabaseError):
            db.execute("SELECT * FROM T WHERE NAME > 5")


class TestUpdateDelete:
    def test_update(self, db):
        n = db.execute("UPDATE T SET SCORE = 99 WHERE ID = 1").rowcount
        assert n == 1
        assert db.execute("SELECT SCORE FROM T WHERE ID = 1").scalar() == 99

    def test_update_all(self, db):
        assert db.execute("UPDATE T SET SCORE = 1").rowcount == 3

    def test_update_pk_conflict_rejected(self, db):
        with pytest.raises(ConstraintError):
            db.execute("UPDATE T SET ID = 2 WHERE ID = 1")
        # and the failed update must not have modified anything
        assert db.execute("SELECT NAME FROM T WHERE ID = 1").scalar() == "alpha"

    def test_update_pk_move_allowed(self, db):
        db.execute("UPDATE T SET ID = 42 WHERE ID = 1")
        assert db.execute("SELECT NAME FROM T WHERE ID = 42").scalar() == "alpha"

    def test_delete(self, db):
        assert db.execute("DELETE FROM T WHERE ID > 1").rowcount == 2
        assert len(db.execute("SELECT * FROM T").rows) == 1

    def test_delete_frees_pk(self, db):
        db.execute("DELETE FROM T WHERE ID = 1")
        db.execute("INSERT INTO T (ID, NAME) VALUES (1, 'again')")
        assert db.execute("SELECT NAME FROM T WHERE ID = 1").scalar() == "again"


class TestTransactions:
    def test_commit_keeps_changes(self, db):
        db.begin()
        db.execute("DELETE FROM T WHERE ID = 1")
        db.commit()
        assert len(db.execute("SELECT * FROM T").rows) == 2

    def test_rollback_restores_rows(self, db):
        db.begin()
        db.execute("DELETE FROM T")
        db.execute("INSERT INTO T (ID) VALUES (50)")
        db.rollback()
        rows = db.execute("SELECT ID FROM T ORDER BY ID").rows
        assert [r["ID"] for r in rows] == [1, 2, 3]

    def test_rollback_removes_created_table(self, db):
        db.begin()
        db.execute("CREATE TABLE TEMP (X NUMBER)")
        db.rollback()
        assert "TEMP" not in db.table_names()

    def test_rollback_restores_dropped_table(self, db):
        db.begin()
        db.execute("DROP TABLE T")
        db.rollback()
        assert len(db.execute("SELECT * FROM T").rows) == 3

    def test_context_manager_commit(self, db):
        with db.transaction():
            db.execute("DELETE FROM T WHERE ID = 3")
        assert len(db.execute("SELECT * FROM T").rows) == 2

    def test_context_manager_rollback_on_error(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.execute("DELETE FROM T")
                raise RuntimeError("boom")
        assert len(db.execute("SELECT * FROM T").rows) == 3

    def test_nested_begin_rejected(self, db):
        db.begin()
        with pytest.raises(TransactionError):
            db.begin()
        db.rollback()

    def test_commit_without_begin(self, db):
        with pytest.raises(TransactionError):
            db.commit()
        with pytest.raises(TransactionError):
            db.rollback()

    def test_checkpoint_requires_durable(self, db):
        with pytest.raises(DatabaseError):
            db.checkpoint()
