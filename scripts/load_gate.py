#!/usr/bin/env python
"""CI load gate: the asyncio front-end meets its latency SLO and sheds
cleanly under overload.

Three phases, all over real sockets with concurrent keep-alive clients:

- **solo SLO** -- an asyncio server over the single-store engine takes a
  mixed query stream (varying top_k / feature subsets, query cache off)
  from ``--clients`` concurrent clients; every response must be 200 and
  client-observed p95 latency must stay under the SLO.
- **sharded SLO** -- the same drill against a coordinator over
  ``--shards`` snapshot-backed shard workers (one scatter per shard per
  micro-batch).
- **overload** -- a server with a deliberately tiny queue
  (``serving_queue_limit=4``) and a wide batch window takes a saturating
  burst: every response must be 200 or 429 (never a 5xx, never a hang),
  every 429 must carry Retry-After, and the server's
  ``repro_serving_shed_total`` counter must equal the client-observed
  rejection count exactly.

The SLO bar comes from ``--p95-ms`` (env ``LOAD_GATE_P95_MS`` overrides
the default) so slow CI runners can be accommodated without editing the
workflow.  Artifacts land in ``--artifact-dir``: the run report, a
client-side latency histogram per phase, and a final /metrics scrape.

Usage (CI)::

    PYTHONPATH=src python scripts/load_gate.py --artifact-dir load-gate
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import threading
import time

import numpy as np

_FEATURE_MIXES = ("sch", "sch,glcm", "sch,glcm,gabor", "")


def _build_system(videos_per_category: int, n_shots: int, **config_overrides):
    from repro.core.config import SystemConfig
    from repro.core.system import VideoRetrievalSystem
    from repro.video.generator import make_corpus

    corpus = make_corpus(
        videos_per_category=videos_per_category,
        seed=2013,
        width=64,
        height=48,
        n_shots=n_shots,
        frames_per_shot=3,
    )
    system = VideoRetrievalSystem.in_memory(
        SystemConfig(workers=0, **config_overrides)
    )
    for video in corpus:
        system.admin.add_video(video)
    return system


def _client_drill(netloc: str, body: bytes, n_requests: int, worker_id: int):
    """One keep-alive client: mixed queries, per-request latencies."""
    import http.client

    conn = http.client.HTTPConnection(netloc, timeout=60)
    outcomes = []
    try:
        for i in range(n_requests):
            mix = _FEATURE_MIXES[(worker_id + i) % len(_FEATURE_MIXES)]
            top_k = 5 + (worker_id + i) % 20
            path = f"/search?top_k={top_k}"
            if mix:
                path += f"&features={mix}"
            t0 = time.perf_counter()
            conn.request("POST", path, body=body)
            response = conn.getresponse()
            response.read()
            latency = time.perf_counter() - t0
            retry_after = response.getheader("Retry-After")
            outcomes.append((response.status, latency, retry_after))
    finally:
        conn.close()
    return outcomes


def _run_phase(server, body, clients: int, per_client: int):
    base = server.start_in_thread()
    netloc = base.split("//", 1)[1]
    results = [None] * clients
    threads = [
        threading.Thread(
            target=lambda i=i: results.__setitem__(
                i, _client_drill(netloc, body, per_client, i)
            )
        )
        for i in range(clients)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    flat = [o for worker in results if worker for o in worker]
    return flat, wall, netloc


def _histogram(latencies) -> dict:
    edges_ms = [5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, float("inf")]
    arr = np.asarray(latencies) * 1000.0
    counts, lower = [], 0.0
    for edge in edges_ms:
        counts.append(int(((arr >= lower) & (arr < edge)).sum()))
        lower = edge
    return {
        "unit": "ms",
        "edges": [e if e != float("inf") else "+Inf" for e in edges_ms],
        "counts": counts,
    }


def _latency_stats(latencies) -> dict:
    arr = np.asarray(latencies)
    return {
        "n": int(arr.size),
        "p50_ms": round(float(np.percentile(arr, 50)) * 1000, 2),
        "p95_ms": round(float(np.percentile(arr, 95)) * 1000, 2),
        "max_ms": round(float(arr.max()) * 1000, 2),
        "histogram": _histogram(latencies),
    }


def _scrape(netloc: str, fmt: str = "prometheus"):
    import http.client

    conn = http.client.HTTPConnection(netloc, timeout=30)
    try:
        conn.request("GET", f"/metrics?format={fmt}")
        payload = conn.getresponse().read()
    finally:
        conn.close()
    return payload


def _metric_total(netloc: str, name: str) -> float:
    families = json.loads(_scrape(netloc, "json"))
    family = families.get(name)
    if not family:
        return 0.0
    return sum(s.get("value", s.get("count", 0)) for s in family["samples"])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--videos-per-category", type=int, default=3)
    parser.add_argument("--shots", type=int, default=6)
    parser.add_argument("--clients", type=int, default=6,
                        help="concurrent keep-alive clients per SLO phase")
    parser.add_argument("--requests-per-client", type=int, default=10)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--p95-ms", type=float,
                        default=float(os.environ.get("LOAD_GATE_P95_MS", "2000")),
                        help="client-observed p95 SLO in ms "
                             "(env LOAD_GATE_P95_MS overrides)")
    parser.add_argument("--artifact-dir", default="load-gate")
    args = parser.parse_args(argv)

    from repro.serving import make_async_server
    from repro.sharding import attach_sharded_engine, read_manifest, split_store

    os.makedirs(args.artifact_dir, exist_ok=True)
    report = {"schema": "repro-load-gate/1", "p95_slo_ms": args.p95_ms, "phases": {}}
    failures = []

    # -- phase 1 + 2: latency SLO, solo then sharded --------------------------
    system = _build_system(
        args.videos_per_category, args.shots,
        query_cache_size=0,  # every request does real scoring work
        batch_window_ms=2.0,
        batch_max=8,
    )
    body = system.any_key_frame().encode("ppm")
    print(f"corpus: {system.n_videos()} videos, {system.n_key_frames()} key frames")

    tmp = tempfile.mkdtemp(prefix="load-gate-")
    shard_dir = os.path.join(tmp, "shards")
    split_store(system.feature_store, shard_dir, args.shards)
    _, shard_paths = read_manifest(shard_dir)

    for phase, prepare in (
        ("solo", lambda: None),
        (f"shards{args.shards}", lambda: attach_sharded_engine(system, shard_paths)),
    ):
        prepare()
        server = make_async_server(system)
        try:
            outcomes, wall, netloc = _run_phase(
                server, body, args.clients, args.requests_per_client
            )
            scrape = _scrape(netloc)
        finally:
            server.stop()
        statuses = [s for s, _, _ in outcomes]
        latencies = [lat for _, lat, _ in outcomes]
        stats = _latency_stats(latencies)
        stats["ops_per_sec"] = round(len(outcomes) / wall, 2)
        stats["statuses"] = sorted(set(statuses))
        report["phases"][phase] = stats
        with open(os.path.join(args.artifact_dir, f"metrics-{phase}.prom"), "wb") as fh:
            fh.write(scrape)
        print(f"{phase:10s} {len(outcomes)} requests  p50 {stats['p50_ms']:7.1f}ms  "
              f"p95 {stats['p95_ms']:7.1f}ms  {stats['ops_per_sec']:7.1f} ops/s")
        if any(s != 200 for s in statuses):
            failures.append(f"{phase}: non-200 responses {sorted(set(statuses))}")
        if stats["p95_ms"] > args.p95_ms:
            failures.append(
                f"{phase}: p95 {stats['p95_ms']}ms over the {args.p95_ms}ms SLO"
            )

    engine = system.engine
    system.close()
    if hasattr(engine, "close"):
        engine.close()

    # -- phase 3: overload sheds 429, never 5xx, counters reconcile -----------
    overload_system = _build_system(
        2, 3,
        query_cache_size=0,
        serving_queue_limit=4,
        serving_degrade_depth=0,
        batch_window_ms=200.0,
        batch_max=2,
    )
    overload_body = overload_system.any_key_frame().encode("ppm")
    server = make_async_server(overload_system)
    try:
        outcomes, wall, netloc = _run_phase(server, overload_body, 12, 4)
        shed_total = _metric_total(netloc, "repro_serving_shed_total")
        scrape = _scrape(netloc)
    finally:
        server.stop()
        overload_system.close()
    statuses = [s for s, _, _ in outcomes]
    rejected = [o for o in outcomes if o[0] == 429]
    missing_retry_after = [o for o in rejected if not o[2] or int(o[2]) < 1]
    stats = {
        "requests": len(outcomes),
        "ok": statuses.count(200),
        "shed": len(rejected),
        "server_shed_total": shed_total,
        "statuses": sorted(set(statuses)),
        "latency": _latency_stats([lat for _, lat, _ in outcomes]),
    }
    report["phases"]["overload"] = stats
    with open(os.path.join(args.artifact_dir, "metrics-overload.prom"), "wb") as fh:
        fh.write(scrape)
    print(f"overload   {len(outcomes)} requests  {stats['ok']} ok  "
          f"{stats['shed']} shed (server counted {shed_total:.0f})")
    if not set(statuses) <= {200, 429}:
        failures.append(f"overload: unexpected statuses {sorted(set(statuses))}")
    if not rejected:
        failures.append("overload: burst never tripped admission control")
    if missing_retry_after:
        failures.append(f"overload: {len(missing_retry_after)} 429s lack Retry-After")
    if shed_total != len(rejected):
        failures.append(
            f"overload: server shed counter {shed_total:.0f} != "
            f"client-observed 429s {len(rejected)}"
        )

    report["passed"] = not failures
    report["failures"] = failures
    with open(os.path.join(args.artifact_dir, "load-gate-report.json"), "w",
              encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    shutil.rmtree(tmp, ignore_errors=True)

    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    print("load gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
