#!/usr/bin/env bash
# One-shot quality gate: reprolint + ruff + mypy + tier-1 pytest (with a
# coverage floor when pytest-cov is installed).
#
# Usage: scripts/check.sh [--fast]
#   --fast  skip the pytest suite (lint/type checks only)
#
# ruff and mypy are optional dependencies.  Locally, a missing tool is
# reported as skipped; in CI (the CI environment variable is set, as on
# GitHub Actions) a missing optional tool is still a skip -- CI installs
# them via the dev extra -- but any *installed* tool that fails always
# fails the gate, and a skip is called out loudly so a broken install
# cannot silently drop a gate.

set -u
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

fast=0
[ "${1:-}" = "--fast" ] && fast=1
in_ci=${CI:+1}

gate_names=""

step() {
    printf '\n== %s ==\n' "$1"
}

# record <gate> <status: ok|FAIL|skip>
record() {
    gate_names="$gate_names $1"
    eval "status_$1=\"$2\""
}

step "reprolint (repro lint src/repro)"
if python -m repro.analysis src/repro; then
    record reprolint ok
else
    record reprolint FAIL
fi

# SARIF report for code-scanning upload; emission failure fails the gate
# (a missing report would silently drop CI annotations)
step "reprolint SARIF report"
if python -m repro.analysis --format sarif --output reprolint.sarif src/repro || [ -s reprolint.sarif ]; then
    echo "wrote reprolint.sarif"
    record sarif ok
else
    record sarif FAIL
fi

# autofixer dry run: fails when `repro lint --fix` would change anything,
# so mechanical debt (mutable defaults, stale __all__, unused imports)
# never lands -- run `repro lint --fix src/repro` locally to clear it
step "reprolint autofix dry run (repro lint --diff src/repro)"
if python -m repro.analysis --diff src/repro; then
    record autofix ok
else
    record autofix FAIL
fi

step "ruff"
if command -v ruff >/dev/null 2>&1; then
    if ruff check src/repro; then
        record ruff ok
    else
        record ruff FAIL
    fi
else
    echo "ruff: not installed, skipped"
    record ruff skip
fi

step "mypy"
if command -v mypy >/dev/null 2>&1; then
    if mypy src/repro; then
        record mypy ok
    else
        record mypy FAIL
    fi
else
    echo "mypy: not installed, skipped"
    record mypy skip
fi

if [ "$fast" -eq 0 ]; then
    # coverage rides on the tier-1 run when pytest-cov is installed (it is
    # in the CI dev extra; the offline container may not have it) -- the
    # suite is not run twice.  COV_FLOOR is the --cov-fail-under floor.
    cov_args=""
    if python -c "import pytest_cov" >/dev/null 2>&1; then
        cov_floor="${COV_FLOOR:-70}"
        cov_args="--cov=repro --cov-report=term --cov-report=html --cov-fail-under=$cov_floor"
        echo "coverage: enabled (floor ${cov_floor}%)"
    else
        echo "coverage: pytest-cov not installed, floor skipped"
    fi

    step "pytest (tier-1)"
    # shellcheck disable=SC2086
    if python -m pytest -x -q $cov_args; then
        record pytest ok
        if [ -n "$cov_args" ]; then record coverage ok; else record coverage skip; fi
    else
        record pytest FAIL
        if [ -n "$cov_args" ]; then record coverage FAIL; else record coverage skip; fi
    fi

    step "pytest (observability group)"
    if python -m pytest -q tests/obs tests/web/test_obs_endpoints.py; then
        record obs_tests ok
    else
        record obs_tests FAIL
    fi

    step "observability overhead (instrumented vs disabled)"
    if python scripts/check_obs_overhead.py; then
        record obs_overhead ok
    else
        record obs_overhead FAIL
    fi
else
    record pytest skip
    record coverage skip
    record obs_tests skip
    record obs_overhead skip
fi

# -- summary: one line per gate, plus the one-line table ---------------------
step "summary"
failures=0
skips=0
summary_line=""
for gate in $gate_names; do
    eval "status=\$status_$gate"
    printf '%-10s %s\n' "$gate" "$status"
    summary_line="$summary_line $gate=$status"
    [ "$status" = "FAIL" ] && failures=$((failures + 1))
    [ "$status" = "skip" ] && skips=$((skips + 1))
done
printf 'gates:%s\n' "$summary_line"

if [ -n "$in_ci" ] && [ "$skips" -gt 0 ] && [ "$fast" -eq 0 ]; then
    echo "warning: $skips optional gate(s) skipped in CI (tool not installed)"
fi

if [ "$failures" -eq 0 ]; then
    echo "all checks passed"
else
    echo "$failures check(s) FAILED"
fi
exit "$failures"
