#!/usr/bin/env bash
# One-shot quality gate: reprolint + ruff + mypy + tier-1 pytest.
#
# Usage: scripts/check.sh [--fast]
#   --fast  skip the pytest suite (lint/type checks only)
#
# ruff and mypy are optional dependencies: when they are not installed
# (e.g. in the offline reproduction container) the corresponding step is
# reported as skipped instead of failing the gate.

set -u
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

fast=0
[ "${1:-}" = "--fast" ] && fast=1

failures=0

step() {
    printf '\n== %s ==\n' "$1"
}

step "reprolint (repro lint src/repro)"
if python -m repro.analysis src/repro; then
    echo "reprolint: OK"
else
    failures=$((failures + 1))
fi

step "ruff"
if command -v ruff >/dev/null 2>&1; then
    if ruff check src/repro; then
        echo "ruff: OK"
    else
        failures=$((failures + 1))
    fi
else
    echo "ruff: not installed, skipped"
fi

step "mypy"
if command -v mypy >/dev/null 2>&1; then
    if mypy src/repro; then
        echo "mypy: OK"
    else
        failures=$((failures + 1))
    fi
else
    echo "mypy: not installed, skipped"
fi

if [ "$fast" -eq 0 ]; then
    step "pytest (tier-1)"
    if python -m pytest -x -q; then
        echo "pytest: OK"
    else
        failures=$((failures + 1))
    fi
fi

step "summary"
if [ "$failures" -eq 0 ]; then
    echo "all checks passed"
else
    echo "$failures check(s) FAILED"
fi
exit "$failures"
