#!/usr/bin/env python
"""CI scatter-gather gate: 4-shard serving must beat 1-shard serving.

Builds a synthetic corpus large enough that distance scoring dominates
the query, splits it into shard snapshots, and times the same
scoring-only query (precomputed vectors, cache off, full scan) three
ways:

- **unsharded** -- the plain single-store engine (the pre-sharding path;
  recorded for context, not gated).
- **shards1**  -- a coordinator over one shard: the same scatter-gather
  machinery, IPC and merge included, with no parallelism.
- **shardsN**  -- a coordinator over ``--shards`` partitions, each with
  its own persistent snapshot-backed worker process.

The gate fails unless every engine returns a **byte-identical** ranking
(frame ids *and* distances, checked unconditionally on every run) and
the N-shard throughput is at least ``--min-speedup`` times the 1-shard
throughput.  ``--min-speedup auto`` (the CI default) scales the bar with
the machine: ``min(3.0, 0.75 * min(shards, cpu_count))`` -- a 4-vCPU CI
runner must deliver the full 3x, while a 1-core box can only be held to
correctness plus bounded overhead.  The run report and the shard
manifest land in ``--artifact-dir`` for upload.

Usage (CI)::

    PYTHONPATH=src python scripts/shard_gate.py --artifact-dir shard-gate
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

import numpy as np


def _build_system(videos_per_category: int, n_shots: int):
    from repro.core.config import SystemConfig
    from repro.core.system import VideoRetrievalSystem
    from repro.video.generator import make_corpus

    corpus = make_corpus(
        videos_per_category=videos_per_category,
        seed=2012,
        width=64,
        height=48,
        n_shots=n_shots,
        frames_per_shot=3,
    )
    system = VideoRetrievalSystem.in_memory(SystemConfig(workers=0))
    for video in corpus:
        system.admin.add_video(video)
    print(f"corpus: {len(corpus)} videos, {system.n_key_frames()} key frames")
    return system


def _timed(fn, repeats: int) -> dict:
    latencies = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        latencies.append(time.perf_counter() - t0)
    arr = np.asarray(latencies)
    p50 = float(np.percentile(arr, 50))
    best = float(arr.min())
    return {
        "repeats": repeats,
        "p50_ms": round(p50 * 1000, 3),
        "best_ms": round(best * 1000, 3),
        "ops_per_sec": round(1.0 / best, 3) if best > 0 else float("inf"),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--videos-per-category", type=int, default=8,
                        help="corpus size knob (5 categories)")
    parser.add_argument("--shots", type=int, default=50,
                        help="shots per video (~1 key frame each)")
    parser.add_argument("--shards", type=int, default=4,
                        help="partitions for the parallel engine")
    parser.add_argument("--repeats", type=int, default=15,
                        help="timed queries per engine; best time wins")
    parser.add_argument("--min-speedup", default="auto",
                        help="required N-shard-vs-1-shard throughput ratio, "
                             "or 'auto' = min(3.0, 0.75 * min(shards, cpus))")
    parser.add_argument("--artifact-dir", default="shard-gate",
                        help="where the report + shard manifest land")
    args = parser.parse_args(argv)

    ncpu = os.cpu_count() or 1
    if args.min_speedup == "auto":
        min_speedup = min(3.0, 0.75 * min(args.shards, ncpu))
    else:
        min_speedup = float(args.min_speedup)

    from repro.sharding import MANIFEST_NAME, ShardedSearchEngine, read_manifest, split_store

    os.makedirs(args.artifact_dir, exist_ok=True)
    system = _build_system(args.videos_per_category, args.shots)
    config = system.config.with_(batch_distances=True, query_cache_size=0)

    # a scoring-only query: vectors precomputed once so every engine does
    # identical per-query work (distances + fusion + top-k), nothing else
    query_image = system.any_key_frame()
    names = list(system.config.features)
    query_vectors = {
        name: system.engine.extractors[name].extract(query_image) for name in names
    }
    top_k = 20

    tmp = tempfile.mkdtemp(prefix="shard-gate-")
    split_store(system.feature_store, os.path.join(tmp, "n"), args.shards)
    split_store(system.feature_store, os.path.join(tmp, "one"), 1)
    _, paths_n = read_manifest(os.path.join(tmp, "n"))
    _, paths_one = read_manifest(os.path.join(tmp, "one"))

    engines = {
        "unsharded": system.engine,
        "shards1": ShardedSearchEngine(config, paths_one),
        f"shards{args.shards}": ShardedSearchEngine(config, paths_n),
    }
    gated = f"shards{args.shards}"
    try:
        # correctness first, unconditionally: every engine must produce the
        # same ranking down to the raw distances (this also warms the
        # persistent shard workers before anything is timed)
        rankings = {
            label: [
                (h.frame_id, h.distance)
                for h in eng.query_with_vectors(query_vectors, top_k=top_k)
            ]
            for label, eng in engines.items()
        }
        if len({json.dumps(r) for r in rankings.values()}) != 1:
            print("FAIL: engines returned different rankings")
            for label, ranking in rankings.items():
                print(f"  {label}: {ranking[:5]} ...")
            return 1

        timings = {
            label: _timed(
                lambda eng=eng: eng.query_with_vectors(query_vectors, top_k=top_k),
                args.repeats,
            )
            for label, eng in engines.items()
        }
    finally:
        for label in ("shards1", gated):
            engines[label].close()
        system.close()

    speedup = timings[gated]["ops_per_sec"] / max(
        1e-9, timings["shards1"]["ops_per_sec"]
    )
    report = {
        "schema": "repro-shard-gate/1",
        "videos_per_category": args.videos_per_category,
        "shots": args.shots,
        "shards": args.shards,
        "cpu_count": ncpu,
        "rankings_identical": True,
        "timings": timings,
        "speedup_vs_shards1": round(speedup, 2),
        "min_speedup": round(min_speedup, 2),
    }
    with open(os.path.join(args.artifact_dir, "shard-gate-report.json"), "w",
              encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    shutil.copy2(
        os.path.join(tmp, "n", MANIFEST_NAME),
        os.path.join(args.artifact_dir, MANIFEST_NAME),
    )

    for label, t in timings.items():
        print(f"{label:10s} best {t['best_ms']:8.1f}ms  p50 {t['p50_ms']:8.1f}ms  "
              f"{t['ops_per_sec']:8.1f} ops/s")
    print(f"scatter-gather speedup: {speedup:.2f}x over 1 shard "
          f"(required >= {min_speedup:.2f}x on {ncpu} cpus)")
    if speedup < min_speedup:
        print("FAIL: sharded serving is not fast enough")
        return 1
    print("shard gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
