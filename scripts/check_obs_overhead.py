#!/usr/bin/env python
"""Gate: instrumented-vs-disabled observability overhead on the query path.

Builds a small in-memory store, then times the same batched frame search
through two engines over identical data:

- ``disabled`` -- the default ``NULL_OBS`` engine (the ``obs_enabled=false``
  fast path: every instrumentation point is one no-op call on a shared
  null object)
- ``enabled``  -- a fully instrumented engine (metrics registry + tracer)

Fails when the enabled path's median latency exceeds the disabled path's
by more than ``--max-overhead`` (a generous bound sized for noisy CI
runners; ``benchmarks/regress.py`` tracks the precise trajectory).

Usage::

    PYTHONPATH=src python scripts/check_obs_overhead.py
    PYTHONPATH=src python scripts/check_obs_overhead.py --max-overhead 0.3
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time
from typing import Callable, List, Optional

from repro.core.config import SystemConfig
from repro.core.search import SearchEngine
from repro.core.system import VideoRetrievalSystem
from repro.obs import Obs
from repro.video.generator import make_corpus


def _median_ms(fn: Callable[[], object], repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - t0) * 1000)
    return statistics.median(samples)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--max-overhead", type=float, default=0.50,
                        help="allowed fractional enabled-vs-disabled slowdown "
                             "(default: %(default)s)")
    parser.add_argument("--videos", type=int, default=5)
    parser.add_argument("--repeats", type=int, default=9)
    parser.add_argument("--seed", type=int, default=2012)
    args = parser.parse_args(argv)

    system = VideoRetrievalSystem.in_memory(SystemConfig(workers=1))
    for video in make_corpus(videos_per_category=1, seed=args.seed,
                             width=64, height=48, n_shots=6,
                             frames_per_shot=3)[: args.videos]:
        system.admin.add_video(video)
    query_config = system.config.with_(batch_distances=True, query_cache_size=0)
    disabled_engine = SearchEngine(query_config, system._store, system._index)
    enabled_engine = SearchEngine(query_config, system._store, system._index,
                                  obs=Obs())
    query = system.any_key_frame()

    def search(engine: SearchEngine) -> Callable[[], object]:
        return lambda: engine.query_frame(query, top_k=10, use_index=False)

    # interleave a warmup pass so neither engine pays first-run costs
    search(disabled_engine)()
    search(enabled_engine)()
    disabled_ms = _median_ms(search(disabled_engine), args.repeats)
    enabled_ms = _median_ms(search(enabled_engine), args.repeats)
    system.close()

    overhead = enabled_ms / max(1e-9, disabled_ms) - 1.0
    print(f"disabled (NULL_OBS) median {disabled_ms:8.2f} ms")
    print(f"enabled (metrics+traces)   {enabled_ms:8.2f} ms")
    print(f"overhead {overhead * 100:+.1f}% (limit {args.max_overhead * 100:.0f}%)")
    if overhead > args.max_overhead:
        print("FAIL: observability overhead above limit")
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
