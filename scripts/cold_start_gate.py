#!/usr/bin/env python
"""CI cold-start gate: mmap snapshot readiness must beat SQL rebuild.

Builds a synthetic durable library, checkpoints it (which writes the
``.snap`` mmap snapshot), then measures *fresh-process* time-to-first-query
two ways:

- **rebuild** -- ``snapshot=off``: ``Database.open`` loads every row and the
  store re-parses every feature string (the pre-snapshot cold start).
- **mmap** -- a read replica (``in_memory`` + ``snapshot_path`` +
  ``snapshot=require``): the process maps the snapshot and serves without
  touching SQL at all.

Each mode runs in its own subprocess (no page cache of Python objects, no
shared interpreter state).  The gate compares the best-of-``--runs``
**time to open** -- process start to ready-to-serve -- and fails unless
mmap is at least ``--min-speedup`` times faster; the first query is then
served by both processes and must rank identically (it is the same work
on both sides, so it validates correctness rather than diluting the
ratio; both timings land in the report).  The snapshot must pass ``repro
snapshot verify``, and ``repro snapshot info --json`` output lands in
``--artifact-dir`` for upload.

Usage (CI)::

    PYTHONPATH=src python scripts/cold_start_gate.py --artifact-dir cold-start
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile

#: child process: open one way, answer one query, report timings + ranking
_CHILD = r"""
import json, sys, time
from repro.core.config import SystemConfig
from repro.core.system import VideoRetrievalSystem
from repro.imaging.image import read_image

mode, library, snap, image_path = sys.argv[1:5]
query = read_image(image_path)
t0 = time.perf_counter()
if mode == "mmap":
    config = SystemConfig(snapshot="require", snapshot_path=snap,
                          query_cache_size=0)
    system = VideoRetrievalSystem.in_memory(config)
else:
    config = SystemConfig(snapshot="off", query_cache_size=0)
    system = VideoRetrievalSystem.open(library, config)
open_seconds = time.perf_counter() - t0
results = system.search(query, top_k=10)
ready_seconds = time.perf_counter() - t0
print(json.dumps({
    "mode": mode,
    "served_from": system.snapshots.served_from,
    "open_seconds": open_seconds,
    "ready_seconds": ready_seconds,
    "ranking": [[h.frame_id, h.distance] for h in results],
}))
system.close()
"""


def _build_library(library: str, videos_per_category: int, n_shots: int) -> str:
    from repro.core.config import SystemConfig
    from repro.core.system import VideoRetrievalSystem
    from repro.video.generator import make_corpus

    corpus = make_corpus(
        videos_per_category=videos_per_category,
        seed=2012,
        width=64,
        height=48,
        n_shots=n_shots,
        frames_per_shot=3,
    )
    system = VideoRetrievalSystem.open(library, SystemConfig(workers=0))
    for video in corpus:
        system.admin.add_video(video)
    system.admin.checkpoint()  # folds the DB WAL and writes the snapshot
    query_path = library + ".query.ppm"
    system.any_key_frame().save(query_path)
    n_frames = system.n_key_frames()
    system.close()
    print(f"library: {len(corpus)} videos, {n_frames} key frames")
    return query_path


def _cold_run(mode: str, library: str, snap: str, image: str) -> dict:
    out = subprocess.run(
        [sys.executable, "-c", _CHILD, mode, library, snap, image],
        capture_output=True,
        text=True,
        check=True,
        env=os.environ,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--videos-per-category", type=int, default=8,
                        help="library size knob (5 categories)")
    parser.add_argument("--shots", type=int, default=25,
                        help="shots per video (~1 key frame each)")
    parser.add_argument("--runs", type=int, default=3,
                        help="cold processes per mode; best time wins")
    parser.add_argument("--min-speedup", type=float, default=10.0,
                        help="required mmap-vs-rebuild readiness ratio")
    parser.add_argument("--artifact-dir", default="cold-start",
                        help="where the snapshot + info JSON + report land")
    args = parser.parse_args(argv)

    os.makedirs(args.artifact_dir, exist_ok=True)
    tmp = tempfile.mkdtemp(prefix="cold-start-")
    library = os.path.join(tmp, "library.rdb")
    query_image = _build_library(library, args.videos_per_category, args.shots)
    snap = library + ".snap"

    # the snapshot must be verifiably intact before we time anything
    repro = [sys.executable, "-m", "repro"]
    subprocess.run(repro + ["snapshot", "verify", snap], check=True)
    info = subprocess.run(
        repro + ["snapshot", "info", snap, "--json"],
        capture_output=True, text=True, check=True,
    ).stdout
    info_path = os.path.join(args.artifact_dir, "snapshot-info.json")
    with open(info_path, "w", encoding="utf-8") as fh:
        fh.write(info)

    runs = {"mmap": [], "rebuild": []}
    for i in range(args.runs):
        for mode in ("rebuild", "mmap"):
            runs[mode].append(_cold_run(mode, library, snap, query_image))
    for mode, expect in (("mmap", "mmap"), ("rebuild", "rebuild")):
        served = {r["served_from"] for r in runs[mode]}
        if served != {expect}:
            print(f"FAIL: {mode} runs served from {served}, expected {expect}")
            return 1
    rankings = {json.dumps(r["ranking"]) for rs in runs.values() for r in rs}
    if len(rankings) != 1:
        print("FAIL: mmap and rebuild processes returned different rankings")
        return 1

    best_mmap = min(r["open_seconds"] for r in runs["mmap"])
    best_rebuild = min(r["open_seconds"] for r in runs["rebuild"])
    speedup = best_rebuild / max(1e-9, best_mmap)
    report = {
        "schema": "repro-cold-start/1",
        "videos_per_category": args.videos_per_category,
        "shots": args.shots,
        "runs": runs,
        "best_open_seconds": {"mmap": best_mmap, "rebuild": best_rebuild},
        "best_ready_seconds": {
            "mmap": min(r["ready_seconds"] for r in runs["mmap"]),
            "rebuild": min(r["ready_seconds"] for r in runs["rebuild"]),
        },
        "speedup": round(speedup, 2),
        "min_speedup": args.min_speedup,
    }
    report_path = os.path.join(args.artifact_dir, "cold-start-report.json")
    with open(report_path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    shutil.copy2(snap, os.path.join(args.artifact_dir, "library.rdb.snap"))

    print(f"cold start (open): rebuild {best_rebuild * 1000:.0f}ms  "
          f"mmap {best_mmap * 1000:.0f}ms  speedup {speedup:.1f}x  "
          f"(required >= {args.min_speedup:.0f}x)")
    if speedup < args.min_speedup:
        print("FAIL: mmap cold start is not fast enough")
        return 1
    print("cold-start gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
