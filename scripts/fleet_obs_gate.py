#!/usr/bin/env python
"""CI fleet-observability gate: distributed traces + shard-labeled metrics.

Builds a synthetic corpus, splits it into ``--shards`` snapshot
partitions, serves queries through the scatter-gather coordinator with
observability ON, and then asserts the whole telemetry contract through
the *web* surface (the same one operators scrape):

- ``GET /metrics`` exposes shard-labeled worker families
  (``repro_worker_queries_total{shard=...}`` and friends) for every
  shard, and each shard's worker query count equals the coordinator's
  own ``repro_shard_queries_total{shard=...,outcome="ok"}`` dispatch
  counter -- the fleet aggregation lost or double-counted nothing.
- ``GET /traces/recent`` returns ONE stitched trace per query whose
  ``search.scatter`` span has exactly one ``shard.score_*`` child per
  shard, every child carrying the root's trace id and the scatter
  span's id as parent.
- ``GET /debug/slow`` captured the queries (the gate runs with a
  microscopic threshold) with their explain payloads attached.

A sample stitched trace and the metrics scrape land in
``--artifact-dir`` for upload, so a broken run can be debugged from the
CI artifacts alone.

Usage (CI)::

    PYTHONPATH=src python scripts/fleet_obs_gate.py --artifact-dir fleet-obs
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
import tempfile


def _fail(message: str) -> int:
    print(f"FAIL: {message}")
    return 1


def _find_spans(node, name):
    found = []
    if node.get("name") == name:
        found.append(node)
    for child in node.get("children", ()):
        found.extend(_find_spans(child, name))
    return found


def _counter_samples(text: str, family: str):
    """``{shard: {other_label_value: count}}`` for one metric family."""
    pattern = re.compile(
        re.escape(family) + r'\{shard="(\d+)"(?:,\w+="([^"]*)")?\} (\S+)'
    )
    out = {}
    for line in text.splitlines():
        m = pattern.match(line)
        if m:
            out.setdefault(int(m.group(1)), {})[m.group(2)] = float(m.group(3))
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--videos-per-category", type=int, default=2,
                        help="corpus size knob (5 categories)")
    parser.add_argument("--shards", type=int, default=4,
                        help="partitions for the scatter-gather engine")
    parser.add_argument("--queries", type=int, default=3,
                        help="distinct sharded queries to run")
    parser.add_argument("--artifact-dir", default="fleet-obs",
                        help="where the sample trace + scrape land")
    args = parser.parse_args(argv)

    from repro.core.config import SystemConfig
    from repro.core.system import VideoRetrievalSystem
    from repro.sharding import attach_sharded_engine, read_manifest, split_store
    from repro.video.generator import make_corpus
    from repro.web.api import CbvrApi

    os.makedirs(args.artifact_dir, exist_ok=True)

    config = SystemConfig(
        workers=0,
        query_cache_size=0,  # every query must reach the shards
        obs_slow_query_ms=0.0001,
        obs_slow_log_size=32,
    )
    system = VideoRetrievalSystem.in_memory(config)
    for video in make_corpus(
        videos_per_category=args.videos_per_category,
        seed=2012, width=64, height=48, n_shots=3, frames_per_shot=3,
    ):
        system.admin.add_video(video)
    print(f"corpus: {system.n_videos()} videos, "
          f"{system.n_key_frames()} key frames, {args.shards} shards")

    tmp = tempfile.mkdtemp(prefix="fleet-obs-")
    split_store(system.feature_store, tmp, args.shards)
    _, shard_paths = read_manifest(tmp)
    attach_sharded_engine(system, shard_paths)
    api = CbvrApi(system)

    try:
        queries = [system.get_key_frame(fid)
                   for fid in system._store.frame_ids()[: args.queries]]
        for image in queries:
            status, _, body = api.handle(
                "POST", "/search", body=image.encode("ppm"),
                query={"explain": "1"},
            )
            if status != 200:
                return _fail(f"/search returned {status}: {body[:200]!r}")
            explain = json.loads(body)["explain"]
            if explain["sharded"]["dispatched"] != args.shards:
                return _fail(f"explain dispatched {explain['sharded']} "
                             f"!= {args.shards} shards")

        # -- stitched traces, through the operator endpoint ----------------
        status, _, body = api.handle("GET", "/traces/recent")
        if status != 200:
            return _fail(f"/traces/recent returned {status}")
        traces = [t for t in json.loads(body)["traces"]
                  if _find_spans(t, "search.scatter")]
        if len(traces) != len(queries):
            return _fail(f"expected {len(queries)} scatter traces, "
                         f"got {len(traces)}")
        for trace in traces:
            (scatter,) = _find_spans(trace, "search.scatter")
            subtrees = [c for c in scatter.get("children", ())
                        if c["name"].startswith("shard.score_")]
            shards_seen = sorted(c["attrs"]["shard"] for c in subtrees)
            if shards_seen != list(range(args.shards)):
                return _fail(f"scatter children cover shards {shards_seen}, "
                             f"want 0..{args.shards - 1}")
            for sub in subtrees:
                if sub.get("trace_id") != trace.get("trace_id"):
                    return _fail(f"shard subtree trace_id {sub.get('trace_id')} "
                                 f"!= root {trace.get('trace_id')}")
                if sub.get("parent_id") != scatter.get("span_id"):
                    return _fail("shard subtree not parented on the scatter span")
        print(f"traces: {len(traces)} stitched, "
              f"{args.shards} shard subtrees each")

        # -- fleet metrics, through the scrape endpoint --------------------
        status, _, body = api.handle("GET", "/metrics")
        if status != 200:
            return _fail(f"/metrics returned {status}")
        scrape = body.decode("utf-8")
        worker = _counter_samples(scrape, "repro_worker_queries_total")
        coord = _counter_samples(scrape, "repro_shard_queries_total")
        if sorted(worker) != list(range(args.shards)):
            return _fail(f"worker families cover shards {sorted(worker)}, "
                         f"want 0..{args.shards - 1}")
        for shard in range(args.shards):
            worker_total = sum(worker.get(shard, {}).values())
            coord_ok = coord.get(shard, {}).get("ok", 0.0)
            if worker_total != coord_ok or coord_ok != float(len(queries)):
                return _fail(
                    f"shard {shard}: worker count {worker_total} vs "
                    f"coordinator ok {coord_ok} vs {len(queries)} queries"
                )
        for family in ("repro_worker_query_seconds_count",
                       "repro_worker_rows_scored_count"):
            if f'{family}{{shard="0"' not in scrape:
                return _fail(f"{family} missing from the scrape")
        print(f"metrics: per-shard worker counts == coordinator dispatches "
              f"== {len(queries)}")

        # -- slow log ------------------------------------------------------
        status, _, body = api.handle("GET", "/debug/slow")
        if status != 200:
            return _fail(f"/debug/slow returned {status}")
        slow = json.loads(body)["queries"]
        if len([q for q in slow if q["kind"] == "frame"]) != len(queries):
            return _fail(f"slow log holds {len(slow)} entries, "
                         f"want {len(queries)} frame queries")
        if any("explain" not in q for q in slow):
            return _fail("slow-log entries are missing explain payloads")
        print(f"slow log: {len(slow)} entries with explain payloads")

        # -- artifacts -----------------------------------------------------
        with open(os.path.join(args.artifact_dir, "sample-trace.json"), "w",
                  encoding="utf-8") as fh:
            json.dump(traces[0], fh, indent=2, sort_keys=True)
            fh.write("\n")
        with open(os.path.join(args.artifact_dir, "metrics-scrape.txt"), "w",
                  encoding="utf-8") as fh:
            fh.write(scrape)
    finally:
        system.close()

    print("fleet obs gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
