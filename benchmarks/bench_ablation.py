"""T1-abl -- ablations of the design choices DESIGN.md calls out.

Each ablation reuses the session corpus and reports precision@20 under a
design variant:

1. fusion weights: equal vs precision-weighted (weights from a held-out
   query sample) vs best-single-feature;
2. index pruning on vs off;
3. key-frame threshold sweep (how many key frames survive per video);
4. DP sequence similarity vs best-single-key-frame matching for video
   queries.
"""

import numpy as np
import pytest

from repro.core.config import TABLE1_FEATURES
from repro.eval.metrics import precision_at_k
from repro.eval.table1 import run_table1
from repro.video.generator import VideoSpec, generate_video
from repro.video.keyframes import KeyFrameExtractor


def _precision_at_20(system, gt, use_index=None, features=None, n_queries=15):
    store = system._store
    ids = store.frame_ids()
    step = max(1, len(ids) // n_queries)
    precisions = []
    for fid in ids[::step]:
        query = system.get_key_frame(fid)
        results = system.search(query, top_k=21, use_index=use_index, features=features)
        ranked = [h.frame_id for h in results if h.frame_id != fid][:20]
        precisions.append(precision_at_k(gt.relevance_list(fid, ranked), 20))
    return float(np.mean(precisions))


class TestFusionAblation:
    def test_equal_vs_weighted_vs_single(self, benchmark, eval_setup):
        system, gt = eval_setup
        res = benchmark.pedantic(
            lambda: run_table1(
                system=system, ground_truth=gt, queries_per_category=3, cutoffs=(20,),
            ),
            rounds=1, iterations=1,
        )
        singles = {m: res.precision[m][20] for m in TABLE1_FEATURES}
        combined = res.precision["combined"][20]
        best_single = max(singles.values())

        print("\n=== Fusion ablation (precision@20) ===")
        for m, p in sorted(singles.items(), key=lambda kv: -kv[1]):
            print(f"  single {m:8s}: {p:.3f}")
        print(f"  best single   : {best_single:.3f}")
        print(f"  equal fusion  : {combined:.3f}")
        # fusion must at least be competitive with the best single feature
        assert combined >= best_single - 0.08


class TestIndexAblation:
    def test_index_on_off(self, benchmark, eval_setup):
        system, gt = eval_setup
        p_on, p_off = benchmark.pedantic(
            lambda: (
                _precision_at_20(system, gt, use_index=True),
                _precision_at_20(system, gt, use_index=False),
            ),
            rounds=1, iterations=1,
        )
        print(f"\n=== Index ablation === precision@20 on={p_on:.3f} off={p_off:.3f}")
        # the coarse gray-range pruning costs precision (~0.2@20 measured);
        # the ablation records the gap rather than hiding it
        assert p_on >= p_off - 0.3
        assert p_on > 0.4


class TestKeyframeThresholdSweep:
    @pytest.mark.parametrize("threshold", [200.0, 800.0, 2400.0])
    def test_keyframe_counts(self, benchmark, threshold, small_clip):
        extractor = KeyFrameExtractor(threshold=threshold, base_size=150)
        kept = benchmark(lambda: extractor.extract(list(small_clip.frames)))
        print(f"threshold {threshold:7.0f}: {len(kept)} key frames "
              f"of {small_clip.n_frames}")
        assert 1 <= len(kept) <= small_clip.n_frames

    def test_threshold_monotone(self, benchmark, small_clip):
        """Higher thresholds never keep more key frames."""
        frames = list(small_clip.frames)
        counts = benchmark.pedantic(
            lambda: [
                len(KeyFrameExtractor(threshold=t, base_size=150).extract(frames))
                for t in (100.0, 400.0, 800.0, 1600.0, 1e9)
            ],
            rounds=1, iterations=1,
        )
        assert counts == sorted(counts, reverse=True)
        assert counts[-1] == 1


class TestSequenceAblation:
    def test_dtw_vs_best_frame_video_retrieval(self, benchmark, eval_setup):
        """Compare DP sequence alignment against matching on the single best
        key frame, for fresh clips of every category."""
        system, _gt = eval_setup

        def sweep():
            hits_dtw = hits_frame = total = 0
            for i, category in enumerate(("sports", "cartoon", "news", "movies", "elearning")):
                clip = generate_video(
                    VideoSpec(category=category, seed=5000 + i, n_shots=2, frames_per_shot=5)
                )
                matches = system.search_by_video(clip, top_k=3)
                hits_dtw += sum(1 for m in matches if m.category == category)
                # best-single-frame baseline: query with the clip's first key frame
                kf = KeyFrameExtractor(base_size=150).extract(list(clip.frames))
                results = system.search(kf[0][1], top_k=30)
                top_videos = results.video_ids()[:3]
                by_video = {r.video_id: r.category for r in results}
                hits_frame += sum(1 for v in top_videos if by_video[v] == category)
                total += 3
            return hits_dtw, hits_frame, total

        hits_dtw, hits_frame, total = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print(f"\n=== Video-query ablation === DTW {hits_dtw}/{total} vs "
              f"best-frame {hits_frame}/{total} same-category in top 3")
        # DP over the whole sequence should not be worse than one frame
        assert hits_dtw >= hits_frame - 1


class TestExtendedFeatureSet:
    def test_ehd_augmented_combined(self, benchmark):
        """Extension ablation: does adding the 80-dim edge histogram to the
        six paper features change the combined ranking's precision@20?

        Uses its own (smaller) corpus because the feature set is fixed at
        ingest time."""
        from repro.core.config import SystemConfig
        from repro.eval.table1 import build_table1_system, run_table1

        def sweep():
            out = {}
            for label, features in (
                ("paper-6", TABLE1_FEATURES),
                ("paper-6 + ehd", TABLE1_FEATURES + ("ehd",)),
            ):
                system, gt = build_table1_system(
                    videos_per_category=4,
                    seed=77,
                    config=SystemConfig(features=features),
                    n_shots=4,
                    frames_per_shot=5,
                )
                res = run_table1(
                    system=system, ground_truth=gt, features=features,
                    queries_per_category=4, cutoffs=(20,), use_index=False,
                )
                out[label] = res.precision["combined"][20]
            return out

        results = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print("\n=== Feature-set extension ablation (precision@20, combined) ===")
        for label, p in results.items():
            print(f"  {label:<14}: {p:.3f}")
        # the extension must not break retrieval; near-parity is expected
        assert results["paper-6 + ehd"] >= results["paper-6"] - 0.1
