"""T1-recall -- the paper's §6 recall claim.

"multiple features produce effective and efficient system as precision
**and recall** values are improved."  Table 1 shows only precision; this
bench measures recall@k and MAP per method over the same protocol and
checks that the combined ranking improves them too.
"""

from repro.eval.prcurves import run_recall


def test_recall_and_map_report(benchmark, eval_setup):
    system, gt = eval_setup
    result = benchmark.pedantic(
        lambda: run_recall(system, gt, queries_per_category=6, use_index=False),
        rounds=1,
        iterations=1,
    )
    print("\n=== Recall@k and MAP (full scan, category ground truth) ===")
    print(result.to_text())
    print("combined wins MAP:", result.combined_wins_map())

    # the paper's claim: the combination improves recall as well
    singles = [m for m in result.methods if m != "combined"]
    best_single_map = max(result.mean_ap[m] for m in singles)
    assert result.mean_ap["combined"] >= best_single_map - 0.02
    for k in result.cutoffs:
        best_single_recall = max(result.recall[m][k] for m in singles)
        assert result.recall["combined"][k] >= best_single_recall - 0.05
    # recall must grow with k for every method
    for m in result.methods:
        values = [result.recall[m][k] for k in sorted(result.cutoffs)]
        assert values == sorted(values)
