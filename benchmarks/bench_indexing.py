"""Experiment F7 -- the §4.2 range-finder index (Figure 7's tree).

Reports what the paper's indexing tree delivers in practice: bucket
occupancy per level, the pruning factor (fraction of the corpus excluded
per query), the recall retained after pruning, and the wall-clock speedup
of an indexed query over a full scan.
"""

import pytest

from repro.eval.metrics import precision_at_k


def test_index_occupancy_report(benchmark, eval_system):
    """Print the Figure 7 tree as actually populated by the corpus."""
    stats = benchmark.pedantic(eval_system.index_stats, rounds=1, iterations=1)
    print(f"\n=== Range-finder index occupancy ===")
    print(f"entries: {stats.n_entries}, buckets: {stats.n_buckets}, "
          f"mean bucket size: {stats.mean_bucket_size:.1f}")
    by_level = {}
    for bucket, size in sorted(stats.bucket_sizes.items()):
        by_level.setdefault(bucket.level, []).append((bucket, size))
    for level in sorted(by_level):
        row = ", ".join(f"[{b.min},{b.max}]:{n}" for b, n in by_level[level])
        print(f"  level {level}: {row}")
    assert stats.n_buckets >= 2  # the corpus must spread over the tree


def test_pruning_and_recall(benchmark, eval_system, eval_ground_truth):
    """Pruning factor and the retrieval quality retained under pruning."""
    store = eval_system._store
    query_ids = store.frame_ids()[::5]

    def sweep():
        pruned_fractions = []
        p_indexed, p_full = [], []
        for fid in query_ids:
            query = eval_system.get_key_frame(fid)
            r_idx = eval_system.search(query, top_k=21, use_index=True)
            r_all = eval_system.search(query, top_k=21, use_index=False)
            pruned_fractions.append(r_idx.pruning_fraction)
            ranked_idx = [h.frame_id for h in r_idx if h.frame_id != fid][:20]
            ranked_all = [h.frame_id for h in r_all if h.frame_id != fid][:20]
            p_indexed.append(
                precision_at_k(eval_ground_truth.relevance_list(fid, ranked_idx), 20)
            )
            p_full.append(
                precision_at_k(eval_ground_truth.relevance_list(fid, ranked_all), 20)
            )
        return pruned_fractions, p_indexed, p_full

    pruned_fractions, p_indexed, p_full = benchmark.pedantic(sweep, rounds=1, iterations=1)
    mean_pruned = sum(pruned_fractions) / len(pruned_fractions)
    mp_idx = sum(p_indexed) / len(p_indexed)
    mp_full = sum(p_full) / len(p_full)
    print(f"\n=== Index pruning ({len(query_ids)} queries) ===")
    print(f"mean corpus fraction pruned: {mean_pruned:.1%}")
    print(f"precision@20 with index:    {mp_idx:.3f}")
    print(f"precision@20 full scan:     {mp_full:.3f}")
    # The §4.2 index is a coarse gray-range filter: it excludes a large
    # fraction of the corpus per query but also loses some same-category
    # frames whose intensity distribution differs (measured cost here is
    # ~0.2 precision@20 for ~60% pruning -- recorded in EXPERIMENTS.md).
    assert mean_pruned > 0.2, "index should prune a meaningful fraction"
    assert mp_idx >= mp_full - 0.3, "pruning cost exceeded the documented band"
    assert mp_idx > 0.4, "indexed retrieval must stay far above the 0.2 chance level"


def test_indexed_query_speed(benchmark, eval_system):
    query = eval_system.any_key_frame()
    benchmark(lambda: eval_system.search(query, top_k=20, use_index=True))


def test_full_scan_query_speed(benchmark, eval_system):
    query = eval_system.any_key_frame()
    benchmark(lambda: eval_system.search(query, top_k=20, use_index=False))
