"""Experiment T1 -- the paper's Table 1.

Regenerates "average precision at 20, 30, 50 and 100 retrieved frames" for
every individual feature and the combined fusion, printing the measured
table next to the paper's reported values.  Run with ``-s`` to see the
table; ``--full-scale`` uses the paper-sized corpus.

Expected shape (§5, Table 1): combined >= every single feature at every
cutoff; precision decreases with the cutoff; texture features (Gabor,
Tamura) lead the singles; the plain histogram trails.
"""

import pytest

from repro.eval.table1 import PAPER_TABLE1, run_table1
from repro.eval.userstudy import JudgePanel


def test_table1_report(benchmark, eval_setup):
    """Regenerate (and time) Table 1, print it, check the paper's claims."""
    system, gt = eval_setup
    eval_system = system
    table1_result = benchmark.pedantic(
        lambda: run_table1(
            system=system,
            ground_truth=gt,
            queries_per_category=6,
            judge_panel=JudgePanel(n_judges=3, error_rate=0.05, seed=99),
            cutoffs=(20, 30, 50, 100),
        ),
        rounds=1,
        iterations=1,
    )
    print("\n=== Table 1: average precision at 20/30/50/100 frames ===")
    print(f"corpus: {eval_system.n_videos()} videos, "
          f"{eval_system.n_key_frames()} key frames, "
          f"{table1_result.n_queries} queries\n")
    print(table1_result.to_text(paper=PAPER_TABLE1))
    print("\ncombined wins at:", table1_result.combined_wins())
    print("monotone decreasing:", table1_result.monotone_decreasing())

    # uncertainty around the headline cell, and the paired comparison the
    # paper never reports
    mean, low, high = table1_result.confidence_interval("combined", 20)
    singles = [m for m in table1_result.methods if m != "combined"]
    best_single = max(singles, key=lambda m: table1_result.precision[m][20])
    p = table1_result.paired_pvalue("combined", best_single, 20)
    print(f"combined @20: {mean:.3f} [95% CI {low:.3f}, {high:.3f}]; "
          f"paired-bootstrap p(combined <= {best_single}) = {p:.3f}")

    # Shape assertions (the paper's headline claims)
    wins = table1_result.combined_wins()
    assert sum(wins.values()) >= 3, f"combined must win at most cutoffs: {wins}"
    assert all(table1_result.monotone_decreasing().values())
    # every method clearly beats the 0.2 chance level at @20
    for m in table1_result.methods:
        assert table1_result.precision[m][20] > 0.3


def test_table1_query_latency(benchmark, eval_system):
    """Time one combined query at evaluation-corpus scale."""
    query = eval_system.any_key_frame()
    result = benchmark(lambda: eval_system.search(query, top_k=100))
    assert len(result) > 0
