#!/usr/bin/env python
"""Benchmark-regression harness: ingest + search throughput on synthetic videos.

Builds a synthetic store, times the two pipeline hot paths the runtime
layer optimizes (ingest fan-out, batched distance scoring), and writes
``BENCH_throughput.json`` so successive PRs leave a perf trajectory:

- **ingest**   -- full admin pipeline per video (ops/sec, p50/p95 latency)
- **query_frame**   -- frame search, scalar per-record loop vs batched matrix
- **query_vectors** -- scoring-only re-rank (the relevance-feedback path)
- **query_video**   -- clip-to-clip DP search, scalar vs batched
- **ann_query_frame** -- IVF candidate index + exact re-rank vs the PR 2
  brute-force batched path (reference extraction, no ANN), with a
  recall@10-vs-brute-force column
- **cache_hit** -- repeated identical query served from the LRU result cache
- **obs_overhead** -- the same frame search with full observability
  (metrics + tracing) vs the ``obs_enabled=false`` null-object fast path
- **cold_start** -- open-a-durable-library-and-answer-one-query, the mmap
  snapshot path (``snapshot=require``) vs the SQL rebuild path
  (``snapshot=off``); the CI cold-start lane gates on the same ratio
- **scatter_gather** -- the same scoring-only query served by a 4-shard
  scatter-gather coordinator vs the single-store engine; rankings are
  byte-identical (asserted here and gated by ``scripts/shard_gate.py``),
  only the throughput trajectory is tracked
- **concurrent_serving** -- sustained ops/sec through the asyncio
  front-end over real sockets at a fixed concurrent-client count,
  micro-batching on (coalesced ``query_batch`` calls) vs off
  (``batch_max=1``); the overload/SLO gate lives in
  ``scripts/load_gate.py``

Usage::

    PYTHONPATH=src python benchmarks/regress.py            # full run (~2 min)
    PYTHONPATH=src python benchmarks/regress.py --quick    # CI smoke (~30 s)
    PYTHONPATH=src python benchmarks/regress.py --baseline BENCH_throughput.json

The ``scalar`` columns run the pre-PR code path (``batch_distances=False``,
one worker); ``speedup`` is scalar p50 / batched p50.  With ``--baseline``
the run compares its ops/sec against a previous JSON and reports
regressions beyond ``--tolerance``; ``--strict`` turns those into a
non-zero exit (the CI regression gate).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.config import SystemConfig
from repro.core.search import SearchEngine
from repro.core.system import VideoRetrievalSystem
from repro.imaging import accel
from repro.obs import Obs
from repro.video.generator import VideoSpec, generate_video, make_corpus

#: metrics compared against a --baseline file (higher is better)
_TRACKED = [
    ("ingest", "videos_per_sec"),
    ("query_frame", "batched", "ops_per_sec"),
    ("query_vectors", "batched", "ops_per_sec"),
    ("query_video", "batched", "ops_per_sec"),
    ("ann_query_frame", "ann", "ops_per_sec"),
    ("cache_hit", "hit", "ops_per_sec"),
    ("obs_overhead", "disabled", "ops_per_sec"),
    ("cold_start", "mmap", "ops_per_sec"),
    ("scatter_gather", "shards4", "ops_per_sec"),
    ("concurrent_serving", "batched", "ops_per_sec"),
]


def _timed(fn: Callable[[], object], repeats: int) -> Dict[str, float]:
    """Run ``fn`` ``repeats`` times; p50/p95 latency (ms) and ops/sec."""
    latencies = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        latencies.append(time.perf_counter() - t0)
    arr = np.asarray(latencies)
    p50 = float(np.percentile(arr, 50))
    return {
        "repeats": repeats,
        "latency_ms": {
            "p50": round(p50 * 1000, 3),
            "p95": round(float(np.percentile(arr, 95)) * 1000, 3),
        },
        "ops_per_sec": round(1.0 / p50, 3) if p50 > 0 else float("inf"),
    }


def _serving_drill(
    server, body: bytes, clients: int, per_client: int
) -> Dict[str, object]:
    """Hammer a started asyncio server with keep-alive clients; ops/sec."""
    import http.client

    base = server.start_in_thread()
    netloc = base.split("//", 1)[1]
    results: List[Optional[List]] = [None] * clients

    def drill(slot: int) -> None:
        conn = http.client.HTTPConnection(netloc, timeout=60)
        local = []
        try:
            for _ in range(per_client):
                t0 = time.perf_counter()
                conn.request("POST", "/search?top_k=20", body=body)
                response = conn.getresponse()
                response.read()
                local.append((response.status, time.perf_counter() - t0))
        finally:
            conn.close()
        results[slot] = local

    threads = [
        threading.Thread(target=drill, args=(i,)) for i in range(clients)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    flat = [o for worker in results if worker for o in worker]
    arr = np.asarray([lat for _, lat in flat])
    return {
        "requests": len(flat),
        "errors": sum(1 for status, _ in flat if status != 200),
        "ops_per_sec": round(len(flat) / wall, 3),
        "latency_ms": {
            "p50": round(float(np.percentile(arr, 50)) * 1000, 3),
            "p95": round(float(np.percentile(arr, 95)) * 1000, 3),
        },
    }


def run_benchmarks(
    n_videos: int,
    n_shots: int,
    frames_per_shot: int,
    repeats: int,
    workers: int,
    seed: int,
) -> Dict[str, object]:
    width, height = 64, 48
    corpus = make_corpus(
        videos_per_category=-(-n_videos // 5),  # 5 categories in the generator
        seed=seed,
        width=width,
        height=height,
        n_shots=n_shots,
        frames_per_shot=frames_per_shot,
    )[:n_videos]

    # -- ingest ---------------------------------------------------------------
    system = VideoRetrievalSystem.in_memory(SystemConfig(workers=workers))
    per_video = []
    t_total0 = time.perf_counter()
    for video in corpus:
        t0 = time.perf_counter()
        system.admin.add_video(video)
        per_video.append(time.perf_counter() - t0)
    ingest_seconds = time.perf_counter() - t_total0
    n_keyframes = system.n_key_frames()
    arr = np.asarray(per_video)
    ingest = {
        "videos": len(corpus),
        "frames": sum(v.n_frames for v in corpus),
        "keyframes": n_keyframes,
        "workers": workers,
        "seconds": round(ingest_seconds, 3),
        "videos_per_sec": round(len(corpus) / ingest_seconds, 3),
        "keyframes_per_sec": round(n_keyframes / ingest_seconds, 3),
        "latency_ms": {
            "p50": round(float(np.percentile(arr, 50)) * 1000, 3),
            "p95": round(float(np.percentile(arr, 95)) * 1000, 3),
        },
    }
    print(
        f"ingest    {len(corpus)} videos, {n_keyframes} key frames in "
        f"{ingest_seconds:.1f}s ({ingest['keyframes_per_sec']:.1f} kf/s)"
    )

    # two engines over the same store: the pre-PR scalar path vs the
    # batched path (identical rankings, measured by the tests).  The
    # query-result cache is off so repeated timing iterations measure
    # the scoring path, not cache hits.
    scalar_engine = SearchEngine(
        system.config.with_(batch_distances=False, workers=1, query_cache_size=0),
        system._store,
        system._index,
    )
    batched_engine = SearchEngine(
        system.config.with_(batch_distances=True, query_cache_size=0),
        system._store,
        system._index,
    )

    def side_by_side(label: str, make_fn) -> Dict[str, object]:
        scalar = _timed(make_fn(scalar_engine), repeats)
        batched = _timed(make_fn(batched_engine), repeats)
        speedup = round(
            scalar["latency_ms"]["p50"] / max(1e-9, batched["latency_ms"]["p50"]), 2
        )
        print(
            f"{label:13s} scalar p50 {scalar['latency_ms']['p50']:8.1f}ms   "
            f"batched p50 {batched['latency_ms']['p50']:8.1f}ms   "
            f"speedup {speedup:.2f}x"
        )
        return {"scalar": scalar, "batched": batched, "speedup": speedup}

    # -- frame query (full scan: index pruning off to compare scoring) --------
    query_image = system.any_key_frame()
    result = {
        "query_frame": side_by_side(
            "query_frame",
            lambda eng: lambda: eng.query_frame(query_image, top_k=20, use_index=False),
        )
    }

    # -- scoring-only re-rank (relevance feedback's entry point) --------------
    names = list(system.config.features)
    query_vectors = {
        name: batched_engine.extractors[name].extract(query_image) for name in names
    }
    result["query_vectors"] = side_by_side(
        "query_vectors",
        lambda eng: lambda: eng.query_with_vectors(query_vectors, top_k=20),
    )

    # -- video query ----------------------------------------------------------
    clip = generate_video(
        VideoSpec(
            category="sports",
            seed=seed + 4099,
            width=width,
            height=height,
            n_shots=1,
            frames_per_shot=3,
        )
    )
    result["query_video"] = side_by_side(
        "query_video",
        lambda eng: lambda: eng.query_video(clip, top_k=10),
    )

    # -- IVF candidate index vs the PR 2 brute-force batched path -------------
    # "pr2" is the previous release measured in-place: batched scoring over
    # the full store with the reference (pre-accel) extraction pipeline and
    # no candidate index.  "ann" is this release: accelerated extraction +
    # IVF probe + exact re-rank of the probed union.
    ann_cells, ann_nprobe = 16, 3
    ann_engine = SearchEngine(
        system.config.with_(
            batch_distances=True,
            query_cache_size=0,
            ann=True,
            ann_cells=ann_cells,
            ann_nprobe=ann_nprobe,
        ),
        system._store,
        system._index,
    )

    def pr2_query() -> None:
        with accel.reference_paths():
            batched_engine.query_frame(query_image, top_k=20, use_index=False)

    pr2 = _timed(pr2_query, repeats)
    ann = _timed(
        lambda: ann_engine.query_frame(query_image, top_k=20, use_index=False),
        repeats,
    )
    ann_speedup = round(
        pr2["latency_ms"]["p50"] / max(1e-9, ann["latency_ms"]["p50"]), 2
    )

    # recall@10: ANN top-10 vs the brute-force top-10, averaged over a
    # deterministic spread of stored key frames used as queries
    frame_ids = system._store.frame_ids()
    n_queries = min(10, len(frame_ids))
    stride = max(1, len(frame_ids) // n_queries)
    recalls = []
    for fid in frame_ids[::stride][:n_queries]:
        probe_image = system.get_key_frame(fid)
        brute = [h.frame_id for h in
                 batched_engine.query_frame(probe_image, top_k=10, use_index=False)]
        approx = [h.frame_id for h in
                  ann_engine.query_frame(probe_image, top_k=10, use_index=False)]
        recalls.append(len(set(brute) & set(approx)) / max(1, len(brute)))
    recall_at_10 = round(float(np.mean(recalls)), 3) if recalls else 1.0

    result["ann_query_frame"] = {
        "pr2": pr2,
        "ann": ann,
        "speedup_vs_pr2": ann_speedup,
        "recall_at_10": recall_at_10,
        "recall_queries": len(recalls),
        "ann_cells": ann_cells,
        "ann_nprobe": ann_nprobe,
        "ann_stats": ann_engine.ann_stats(),
    }
    print(
        f"ann_query_frame  pr2 p50 {pr2['latency_ms']['p50']:8.1f}ms   "
        f"ann p50 {ann['latency_ms']['p50']:8.1f}ms   "
        f"speedup {ann_speedup:.2f}x   recall@10 {recall_at_10:.3f}"
    )

    # -- query-result cache: repeated identical query ------------------------
    cache_engine = SearchEngine(
        system.config.with_(batch_distances=True, query_cache_size=256),
        system._store,
        system._index,
    )
    t0 = time.perf_counter()
    cache_engine.query_frame(query_image, top_k=20, use_index=False)
    miss_ms = round((time.perf_counter() - t0) * 1000, 3)
    hit = _timed(
        lambda: cache_engine.query_frame(query_image, top_k=20, use_index=False),
        repeats,
    )
    result["cache_hit"] = {
        "miss_latency_ms": miss_ms,
        "hit": hit,
        "speedup_vs_miss": round(miss_ms / max(1e-9, hit["latency_ms"]["p50"]), 2),
        "cache_stats": cache_engine.cache_stats(),
    }
    print(
        f"cache_hit     miss {miss_ms:8.1f}ms   "
        f"hit p50 {hit['latency_ms']['p50']:8.3f}ms   "
        f"speedup {result['cache_hit']['speedup_vs_miss']:.0f}x"
    )

    # -- observability overhead: instrumented vs the disabled fast path -------
    # ``batched_engine`` carries NULL_OBS (the obs_enabled=false path: one
    # shared no-op object per instrumentation point); ``obs_engine`` records
    # full metrics + traces on every query.  The gate tracks the *disabled*
    # throughput so instrumentation can never tax uninstrumented callers.
    obs_engine = SearchEngine(
        system.config.with_(batch_distances=True, query_cache_size=0),
        system._store,
        system._index,
        obs=Obs(),
    )
    disabled = _timed(
        lambda: batched_engine.query_frame(query_image, top_k=20, use_index=False),
        repeats,
    )
    enabled = _timed(
        lambda: obs_engine.query_frame(query_image, top_k=20, use_index=False),
        repeats,
    )
    overhead_pct = round(
        (enabled["latency_ms"]["p50"] / max(1e-9, disabled["latency_ms"]["p50"]) - 1.0)
        * 100,
        2,
    )
    result["obs_overhead"] = {
        "disabled": disabled,
        "enabled": enabled,
        "overhead_pct": overhead_pct,
    }
    print(
        f"obs_overhead  disabled p50 {disabled['latency_ms']['p50']:8.1f}ms   "
        f"enabled p50 {enabled['latency_ms']['p50']:8.1f}ms   "
        f"overhead {overhead_pct:+.1f}%"
    )

    # -- cold start: mmap snapshot open vs SQL rebuild ------------------------
    # A fresh process serving its first query either maps the snapshot
    # (snapshot=require: no feature parsing, no SQL scan) or rebuilds the
    # store from KEY_FRAMES (snapshot=off, the pre-snapshot path).  Both
    # open the same durable library and answer the same query.
    with tempfile.TemporaryDirectory() as tmp:
        library = os.path.join(tmp, "bench.rdb")
        cold_corpus = corpus[: min(len(corpus), 8)]
        durable = VideoRetrievalSystem.open(library, SystemConfig(workers=1))
        for video in cold_corpus:
            durable.admin.add_video(video)
        durable.admin.checkpoint()  # folds the DB WAL and writes the snapshot
        durable.close()

        def cold_open(mode: str) -> Callable[[], None]:
            config = SystemConfig(snapshot=mode, query_cache_size=0)

            def run() -> None:
                cold = VideoRetrievalSystem.open(library, config)
                cold.search(query_image, top_k=20, use_index=False)
                cold.close()

            return run

        rebuild = _timed(cold_open("off"), repeats)
        mmap_open = _timed(cold_open("require"), repeats)
    cold_speedup = round(
        rebuild["latency_ms"]["p50"] / max(1e-9, mmap_open["latency_ms"]["p50"]), 2
    )
    result["cold_start"] = {
        "videos": len(cold_corpus),
        "rebuild": rebuild,
        "mmap": mmap_open,
        "speedup_vs_rebuild": cold_speedup,
    }
    print(
        f"cold_start    rebuild p50 {rebuild['latency_ms']['p50']:8.1f}ms   "
        f"mmap p50 {mmap_open['latency_ms']['p50']:8.1f}ms   "
        f"speedup {cold_speedup:.2f}x"
    )

    # -- scatter-gather: 4-shard coordinator vs the single-store engine -------
    # The same scoring-only query (no per-query extraction, cache off)
    # served both ways.  The coordinator's merge is byte-identical to the
    # single-store ranking -- asserted here on the full top-k -- so the
    # row measures pure serving throughput; the hard >=Nx gate with
    # cpu-aware scaling lives in scripts/shard_gate.py.
    from repro.sharding import ShardedSearchEngine, read_manifest, split_store

    with tempfile.TemporaryDirectory() as tmp:
        split_store(system._store, tmp, 4)
        _, shard_paths = read_manifest(tmp)
        sharded_engine = ShardedSearchEngine(
            system.config.with_(batch_distances=True, query_cache_size=0),
            shard_paths,
        )
        try:
            single_hits = batched_engine.query_with_vectors(query_vectors, top_k=20)
            sharded_hits = sharded_engine.query_with_vectors(query_vectors, top_k=20)
            if [(h.frame_id, h.distance) for h in single_hits] != [
                (h.frame_id, h.distance) for h in sharded_hits
            ]:
                raise AssertionError(
                    "sharded ranking diverged from the single-store ranking"
                )
            single = _timed(
                lambda: batched_engine.query_with_vectors(query_vectors, top_k=20),
                repeats,
            )
            shards4 = _timed(
                lambda: sharded_engine.query_with_vectors(query_vectors, top_k=20),
                repeats,
            )
        finally:
            sharded_engine.close()
    sg_speedup = round(
        single["latency_ms"]["p50"] / max(1e-9, shards4["latency_ms"]["p50"]), 2
    )
    result["scatter_gather"] = {
        "shards": 4,
        "single": single,
        "shards4": shards4,
        "speedup_vs_single": sg_speedup,
        "rankings_identical": True,
    }
    print(
        f"scatter_gather  single p50 {single['latency_ms']['p50']:8.1f}ms   "
        f"4-shard p50 {shards4['latency_ms']['p50']:8.1f}ms   "
        f"speedup {sg_speedup:.2f}x"
    )

    # -- concurrent serving: asyncio front-end, micro-batching on vs off ------
    # Real sockets, fixed concurrent-client count, result cache off so every
    # request does full extraction + scoring.  "unbatched" pins batch_max=1
    # (each request scores alone); "batched" lets the micro-batcher coalesce
    # the concurrent stream into query_batch calls.  Rankings are identical
    # either way (property-tested in tests/serving); this row tracks only
    # sustained throughput.  The SLO/overload gate is scripts/load_gate.py.
    from repro.serving import make_async_server

    serving_clients = 6
    per_client = max(4, repeats * 2)
    system.attach_engine(
        SearchEngine(
            system.config.with_(batch_distances=True, query_cache_size=0),
            system._store,
            system._index,
        )
    )
    body = query_image.encode("ppm")
    base_config = system.config
    serving: Dict[str, object] = {
        "clients": serving_clients,
        "requests_per_client": per_client,
    }
    try:
        for mode, window_ms, batch_max in (
            ("unbatched", 0.0, 1),
            ("batched", 3.0, 8),
        ):
            # the server reads its batcher knobs from system.config at build
            system.config = base_config.with_(
                batch_window_ms=window_ms, batch_max=batch_max
            )
            server = make_async_server(system)
            try:
                serving[mode] = _serving_drill(
                    server, body, serving_clients, per_client
                )
            finally:
                server.stop()
    finally:
        system.config = base_config
    serving["batch_speedup"] = round(
        serving["batched"]["ops_per_sec"]
        / max(1e-9, serving["unbatched"]["ops_per_sec"]),
        2,
    )
    result["concurrent_serving"] = serving
    print(
        f"concurrent_serving  unbatched {serving['unbatched']['ops_per_sec']:7.1f} ops/s   "
        f"batched {serving['batched']['ops_per_sec']:7.1f} ops/s   "
        f"speedup {serving['batch_speedup']:.2f}x"
    )

    result["ingest"] = ingest
    system.close()
    return result


def _lookup(report: Dict[str, object], path) -> Optional[float]:
    node = report
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return float(node) if isinstance(node, (int, float)) else None


def compare_to_baseline(
    report: Dict[str, object], baseline: Dict[str, object], tolerance: float
) -> List[str]:
    """Tracked throughput metrics that regressed beyond ``tolerance``."""
    regressions = []
    for path in _TRACKED:
        now, then = _lookup(report, path), _lookup(baseline, path)
        if now is None or then is None or then <= 0:
            continue
        if now < then * (1.0 - tolerance):
            regressions.append(
                f"{'.'.join(path)}: {now:.2f} ops/s vs baseline {then:.2f} "
                f"(-{(1 - now / then) * 100:.0f}%, tolerance {tolerance * 100:.0f}%)"
            )
    return regressions


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small store / few repeats (CI smoke mode)")
    parser.add_argument("--out", default="BENCH_throughput.json",
                        help="output JSON path (default: %(default)s)")
    parser.add_argument("--videos", type=int, default=None,
                        help="store size (default: 20, quick: 6)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="query repetitions (default: 7, quick: 3)")
    parser.add_argument("--workers", type=int, default=1,
                        help="ingest workers (1 = serial, 0 = auto)")
    parser.add_argument("--seed", type=int, default=2012)
    parser.add_argument("--baseline", default=None,
                        help="previous BENCH_throughput.json to compare against")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="allowed fractional ops/sec drop vs baseline "
                             "(default: %(default)s)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero when a baseline regression is found")
    args = parser.parse_args(argv)

    n_videos = args.videos if args.videos is not None else (6 if args.quick else 20)
    repeats = args.repeats if args.repeats is not None else (3 if args.quick else 7)
    n_shots = 12 if args.quick else 50
    frames_per_shot = 3

    print(
        f"benchmarking: {n_videos} videos x {n_shots} shots x "
        f"{frames_per_shot} frames, {repeats} repeats"
    )
    report: Dict[str, object] = {
        "schema": "repro-bench-throughput/1",
        "config": {
            "quick": args.quick,
            "videos": n_videos,
            "n_shots": n_shots,
            "frames_per_shot": frames_per_shot,
            "repeats": repeats,
            "workers": args.workers,
            "seed": args.seed,
            "python": sys.version.split()[0],
        },
    }
    report.update(
        run_benchmarks(
            n_videos=n_videos,
            n_shots=n_shots,
            frames_per_shot=frames_per_shot,
            repeats=repeats,
            workers=args.workers,
            seed=args.seed,
        )
    )

    exit_code = 0
    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        regressions = compare_to_baseline(report, baseline, args.tolerance)
        report["baseline_regressions"] = regressions
        if regressions:
            print("\nbaseline regressions:")
            for line in regressions:
                print(f"  REGRESSION {line}")
            if args.strict:
                exit_code = 1
        else:
            print("\nno baseline regressions")

    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
