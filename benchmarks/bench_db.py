"""PERF-DB -- the mini relational engine (the Oracle 9i stand-in).

Times the statement mix the retrieval system actually issues: PK-indexed
point selects, LIKE scans, inserts with BLOB parameters, WAL-logged
inserts, and snapshot checkpoint + reopen.
"""

import pytest

from repro.db import Database

N_ROWS = 2000


@pytest.fixture(scope="module")
def populated():
    db = Database()
    db.execute(
        "CREATE TABLE KF (ID NUMBER PRIMARY KEY, NAME VARCHAR2(40), "
        "V_ID NUMBER, FEATURE VARCHAR2(4000))"
    )
    db.create_index("KF", "V_ID")
    for i in range(N_ROWS):
        db.execute(
            "INSERT INTO KF (ID, NAME, V_ID, FEATURE) VALUES (?, ?, ?, ?)",
            (i, f"frame_{i:05d}", i // 10, "0.5 " * 50),
        )
    return db


def test_insert_throughput(benchmark):
    db = Database()
    db.execute("CREATE TABLE T (ID NUMBER PRIMARY KEY, DATA BLOB)")
    counter = iter(range(10**9))

    def insert():
        db.execute("INSERT INTO T (ID, DATA) VALUES (?, ?)", (next(counter), b"x" * 256))

    benchmark(insert)


def test_pk_point_select(benchmark, populated):
    result = benchmark(
        lambda: populated.execute("SELECT * FROM KF WHERE ID = ?", (N_ROWS // 2,))
    )
    assert result.rowcount == 1


def test_secondary_index_select(benchmark, populated):
    result = benchmark(
        lambda: populated.execute("SELECT * FROM KF WHERE V_ID = ?", (37,))
    )
    assert result.rowcount == 10


def test_like_scan(benchmark, populated):
    result = benchmark(
        lambda: populated.execute("SELECT NAME FROM KF WHERE NAME LIKE 'frame_0001%'")
    )
    assert result.rowcount == 10


def test_order_by_limit(benchmark, populated):
    result = benchmark(
        lambda: populated.execute("SELECT ID FROM KF ORDER BY NAME DESC LIMIT 20")
    )
    assert result.rowcount == 20


def test_update_by_predicate(benchmark, populated):
    benchmark(
        lambda: populated.execute("UPDATE KF SET NAME = 'x' WHERE ID = ?", (5,))
    )


def test_wal_logged_insert(benchmark, tmp_path):
    db = Database.open(str(tmp_path / "bench.rdb"))
    db.execute("CREATE TABLE T (ID NUMBER PRIMARY KEY)")
    counter = iter(range(10**9))

    def insert():
        db.execute("INSERT INTO T (ID) VALUES (?)", (next(counter),))

    benchmark.pedantic(insert, rounds=50, iterations=1)
    db.close()


def test_checkpoint_and_reopen(benchmark, tmp_path):
    path = str(tmp_path / "ckpt.rdb")
    db = Database.open(path)
    db.execute("CREATE TABLE T (ID NUMBER PRIMARY KEY, F VARCHAR2(4000))")
    for i in range(500):
        db.execute("INSERT INTO T (ID, F) VALUES (?, ?)", (i, "0.25 " * 100))
    db.checkpoint()
    db.close()

    def reopen():
        d = Database.open(path)
        n = d.execute("SELECT ID FROM T").rowcount
        d.close()
        return n

    assert benchmark.pedantic(reopen, rounds=5, iterations=1) == 500
