"""Experiment F8 -- §5.1's per-algorithm sample outputs (Figure 8).

The paper dumps, for one query image: the range-finder's min/max, the
256-value histogram, 6 GLCM statistics, 60 Gabor values, 18 Tamura values,
the correlogram, the naive vector and the major-region count.  This bench
regenerates each dump (run with ``-s``) and times each extractor on the
same frame.
"""

import pytest

from repro.features import (
    AutoColorCorrelogram,
    GaborTexture,
    GlcmTexture,
    NaiveSignature,
    SimpleColorHistogram,
    SimpleRegionGrowing,
    TamuraTexture,
)
from repro.indexing.rangefinder import RangeFinder
from repro.video.generator import VideoSpec, generate_video

EXTRACTORS = {
    "sch": (SimpleColorHistogram, 256),
    "glcm": (GlcmTexture, 6),
    "gabor": (GaborTexture, 60),
    "tamura": (TamuraTexture, 18),
    "acc": (AutoColorCorrelogram, 256),
    "naive": (NaiveSignature, 75),
    "regions": (SimpleRegionGrowing, 3),
}


@pytest.fixture(scope="module")
def query_frame():
    video = generate_video(
        VideoSpec(category="movies", seed=42, n_shots=1, frames_per_shot=1)
    )
    return video.frames[0]


def test_figure8_dump(benchmark, query_frame):
    """Print every algorithm's output for the sample query frame."""

    def extract_all():
        bucket = RangeFinder().bucket_for_image(query_frame)
        vectors = {name: cls().extract(query_frame) for name, (cls, _n) in EXTRACTORS.items()}
        return bucket, vectors

    bucket, vectors = benchmark.pedantic(extract_all, rounds=1, iterations=1)
    print("\n=== Figure 8: sample query frame outputs ===")
    print(f"HistogramRangeFinder: min = {bucket.min}, max = {bucket.max}")
    for name, (cls, expected_len) in EXTRACTORS.items():
        vector = vectors[name]
        text = vector.to_string()
        head = text if len(text) < 90 else text[:90] + " ..."
        print(f"{name:8s} ({len(vector):3d} values): {head}")
        assert len(vector) == expected_len, f"{name} dimensionality changed"


@pytest.mark.parametrize("name", sorted(EXTRACTORS))
def test_extractor_latency(benchmark, query_frame, name):
    """Per-extractor wall clock on one 128x96 frame."""
    cls, _n = EXTRACTORS[name]
    extractor = cls()
    benchmark(lambda: extractor.extract(query_frame))
