"""Category confusion analysis (extension experiment).

Breaks the Table 1 average down per category: which categories the
low-level features mix up, for the combined ranking and for the weakest
single feature.
"""

from repro.eval.confusion import run_confusion


def test_confusion_report(benchmark, eval_setup):
    system, gt = eval_setup
    result = benchmark.pedantic(
        lambda: run_confusion(system, gt, top_k=10, queries_per_category=6, use_index=False),
        rounds=1,
        iterations=1,
    )
    print("\n=== Category confusion (combined, top-10, row-normalized) ===")
    print(result.to_text())
    print(f"\ndiagonal mean: {result.diagonal_mean():.3f} (chance 0.200)")
    a, b, rate = result.most_confused()
    print(f"most confused: {a} -> {b} ({rate:.3f})")

    assert result.diagonal_mean() > 0.4  # far above the 0.2 chance level
    # every category must retrieve itself more often than any other single
    # category on average
    import numpy as np

    for i in range(len(result.categories)):
        row = result.matrix[i]
        assert row[i] == row.max(), f"{result.categories[i]} retrieves others more"


def test_confusion_weakest_feature(benchmark, eval_setup):
    """The correlogram alone: much flatter diagonal, same matrix mechanics."""
    system, gt = eval_setup
    result = benchmark.pedantic(
        lambda: run_confusion(
            system, gt, top_k=10, queries_per_category=4,
            features=["acc"], use_index=False,
        ),
        rounds=1,
        iterations=1,
    )
    print("\n=== Category confusion (correlogram only) ===")
    print(result.to_text())
    print(f"diagonal mean: {result.diagonal_mean():.3f}")
    assert result.diagonal_mean() > 0.2  # still above chance, but weaker