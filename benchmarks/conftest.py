"""Shared benchmark fixtures.

The evaluation corpus is expensive (minutes of feature extraction), so it
is built once per session at a scale where the paper's cutoffs (@20..@100)
are meaningful: 8 videos x 5 categories x 6 shots -> ~240 key frames.
"""

from __future__ import annotations

import pytest

from repro.eval.table1 import build_table1_system
from repro.video.generator import make_corpus


def pytest_addoption(parser):
    parser.addoption(
        "--full-scale",
        action="store_true",
        default=False,
        help="run benchmarks at the paper's full corpus scale (slower)",
    )


@pytest.fixture(scope="session")
def corpus_scale(request):
    if request.config.getoption("--full-scale"):
        return dict(videos_per_category=12, n_shots=6, frames_per_shot=5)
    return dict(videos_per_category=8, n_shots=6, frames_per_shot=5)


@pytest.fixture(scope="session")
def eval_setup(corpus_scale):
    """(system, ground_truth) with the evaluation corpus ingested."""
    return build_table1_system(seed=2012, **corpus_scale)


@pytest.fixture(scope="session")
def eval_system(eval_setup):
    return eval_setup[0]


@pytest.fixture(scope="session")
def eval_ground_truth(eval_setup):
    return eval_setup[1]


@pytest.fixture(scope="session")
def small_clip():
    """A single short video for micro-benchmarks."""
    return make_corpus(videos_per_category=1, seed=3, n_shots=2, frames_per_shot=6)[0]
