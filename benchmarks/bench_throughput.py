"""PERF -- pipeline throughput micro-benchmarks.

Times the stages behind Figures 9/10's interactive flow: key-frame
extraction, full-video ingest, frame search, video-to-video search, and
RVF encode/decode.
"""

import pytest

from repro.core.system import VideoRetrievalSystem
from repro.video.codec import RvfReader, encode_rvf_bytes
from repro.video.generator import VideoSpec, generate_video
from repro.video.keyframes import KeyFrameExtractor


def test_keyframe_extraction(benchmark, small_clip):
    extractor = KeyFrameExtractor(base_size=150)
    frames = list(small_clip.frames)
    result = benchmark(lambda: extractor.extract(frames))
    assert len(result) >= 1


def test_video_ingest(benchmark, small_clip):
    """Full admin pipeline for one 12-frame clip (fresh system each round)."""

    def ingest():
        system = VideoRetrievalSystem.in_memory()
        system.admin.add_video(small_clip)
        return system

    system = benchmark.pedantic(ingest, rounds=3, iterations=1)
    assert system.n_videos() == 1


def test_frame_search(benchmark, eval_system):
    query = eval_system.any_key_frame()
    benchmark(lambda: eval_system.search(query, top_k=20))


def test_single_feature_search(benchmark, eval_system):
    query = eval_system.any_key_frame()
    benchmark(lambda: eval_system.search(query, features="sch", top_k=20))


def test_video_search(benchmark, eval_system):
    clip = generate_video(
        VideoSpec(category="sports", seed=9999, n_shots=2, frames_per_shot=5)
    )
    result = benchmark.pedantic(
        lambda: eval_system.search_by_video(clip, top_k=5), rounds=3, iterations=1
    )
    assert result


def test_rvf_encode(benchmark, small_clip):
    frames = list(small_clip.frames)
    benchmark(lambda: encode_rvf_bytes(frames))


def test_rvf_decode(benchmark, small_clip):
    data = encode_rvf_bytes(list(small_clip.frames))
    benchmark(lambda: list(RvfReader(data)))
