"""Feature fusion: the paper's "Combined" ranking.

Each feature produces distances on its own scale (an L1 histogram distance
lives in [0, 2]; a naive-signature distance in the thousands), so raw sums
would let one feature dominate.  The scorer therefore normalizes each
feature's distances *per query* to [0, 1] (min-max over the candidate set)
before taking the weighted sum -- the standard "combine various approaches
to take advantage of different levels of representations" recipe the paper
reports in Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Mapping, Sequence

import numpy as np

__all__ = ["FeatureWeights", "CombinedScorer", "normalize_scores"]


def normalize_scores(distances: Sequence[float]) -> np.ndarray:
    """Min-max normalize a distance list to [0, 1].

    A constant list maps to all zeros (every candidate equally good).
    """
    arr = np.asarray(distances, dtype=np.float64)
    if arr.size == 0:
        return arr
    lo, hi = float(arr.min()), float(arr.max())
    if hi - lo < 1e-12:
        return np.zeros_like(arr)
    return (arr - lo) / (hi - lo)


@dataclass(frozen=True)
class FeatureWeights:
    """Non-negative per-feature weights; missing features get weight 0."""

    weights: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, w in self.weights.items():
            if w < 0:
                raise ValueError(f"weight for {name!r} must be non-negative, got {w}")

    @classmethod
    def equal(cls, names: Iterable[str]) -> "FeatureWeights":
        return cls({n: 1.0 for n in names})

    def get(self, name: str) -> float:
        return float(self.weights.get(name, 0.0))

    def active(self) -> List[str]:
        return sorted(n for n, w in self.weights.items() if w > 0)

    def normalized(self) -> "FeatureWeights":
        """Weights rescaled to sum to 1 (requires at least one positive)."""
        total = sum(w for w in self.weights.values() if w > 0)
        if total <= 0:
            raise ValueError("no positive weights to normalize")
        return FeatureWeights({n: w / total for n, w in self.weights.items() if w > 0})


class CombinedScorer:
    """Fuses per-feature distance lists over a fixed candidate set.

    Usage::

        scorer = CombinedScorer(FeatureWeights.equal(["sch", "glcm"]))
        fused = scorer.fuse({"sch": sch_dists, "glcm": glcm_dists})

    ``fuse`` returns one fused distance per candidate, lower = more similar.
    """

    def __init__(self, weights: FeatureWeights):
        if not weights.active():
            raise ValueError("CombinedScorer needs at least one positive weight")
        self.weights = weights.normalized()

    def fuse(self, per_feature: Mapping[str, Sequence[float]]) -> np.ndarray:
        active = self.weights.active()
        missing = [n for n in active if n not in per_feature]
        if missing:
            raise KeyError(f"missing distance lists for features: {missing}")
        lengths = {len(per_feature[n]) for n in active}
        if len(lengths) != 1:
            raise ValueError(f"distance lists have differing lengths: {lengths}")
        (n_candidates,) = lengths
        fused = np.zeros(n_candidates)
        for name in active:
            fused += self.weights.get(name) * normalize_scores(per_feature[name])
        return fused

    def rank(self, per_feature: Mapping[str, Sequence[float]]) -> np.ndarray:
        """Candidate indices sorted best-first by fused distance."""
        fused = self.fuse(per_feature)
        return np.argsort(fused, kind="stable")
