"""Similarity: distance measures, DP sequence alignment, feature fusion.

The paper "use[s] a dynamic programming approach to compute the similarity
between the feature vectors for the query and feature vectors in the
feature database" and fuses multiple features into the "Combined" ranking
that Table 1 shows beating every individual feature.
"""

from repro.similarity.measures import (
    chi_square,
    cosine_distance,
    euclidean,
    histogram_intersection,
    jensen_shannon,
    l1,
    l2,
)
from repro.similarity.dp import align_sequences, dtw_distance, sequence_similarity
from repro.similarity.fusion import CombinedScorer, FeatureWeights, normalize_scores

__all__ = [
    "l1",
    "l2",
    "euclidean",
    "chi_square",
    "cosine_distance",
    "histogram_intersection",
    "jensen_shannon",
    "dtw_distance",
    "align_sequences",
    "sequence_similarity",
    "CombinedScorer",
    "FeatureWeights",
    "normalize_scores",
]
