"""Vector distance measures.

Every measure takes two 1-D float arrays of equal length and returns a
non-negative float (0 for identical inputs).  The per-feature defaults live
on the extractors; these are the building blocks.

Each measure also has a ``*_batch`` variant taking one query vector and a
``(n, d)`` matrix of candidate vectors, returning the ``(n,)`` vector of
distances in one NumPy pass.  The batch variants are the search engine's
hot path; they agree with a per-row scalar loop to floating-point noise.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np

#: anything the measures accept: 1-D arrays or plain float sequences
ArrayLike = Union[np.ndarray, Sequence[float]]

__all__ = [
    "l1",
    "l2",
    "euclidean",
    "chi_square",
    "cosine_distance",
    "histogram_intersection",
    "jensen_shannon",
    "canberra",
    "l1_batch",
    "l2_batch",
    "canberra_batch",
    "chi_square_batch",
    "cosine_distance_batch",
    "histogram_intersection_batch",
    "jensen_shannon_batch",
]


def _pair(a: ArrayLike, b: ArrayLike) -> Tuple[np.ndarray, np.ndarray]:
    va = np.asarray(a, dtype=np.float64).ravel()
    vb = np.asarray(b, dtype=np.float64).ravel()
    if va.shape != vb.shape:
        raise ValueError(f"vector lengths differ: {va.size} vs {vb.size}")
    return va, vb


def l1(a: ArrayLike, b: ArrayLike) -> float:
    """Manhattan distance."""
    va, vb = _pair(a, b)
    return float(np.abs(va - vb).sum())


def l2(a: ArrayLike, b: ArrayLike) -> float:
    """Euclidean distance."""
    va, vb = _pair(a, b)
    return float(np.sqrt(((va - vb) ** 2).sum()))


#: Alias for :func:`l2`.
euclidean = l2


def canberra(a: ArrayLike, b: ArrayLike) -> float:
    """Canberra distance: sum of |a-b| / (|a|+|b|), zero-denominator terms skipped."""
    va, vb = _pair(a, b)
    denom = np.abs(va) + np.abs(vb)
    mask = denom > 1e-12
    return float(np.sum(np.abs(va - vb)[mask] / denom[mask]))


def chi_square(a: ArrayLike, b: ArrayLike) -> float:
    """Chi-square histogram distance: sum of (a-b)^2 / (a+b)."""
    va, vb = _pair(a, b)
    denom = va + vb
    mask = denom > 1e-12
    return float(np.sum((va - vb)[mask] ** 2 / denom[mask]))


def cosine_distance(a: ArrayLike, b: ArrayLike) -> float:
    """1 - cosine similarity; 0 for parallel vectors, up to 2 for opposite."""
    va, vb = _pair(a, b)
    na = np.linalg.norm(va)
    nb = np.linalg.norm(vb)
    if na < 1e-12 or nb < 1e-12:
        return 0.0 if na < 1e-12 and nb < 1e-12 else 1.0
    return float(1.0 - np.dot(va, vb) / (na * nb))


def histogram_intersection(a: ArrayLike, b: ArrayLike) -> float:
    """1 - normalized histogram intersection (a distance in [0, 1])."""
    va, vb = _pair(a, b)
    if np.any(va < 0) or np.any(vb < 0):
        raise ValueError("histogram intersection requires non-negative inputs")
    sa, sb = va.sum(), vb.sum()
    if sa < 1e-12 or sb < 1e-12:
        return 0.0 if sa < 1e-12 and sb < 1e-12 else 1.0
    return float(1.0 - np.minimum(va / sa, vb / sb).sum())


def jensen_shannon(a: ArrayLike, b: ArrayLike) -> float:
    """Jensen-Shannon divergence between L1-normalized distributions (nats)."""
    va, vb = _pair(a, b)
    if np.any(va < 0) or np.any(vb < 0):
        raise ValueError("JSD requires non-negative inputs")
    pa = va / max(1e-12, va.sum())
    pb = vb / max(1e-12, vb.sum())
    m = (pa + pb) / 2.0

    def _kl(p: np.ndarray, q: np.ndarray) -> float:
        mask = p > 0
        return float(np.sum(p[mask] * np.log(p[mask] / np.maximum(q[mask], 1e-300))))

    return 0.5 * _kl(pa, m) + 0.5 * _kl(pb, m)


# -- batch variants -----------------------------------------------------------
#
# One query vector against a (n, d) candidate matrix -> (n,) distances.


def _batch_pair(q: ArrayLike, matrix: ArrayLike) -> Tuple[np.ndarray, np.ndarray]:
    vq = np.asarray(q, dtype=np.float64).ravel()
    m = np.asarray(matrix, dtype=np.float64)
    if m.ndim == 1:
        m = m.reshape(1, -1)
    if m.ndim != 2:
        raise ValueError(f"candidate matrix must be 2-D, got shape {m.shape}")
    if m.shape[1] != vq.size:
        raise ValueError(f"vector lengths differ: {vq.size} vs {m.shape[1]}")
    return vq, m


def l1_batch(q: ArrayLike, matrix: ArrayLike) -> np.ndarray:
    """Row-wise Manhattan distances."""
    vq, m = _batch_pair(q, matrix)
    return np.abs(m - vq).sum(axis=1)


def l2_batch(q: ArrayLike, matrix: ArrayLike) -> np.ndarray:
    """Row-wise Euclidean distances."""
    vq, m = _batch_pair(q, matrix)
    return np.sqrt(((m - vq) ** 2).sum(axis=1))


def canberra_batch(q: ArrayLike, matrix: ArrayLike) -> np.ndarray:
    """Row-wise Canberra distances (zero-denominator terms skipped)."""
    vq, m = _batch_pair(q, matrix)
    denom = np.abs(m) + np.abs(vq)
    num = np.abs(m - vq)
    return np.where(denom > 1e-12, num / np.maximum(denom, 1e-300), 0.0).sum(axis=1)


def chi_square_batch(q: ArrayLike, matrix: ArrayLike) -> np.ndarray:
    """Row-wise chi-square histogram distances."""
    vq, m = _batch_pair(q, matrix)
    denom = m + vq
    num = (m - vq) ** 2
    return np.where(denom > 1e-12, num / np.maximum(denom, 1e-300), 0.0).sum(axis=1)


def cosine_distance_batch(q: ArrayLike, matrix: ArrayLike) -> np.ndarray:
    """Row-wise ``1 - cosine similarity`` with the scalar's zero-norm rules."""
    vq, m = _batch_pair(q, matrix)
    nq = np.linalg.norm(vq)
    norms = np.linalg.norm(m, axis=1)
    if nq < 1e-12:
        return np.where(norms < 1e-12, 0.0, 1.0)
    out = 1.0 - (m @ vq) / (np.maximum(norms, 1e-300) * nq)
    return np.where(norms < 1e-12, 1.0, out)


def histogram_intersection_batch(q: ArrayLike, matrix: ArrayLike) -> np.ndarray:
    """Row-wise ``1 - normalized histogram intersection``."""
    vq, m = _batch_pair(q, matrix)
    if np.any(vq < 0) or np.any(m < 0):
        raise ValueError("histogram intersection requires non-negative inputs")
    sq = vq.sum()
    sums = m.sum(axis=1)
    if sq < 1e-12:
        return np.where(sums < 1e-12, 0.0, 1.0)
    pq = vq / sq
    pm = m / np.maximum(sums, 1e-300)[:, np.newaxis]
    out = 1.0 - np.minimum(pm, pq).sum(axis=1)
    return np.where(sums < 1e-12, 1.0, out)


def jensen_shannon_batch(q: ArrayLike, matrix: ArrayLike) -> np.ndarray:
    """Row-wise Jensen-Shannon divergences between L1-normalized rows."""
    vq, m = _batch_pair(q, matrix)
    if np.any(vq < 0) or np.any(m < 0):
        raise ValueError("JSD requires non-negative inputs")
    pq = vq / max(1e-12, vq.sum())
    pm = m / np.maximum(m.sum(axis=1), 1e-12)[:, np.newaxis]
    mid = (pm + pq) / 2.0

    def _kl(p: np.ndarray, r: np.ndarray) -> np.ndarray:
        terms = np.where(
            p > 0, p * np.log(np.maximum(p, 1e-300) / np.maximum(r, 1e-300)), 0.0
        )
        return terms.sum(axis=1)

    return 0.5 * _kl(np.broadcast_to(pq, pm.shape), mid) + 0.5 * _kl(pm, mid)
