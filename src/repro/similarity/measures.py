"""Vector distance measures.

Every measure takes two 1-D float arrays of equal length and returns a
non-negative float (0 for identical inputs).  The per-feature defaults live
on the extractors; these are the building blocks.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np

#: anything the measures accept: 1-D arrays or plain float sequences
ArrayLike = Union[np.ndarray, Sequence[float]]

__all__ = [
    "l1",
    "l2",
    "euclidean",
    "chi_square",
    "cosine_distance",
    "histogram_intersection",
    "jensen_shannon",
    "canberra",
]


def _pair(a: ArrayLike, b: ArrayLike) -> Tuple[np.ndarray, np.ndarray]:
    va = np.asarray(a, dtype=np.float64).ravel()
    vb = np.asarray(b, dtype=np.float64).ravel()
    if va.shape != vb.shape:
        raise ValueError(f"vector lengths differ: {va.size} vs {vb.size}")
    return va, vb


def l1(a: ArrayLike, b: ArrayLike) -> float:
    """Manhattan distance."""
    va, vb = _pair(a, b)
    return float(np.abs(va - vb).sum())


def l2(a: ArrayLike, b: ArrayLike) -> float:
    """Euclidean distance."""
    va, vb = _pair(a, b)
    return float(np.sqrt(((va - vb) ** 2).sum()))


#: Alias for :func:`l2`.
euclidean = l2


def canberra(a: ArrayLike, b: ArrayLike) -> float:
    """Canberra distance: sum of |a-b| / (|a|+|b|), zero-denominator terms skipped."""
    va, vb = _pair(a, b)
    denom = np.abs(va) + np.abs(vb)
    mask = denom > 1e-12
    return float(np.sum(np.abs(va - vb)[mask] / denom[mask]))


def chi_square(a: ArrayLike, b: ArrayLike) -> float:
    """Chi-square histogram distance: sum of (a-b)^2 / (a+b)."""
    va, vb = _pair(a, b)
    denom = va + vb
    mask = denom > 1e-12
    return float(np.sum((va - vb)[mask] ** 2 / denom[mask]))


def cosine_distance(a: ArrayLike, b: ArrayLike) -> float:
    """1 - cosine similarity; 0 for parallel vectors, up to 2 for opposite."""
    va, vb = _pair(a, b)
    na = np.linalg.norm(va)
    nb = np.linalg.norm(vb)
    if na < 1e-12 or nb < 1e-12:
        return 0.0 if na < 1e-12 and nb < 1e-12 else 1.0
    return float(1.0 - np.dot(va, vb) / (na * nb))


def histogram_intersection(a: ArrayLike, b: ArrayLike) -> float:
    """1 - normalized histogram intersection (a distance in [0, 1])."""
    va, vb = _pair(a, b)
    if np.any(va < 0) or np.any(vb < 0):
        raise ValueError("histogram intersection requires non-negative inputs")
    sa, sb = va.sum(), vb.sum()
    if sa < 1e-12 or sb < 1e-12:
        return 0.0 if sa < 1e-12 and sb < 1e-12 else 1.0
    return float(1.0 - np.minimum(va / sa, vb / sb).sum())


def jensen_shannon(a: ArrayLike, b: ArrayLike) -> float:
    """Jensen-Shannon divergence between L1-normalized distributions (nats)."""
    va, vb = _pair(a, b)
    if np.any(va < 0) or np.any(vb < 0):
        raise ValueError("JSD requires non-negative inputs")
    pa = va / max(1e-12, va.sum())
    pb = vb / max(1e-12, vb.sum())
    m = (pa + pb) / 2.0

    def _kl(p: np.ndarray, q: np.ndarray) -> float:
        mask = p > 0
        return float(np.sum(p[mask] * np.log(p[mask] / np.maximum(q[mask], 1e-300))))

    return 0.5 * _kl(pa, m) + 0.5 * _kl(pb, m)
