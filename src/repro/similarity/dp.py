"""Dynamic-programming sequence similarity.

The paper: "We use a dynamic programming approach to compute the similarity
between the feature vectors for the query and feature vectors in the
feature database."  For frame-level queries that reduces to a minimum over
stored frames, but for *video-to-video* similarity the natural DP is an
alignment of the two key-frame feature sequences.  Two classic variants are
provided:

- :func:`dtw_distance` -- dynamic time warping with the standard
  (match / insert / delete) recurrence; optional Sakoe-Chiba band.
- :func:`align_sequences` -- Needleman-Wunsch-style global alignment with a
  gap penalty; returns the alignment itself, which the examples visualize.

Both operate on arbitrary sequences plus a pairwise cost callable, so they
work directly on lists of :class:`~repro.features.base.FeatureVector`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["dtw_distance", "align_sequences", "sequence_similarity", "pairwise_cost_matrix"]

Cost = Callable[[object, object], float]


def pairwise_cost_matrix(a: Sequence, b: Sequence, cost: Cost) -> np.ndarray:
    """Dense |a| x |b| cost matrix."""
    m = np.empty((len(a), len(b)))
    for i, xa in enumerate(a):
        for j, xb in enumerate(b):
            m[i, j] = cost(xa, xb)
    return m


def dtw_distance(
    a: Sequence,
    b: Sequence,
    cost: Cost,
    window: Optional[int] = None,
    normalize: bool = True,
) -> float:
    """Dynamic time warping distance between two sequences.

    ``window`` restricts |i - j| to a Sakoe-Chiba band (None = unrestricted).
    With ``normalize=True`` the accumulated cost is divided by the warping
    path length upper bound ``len(a) + len(b)``, making values comparable
    across sequence lengths.
    """
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        raise ValueError("DTW requires non-empty sequences")
    if window is not None and window < abs(n - m):
        window = abs(n - m)  # band must admit at least one path

    costs = pairwise_cost_matrix(a, b, cost)
    acc = np.full((n + 1, m + 1), np.inf)
    acc[0, 0] = 0.0
    for i in range(1, n + 1):
        if window is None:
            j_lo, j_hi = 1, m
        else:
            j_lo = max(1, i - window)
            j_hi = min(m, i + window)
        for j in range(j_lo, j_hi + 1):
            step = min(acc[i - 1, j], acc[i, j - 1], acc[i - 1, j - 1])
            acc[i, j] = costs[i - 1, j - 1] + step
    total = float(acc[n, m])
    return total / (n + m) if normalize else total


def align_sequences(
    a: Sequence,
    b: Sequence,
    cost: Cost,
    gap_penalty: float,
) -> Tuple[float, List[Tuple[Optional[int], Optional[int]]]]:
    """Global alignment (Needleman-Wunsch with costs, minimizing).

    Returns ``(total_cost, pairs)`` where each pair is ``(i, j)`` for a
    match, ``(i, None)`` for a deletion (a's element unmatched) and
    ``(None, j)`` for an insertion.
    """
    n, m = len(a), len(b)
    costs = pairwise_cost_matrix(a, b, cost) if n and m else np.zeros((n, m))
    acc = np.zeros((n + 1, m + 1))
    acc[:, 0] = np.arange(n + 1) * gap_penalty
    acc[0, :] = np.arange(m + 1) * gap_penalty
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            acc[i, j] = min(
                acc[i - 1, j - 1] + costs[i - 1, j - 1],
                acc[i - 1, j] + gap_penalty,
                acc[i, j - 1] + gap_penalty,
            )
    # traceback
    pairs: List[Tuple[Optional[int], Optional[int]]] = []
    i, j = n, m
    while i > 0 or j > 0:
        if i > 0 and j > 0 and np.isclose(acc[i, j], acc[i - 1, j - 1] + costs[i - 1, j - 1]):
            pairs.append((i - 1, j - 1))
            i, j = i - 1, j - 1
        elif i > 0 and np.isclose(acc[i, j], acc[i - 1, j] + gap_penalty):
            pairs.append((i - 1, None))
            i -= 1
        else:
            pairs.append((None, j - 1))
            j -= 1
    pairs.reverse()
    return float(acc[n, m]), pairs


def sequence_similarity(
    a: Sequence,
    b: Sequence,
    cost: Cost,
    method: str = "dtw",
    **kwargs,
) -> float:
    """Distance between two feature sequences: ``'dtw'`` or ``'align'``.

    For ``'align'`` a ``gap_penalty`` kwarg is required; the returned value
    is normalized by ``len(a) + len(b)`` for comparability.
    """
    if method == "dtw":
        return dtw_distance(a, b, cost, **kwargs)
    if method == "align":
        if "gap_penalty" not in kwargs:
            raise ValueError("align method requires gap_penalty")
        total, _pairs = align_sequences(a, b, cost, kwargs["gap_penalty"])
        return total / (len(a) + len(b))
    raise ValueError(f"unknown method {method!r}")
