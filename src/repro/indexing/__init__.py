"""Histogram-based range-finder indexing (paper §4.2).

Every key frame is assigned a gray-level ``(min, max)`` bucket by a
level-by-level binary descent over its histogram; buckets form a binary
tree over intensity ranges (Figure 7) and searches only need to scan
frames whose bucket lies on the query bucket's root path or subtree.
"""

from repro.indexing.ann import IVFIndex, IVFStats, kmeans
from repro.indexing.rangefinder import Bucket, RangeFinder, paper_range_finder
from repro.indexing.tree import IndexStats, RangeIndex

__all__ = [
    "Bucket",
    "RangeFinder",
    "paper_range_finder",
    "RangeIndex",
    "IndexStats",
    "IVFIndex",
    "IVFStats",
    "kmeans",
]
