"""The §4.2 min-max range finder.

The paper's unrolled pseudo-code walks a binary tree over gray-level
ranges: start at [0, 255]; at each level check whether one half of the
current range holds at least a threshold *percentage* of the image's
pixels; if so descend into that half, otherwise stop and group the frame at
the current range.  The listing's magic ``sum / 900.0`` is exactly that
percentage for its 300x300 = 90 000-pixel frames (``sum/90000*100``), with
thresholds 55% at the first level and 60% below.

Two quirks of the listing are preserved under ``paper_exact=True``:

- the first level *always* descends -- ``if (result > 55) {0..127} else
  {128..255}`` has no "stay at [0, 255]" branch;
- half-range sums iterate ``for (i = 64; i < 127; i++)`` etc., skipping the
  last bin of each half.

The generalized finder (default) fixes both and descends to arbitrary
depth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.imaging.histogram import gray_histogram
from repro.imaging.image import Image

__all__ = ["Bucket", "RangeFinder", "paper_range_finder"]


@dataclass(frozen=True, order=True)
class Bucket:
    """A gray-level range ``[min, max]`` (inclusive), e.g. (64, 127)."""

    min: int
    max: int

    def __post_init__(self) -> None:
        if not 0 <= self.min <= self.max <= 255:
            raise ValueError(f"invalid bucket [{self.min}, {self.max}]")

    @property
    def width(self) -> int:
        return self.max - self.min + 1

    @property
    def level(self) -> int:
        """Depth in the binary tree: [0,255] is level 0, halves level 1, ..."""
        return int(np.log2(256 // self.width))

    def halves(self) -> Tuple["Bucket", "Bucket"]:
        if self.width < 2:
            raise ValueError("bucket too narrow to split")
        mid = self.min + self.width // 2
        return Bucket(self.min, mid - 1), Bucket(mid, self.max)

    def contains(self, other: "Bucket") -> bool:
        """True if ``other``'s range lies within this bucket's range."""
        return self.min <= other.min and other.max <= self.max

    def on_same_path(self, other: "Bucket") -> bool:
        """True if one bucket is an ancestor of (or equal to) the other."""
        return self.contains(other) or other.contains(self)


class RangeFinder:
    """Assigns each frame a :class:`Bucket` by thresholded binary descent.

    ``first_threshold`` / ``threshold`` are percentages of total pixels
    (paper: 55 and 60).  ``max_level`` bounds the descent; the paper stops
    at level 3 (32-wide ranges).
    """

    def __init__(
        self,
        first_threshold: float = 55.0,
        threshold: float = 60.0,
        max_level: int = 3,
        paper_exact: bool = False,
    ):
        if not 0 < first_threshold <= 100 or not 0 < threshold <= 100:
            raise ValueError("thresholds must be percentages in (0, 100]")
        if not 1 <= max_level <= 8:
            raise ValueError("max_level must be in [1, 8]")
        self.first_threshold = first_threshold
        self.threshold = threshold
        self.max_level = max_level
        self.paper_exact = paper_exact

    def bucket_for_histogram(self, hist: np.ndarray) -> Bucket:
        """Descend the range tree for a 256-bin gray histogram."""
        hist = np.asarray(hist, dtype=np.float64)
        if hist.size != 256:
            raise ValueError(f"expected a 256-bin histogram, got {hist.size}")
        total = hist.sum()
        if total <= 0:
            raise ValueError("histogram is empty")

        current = Bucket(0, 255)
        for level in range(self.max_level):
            left, right = current.halves()
            limit = self.first_threshold if level == 0 else self.threshold
            left_pct = self._mass(hist, left) / total * 100.0
            right_pct = self._mass(hist, right) / total * 100.0
            if left_pct > limit:
                current = left
            elif self.paper_exact and level == 0:
                # the listing's first test has no "stay" branch
                current = right
            elif right_pct > limit:
                current = right
            else:
                break
        return current

    def _mass(self, hist: np.ndarray, bucket: Bucket) -> float:
        if self.paper_exact and bucket.max < 255:
            # the listing iterates `i < max`, dropping the half's last bin
            return float(hist[bucket.min : bucket.max].sum())
        return float(hist[bucket.min : bucket.max + 1].sum())

    def bucket_for_image(self, image: Image) -> Bucket:
        """Bucket for a frame: histogram of its gray version, then descent."""
        return self.bucket_for_histogram(gray_histogram(image))


def paper_range_finder() -> RangeFinder:
    """The finder configured exactly as the §4.2 listing (quirks included)."""
    return RangeFinder(first_threshold=55.0, threshold=60.0, max_level=3, paper_exact=True)
