"""The range-index tree (paper Figure 7).

Maps buckets to frame-id sets.  A query frame's candidates are the frames
whose bucket lies on the query bucket's root path (ancestors) or in its
subtree (descendants): those are the only buckets a frame with a compatible
intensity distribution can land in, so everything else is pruned before any
feature distance is computed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Set

from repro.imaging.image import Image
from repro.indexing.rangefinder import Bucket, RangeFinder

__all__ = ["RangeIndex", "IndexStats"]


@dataclass(frozen=True)
class IndexStats:
    """Occupancy snapshot of a :class:`RangeIndex`."""

    n_entries: int
    n_buckets: int
    bucket_sizes: Dict[Bucket, int]
    largest_bucket: Optional[Bucket]

    @property
    def mean_bucket_size(self) -> float:
        return self.n_entries / self.n_buckets if self.n_buckets else 0.0


class RangeIndex:
    """Bucket -> frame-id index with pruned candidate lookup."""

    def __init__(self, finder: Optional[RangeFinder] = None):
        self.finder = finder or RangeFinder()
        self._buckets: Dict[Bucket, Set[Hashable]] = {}
        self._assignments: Dict[Hashable, Bucket] = {}

    def __len__(self) -> int:
        return len(self._assignments)

    def __contains__(self, frame_id: Hashable) -> bool:
        return frame_id in self._assignments

    def insert(self, frame_id: Hashable, image: Image) -> Bucket:
        """Index a frame; re-inserting an id moves it to its new bucket."""
        bucket = self.finder.bucket_for_image(image)
        return self.insert_bucket(frame_id, bucket)

    def insert_bucket(self, frame_id: Hashable, bucket: Bucket) -> Bucket:
        """Index a frame with a precomputed bucket."""
        old = self._assignments.get(frame_id)
        if old is not None:
            self._buckets[old].discard(frame_id)
            if not self._buckets[old]:
                del self._buckets[old]
        self._assignments[frame_id] = bucket
        self._buckets.setdefault(bucket, set()).add(frame_id)
        return bucket

    def remove(self, frame_id: Hashable) -> None:
        """Drop a frame from the index (KeyError if absent)."""
        bucket = self._assignments.pop(frame_id)
        self._buckets[bucket].discard(frame_id)
        if not self._buckets[bucket]:
            del self._buckets[bucket]

    def bucket_of(self, frame_id: Hashable) -> Bucket:
        return self._assignments[frame_id]

    def candidates(self, image: Image) -> Set[Hashable]:
        """Frame ids compatible with the query frame's bucket."""
        return self.candidates_for_bucket(self.finder.bucket_for_image(image))

    def candidates_for_bucket(self, query: Bucket) -> Set[Hashable]:
        """Union of ids in buckets on the query bucket's root path or subtree."""
        out: Set[Hashable] = set()
        for bucket, ids in self._buckets.items():
            if bucket.on_same_path(query):
                out.update(ids)
        return out

    def all_ids(self) -> Set[Hashable]:
        return set(self._assignments)

    def stats(self) -> IndexStats:
        sizes = {b: len(ids) for b, ids in self._buckets.items()}
        largest = max(sizes, key=sizes.get) if sizes else None
        return IndexStats(
            n_entries=len(self._assignments),
            n_buckets=len(self._buckets),
            bucket_sizes=sizes,
            largest_bucket=largest,
        )

    def pruning_factor(self, queries: Iterable[Image]) -> float:
        """Mean fraction of the corpus *excluded* per query (0 = no pruning)."""
        total = len(self)
        if total == 0:
            return 0.0
        fractions: List[float] = []
        for image in queries:
            kept = len(self.candidates(image))
            fractions.append(1.0 - kept / total)
        return sum(fractions) / len(fractions) if fractions else 0.0
