"""IVF inverted-file candidate index (sublinear retrieval extension).

The paper's range finder (§4.2) prunes by gray-level buckets only; on
corpora where most frames share a bucket the search still scores nearly
every frame.  This module adds a classic IVF-flat layer over the *feature*
space: a k-means coarse quantizer partitions the stored frames into
``n_cells`` Voronoi cells over the concatenated (per-feature scaled)
vectors, and a query only scores the members of its ``nprobe`` nearest
cells.  The probed union is re-ranked **exactly** through the existing
``batch_distance`` path, so the index changes which frames are scored,
never how they are scored.

Design notes:

- **Determinism.**  Training uses k-means++ seeding from a seeded
  ``numpy.random.Generator``; identical store contents always produce the
  identical partition.
- **Self-syncing.**  The index holds a reference to its
  :class:`~repro.core.store.FeatureStore` and compares the store's
  ``structure_generation`` to the one it last saw on every probe: new
  frames are assigned to their nearest centroid, removed frames drop out
  of the inverted lists.  Once the accumulated churn exceeds
  ``rebuild_drift`` of the trained population, the quantizer is retrained
  from scratch (lazily, on the next probe).
- **Residuals.**  Frames missing any indexed feature cannot be embedded;
  they are kept in a residual set that every probe returns, so the index
  never hides a frame that brute force would have scored.
- **Multi-assignment.**  Each frame is filed under its ``n_assign``
  nearest cells (not just the nearest).  The final ranking fuses several
  per-feature distances, which the single L2 coarse metric only
  approximates; replicating frames across the cell boundary is what keeps
  recall high at small ``nprobe`` despite that mismatch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.features.base import FeatureVector
from repro.obs import NULL_OBS, Obs

__all__ = ["IVFIndex", "IVFStats", "kmeans", "register_metrics"]

#: count-style histogram buckets for probe fan-out metrics
_COUNT_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
                  1024.0, 4096.0, 16384.0, 65536.0)

#: Default seed for the coarse quantizer (any fixed value works; what
#: matters is that rebuilds on identical data give identical partitions).
DEFAULT_SEED = 2012


def _squared_distances(data: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Pairwise squared L2 distances, shape ``(n_points, n_centroids)``."""
    # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2; clamp the tiny negatives
    # the expansion can produce
    d2 = (
        np.sum(data * data, axis=1)[:, np.newaxis]
        - 2.0 * (data @ centroids.T)
        + np.sum(centroids * centroids, axis=1)[np.newaxis, :]
    )
    return np.maximum(d2, 0.0)


def _kmeans_pp_init(data: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding (Arthur & Vassilvitskii 2007)."""
    n = data.shape[0]
    centroids = np.empty((k, data.shape[1]), dtype=np.float64)
    first = int(rng.integers(n))
    centroids[0] = data[first]
    closest = _squared_distances(data, centroids[:1])[:, 0]
    for i in range(1, k):
        total = closest.sum()
        if total <= 0:
            # all remaining points coincide with a centroid; any choice works
            idx = int(rng.integers(n))
        else:
            idx = int(rng.choice(n, p=closest / total))
        centroids[i] = data[idx]
        np.minimum(
            closest, _squared_distances(data, centroids[i : i + 1])[:, 0], out=closest
        )
    return centroids


def kmeans(
    data: np.ndarray,
    k: int,
    seed: int = DEFAULT_SEED,
    n_iter: int = 25,
) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic Lloyd's k-means with k-means++ seeding.

    Returns ``(centroids, assignments)``.  ``k`` is clamped to the number
    of points; empty clusters are re-seeded on the point currently
    farthest from its centroid, so exactly ``k`` non-empty clusters come
    back whenever ``k <= n``.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2 or data.shape[0] == 0:
        raise ValueError("kmeans needs a non-empty (n, d) matrix")
    k = max(1, min(int(k), data.shape[0]))
    rng = np.random.default_rng(seed)
    centroids = _kmeans_pp_init(data, k, rng)
    assign = np.zeros(data.shape[0], dtype=np.intp)
    for _ in range(max(1, n_iter)):
        d2 = _squared_distances(data, centroids)
        new_assign = np.argmin(d2, axis=1)
        # recompute means with one (k, n) @ (n, d) product
        onehot = np.zeros((k, data.shape[0]), dtype=np.float64)
        onehot[new_assign, np.arange(data.shape[0])] = 1.0
        counts = onehot.sum(axis=1)
        sums = onehot @ data
        empty = counts == 0
        if empty.any():
            # steal the worst-represented points for the empty clusters
            worst = np.argsort(d2[np.arange(data.shape[0]), new_assign])[::-1]
            for cell, point in zip(np.nonzero(empty)[0], worst):
                centroids[cell] = data[point]
            d2 = _squared_distances(data, centroids)
            new_assign = np.argmin(d2, axis=1)
            onehot = np.zeros((k, data.shape[0]), dtype=np.float64)
            onehot[new_assign, np.arange(data.shape[0])] = 1.0
            counts = np.maximum(onehot.sum(axis=1), 1.0)
            sums = onehot @ data
            centroids = sums / counts[:, np.newaxis]
            assign = new_assign
            continue
        centroids = sums / counts[:, np.newaxis]
        if np.array_equal(new_assign, assign):
            assign = new_assign
            break
        assign = new_assign
    return centroids, assign


class IVFStats:
    """Probe-time counters of one :class:`IVFIndex`."""

    def __init__(self):
        self.n_builds = 0
        self.n_probes = 0
        self.n_incremental_adds = 0
        self.n_incremental_removes = 0

    def as_dict(self) -> Dict[str, int]:
        # unified stats naming (no n_ prefix), matching cache/index keys
        return {
            "builds": self.n_builds,
            "probes": self.n_probes,
            "incremental_adds": self.n_incremental_adds,
            "incremental_removes": self.n_incremental_removes,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IVFStats({self.as_dict()})"


def register_metrics(obs: Obs) -> Dict[str, object]:
    """Get-or-create the ANN metric families on ``obs``.

    Called by :class:`IVFIndex` and by engines with ANN disabled, so the
    families always appear in a ``/metrics`` scrape (at zero) regardless
    of configuration.
    """
    return {
        "builds": obs.counter(
            "repro_ann_builds_total", "IVF coarse-quantizer (re)trainings."
        ),
        "probes": obs.counter(
            "repro_ann_probes_total", "IVF probe calls."
        ),
        "incremental": obs.counter(
            "repro_ann_incremental_total",
            "Frames folded into the trained index without a retrain.",
            labelnames=("op",),
        ),
        "cells_probed": obs.histogram(
            "repro_ann_cells_probed",
            "Cells visited per probe.",
            buckets=_COUNT_BUCKETS,
        ),
        "candidates": obs.histogram(
            "repro_ann_candidates",
            "Candidate frames returned per probe (incl. residuals).",
            buckets=_COUNT_BUCKETS,
        ),
    }


class IVFIndex:
    """IVF-flat inverted-file index over a :class:`FeatureStore`.

    ``feature_names`` fixes the embedding: the named per-frame vectors are
    concatenated, each block divided by its training-set standard
    deviation so no feature dominates the coarse partition.
    """

    def __init__(
        self,
        store,
        feature_names: Sequence[str],
        n_cells: int = 16,
        seed: int = DEFAULT_SEED,
        rebuild_drift: float = 0.3,
        n_assign: int = 2,
        obs: Obs = NULL_OBS,
    ):
        if n_cells < 1:
            raise ValueError("n_cells must be >= 1")
        if not feature_names:
            raise ValueError("at least one feature name is required")
        if rebuild_drift <= 0:
            raise ValueError("rebuild_drift must be positive")
        if n_assign < 1:
            raise ValueError("n_assign must be >= 1")
        self._store = store
        self._names = list(feature_names)
        self.n_cells = int(n_cells)
        self.seed = int(seed)
        self.rebuild_drift = float(rebuild_drift)
        self.n_assign = int(n_assign)
        self.stats = IVFStats()
        families = register_metrics(obs)
        self._m_builds = families["builds"]
        self._m_probes = families["probes"]
        self._m_incremental = families["incremental"]
        self._m_cells_probed = families["cells_probed"]
        self._m_candidates = families["candidates"]

        self._centroids: Optional[np.ndarray] = None
        self._scales: Optional[List[float]] = None
        self._lists: List[List[int]] = []
        self._cells_of: Dict[int, Tuple[int, ...]] = {}
        self._residuals: Set[int] = set()
        self._known_generation = -1
        self._trained_size = 0
        self._churn = 0

    # -- embedding ---------------------------------------------------------------

    def _embeddable(self, frame_id: int) -> bool:
        features = self._store.get(frame_id).features
        return all(name in features for name in self._names)

    def _raw_blocks(self, frame_ids: Sequence[int]) -> List[np.ndarray]:
        return [
            self._store.feature_matrix(name, frame_ids) for name in self._names
        ]

    def _embed(self, frame_ids: Sequence[int]) -> np.ndarray:
        blocks = self._raw_blocks(frame_ids)
        return np.hstack(
            [block * scale for block, scale in zip(blocks, self._scales)]
        )

    def _embed_vectors(self, query_vectors: Dict[str, FeatureVector]) -> np.ndarray:
        parts = [
            np.asarray(query_vectors[name].values, dtype=np.float64) * scale
            for name, scale in zip(self._names, self._scales)
        ]
        return np.concatenate(parts)[np.newaxis, :]

    def _nearest_cells(self, data: np.ndarray) -> np.ndarray:
        """Per row: the ``n_assign`` nearest cells, nearest first."""
        d2 = _squared_distances(data, self._centroids)
        take = min(self.n_assign, d2.shape[1])
        if take >= d2.shape[1]:
            return np.argsort(d2, axis=1)
        part = np.argpartition(d2, take - 1, axis=1)[:, :take]
        order = np.argsort(np.take_along_axis(d2, part, axis=1), axis=1)
        return np.take_along_axis(part, order, axis=1)

    def _file(self, frame_id: int, cells: np.ndarray) -> None:
        assigned = tuple(int(c) for c in cells)
        for cell in assigned:
            self._lists[cell].append(frame_id)
        self._cells_of[frame_id] = assigned

    # -- training ----------------------------------------------------------------

    def build(self) -> None:
        """(Re)train the coarse quantizer on the store's current frames."""
        self.stats.n_builds += 1
        self._m_builds.inc()
        self._known_generation = self._store.structure_generation
        self._churn = 0
        all_ids = self._store.frame_ids()
        indexable = [fid for fid in all_ids if self._embeddable(fid)]
        self._residuals = set(all_ids) - set(indexable)
        self._trained_size = len(indexable)
        if not indexable:
            self._centroids = None
            self._scales = None
            self._lists = []
            self._cells_of = {}
            return
        blocks = self._raw_blocks(indexable)
        self._scales = []
        for block in blocks:
            std = float(block.std()) if block.size else 0.0
            self._scales.append(1.0 / (std + 1e-12))
        data = np.hstack(
            [block * scale for block, scale in zip(blocks, self._scales)]
        )
        self._centroids, _ = kmeans(data, self.n_cells, seed=self.seed)
        self._lists = [[] for _ in range(self._centroids.shape[0])]
        self._cells_of = {}
        for fid, cells in zip(indexable, self._nearest_cells(data)):
            self._file(fid, cells)

    # -- incremental maintenance -------------------------------------------------

    def _sync(self) -> None:
        """Fold store mutations in; retrain when drift passes the threshold."""
        if self._known_generation == self._store.structure_generation:
            return
        if self._centroids is None:
            self.build()
            return
        current = set(self._store.frame_ids())
        known = self._residuals | set(self._cells_of)
        removed = known - current
        added = sorted(current - known)
        churn = len(removed) + len(added)
        if self._churn + churn > self.rebuild_drift * max(self._trained_size, 1):
            self.build()
            return
        self._churn += churn
        self._known_generation = self._store.structure_generation
        for fid in removed:
            if fid in self._residuals:
                self._residuals.discard(fid)
                continue
            for cell in self._cells_of.pop(fid):
                self._lists[cell].remove(fid)
            self.stats.n_incremental_removes += 1
            self._m_incremental.labels(op="remove").inc()
        if added:
            embeddable = [fid for fid in added if self._embeddable(fid)]
            emb_set = set(embeddable)
            self._residuals.update(fid for fid in added if fid not in emb_set)
            if embeddable:
                data = self._embed(embeddable)
                for fid, cells in zip(embeddable, self._nearest_cells(data)):
                    self._file(fid, cells)
                    self.stats.n_incremental_adds += 1
                    self._m_incremental.labels(op="add").inc()

    # -- probing -----------------------------------------------------------------

    def probe(
        self, query_vectors: Dict[str, FeatureVector], nprobe: int
    ) -> Optional[List[int]]:
        """Frame ids in the query's ``nprobe`` nearest cells (plus residuals).

        Returns ids sorted ascending (the brute-force candidate order), or
        ``None`` when the query is missing an indexed feature -- the caller
        must then fall back to exhaustive scoring.
        """
        if nprobe < 1:
            raise ValueError("nprobe must be >= 1")
        self._sync()
        self.stats.n_probes += 1
        self._m_probes.inc()
        if self._centroids is None:
            residuals = sorted(self._residuals)
            self._m_candidates.observe(len(residuals))
            return residuals
        if any(name not in query_vectors for name in self._names):
            return None
        q = self._embed_vectors(query_vectors)
        d2 = _squared_distances(q, self._centroids)[0]
        nprobe = min(int(nprobe), d2.size)
        if nprobe < d2.size:
            cells = np.argpartition(d2, nprobe - 1)[:nprobe]
        else:
            cells = np.arange(d2.size)
        out: Set[int] = set(self._residuals)
        for cell in cells:
            out.update(self._lists[int(cell)])
        self._m_cells_probed.observe(len(cells))
        self._m_candidates.observe(len(out))
        return sorted(out)

    # -- snapshot state ----------------------------------------------------------

    def export_state(self) -> Optional[Tuple[Dict[str, np.ndarray], Dict[str, object]]]:
        """The trained state as ``(arrays, meta)`` for the snapshot writer.

        Returns ``None`` when the index has never been built (nothing to
        persist -- the reader trains lazily, same as a fresh process).
        Posting lists and per-frame assignments are flattened with offset
        arrays, the standard CSR-style layout for ragged data.
        """
        if self._known_generation < 0:
            return None
        meta: Dict[str, object] = {
            "names": list(self._names),
            "n_cells": self.n_cells,
            "seed": self.seed,
            "rebuild_drift": self.rebuild_drift,
            "n_assign": self.n_assign,
            "known_generation": self._known_generation,
            "trained_size": self._trained_size,
            "churn": self._churn,
            "trained": self._centroids is not None,
            "scales": list(self._scales) if self._scales is not None else None,
        }
        if self._centroids is None:
            return {}, meta
        fids = sorted(self._cells_of)
        assign_cells: List[int] = []
        assign_offsets = [0]
        for fid in fids:
            assign_cells.extend(self._cells_of[fid])
            assign_offsets.append(len(assign_cells))
        postings: List[int] = []
        post_offsets = [0]
        for members in self._lists:
            postings.extend(members)
            post_offsets.append(len(postings))
        arrays = {
            "centroids": np.asarray(self._centroids, dtype=np.float64),
            "postings": np.asarray(postings, dtype=np.int64),
            "post_offsets": np.asarray(post_offsets, dtype=np.int64),
            "assign_fids": np.asarray(fids, dtype=np.int64),
            "assign_cells": np.asarray(assign_cells, dtype=np.int64),
            "assign_offsets": np.asarray(assign_offsets, dtype=np.int64),
            "residuals": np.asarray(sorted(self._residuals), dtype=np.int64),
        }
        return arrays, meta

    def load_state(
        self, arrays: Dict[str, np.ndarray], meta: Dict[str, object]
    ) -> None:
        """Restore :meth:`export_state` output, skipping the retrain.

        The recorded ``known_generation`` must correspond to the store
        generation the snapshot restored; mutations replayed on top (WAL
        entries) are folded in by the usual :meth:`_sync` on next probe.
        """
        self._known_generation = int(meta["known_generation"])
        self._trained_size = int(meta["trained_size"])
        self._churn = int(meta["churn"])
        if not meta.get("trained"):
            self._centroids = None
            self._scales = None
            self._lists = []
            self._cells_of = {}
            self._residuals = set()
            return
        self._centroids = np.array(arrays["centroids"], dtype=np.float64)
        self._scales = [float(s) for s in meta["scales"]]
        post_offsets = arrays["post_offsets"]
        postings = arrays["postings"]
        self._lists = [
            [int(fid) for fid in postings[post_offsets[i] : post_offsets[i + 1]]]
            for i in range(len(post_offsets) - 1)
        ]
        assign_offsets = arrays["assign_offsets"]
        assign_cells = arrays["assign_cells"]
        self._cells_of = {
            int(fid): tuple(
                int(c)
                for c in assign_cells[assign_offsets[i] : assign_offsets[i + 1]]
            )
            for i, fid in enumerate(arrays["assign_fids"])
        }
        self._residuals = {int(fid) for fid in arrays["residuals"]}

    # -- introspection -----------------------------------------------------------

    @property
    def is_built(self) -> bool:
        return self._known_generation >= 0

    def cell_sizes(self) -> List[int]:
        return [len(members) for members in self._lists]

    def n_indexed(self) -> int:
        return len(self._cells_of) + len(self._residuals)
