"""GLCM texture (paper §4.3).

The Gray Level Co-occurrence Matrix tabulates how often pairs of gray
levels co-occur at a fixed offset.  The paper accumulates symmetric
horizontal pairs (``glcm[a][b] += 1; glcm[b][a] += 1``), normalizes by the
pair counter, and derives five Haralick statistics: angular second moment
(ASM), contrast, correlation, inverse difference moment (IDM), and entropy.

The sample dump in §5.1 is six numbers --

    ``180000.0 0.0302 87.89 2.27e-4 0.5008 6.82``

i.e. ``pixelCounter asm contrast correlation IDM entropy`` computed on a
300x300 rescaled gray frame (pixelCounter = 2 pairs per pixel).  Note the
paper's pseudo-code divides correlation by the *product of variances*
(its ``stdevx`` accumulates squared deviations without a square root);
that convention is reproduced under ``paper_exact=True`` and explains the
tiny 2.27e-4 value, while the default computes the textbook correlation in
[-1, 1].
"""

from __future__ import annotations

import threading
from typing import Dict, Tuple

import numpy as np

from repro.features.base import FeatureExtractor, FeatureVector, register_extractor
from repro.imaging import accel
from repro.imaging.image import Image
from repro.imaging.resize import resize_array

__all__ = ["GlcmTexture", "glcm_matrix", "glcm_statistics"]

#: Order of the statistics in the feature vector (after pixelCounter).
STATISTIC_NAMES = ("asm", "contrast", "correlation", "idm", "entropy")


def glcm_matrix(gray: np.ndarray, step: int = 1, levels: int = 256) -> np.ndarray:
    """Symmetric, normalized horizontal co-occurrence matrix.

    Pairs are ``(pixel[y, x], pixel[y, x + step])`` accumulated in both
    orders, then divided by the total number of entries (the paper's
    ``pixelCounter``).  Returns a ``(levels, levels)`` float64 matrix whose
    entries sum to 1.
    """
    a = np.asarray(gray)
    if a.ndim != 2:
        raise ValueError("glcm_matrix expects a 2-D gray array")
    if step < 1 or step >= a.shape[1]:
        raise ValueError(f"step must be in [1, width); got {step}")
    if accel.fast_paths_enabled():
        # one narrow-int conversion instead of two wide ones; counts are
        # exact integers either way, so the result is identical
        ai = a.astype(np.int32)
        left = ai[:, :-step]
        right = ai[:, step:]
        if levels != 256:
            left = left * levels // 256
            right = right * levels // 256
        flat = left * np.int32(levels) + right
        counts = np.bincount(flat.ravel(), minlength=levels * levels)
        glcm = counts.reshape(levels, levels)
        glcm = glcm + glcm.T  # symmetric accumulation, 2 entries per pair
        total = float(glcm.sum())
        return glcm / total if total > 0 else glcm.astype(np.float64)
    left = a[:, :-step].astype(np.int64)
    right = a[:, step:].astype(np.int64)
    if levels != 256:
        left = left * levels // 256
        right = right * levels // 256
    flat = left * levels + right
    counts = np.bincount(flat.ravel(), minlength=levels * levels).astype(np.float64)
    glcm = counts.reshape(levels, levels)
    glcm = glcm + glcm.T  # symmetric accumulation, 2 entries per pair
    total = glcm.sum()
    return glcm / total if total > 0 else glcm


_GRID_CACHE: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
_GRID_LOCK = threading.Lock()  # web threads and pool workers share the cache


def _cached_grids(n: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Constant ``(levels, (a-b)^2, 1/(1+(a-b)^2))`` grids for an n-level GLCM."""
    grids = _GRID_CACHE.get(n)
    if grids is None:
        levels = np.arange(n, dtype=np.float64)
        d2 = (levels[:, np.newaxis] - levels[np.newaxis, :]) ** 2
        grids = (levels, d2, 1.0 / (1.0 + d2))
        with _GRID_LOCK:
            if len(_GRID_CACHE) > 4:
                _GRID_CACHE.clear()
            _GRID_CACHE[n] = grids
    return grids


def _glcm_statistics_fast(p: np.ndarray, paper_exact: bool) -> dict:
    """Marginal-based statistics: same math, O(n) moment work after two
    marginal reductions and no per-call constant-grid allocation."""
    n = p.shape[0]
    levels, d2, idm_w = _cached_grids(n)
    row = p.sum(axis=1)
    col = p.sum(axis=0)
    asm = float(np.einsum("ij,ij->", p, p))
    contrast = float(np.einsum("ij,ij->", d2, p))
    px = float(levels @ row)
    py = float(levels @ col)
    varx = float((levels - px) ** 2 @ row)
    vary = float((levels - py) ** 2 @ col)
    cov = float(levels @ p @ levels) - px * py
    if paper_exact:
        denom = varx * vary
    else:
        denom = float(np.sqrt(varx * vary))
    correlation = cov / denom if denom > 1e-18 else 0.0
    idm = float(np.einsum("ij,ij->", idm_w, p))
    logs = np.log(p, out=np.zeros_like(p), where=p > 0)
    entropy = float(-np.einsum("ij,ij->", p, logs))
    return {
        "asm": asm,
        "contrast": contrast,
        "correlation": correlation,
        "idm": idm,
        "entropy": entropy,
    }


def glcm_statistics(glcm: np.ndarray, paper_exact: bool = False) -> dict:
    """The five Haralick statistics of a normalized GLCM."""
    p = np.asarray(glcm, dtype=np.float64)
    if accel.fast_paths_enabled():
        return _glcm_statistics_fast(p, paper_exact)
    n = p.shape[0]
    levels = np.arange(n, dtype=np.float64)
    a = levels[:, np.newaxis]
    b = levels[np.newaxis, :]

    asm = float(np.sum(p * p))
    contrast = float(np.sum((a - b) ** 2 * p))
    px = float(np.sum(a * p))
    py = float(np.sum(b * p))
    varx = float(np.sum((a - px) ** 2 * p))
    vary = float(np.sum((b - py) ** 2 * p))
    cov = float(np.sum((a - px) * (b - py) * p))
    if paper_exact:
        denom = varx * vary  # the pseudo-code's variance product
    else:
        denom = float(np.sqrt(varx * vary))
    correlation = cov / denom if denom > 1e-18 else 0.0
    idm = float(np.sum(p / (1.0 + (a - b) ** 2)))
    nz = p > 0
    entropy = float(-np.sum(p[nz] * np.log(p[nz])))
    return {
        "asm": asm,
        "contrast": contrast,
        "correlation": correlation,
        "idm": idm,
        "entropy": entropy,
    }


@register_extractor
class GlcmTexture(FeatureExtractor):
    """§4.3 extractor: 6-vector ``[pixelCounter, asm, contrast, corr, idm, entropy]``.

    ``preprocess=True`` (paper default) converts to gray with the paper's
    luminance matrix and rescales to ``base_size`` square so the statistics
    are comparable across frame sizes.
    """

    name = "glcm"
    tag = "GLCM"

    def __init__(
        self,
        step: int = 1,
        levels: int = 256,
        preprocess: bool = True,
        base_size: int = 300,
        paper_exact: bool = False,
    ):
        if levels < 2 or levels > 256:
            raise ValueError("levels must be in [2, 256]")
        self.step = step
        self.levels = levels
        self.preprocess = preprocess
        self.base_size = base_size
        self.paper_exact = paper_exact

    def _prepare(self, image: Image) -> np.ndarray:
        gray = image.gray()
        if self.preprocess:
            gray = resize_array(gray, self.base_size, self.base_size, "nearest")
        return gray

    def extract(self, image: Image) -> FeatureVector:
        gray = self._prepare(image)
        glcm = glcm_matrix(gray, step=self.step, levels=self.levels)
        stats = glcm_statistics(glcm, paper_exact=self.paper_exact)
        pixel_counter = float(2 * (gray.shape[1] - self.step) * gray.shape[0])
        values = [pixel_counter] + [stats[k] for k in STATISTIC_NAMES]
        return FeatureVector(kind=self.name, values=np.array(values), tag=self.tag)

    def distance(self, a: FeatureVector, b: FeatureVector) -> float:
        """Canberra distance over the five statistics (pixelCounter excluded).

        Canberra normalizes each component by its own magnitude, which keeps
        the wildly different scales of contrast (~1e2) and ASM (~1e-2) from
        drowning each other out.
        """
        self._check_pair(a, b)
        va, vb = a.values[1:], b.values[1:]
        denom = np.abs(va) + np.abs(vb)
        mask = denom > 1e-12
        return float(np.sum(np.abs(va - vb)[mask] / denom[mask]))

    def batch_distance(self, q: FeatureVector, matrix: np.ndarray) -> np.ndarray:
        """Vectorized Canberra distances (pixelCounter column excluded)."""
        from repro.similarity.measures import canberra_batch

        m = self._check_batch(q, matrix)
        return canberra_batch(q.values[1:], m[:, 1:])
