"""Feature extractors (paper §4.3-4.8).

Each extractor turns a key frame into a :class:`FeatureVector` that can be
serialized to a string -- the paper stores every feature as a ``VARCHAR2``
column of the ``KEY_FRAMES`` table -- and compared with a per-feature
default distance.

================  =======================  =============================
paper section     extractor                DB column / string tag
================  =======================  =============================
§4.3              GlcmTexture              ``glcm``  / ``GLCM texture``
§4.4              GaborTexture             ``gabor`` / ``gabor``
(Table schema)    TamuraTexture            ``tamura``/ ``Tamura``
§4.5              SimpleColorHistogram     ``sch``   / ``RGB``
§4.6              NaiveSignature           (used for key-frame distance)
§4.7              AutoColorCorrelogram     (stored with keyframe) ``ACC``
§4.8              SimpleRegionGrowing      ``majorRegions``
================  =======================  =============================
"""

from repro.features.base import (
    FeatureExtractor,
    FeatureVector,
    all_extractors,
    default_extractors,
    get_extractor,
    parse_feature_string,
    register_extractor,
)
from repro.features.color_histogram import SimpleColorHistogram
from repro.features.correlogram import AutoColorCorrelogram
from repro.features.edges import EdgeHistogram
from repro.features.gabor import GaborTexture
from repro.features.glcm import GlcmTexture
from repro.features.naive import NaiveSignature
from repro.features.regions import RegionGrowingResult, SimpleRegionGrowing
from repro.features.tamura import TamuraTexture

__all__ = [
    "FeatureExtractor",
    "FeatureVector",
    "register_extractor",
    "get_extractor",
    "all_extractors",
    "default_extractors",
    "parse_feature_string",
    "SimpleColorHistogram",
    "GlcmTexture",
    "GaborTexture",
    "TamuraTexture",
    "AutoColorCorrelogram",
    "EdgeHistogram",
    "NaiveSignature",
    "SimpleRegionGrowing",
    "RegionGrowingResult",
]
