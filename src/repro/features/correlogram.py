"""Auto color correlogram (paper §4.7).

"A color correlogram expresses how the spatial correlation of pairs of
colors changes with distance."  The paper's pseudo-code:

1. quantize every pixel in HSV space (64 bins here: 8 hue x 4 sat x 2 val);
2. for each pixel, count same-color pixels in the L-inf ring at each
   distance ``d in 1..maxDistance`` (``getNumPixelsInNeighbourhood``);
3. accumulate per (color, distance) and normalize each distance column by
   its maximum over colors (steps 11-13 of the listing).

The §5.1 dump starts ``ACC 4 0.7046 ...`` -- maxDistance 4, values in
[0, 1].  Besides the paper's max normalization, the classic probability
normalization of Huang et al. (divide by ``hist[c] * 8d``) is available as
``normalization='probability'``.

Counting is vectorized: a ring at distance d has 8d offsets; for each
offset the whole image is compared against its shifted self, and matches
are histogrammed by color with one ``bincount``.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.features.base import FeatureExtractor, FeatureVector, register_extractor
from repro.imaging import accel
from repro.imaging.color import quantize_hsv
from repro.imaging.image import Image

__all__ = ["AutoColorCorrelogram", "correlogram_counts", "ring_offsets"]


def ring_offsets(d: int):
    """The 8d offsets forming the L-inf ring at distance ``d``."""
    if d < 1:
        raise ValueError("distance must be >= 1")
    offsets = []
    for dx in range(-d, d + 1):
        offsets.append((dx, -d))
        offsets.append((dx, d))
    for dy in range(-d + 1, d):
        offsets.append((-d, dy))
        offsets.append((d, dy))
    return offsets


def correlogram_counts(quantized: np.ndarray, n_colors: int, max_distance: int) -> np.ndarray:
    """Raw same-color pair counts: shape ``(n_colors, max_distance)``.

    ``counts[c, d-1]`` = number of ordered pixel pairs (p, q) with
    ``color(p) == color(q) == c`` and ``max(|dx|, |dy|) == d`` (q inside the
    image).
    """
    q = np.asarray(quantized)
    if q.ndim != 2:
        raise ValueError("quantized must be a 2-D index array")
    if accel.fast_paths_enabled() and q.size:
        return _correlogram_counts_windows(q, n_colors, max_distance)
    h, w = q.shape
    counts = np.zeros((n_colors, max_distance), dtype=np.float64)
    for d in range(1, max_distance + 1):
        for dx, dy in ring_offsets(d):
            # overlap region of the image with itself shifted by (dx, dy)
            y0a, y1a = max(0, -dy), h - max(0, dy)
            x0a, x1a = max(0, -dx), w - max(0, dx)
            if y0a >= y1a or x0a >= x1a:
                continue
            a = q[y0a:y1a, x0a:x1a]
            b = q[y0a + dy : y1a + dy, x0a + dx : x1a + dx]
            same = a == b
            if not same.any():
                continue
            counts[:, d - 1] += np.bincount(a[same].ravel(), minlength=n_colors)
    return counts


_RING_INDEX_CACHE: dict = {}
_RING_INDEX_LOCK = threading.Lock()  # web threads and pool workers share the cache


def _ring_indices(max_distance: int):
    """Cached per-distance ``(rows, cols)`` into a ``(2D+1, 2D+1)`` shift
    grid centered at ``(D, D)``, one pair per :func:`ring_offsets` entry."""
    rings = _RING_INDEX_CACHE.get(max_distance)
    if rings is None:
        d_max = max_distance
        rings = []
        for d in range(1, d_max + 1):
            offsets = np.asarray(ring_offsets(d))
            rings.append((d_max + offsets[:, 1], d_max + offsets[:, 0]))
        with _RING_INDEX_LOCK:
            _RING_INDEX_CACHE[max_distance] = rings
    return rings


def _correlogram_counts_windows(
    q: np.ndarray, n_colors: int, max_distance: int
) -> np.ndarray:
    """All-shifts-at-once counting: bitwise identical to the offset loop.

    The image is padded with a sentinel color so out-of-image neighbours
    can never match, and ``sliding_window_view`` exposes every shift in
    ``[-D, D]^2`` as one ``(2D+1, 2D+1, h, w)`` stack.  A single vectorized
    equality against the unshifted image replaces the per-offset Python
    loop; each ring then reduces its 8d shift planes and histograms by
    color.  All quantities are small integer counts, so the float64
    bincount accumulation is exact.
    """
    from numpy.lib.stride_tricks import sliding_window_view

    h, w = q.shape
    d_max = max_distance
    padded = np.full((h + 2 * d_max, w + 2 * d_max), n_colors, dtype=q.dtype)
    padded[d_max : d_max + h, d_max : d_max + w] = q
    windows = sliding_window_view(padded, (h, w))
    same = windows == q

    flat_q = q.ravel()
    counts = np.empty((n_colors, d_max), dtype=np.float64)
    for d, (rows, cols) in enumerate(_ring_indices(d_max), start=1):
        ring = same[rows, cols].sum(axis=0, dtype=np.int64)
        counts[:, d - 1] = np.bincount(
            flat_q, weights=ring.ravel().astype(np.float64), minlength=n_colors
        )
    return counts


@register_extractor
class AutoColorCorrelogram(FeatureExtractor):
    """§4.7 extractor: flattened ``(n_colors, max_distance)`` correlogram.

    ``normalization``:

    - ``'max'`` (paper): each distance column divided by its max over colors.
    - ``'probability'``: counts divided by ``hist[c] * 8d`` -- the
      conditional probability that a pixel at distance d has the same color.
    """

    name = "acc"
    tag = "ACC"

    def __init__(
        self,
        max_distance: int = 4,
        h_bins: int = 8,
        s_bins: int = 4,
        v_bins: int = 2,
        normalization: str = "max",
    ):
        if max_distance < 1:
            raise ValueError("max_distance must be >= 1")
        if normalization not in ("max", "probability"):
            raise ValueError(f"unknown normalization {normalization!r}")
        self.max_distance = max_distance
        self.h_bins = h_bins
        self.s_bins = s_bins
        self.v_bins = v_bins
        self.normalization = normalization

    @property
    def n_colors(self) -> int:
        return self.h_bins * self.s_bins * self.v_bins

    def extract(self, image: Image) -> FeatureVector:
        rgb = image.to_rgb().pixels
        quantized = quantize_hsv(rgb, self.h_bins, self.s_bins, self.v_bins)
        counts = correlogram_counts(quantized, self.n_colors, self.max_distance)
        if self.normalization == "max":
            col_max = counts.max(axis=0)
            corr = counts / np.maximum(col_max, 1e-12)[np.newaxis, :]
        else:
            hist = np.bincount(quantized.ravel(), minlength=self.n_colors).astype(np.float64)
            ring_sizes = 8.0 * np.arange(1, self.max_distance + 1)
            denom = hist[:, np.newaxis] * ring_sizes[np.newaxis, :]
            corr = counts / np.maximum(denom, 1e-12)
        return FeatureVector(kind=self.name, values=corr.ravel(), tag=self.tag)

    def distance(self, a: FeatureVector, b: FeatureVector) -> float:
        """L1 distance, the measure used in the original correlogram paper."""
        self._check_pair(a, b)
        return float(np.abs(a.values - b.values).sum())

    def batch_distance(self, q: FeatureVector, matrix: np.ndarray) -> np.ndarray:
        """Vectorized L1 distances against a stacked matrix."""
        from repro.similarity.measures import l1_batch

        return l1_batch(q.values, self._check_batch(q, matrix))
