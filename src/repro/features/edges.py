"""Edge histogram descriptor (extension feature).

The paper's §1 lists *shape* among the common visual features and its
conclusion plans "integrating more features".  This extension adds the
classic MPEG-7-style edge histogram: the frame is split into a 4x4 grid of
subimages, each subimage votes into five edge-type bins (vertical,
horizontal, 45-degree, 135-degree, non-directional) based on small 2x2
edge filters, giving an 80-dimensional descriptor of local shape/structure.

Registered under the name ``ehd``; include it in retrieval with::

    SystemConfig(features=TABLE1_FEATURES + ("ehd",))
"""

from __future__ import annotations

import numpy as np

from repro.features.base import FeatureExtractor, FeatureVector, register_extractor
from repro.imaging.image import Image

__all__ = ["EdgeHistogram", "edge_type_map"]

#: MPEG-7's five 2x2 edge filters (vertical, horizontal, 45, 135, non-dir).
_FILTERS = np.stack(
    [
        np.array([[1.0, -1.0], [1.0, -1.0]]),  # vertical edge
        np.array([[1.0, 1.0], [-1.0, -1.0]]),  # horizontal edge
        np.array([[np.sqrt(2), 0.0], [0.0, -np.sqrt(2)]]),  # 45 degrees
        np.array([[0.0, np.sqrt(2)], [-np.sqrt(2), 0.0]]),  # 135 degrees
        np.array([[2.0, -2.0], [-2.0, 2.0]]),  # non-directional
    ]
)

N_EDGE_TYPES = 5


def edge_type_map(gray: np.ndarray, threshold: float = 11.0) -> np.ndarray:
    """Classify each 2x2 block: 0..4 = edge type, -1 = no edge.

    Blocks whose strongest filter response is below ``threshold`` count as
    edgeless (MPEG-7's T_edge).  Returns an int array over the block grid
    ``(h // 2, w // 2)``.
    """
    a = np.asarray(gray, dtype=np.float64)
    if a.ndim != 2:
        raise ValueError("edge_type_map expects a 2-D gray array")
    h2, w2 = a.shape[0] // 2, a.shape[1] // 2
    if h2 == 0 or w2 == 0:
        raise ValueError("image too small for 2x2 edge blocks")
    blocks = a[: h2 * 2, : w2 * 2].reshape(h2, 2, w2, 2).transpose(0, 2, 1, 3)
    responses = np.abs(np.einsum("hwij,fij->fhw", blocks, _FILTERS))
    best = responses.argmax(axis=0)
    strength = responses.max(axis=0)
    best[strength < threshold] = -1
    return best


@register_extractor
class EdgeHistogram(FeatureExtractor):
    """80-dim local edge histogram: 4x4 subimages x 5 edge types.

    Each subimage's histogram is normalized by its block count, so the
    descriptor is resolution-independent.
    """

    name = "ehd"
    tag = "EHD"

    def __init__(self, grid: int = 4, threshold: float = 11.0):
        if grid < 1:
            raise ValueError("grid must be >= 1")
        self.grid = grid
        self.threshold = threshold

    @property
    def n_dims(self) -> int:
        return self.grid * self.grid * N_EDGE_TYPES

    def extract(self, image: Image) -> FeatureVector:
        gray = image.gray()
        types = edge_type_map(gray, self.threshold)
        bh, bw = types.shape
        values = np.zeros(self.n_dims)
        for gy in range(self.grid):
            y0, y1 = bh * gy // self.grid, bh * (gy + 1) // self.grid
            for gx in range(self.grid):
                x0, x1 = bw * gx // self.grid, bw * (gx + 1) // self.grid
                cell = types[y0:y1, x0:x1]
                n_blocks = max(1, cell.size)
                base = (gy * self.grid + gx) * N_EDGE_TYPES
                for e in range(N_EDGE_TYPES):
                    values[base + e] = np.count_nonzero(cell == e) / n_blocks
        return FeatureVector(kind=self.name, values=values, tag=self.tag)

    def distance(self, a: FeatureVector, b: FeatureVector) -> float:
        """L1 distance (the MPEG-7 matching rule for EHD)."""
        self._check_pair(a, b)
        return float(np.abs(a.values - b.values).sum())

    def batch_distance(self, q: FeatureVector, matrix: np.ndarray) -> np.ndarray:
        """Vectorized L1 distances against a stacked matrix."""
        from repro.similarity.measures import l1_batch

        return l1_batch(q.values, self._check_batch(q, matrix))
