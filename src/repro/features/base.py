"""Feature framework: vectors, extractor ABC, registry, string round-trip.

The paper serializes every feature to a string (``getStringRepresentation``
in each pseudo-code listing) and stores it in a ``VARCHAR2`` column.  The
same convention is kept here: a :class:`FeatureVector` renders as

    ``<TAG> <n> <v1> <v2> ... <vn>``

and parses back losslessly (within float repr precision), which the DB layer
relies on.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Type

import numpy as np

from repro.imaging.image import Image

__all__ = [
    "FeatureVector",
    "FeatureExtractor",
    "register_extractor",
    "get_extractor",
    "all_extractors",
    "default_extractors",
    "parse_feature_string",
]


@dataclass(frozen=True)
class FeatureVector:
    """A named, fixed-length float feature vector.

    ``kind`` is the extractor's registry name (e.g. ``"glcm"``); ``tag`` is
    the leading token used in the string form (the paper's dumps use tags
    like ``RGB``, ``gabor``, ``Tamura``, ``ACC``).
    """

    kind: str
    values: np.ndarray = field(repr=False)
    tag: str = ""

    def __post_init__(self) -> None:
        arr = np.asarray(self.values, dtype=np.float64).ravel()
        arr = arr.copy()
        arr.setflags(write=False)
        object.__setattr__(self, "values", arr)
        if not self.tag:
            object.__setattr__(self, "tag", self.kind)

    def __len__(self) -> int:
        return int(self.values.size)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FeatureVector):
            return NotImplemented
        return self.kind == other.kind and np.array_equal(self.values, other.values)

    def __hash__(self) -> int:
        return hash((self.kind, self.values.tobytes()))

    def to_string(self) -> str:
        """``<tag> <n> <v1> ... <vn>`` -- the paper's VARCHAR2 representation."""
        parts = [self.tag, str(len(self))]
        parts.extend(repr(float(v)) for v in self.values)
        return " ".join(parts)

    @classmethod
    def from_string(cls, kind: str, text: str) -> "FeatureVector":
        """Parse a string produced by :meth:`to_string`."""
        tokens = text.split()
        if len(tokens) < 2:
            raise ValueError(f"feature string too short: {text[:40]!r}")
        tag = tokens[0]
        try:
            n = int(tokens[1])
        except ValueError as exc:
            raise ValueError(f"bad feature length token {tokens[1]!r}") from exc
        values = tokens[2:]
        if len(values) != n:
            raise ValueError(f"feature string declares {n} values, has {len(values)}")
        try:
            arr = np.array([float(v) for v in values], dtype=np.float64)
        except ValueError as exc:
            raise ValueError(f"non-numeric token in {kind!r} feature string: {exc}") from exc
        if not np.all(np.isfinite(arr)):
            bad = [values[i] for i in np.flatnonzero(~np.isfinite(arr))[:3]]
            raise ValueError(
                f"non-finite value(s) {bad} in {kind!r} feature string; "
                "nan/inf would silently poison every distance computed from it"
            )
        return cls(kind=kind, values=arr, tag=tag)


class FeatureExtractor(abc.ABC):
    """Base class for all §4.3-4.8 extractors.

    Subclasses define ``name`` (registry key), ``tag`` (string-form prefix)
    and implement :meth:`extract`.  :meth:`distance` defaults to the L1
    distance on normalized vectors; extractors override it where the paper
    (or standard practice for that feature) dictates another measure.
    """

    #: registry key; subclasses must override.
    name: str = ""
    #: string-form prefix; defaults to ``name``.
    tag: str = ""

    @abc.abstractmethod
    def extract(self, image: Image) -> FeatureVector:
        """Compute this extractor's feature vector for one frame."""

    def distance(self, a: FeatureVector, b: FeatureVector) -> float:
        """Dissimilarity between two vectors of this feature (>= 0)."""
        from repro.similarity.measures import l1

        self._check_pair(a, b)
        return l1(a.values, b.values)

    def batch_distance(self, q: FeatureVector, matrix: np.ndarray) -> np.ndarray:
        """Distances from ``q`` to every row of a stacked ``(n, d)`` matrix.

        Subclasses that override :meth:`distance` override this too with
        the matching vectorized measure; this default guarantees agreement
        for any extractor that has not, by looping the scalar method.  An
        extractor inheriting the base L1 ``distance`` gets the vectorized
        L1 directly.
        """
        from repro.similarity.measures import l1_batch

        m = self._check_batch(q, matrix)
        if type(self).distance is FeatureExtractor.distance:
            return l1_batch(q.values, m)
        return np.array(
            [
                self.distance(q, FeatureVector(kind=self.name, values=row, tag=q.tag))
                for row in m
            ],
            dtype=np.float64,
        )

    def prepare_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Precompute a reusable form of a stacked candidate matrix.

        The default is the raw float64 matrix.  Extractors whose
        :meth:`batch_distance` preprocesses the candidate rows per call
        (e.g. row normalization) override this together with
        :meth:`batch_distance_prepared`, so a caller ranking many queries
        against an unchanged store can pay the preprocessing once.  Row i
        of the prepared matrix must describe row i of the input, so row
        gathers commute with preparation.
        """
        return np.asarray(matrix, dtype=np.float64)

    def batch_distance_prepared(self, q: FeatureVector, prepared: np.ndarray) -> np.ndarray:
        """Distances from ``q`` to rows prepared by :meth:`prepare_matrix`."""
        return self.batch_distance(q, prepared)

    def _check_batch(self, q: FeatureVector, matrix: np.ndarray) -> np.ndarray:
        """Validate a query/matrix pair; returns the matrix as float64."""
        if q.kind != self.name:
            raise ValueError(
                f"{type(self).__name__} compares {self.name!r} vectors, got {q.kind!r}"
            )
        m = np.asarray(matrix, dtype=np.float64)
        if m.ndim != 2:
            raise ValueError(f"candidate matrix must be 2-D, got shape {m.shape}")
        if m.shape[1] != len(q):
            raise ValueError(f"vector lengths differ: {len(q)} vs {m.shape[1]}")
        return m

    def _check_pair(self, a: FeatureVector, b: FeatureVector) -> None:
        if a.kind != self.name or b.kind != self.name:
            raise ValueError(
                f"{type(self).__name__} compares {self.name!r} vectors, "
                f"got {a.kind!r} and {b.kind!r}"
            )
        if len(a) != len(b):
            raise ValueError(f"vector lengths differ: {len(a)} vs {len(b)}")

    def to_string(self, image: Image) -> str:
        """Extract and serialize in one step (paper: getStringRepresentation)."""
        return self.extract(image).to_string()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


_REGISTRY: Dict[str, Type[FeatureExtractor]] = {}


def register_extractor(cls: Type[FeatureExtractor]) -> Type[FeatureExtractor]:
    """Class decorator adding an extractor to the global registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a non-empty 'name'")
    if cls.name in _REGISTRY and _REGISTRY[cls.name] is not cls:
        raise ValueError(f"duplicate extractor name {cls.name!r}")
    if not cls.tag:
        cls.tag = cls.name
    _REGISTRY[cls.name] = cls
    return cls


def get_extractor(name: str, **kwargs: object) -> FeatureExtractor:
    """Instantiate a registered extractor by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown extractor {name!r}; known: {known}") from None
    return cls(**kwargs)


def all_extractors() -> List[str]:
    """Sorted names of every registered extractor."""
    return sorted(_REGISTRY)


def default_extractors(names: Optional[List[str]] = None) -> List[FeatureExtractor]:
    """Fresh default-configured instances (all, or the given subset)."""
    return [get_extractor(n) for n in (names if names is not None else all_extractors())]


def parse_feature_string(kind: str, text: str) -> FeatureVector:
    """Module-level alias of :meth:`FeatureVector.from_string`."""
    return FeatureVector.from_string(kind, text)
