"""Superficial ("naive") similarity signature (paper §4.6).

"Extract image signature with 25 representative pixels, each in R, G, B.
For each of 25 locations over image take 5*5 matrix & find mean pixel value
for matrix."  The implementation rescales to 300x300 (nearest neighbour)
and averages a window of half-width ``sampleSize=15`` around each of the
5x5 grid points -- shared with the key-frame extractor, which uses the very
same signature as its frame distance (§4.1 compares "rescaled IVersions").
"""

from __future__ import annotations

import numpy as np

from repro.features.base import FeatureExtractor, FeatureVector, register_extractor
from repro.imaging.image import Image
from repro.video.keyframes import BASE_SIZE, GRID, SAMPLE_SIZE, frame_signature

__all__ = ["NaiveSignature"]


@register_extractor
class NaiveSignature(FeatureExtractor):
    """§4.6 extractor: 25 mean-RGB points flattened to a 75-vector."""

    name = "naive"
    tag = "NaiveVector"

    def __init__(self, base_size: int = BASE_SIZE, grid: int = GRID, sample_size: int = SAMPLE_SIZE):
        if grid < 1:
            raise ValueError("grid must be >= 1")
        self.base_size = base_size
        self.grid = grid
        self.sample_size = sample_size

    def extract(self, image: Image) -> FeatureVector:
        sig = frame_signature(image, self.base_size, self.grid, self.sample_size)
        return FeatureVector(kind=self.name, values=sig.ravel(), tag=self.tag)

    def distance(self, a: FeatureVector, b: FeatureVector) -> float:
        """Sum over grid points of the Euclidean distance between mean colors.

        This is the same scalar the key-frame extractor thresholds at 800.
        """
        self._check_pair(a, b)
        pa = a.values.reshape(-1, 3)
        pb = b.values.reshape(-1, 3)
        return float(np.sum(np.sqrt(np.sum((pa - pb) ** 2, axis=1))))

    def batch_distance(self, q: FeatureVector, matrix: np.ndarray) -> np.ndarray:
        """Vectorized per-grid-point color distances, summed per candidate."""
        m = self._check_batch(q, matrix)
        pq = q.values.reshape(-1, 3)
        pm = m.reshape(m.shape[0], -1, 3)
        return np.sqrt(((pm - pq) ** 2).sum(axis=2)).sum(axis=1)
