"""Tamura texture features.

The paper stores a ``tamura`` string per key frame; the §5.1 dump --
``Tamura 18 14620.0 44.25 1098.0 234.0 ... 258.0`` -- is an 18-vector:
coarseness, contrast, and a 16-bin directionality histogram, exactly the
layout LIRE's Tamura implementation produces.

The three measures follow Tamura, Mori & Yamawaki (1978):

- **Coarseness**: at every pixel, averages over 2^k windows are compared
  with neighbouring windows at distance 2^(k-1); the k maximizing the
  difference wins and coarseness is the mean of 2^k_best.  Window averages
  use an integral image, so the whole measure is O(K * pixels).
- **Contrast**: sigma / alpha4^(1/4) with alpha4 the kurtosis mu4/sigma^4 --
  spread of the gray histogram sharpened by its polarization.
- **Directionality**: a 16-bin histogram of gradient angles over pixels
  with meaningful gradient magnitude (Prewitt operators, as in Tamura's
  original).
"""

from __future__ import annotations

import numpy as np

from repro.features.base import FeatureExtractor, FeatureVector, register_extractor
from repro.imaging import accel
from repro.imaging.filters import convolve2d
from repro.imaging.image import Image

__all__ = ["TamuraTexture", "coarseness", "tamura_contrast", "directionality"]

_PREWITT_X = np.array([[-1.0, 0.0, 1.0], [-1.0, 0.0, 1.0], [-1.0, 0.0, 1.0]])
_PREWITT_Y = _PREWITT_X.T.copy()


def _integral(a: np.ndarray) -> np.ndarray:
    """Zero-padded summed-area table: ii[y, x] = sum of a[:y, :x]."""
    ii = np.zeros((a.shape[0] + 1, a.shape[1] + 1))
    np.cumsum(np.cumsum(a, axis=0), axis=1, out=ii[1:, 1:])
    return ii


def _window_mean(ii: np.ndarray, half: int, h: int, w: int) -> np.ndarray:
    """Mean over the (2*half)^2 window centred at each pixel (clipped)."""
    ys = np.arange(h)
    xs = np.arange(w)
    y0 = np.clip(ys - half, 0, h)[:, np.newaxis]
    y1 = np.clip(ys + half, 0, h)[:, np.newaxis]
    x0 = np.clip(xs - half, 0, w)[np.newaxis, :]
    x1 = np.clip(xs + half, 0, w)[np.newaxis, :]
    area = (y1 - y0) * (x1 - x0)
    if accel.fast_paths_enabled():
        # edge-padding turns the clipped gathers ii[clip(y +/- half), ...]
        # into four contiguous slices of the same values
        p = np.pad(ii, half, mode="edge")
        total = (
            p[2 * half : 2 * half + h, 2 * half : 2 * half + w]
            - p[:h, 2 * half : 2 * half + w]
            - p[2 * half : 2 * half + h, :w]
            + p[:h, :w]
        )
    else:
        total = ii[y1, x1] - ii[y0, x1] - ii[y1, x0] + ii[y0, x0]
    return total / np.maximum(area, 1)


def coarseness(gray: np.ndarray, max_k: int = 5) -> float:
    """Tamura coarseness: mean over pixels of the best window size 2^k."""
    a = np.asarray(gray, dtype=np.float64)
    if a.ndim != 2:
        raise ValueError("coarseness expects a 2-D gray array")
    h, w = a.shape
    max_k = max(1, min(max_k, int(np.floor(np.log2(min(h, w)))) - 1))
    ii = _integral(a)

    best_e = np.full((h, w), -1.0)
    best_size = np.ones((h, w))
    for k in range(1, max_k + 1):
        half = 2 ** (k - 1)
        mean_k = _window_mean(ii, half, h, w)
        # horizontal / vertical differences of window means at distance 2^(k-1)
        eh = np.zeros((h, w))
        ev = np.zeros((h, w))
        if w > 2 * half:
            eh[:, half : w - half] = np.abs(mean_k[:, 2 * half :] - mean_k[:, : w - 2 * half])
        if h > 2 * half:
            ev[half : h - half, :] = np.abs(mean_k[2 * half :, :] - mean_k[: h - 2 * half, :])
        e = np.maximum(eh, ev)
        better = e > best_e
        best_e[better] = e[better]
        best_size[better] = 2.0**k
    return float(best_size.mean())


def tamura_contrast(gray: np.ndarray) -> float:
    """sigma / kurtosis^(1/4); zero for constant images."""
    a = np.asarray(gray, dtype=np.float64).ravel()
    mu = a.mean()
    if accel.fast_paths_enabled():
        d2 = np.square(a - mu)
        sigma2 = d2.mean()
        if sigma2 < 1e-12:
            return 0.0
        mu4 = np.mean(np.square(d2))
    else:
        sigma2 = np.mean((a - mu) ** 2)
        if sigma2 < 1e-12:
            return 0.0
        mu4 = np.mean((a - mu) ** 4)
    alpha4 = mu4 / (sigma2**2)
    return float(np.sqrt(sigma2) / alpha4**0.25)


def _prewitt_sliced(a: np.ndarray):
    """Prewitt gradients via shifted slices (gray values are integers, so
    the regrouped sums are exact -- identical to the convolution path)."""
    h, w = a.shape
    p = np.pad(a, 1, mode="reflect") if min(h, w) > 1 else np.pad(a, 1)
    rowsum = p[:-2, :] + p[1:-1, :] + p[2:, :]
    colsum = p[:, :-2] + p[:, 1:-1] + p[:, 2:]
    gx = rowsum[:, :-2] - rowsum[:, 2:]
    gy = colsum[:-2, :] - colsum[2:, :]
    return gx, gy


def directionality(gray: np.ndarray, bins: int = 16, threshold: float = 12.0) -> np.ndarray:
    """16-bin histogram of gradient direction over sufficiently-edgy pixels.

    Angles are folded into [0, pi) (a direction, not an orientation sign).
    The returned histogram holds raw pixel counts, like the paper's dump.
    """
    a = np.asarray(gray, dtype=np.float64)
    if accel.fast_paths_enabled():
        gx, gy = _prewitt_sliced(a)
    else:
        gx = convolve2d(a, _PREWITT_X)
        gy = convolve2d(a, _PREWITT_Y)
    mag = (np.abs(gx) + np.abs(gy)) / 2.0
    theta = np.mod(np.arctan2(gy, gx) + np.pi / 2.0, np.pi)  # edge direction
    strong = mag > threshold
    idx = np.minimum((theta[strong] * bins / np.pi).astype(np.int64), bins - 1)
    return np.bincount(idx, minlength=bins).astype(np.float64)


@register_extractor
class TamuraTexture(FeatureExtractor):
    """18-vector: ``[coarseness, contrast, dir_0 .. dir_15]``."""

    name = "tamura"
    tag = "Tamura"

    def __init__(self, bins: int = 16, edge_threshold: float = 12.0, max_k: int = 5):
        if bins < 2:
            raise ValueError("bins must be >= 2")
        self.bins = bins
        self.edge_threshold = edge_threshold
        self.max_k = max_k

    def extract(self, image: Image) -> FeatureVector:
        gray = image.gray()
        g = gray.astype(np.float64)
        values = np.empty(2 + self.bins)
        values[0] = coarseness(g, max_k=self.max_k)
        values[1] = tamura_contrast(g)
        values[2:] = directionality(g, bins=self.bins, threshold=self.edge_threshold)
        return FeatureVector(kind=self.name, values=values, tag=self.tag)

    def distance(self, a: FeatureVector, b: FeatureVector) -> float:
        """Canberra on (coarseness, contrast) + L1 on normalized direction hist."""
        self._check_pair(a, b)
        head_a, head_b = a.values[:2], b.values[:2]
        denom = np.abs(head_a) + np.abs(head_b)
        mask = denom > 1e-12
        d = float(np.sum(np.abs(head_a - head_b)[mask] / denom[mask]))
        ha = a.values[2:] / max(1e-12, a.values[2:].sum())
        hb = b.values[2:] / max(1e-12, b.values[2:].sum())
        return d + float(np.abs(ha - hb).sum())

    def batch_distance(self, q: FeatureVector, matrix: np.ndarray) -> np.ndarray:
        """Vectorized head-Canberra + normalized-histogram-L1 distances."""
        m = self._check_batch(q, matrix)
        return self.batch_distance_prepared(q, self.prepare_matrix(m))

    def prepare_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Raw (coarseness, contrast) head + row-normalized histograms."""
        m = np.asarray(matrix, dtype=np.float64)
        out = m.copy()
        out[:, 2:] = m[:, 2:] / np.maximum(m[:, 2:].sum(axis=1), 1e-12)[:, np.newaxis]
        return out

    def batch_distance_prepared(self, q: FeatureVector, prepared: np.ndarray) -> np.ndarray:
        from repro.similarity.measures import canberra_batch

        m = self._check_batch(q, prepared)
        head = canberra_batch(q.values[:2], m[:, :2])
        hq = q.values[2:] / max(1e-12, q.values[2:].sum())
        return head + np.abs(m[:, 2:] - hq).sum(axis=1)
