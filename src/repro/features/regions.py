"""Simple region growing (paper §4.8).

The pipeline reproduces the paper's preprocessor and labelling loop:

1. convert to gray with the ``{0.114, 0.587, 0.299}`` band-combine matrix;
2. binarize at the histogram's minimum-fuzziness threshold (JAI's
   ``getMinFuzzinessThreshold``);
3. morphologically clean with the 5x5 kernel: dilate, erode, erode, dilate
   (a close followed by an open);
4. label connected components of the binary image with a classic
   stack-based region grow (8-connectivity: the pseudo-code scans the full
   ``-1..1`` neighbour box).  Components of 0-valued (background) pixels
   whose seed is a 0 pixel increment the hole counter, exactly as the
   listing's ``if (pixels[w][h]==0) numhole++``.

The feature is ``[numberOfRegions, numHoles, majorRegions]`` where a major
region covers at least ``major_fraction`` of the frame (the paper stores
``MAJORREGIONS`` as a NUMBER column; its sample query frame yields 2).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.features.base import FeatureExtractor, FeatureVector, register_extractor
from repro.imaging import accel
from repro.imaging.image import Image
from repro.imaging.morphology import PAPER_KERNEL, binary_dilate, binary_erode
from repro.imaging.threshold import binarize

__all__ = ["SimpleRegionGrowing", "RegionGrowingResult", "label_regions", "preprocess_binary"]

_NEIGHBORS_8 = [(-1, -1), (-1, 0), (-1, 1), (0, -1), (0, 1), (1, -1), (1, 0), (1, 1)]
_NEIGHBORS_4 = [(-1, 0), (0, -1), (0, 1), (1, 0)]


@dataclass(frozen=True)
class RegionGrowingResult:
    """Labelling outcome: label map plus the §4.8 counters."""

    labels: np.ndarray
    n_regions: int
    n_holes: int
    region_sizes: Dict[int, int]

    def major_regions(self, min_pixels: int) -> int:
        """Number of regions with at least ``min_pixels`` pixels."""
        return sum(1 for size in self.region_sizes.values() if size >= min_pixels)


def label_regions(binary: np.ndarray, connectivity: int = 8) -> RegionGrowingResult:
    """Region labelling over a binary image (both pixel values).

    Components are maximal same-value regions.  Every component gets a label
    starting at 1, assigned in raster-scan order of the component's first
    pixel (exactly what the paper's seed-scan region grow produces);
    components seeded on a 0 (background) pixel also count as holes,
    following the paper's listing.  The fast path labels with
    ``scipy.ndimage``; the reference path is the paper's stack-based grow.
    Both yield identical results.
    """
    if connectivity not in (4, 8):
        raise ValueError("connectivity must be 4 or 8")
    pixels = np.asarray(binary)
    if pixels.ndim != 2:
        raise ValueError("label_regions expects a 2-D array")
    pixels = pixels.astype(np.uint8)
    if accel.fast_paths_enabled() and accel.HAVE_SCIPY:
        return _label_regions_scipy(pixels, connectivity)
    return _label_regions_reference(pixels, connectivity)


def _label_regions_scipy(pixels: np.ndarray, connectivity: int) -> RegionGrowingResult:
    """Connected components via ``scipy.ndimage.label``, renumbered to match
    the reference implementation's raster-scan label order."""
    import scipy.ndimage as ndimage

    structure = np.ones((3, 3), dtype=bool)
    if connectivity == 4:
        structure = np.array([[0, 1, 0], [1, 1, 1], [0, 1, 0]], dtype=bool)

    h, w = pixels.shape
    if pixels.size == 0:
        return RegionGrowingResult(
            labels=np.full((h, w), -1, dtype=np.int32),
            n_regions=0,
            n_holes=0,
            region_sizes={},
        )
    # one labelling per distinct pixel value: components are maximal
    # same-value regions, so values must not merge across each other
    combined = np.zeros((h, w), dtype=np.int64)
    hole_values: Dict[int, bool] = {}
    offset = 0
    for value in np.unique(pixels):
        lab, n = ndimage.label(pixels == value, structure=structure)
        combined[lab > 0] = lab[lab > 0] + offset
        for comp in range(offset + 1, offset + n + 1):
            hole_values[comp] = value == 0
        offset += n

    # renumber so labels follow the raster-scan order of each component's
    # first pixel, matching the reference seed loop
    flat = combined.ravel()
    comp_ids, first_flat = np.unique(flat, return_index=True)
    order = np.argsort(first_flat, kind="stable")
    rank = np.empty(comp_ids.size, dtype=np.int32)
    rank[order] = np.arange(1, comp_ids.size + 1)
    lookup = np.zeros(int(comp_ids.max()) + 1, dtype=np.int32)
    lookup[comp_ids] = rank
    labels = lookup[flat].reshape(h, w)

    counts = np.bincount(labels.ravel())
    sizes = {int(label): int(counts[label]) for label in range(1, counts.size)}
    n_holes = sum(
        1
        for comp, is_hole in hole_values.items()
        if is_hole and lookup[comp] > 0
    )
    return RegionGrowingResult(
        labels=labels,
        n_regions=len(sizes),
        n_holes=n_holes,
        region_sizes=sizes,
    )


def _label_regions_reference(pixels: np.ndarray, connectivity: int) -> RegionGrowingResult:
    """The paper's stack-based region grow (reference / no-SciPy path)."""
    neighbors = _NEIGHBORS_8 if connectivity == 8 else _NEIGHBORS_4
    h, w = pixels.shape
    labels = np.full((h, w), -1, dtype=np.int32)
    n_regions = 0
    n_holes = 0
    sizes: Dict[int, int] = {}

    for y in range(h):
        for x in range(w):
            if labels[y, x] >= 0:
                continue
            n_regions += 1
            if pixels[y, x] == 0:
                n_holes += 1
            label = n_regions
            value = pixels[y, x]
            labels[y, x] = label
            count = 1
            stack = deque([(y, x)])
            while stack:
                cy, cx = stack.popleft()
                for dy, dx in neighbors:
                    ny, nx = cy + dy, cx + dx
                    if 0 <= ny < h and 0 <= nx < w and labels[ny, nx] < 0 and pixels[ny, nx] == value:
                        labels[ny, nx] = label
                        count += 1
                        stack.append((ny, nx))
            sizes[label] = count
    return RegionGrowingResult(labels=labels, n_regions=n_regions, n_holes=n_holes, region_sizes=sizes)


def preprocess_binary(image: Image, threshold: float = None) -> np.ndarray:
    """§4.8 preprocessor: gray -> fuzzy-threshold binarize -> close -> open."""
    gray = image.gray()
    binary = binarize(gray, threshold)
    binary = binary_dilate(binary, PAPER_KERNEL)
    binary = binary_erode(binary, PAPER_KERNEL)
    binary = binary_erode(binary, PAPER_KERNEL)
    binary = binary_dilate(binary, PAPER_KERNEL)
    return binary


@register_extractor
class SimpleRegionGrowing(FeatureExtractor):
    """§4.8 extractor: ``[n_regions, n_holes, major_regions]``."""

    name = "regions"
    tag = "Regions"

    def __init__(self, major_fraction: float = 0.05, connectivity: int = 8):
        if not 0 < major_fraction <= 1:
            raise ValueError("major_fraction must be in (0, 1]")
        self.major_fraction = major_fraction
        self.connectivity = connectivity

    def analyze(self, image: Image) -> RegionGrowingResult:
        """Run the full pipeline and return the labelling result."""
        binary = preprocess_binary(image)
        return label_regions(binary, self.connectivity)

    def extract(self, image: Image) -> FeatureVector:
        result = self.analyze(image)
        min_pixels = int(self.major_fraction * image.width * image.height)
        values = np.array(
            [result.n_regions, result.n_holes, result.major_regions(min_pixels)],
            dtype=np.float64,
        )
        return FeatureVector(kind=self.name, values=values, tag=self.tag)

    def distance(self, a: FeatureVector, b: FeatureVector) -> float:
        """Canberra distance over the three counters."""
        self._check_pair(a, b)
        denom = np.abs(a.values) + np.abs(b.values)
        mask = denom > 1e-12
        return float(np.sum(np.abs(a.values - b.values)[mask] / denom[mask]))

    def batch_distance(self, q: FeatureVector, matrix: np.ndarray) -> np.ndarray:
        """Vectorized Canberra distances over the three counters."""
        from repro.similarity.measures import canberra_batch

        return canberra_batch(q.values, self._check_batch(q, matrix))
