"""Gabor wavelet texture (paper §4.4).

A bank of ``M`` scales x ``N`` orientations of Gabor filters is applied to
the gray frame; the feature is the mean and standard deviation of each
filter's response magnitude -- 2*M*N values.  With the paper's M=5, N=6 the
vector has 60 entries, matching the §5.1 dump (``gabor 60 8.7568 0.0935
...``: interleaved mean/std pairs).

Filters follow Manjunath & Ma (1996): center frequencies log-spaced in
``[Ul, Uh]``, Gaussian envelopes sized so neighbouring filters intersect at
half peak magnitude.  Filtering happens in the frequency domain with
single-sided (analytic) transfer functions, so the response magnitude is the
local texture energy envelope; per-image-size transfer stacks are cached.
"""

from __future__ import annotations

import threading
from typing import Dict, Tuple

import numpy as np

from repro.features.base import FeatureExtractor, FeatureVector, register_extractor
from repro.imaging import accel
from repro.imaging.image import Image

__all__ = ["GaborTexture", "gabor_filter_bank", "gabor_responses"]


def gabor_filter_bank(
    shape: Tuple[int, int],
    scales: int = 5,
    orientations: int = 6,
    ul: float = 0.05,
    uh: float = 0.4,
) -> np.ndarray:
    """Frequency-domain Gabor transfer functions for an image of ``shape``.

    Returns a real float64 array of shape ``(scales * orientations, h, w)``
    laid out scale-major (filter ``m * orientations + n``), defined on the
    unshifted FFT grid so it can multiply ``np.fft.fft2(image)`` directly.
    """
    if scales < 2:
        raise ValueError("scales must be >= 2")
    if orientations < 1:
        raise ValueError("orientations must be >= 1")
    if not 0 < ul < uh <= 0.5:
        raise ValueError("need 0 < ul < uh <= 0.5 (cycles/pixel)")
    h, w = shape
    fy = np.fft.fftfreq(h)[:, np.newaxis]  # cycles/pixel
    fx = np.fft.fftfreq(w)[np.newaxis, :]

    a = (uh / ul) ** (1.0 / (scales - 1))
    sqrt2ln2 = np.sqrt(2.0 * np.log(2.0))
    filters = np.empty((scales * orientations, h, w))
    for m in range(scales):
        f0 = uh / (a ** (scales - 1 - m))  # ul .. uh, ascending
        sigma_u = ((a - 1.0) * f0) / ((a + 1.0) * sqrt2ln2)
        sigma_v = np.tan(np.pi / (2.0 * orientations)) * f0 / sqrt2ln2
        for n in range(orientations):
            theta = np.pi * n / orientations
            # rotate the frequency grid into the filter's frame
            u = fx * np.cos(theta) + fy * np.sin(theta)
            v = -fx * np.sin(theta) + fy * np.cos(theta)
            g = np.exp(-0.5 * (((u - f0) / sigma_u) ** 2 + (v / sigma_v) ** 2))
            filters[m * orientations + n] = g
    return filters


_BANK_CACHE: Dict[Tuple, np.ndarray] = {}
_BANK_LOCK = threading.Lock()  # web threads and pool workers share the cache


def _cached_bank(shape, scales, orientations, ul, uh) -> np.ndarray:
    key = (shape, scales, orientations, ul, uh)
    bank = _BANK_CACHE.get(key)
    if bank is None:
        bank = gabor_filter_bank(shape, scales, orientations, ul, uh)
        with _BANK_LOCK:
            # keep the cache from growing without bound across many image sizes
            if len(_BANK_CACHE) > 8:
                _BANK_CACHE.clear()
            _BANK_CACHE[key] = bank
    return bank


def gabor_responses(
    gray: np.ndarray,
    scales: int = 5,
    orientations: int = 6,
    ul: float = 0.05,
    uh: float = 0.4,
) -> np.ndarray:
    """Response magnitude per filter: shape ``(scales * orientations, h, w)``."""
    a = np.asarray(gray, dtype=np.float64)
    if a.ndim != 2:
        raise ValueError("gabor_responses expects a 2-D gray array")
    bank = _cached_bank(a.shape, scales, orientations, ul, uh)
    spectrum = np.fft.fft2(a)
    if accel.fast_paths_enabled() and accel.HAVE_SCIPY:
        import scipy.fft as sfft

        # multiply into a preallocated complex stack (the bank is real, so
        # real and imaginary parts scale independently), then run one
        # batched inverse transform over the filter axis
        prod = np.empty(bank.shape, dtype=np.complex128)
        np.multiply(bank, spectrum.real, out=prod.real)
        np.multiply(bank, spectrum.imag, out=prod.imag)
        return np.abs(sfft.ifft2(prod, axes=(-2, -1), overwrite_x=True))
    out = np.empty_like(bank)
    for i in range(bank.shape[0]):
        out[i] = np.abs(np.fft.ifft2(spectrum * bank[i]))
    return out


@register_extractor
class GaborTexture(FeatureExtractor):
    """§4.4 extractor: interleaved ``[mean, std]`` per filter (60-dim default)."""

    name = "gabor"
    tag = "gabor"

    def __init__(
        self,
        scales: int = 5,
        orientations: int = 6,
        ul: float = 0.05,
        uh: float = 0.4,
    ):
        self.scales = scales
        self.orientations = orientations
        self.ul = ul
        self.uh = uh

    @property
    def n_dims(self) -> int:
        return 2 * self.scales * self.orientations

    def extract(self, image: Image) -> FeatureVector:
        gray = image.gray()
        mags = gabor_responses(
            gray.astype(np.float64), self.scales, self.orientations, self.ul, self.uh
        )
        means = mags.mean(axis=(1, 2))
        stds = mags.std(axis=(1, 2))
        values = np.empty(self.n_dims)
        values[0::2] = means
        values[1::2] = stds
        return FeatureVector(kind=self.name, values=values, tag=self.tag)

    def distance(self, a: FeatureVector, b: FeatureVector) -> float:
        """Euclidean distance (the standard measure for Gabor energy vectors)."""
        self._check_pair(a, b)
        return float(np.sqrt(np.sum((a.values - b.values) ** 2)))

    def batch_distance(self, q: FeatureVector, matrix: np.ndarray) -> np.ndarray:
        """Vectorized Euclidean distances against a stacked matrix."""
        from repro.similarity.measures import l2_batch

        return l2_batch(q.values, self._check_batch(q, matrix))
