"""Simple color histogram (paper §4.5).

"The color space of frame is quantized into a finite number of discrete
levels.  Each of this level becomes bin in the histogram."  The paper's
sample dump (``RGB 256 19401 2570 ...``) shows a 256-bin histogram of RGB
frames whose bins are pixel counts.

The default quantizer maps each RGB pixel to one of 256 product bins
(8 levels of R x 8 of G x 4 of B, the classic RGB-256 layout); an ``HSV``
mode (8x4x2 = 64 bins) matches the correlogram's color space.
"""

from __future__ import annotations

import numpy as np

from repro.features.base import FeatureExtractor, FeatureVector, register_extractor
from repro.imaging.color import quantize_hsv, quantize_uniform
from repro.imaging.image import Image

__all__ = ["SimpleColorHistogram"]


@register_extractor
class SimpleColorHistogram(FeatureExtractor):
    """256-bin quantized RGB histogram (or 64-bin HSV histogram).

    ``normalize=False`` keeps raw pixel counts, matching the paper's dump;
    the distance always normalizes internally so frame size cancels out.
    """

    name = "sch"
    tag = "RGB"

    def __init__(self, histogram_type: str = "RGB", normalize: bool = False):
        histogram_type = histogram_type.upper()
        if histogram_type not in ("RGB", "HSV"):
            raise ValueError(f"histogram_type must be 'RGB' or 'HSV', got {histogram_type!r}")
        self.histogram_type = histogram_type
        self.normalize = normalize
        self.tag = histogram_type

    @property
    def n_bins(self) -> int:
        return 256 if self.histogram_type == "RGB" else 64

    def _bin_indices(self, rgb: np.ndarray) -> np.ndarray:
        if self.histogram_type == "RGB":
            r = quantize_uniform(rgb[..., 0], 8)
            g = quantize_uniform(rgb[..., 1], 8)
            b = quantize_uniform(rgb[..., 2], 4)
            return (r * 8 + g) * 4 + b
        return quantize_hsv(rgb, h_bins=8, s_bins=4, v_bins=2)

    def extract(self, image: Image) -> FeatureVector:
        rgb = image.to_rgb().pixels
        idx = self._bin_indices(rgb)
        hist = np.bincount(idx.ravel(), minlength=self.n_bins).astype(np.float64)
        if self.normalize:
            hist = hist / max(1.0, hist.sum())
        return FeatureVector(kind=self.name, values=hist, tag=self.tag)

    def distance(self, a: FeatureVector, b: FeatureVector) -> float:
        """L1 distance between the L1-normalized histograms (in [0, 2])."""
        self._check_pair(a, b)
        pa = a.values / max(1e-12, a.values.sum())
        pb = b.values / max(1e-12, b.values.sum())
        return float(np.abs(pa - pb).sum())

    def batch_distance(self, q: FeatureVector, matrix: np.ndarray) -> np.ndarray:
        """Vectorized normalized-histogram L1 distances."""
        m = self._check_batch(q, matrix)
        return self.batch_distance_prepared(q, self.prepare_matrix(m))

    def prepare_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Row-normalized histograms (the per-call hot spot, done once)."""
        m = np.asarray(matrix, dtype=np.float64)
        return m / np.maximum(m.sum(axis=1), 1e-12)[:, np.newaxis]

    def batch_distance_prepared(self, q: FeatureVector, prepared: np.ndarray) -> np.ndarray:
        m = self._check_batch(q, prepared)
        pq = q.values / max(1e-12, q.values.sum())
        return np.abs(m - pq).sum(axis=1)
