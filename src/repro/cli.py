"""Command-line interface: ``python -m repro <command>``.

Wraps the library's main entry points so the system is usable without
writing Python:

- ``demo-corpus``  -- render a synthetic corpus into ``.rvf`` video files
- ``ingest``       -- add ``.rvf`` videos to a durable library
- ``list``         -- show the library's videos
- ``search``       -- query the library with an image file (PPM/PGM/BMP)
- ``delete``       -- remove a video
- ``export-frame`` -- write a stored key frame to an image file
- ``serve``        -- start the HTTP facade on a library
- ``snapshot``     -- manage a library's mmap snapshot (write/info/verify)
- ``shard``        -- split a library into scatter-gather shard snapshots
- ``table1``       -- run the paper's Table 1 experiment
- ``lint``         -- run the reprolint static analyzer over source paths

Every command prints plain text and exits non-zero on errors.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import VideoRetrievalSystem

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Content-based video retrieval (Patel & Meshram, IJMA 2012)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("demo-corpus", help="render synthetic .rvf videos")
    p.add_argument("out_dir", help="directory to write .rvf files into")
    p.add_argument("--per-category", type=int, default=2)
    p.add_argument("--seed", type=int, default=2012)
    p.add_argument("--shots", type=int, default=3)
    p.add_argument("--frames-per-shot", type=int, default=6)

    p = sub.add_parser("ingest", help="add .rvf videos to a library")
    p.add_argument("library", help="library database path (.rdb)")
    p.add_argument("videos", nargs="+", help=".rvf files to ingest")
    p.add_argument("--category", default=None,
                   help="category label (default: inferred from file name)")
    p.add_argument("--workers", type=int, default=1,
                   help="feature-extraction worker processes "
                        "(1 = serial, 0 = auto-detect CPUs)")

    p = sub.add_parser("list", help="list the library's videos")
    p.add_argument("library")

    p = sub.add_parser("search", help="query by image file")
    p.add_argument("library")
    p.add_argument("image", help="query image (PPM/PGM/BMP)")
    p.add_argument("--top-k", type=int, default=10)
    p.add_argument("--features", default=None,
                   help="comma-separated feature names (default: combined)")
    p.add_argument("--no-index", action="store_true",
                   help="full scan instead of range-finder pruning")
    p.add_argument("--ann", action="store_true",
                   help="sublinear retrieval: probe the IVF inverted-file "
                        "candidate index and re-rank exactly")
    p.add_argument("--ann-cells", type=int, default=16,
                   help="k-means cells of the IVF coarse quantizer")
    p.add_argument("--ann-nprobe", type=int, default=3,
                   help="cells probed per query (= cells: exact ranking)")
    p.add_argument("--shards", default=None, metavar="DIR",
                   help="serve the query from the shard set in DIR "
                        "(written by 'repro shard split'); the merged "
                        "ranking is identical to the unsharded one")
    p.add_argument("--explain", action="store_true",
                   help="print the query's explain payload as JSON "
                        "(candidate counts, pruning ratio, per-stage and "
                        "per-shard timings, cache/ANN decisions)")

    p = sub.add_parser("delete", help="delete a video by id")
    p.add_argument("library")
    p.add_argument("video_id", type=int)

    p = sub.add_parser("export-frame", help="write a stored key frame to a file")
    p.add_argument("library")
    p.add_argument("frame_id", type=int)
    p.add_argument("out", help="output image path (.ppm/.pgm/.bmp)")

    p = sub.add_parser("serve", help="serve the HTTP facade")
    p.add_argument("library")
    p.add_argument("--port", type=int, default=8765)
    p.add_argument("--admin-password", default=None)
    p.add_argument("--shards", default=None, metavar="DIR",
                   help="serve queries scatter-gather from the shard set "
                        "in DIR (written by 'repro shard split')")
    p.add_argument("--async", dest="async_serving", action="store_true",
                   help="serve through the asyncio front-end with query "
                        "micro-batching and admission control "
                        "(see docs/serving.md)")

    p = sub.add_parser(
        "shard",
        help="split a library into scatter-gather shards (see docs/sharding.md)",
    )
    hsub = p.add_subparsers(dest="shard_command", required=True)
    hp = hsub.add_parser(
        "split", help="partition the corpus into per-shard snapshots"
    )
    hp.add_argument("library", help="library database path (.rdb)")
    hp.add_argument("out_dir", help="directory for the shard snapshots")
    hp.add_argument("--shards", type=int, default=4, dest="n_shards",
                    help="number of partitions (default 4)")
    hp = hsub.add_parser("info", help="summarize a shard directory")
    hp.add_argument("shard_dir", help="directory holding shards.json")
    hp.add_argument("--json", action="store_true",
                    help="emit the summary as JSON")

    p = sub.add_parser(
        "snapshot", help="manage a library's mmap snapshot (see docs/snapshot.md)"
    )
    ssub = p.add_subparsers(dest="snapshot_command", required=True)
    sp = ssub.add_parser(
        "write", help="fold the WAL and rewrite the library's snapshot now"
    )
    sp.add_argument("library", help="library database path (.rdb)")
    sp.add_argument("--path", default=None,
                    help="snapshot file (default: LIBRARY.snap)")
    sp = ssub.add_parser("info", help="print a snapshot file's header summary")
    sp.add_argument("snapshot", help="snapshot file path (.snap)")
    sp.add_argument("--json", action="store_true",
                    help="emit the summary as JSON")
    sp = ssub.add_parser(
        "verify", help="recompute every section checksum (reads the whole file)"
    )
    sp.add_argument("snapshot", help="snapshot file path (.snap)")

    p = sub.add_parser("stats", help="show library counters and live metrics")
    p.add_argument("library", nargs="?", default=None,
                   help="library database path (.rdb)")
    p.add_argument("--dump", default=None,
                   help="read a saved metrics JSON dump instead of a library "
                        "(as written by 'repro stats LIB --json')")
    p.add_argument("--search-image", default=None,
                   help="run one query with this image first, so search "
                        "metrics carry samples")
    p.add_argument("--json", action="store_true",
                   help="emit the raw snapshot as JSON instead of a table")
    p.add_argument("--slow", action="store_true",
                   help="also print the slow-query log (newest first); "
                        "works live and from --dump files")

    p = sub.add_parser(
        "lint",
        help="run the reprolint static analyzer (see 'repro lint --help')",
        add_help=False,
    )
    p.add_argument("lint_args", nargs=argparse.REMAINDER)

    p = sub.add_parser("table1", help="run the paper's Table 1 experiment")
    p.add_argument("--videos-per-category", type=int, default=8)
    p.add_argument("--queries-per-category", type=int, default=6)
    p.add_argument("--seed", type=int, default=2012)
    p.add_argument("--no-index", action="store_true")

    return parser


def _open_system(
    path: str,
    admin_password: Optional[str] = None,
    workers: int = 1,
) -> "VideoRetrievalSystem":
    from repro.core.config import SystemConfig
    from repro.core.system import VideoRetrievalSystem

    config = None
    if admin_password or workers != 1:
        config = SystemConfig(admin_password=admin_password, workers=workers)
    return VideoRetrievalSystem.open(path, config)


def _cmd_demo_corpus(args: argparse.Namespace) -> int:
    from repro.video.codec import write_rvf
    from repro.video.generator import make_corpus

    os.makedirs(args.out_dir, exist_ok=True)
    corpus = make_corpus(
        videos_per_category=args.per_category,
        seed=args.seed,
        n_shots=args.shots,
        frames_per_shot=args.frames_per_shot,
    )
    for video in corpus:
        path = os.path.join(args.out_dir, f"{video.name}.rvf")
        write_rvf(video.frames, path)
        print(f"wrote {path} ({video.n_frames} frames, {video.category})")
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.video.codec import RvfReader

    system = _open_system(args.library, workers=args.workers)
    admin = system.login_admin()
    for path in args.videos:
        name = os.path.splitext(os.path.basename(path))[0]
        category = args.category or name.rsplit("_", 1)[0]
        frames = list(RvfReader.open(path))
        report = admin.add_video(frames, name=name, category=category)
        print(f"ingested {name}: video {report.video_id}, "
              f"{report.n_frames} frames -> {report.n_keyframes} key frames")
    admin.checkpoint()
    system.close()
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    system = _open_system(args.library)
    videos = system.list_videos()
    if not videos:
        print("(library is empty)")
    for v in videos:
        frames = system.key_frames_of(v["V_ID"])
        print(f"{v['V_ID']:4d}  {v['V_NAME']:<24} {str(v['CATEGORY']):<12} "
              f"{len(frames)} key frames")
    system.close()
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    from repro.imaging.image import read_image

    if args.ann:
        from repro.core.config import SystemConfig
        from repro.core.system import VideoRetrievalSystem

        config = SystemConfig(
            ann=True, ann_cells=args.ann_cells, ann_nprobe=args.ann_nprobe
        )
        system = VideoRetrievalSystem.open(args.library, config)
    else:
        system = _open_system(args.library)
    if args.shards:
        if args.ann:
            print("error: --ann cannot be combined with --shards",
                  file=sys.stderr)
            system.close()
            return 2
        from repro.sharding import attach_sharded_engine, read_manifest

        _, shard_paths = read_manifest(args.shards)
        attach_sharded_engine(system, shard_paths)
    query = read_image(args.image)
    features = args.features.split(",") if args.features else None
    results = system.search(
        query,
        features=features,
        top_k=args.top_k,
        use_index=not args.no_index,
    )
    print(f"{len(results)} hits "
          f"(pruned {results.pruning_fraction:.0%} of {results.n_total} frames)")
    if results.degraded_features:
        skipped = ", ".join(results.degraded_features)
        print(f"DEGRADED: skipped {skipped}; ranking uses the surviving "
              f"features with renormalized fusion weights")
    if results.degraded_shards:
        shards = ", ".join(str(s) for s in results.degraded_shards)
        print(f"DEGRADED: shards {shards} unavailable; partial ranking over "
              f"the surviving partitions")
    for row in results.to_rows():
        print(f"  #{row['rank']:2d}  {row['video']:<24} "
              f"[{row['category']}]  frame {row['frame_id']}  d={row['distance']}")
    if args.explain:
        import json

        print("explain:")
        print(json.dumps(results.explain, indent=2, sort_keys=True, default=str))
    system.close()
    return 0


def _cmd_delete(args: argparse.Namespace) -> int:
    system = _open_system(args.library)
    removed = system.login_admin().delete_video(args.video_id)
    print(f"deleted video {args.video_id} ({removed} key frames)")
    system.close()
    return 0


def _cmd_export_frame(args: argparse.Namespace) -> int:
    system = _open_system(args.library)
    image = system.get_key_frame(args.frame_id)
    image.save(args.out)
    print(f"wrote {args.out} ({image.width}x{image.height})")
    system.close()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:  # pragma: no cover - blocking loop
    from repro.web.server import make_server

    if args.shards:
        from repro.core.config import SystemConfig
        from repro.core.system import VideoRetrievalSystem
        from repro.sharding import sharded_config

        config = sharded_config(
            args.shards, SystemConfig(admin_password=args.admin_password)
        )
        system = VideoRetrievalSystem.open(args.library, config)
    else:
        system = _open_system(args.library, admin_password=args.admin_password)
    sharded = f", {system.config.shards} shards" if args.shards else ""
    try:
        if args.async_serving:
            from repro.serving import make_async_server

            async_server = make_async_server(system, port=args.port)
            print(f"serving {args.library} on http://127.0.0.1:{args.port} "
                  f"({system.n_videos()} videos{sharded}, asyncio batching)")
            async_server.serve_blocking()
        else:
            server, port = make_server(system, port=args.port)
            print(f"serving {args.library} on http://127.0.0.1:{port} "
                  f"({system.n_videos()} videos{sharded})")
            server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        system.close()
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.eval.table1 import PAPER_TABLE1, run_table1

    result = run_table1(
        videos_per_category=args.videos_per_category,
        queries_per_category=args.queries_per_category,
        seed=args.seed,
        use_index=not args.no_index,
    )
    print(result.to_text(paper=PAPER_TABLE1))
    print("combined wins at:", result.combined_wins())
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    from repro.obs import format_stats

    if (args.library is None) == (args.dump is None):
        print("error: stats needs a library path or --dump FILE (not both)",
              file=sys.stderr)
        return 2
    if args.dump is not None:
        with open(args.dump, "r", encoding="utf-8") as fh:
            snapshot = json.load(fh)
    else:
        system = _open_system(args.library)
        if args.search_image is not None:
            from repro.imaging.image import read_image

            system.search(read_image(args.search_image), top_k=10)
        snapshot = system.metrics()
        system.close()
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True, default=str))
    else:
        print(format_stats(snapshot))
    if args.slow:
        _print_slow_log(snapshot.get("slow_log"))
    return 0


def _print_slow_log(slow) -> None:
    """Render the slow-query section of a metrics snapshot as text."""
    if not slow:
        print("slow queries: (log disabled)")
        return
    print(f"slow queries: {slow.get('recorded_total', 0)} recorded "
          f"(threshold {slow.get('threshold_ms')} ms, "
          f"buffered {slow.get('buffered', 0)}/{slow.get('capacity')})")
    for entry in slow.get("recent") or []:
        trace = entry.get("trace_id") or "-"
        print(f"  {entry.get('ms'):>10} ms  kind={entry.get('kind')}  "
              f"trace={trace}  candidates={entry.get('candidates')}  "
              f"degraded={entry.get('degraded')}")


def _cmd_snapshot(args: argparse.Namespace) -> int:
    import json

    from repro.snapshot import CorruptSnapshotError, Snapshot, wal_depth

    if args.snapshot_command == "write":
        from repro.core.config import SystemConfig
        from repro.core.system import VideoRetrievalSystem

        config = SystemConfig(snapshot="auto", snapshot_path=args.path)
        system = VideoRetrievalSystem.open(args.library, config)
        try:
            path = system.write_snapshot()
        finally:
            system.close()
        print(f"wrote {path} ({os.path.getsize(path)} bytes, "
              f"{system.n_key_frames()} key frames)")
        return 0

    snap = Snapshot.open(args.snapshot)
    try:
        if args.snapshot_command == "info":
            summary = snap.info()
            meta = summary["meta"]
            summary["wal_depth"] = wal_depth(
                args.snapshot,
                (int(meta.get("generation", 0)),
                 int(meta.get("structure_generation", 0))),
            )
            if args.json:
                print(json.dumps(summary, indent=2, sort_keys=True))
            else:
                print(f"{summary['path']}: v{summary['version']}, "
                      f"{summary['file_size']} bytes, "
                      f"generation {meta.get('generation')}, "
                      f"wal_depth {summary['wal_depth']}")
                for s in summary["sections"]:
                    shape = "x".join(str(d) for d in s["shape"])
                    print(f"  {s['name']:<24} {s['dtype']:<8} {shape:>12} "
                          f"{s['nbytes']} bytes")
            return 0
        failures = snap.verify()
        if failures:
            raise CorruptSnapshotError(
                f"{args.snapshot}: checksum mismatch in "
                + ", ".join(failures)
            )
        print(f"{args.snapshot}: OK ({len(snap.section_names())} sections)")
        return 0
    finally:
        snap.close()


def _cmd_shard(args: argparse.Namespace) -> int:
    import json

    if args.shard_command == "split":
        from repro.sharding import split_library

        manifest = split_library(args.library, args.out_dir, args.n_shards)
        print(f"wrote {manifest.n_shards} shards to {args.out_dir}")
        for name in manifest.snapshots:
            path = os.path.join(args.out_dir, name)
            print(f"  {name}  {os.path.getsize(path)} bytes")
        return 0

    from repro.sharding import read_manifest
    from repro.snapshot import Snapshot

    manifest, paths = read_manifest(args.shard_dir)
    shards = []
    for index, path in enumerate(paths):
        snap = Snapshot.open(path)
        try:
            meta = snap.meta
            shards.append({
                "index": index,
                "snapshot": manifest.snapshots[index],
                "frames": int(meta.get("n_frames", 0)),
                "videos": len(meta.get("videos", {})),
                "bytes": os.path.getsize(path),
            })
        finally:
            snap.close()
    summary = {"n_shards": manifest.n_shards, "shards": shards}
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(f"{args.shard_dir}: {manifest.n_shards} shards, "
              f"{sum(s['frames'] for s in shards)} key frames")
        for s in shards:
            print(f"  shard {s['index']}: {s['snapshot']}  "
                  f"{s['videos']} videos, {s['frames']} frames, "
                  f"{s['bytes']} bytes")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.runner import main as lint_main

    return lint_main(args.lint_args)


_COMMANDS = {
    "demo-corpus": _cmd_demo_corpus,
    "lint": _cmd_lint,
    "ingest": _cmd_ingest,
    "list": _cmd_list,
    "search": _cmd_search,
    "delete": _cmd_delete,
    "export-frame": _cmd_export_frame,
    "stats": _cmd_stats,
    "snapshot": _cmd_snapshot,
    "shard": _cmd_shard,
    "serve": _cmd_serve,
    "table1": _cmd_table1,
}


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv[:1] == ["lint"]:
        # dispatch before argparse: REMAINDER would refuse leading --flags
        return _cmd_lint(argparse.Namespace(lint_args=argv[1:]))
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (OSError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except Exception as exc:  # database / format / resilience errors carry messages
        from repro.db.errors import DatabaseError
        from repro.imaging.image import ImageFormatError
        from repro.resilience import ResilienceError
        from repro.snapshot import SnapshotError
        from repro.video.codec import RvfError

        if isinstance(
            exc,
            (DatabaseError, RvfError, ImageFormatError, ResilienceError, SnapshotError),
        ):
            print(f"error: {exc}", file=sys.stderr)
            return 1
        raise


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
