"""SQL dialect: tokenizer, AST, and recursive-descent parser.

Supported statements (enough to run the paper's §3.4 DDL verbatim and the
system's whole workload):

- ``CREATE TABLE name (col TYPE [NOT NULL] [PRIMARY KEY] [ENABLE], ...,
  PRIMARY KEY (col, ...) [ENABLE])``
- ``DROP TABLE name``
- ``INSERT INTO name [(col, ...)] VALUES (expr, ...)``
- ``SELECT * | col, ... FROM name [WHERE expr] [ORDER BY col [ASC|DESC],
  ...] [LIMIT n]``
- ``UPDATE name SET col = expr, ... [WHERE expr]``
- ``DELETE FROM name [WHERE expr]``

WHERE supports comparisons, ``BETWEEN``, ``IN (...)``, ``LIKE`` (with ``%``
and ``_``), ``IS [NOT] NULL``, ``AND`` / ``OR`` / ``NOT`` and parentheses.
``?`` placeholders bind positional parameters, which is how BLOB values
travel.  Identifiers may be double-quoted, as in the paper's DDL.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.db.errors import SqlSyntaxError
from repro.db.schema import Column, TableSchema
from repro.db.types import type_from_name

__all__ = [
    "tokenize",
    "parse",
    "quote_ident",
    "build_select",
    "build_insert",
    "build_delete",
    "CreateTable",
    "DropTable",
    "Insert",
    "Select",
    "Aggregate",
    "Update",
    "Delete",
    "ColumnRef",
    "Literal",
    "Param",
    "Compare",
    "Between",
    "InList",
    "Like",
    "IsNull",
    "And",
    "Or",
    "Not",
    "OrderItem",
]

# ---------------------------------------------------------------------------
# tokenizer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>--[^\n]*)
  | (?P<number>-?(\d+(\.\d*)?([eE][+-]?\d+)?|\.\d+))
  | (?P<string>'(?:[^']|'')*')
  | (?P<qident>"[^"]+")
  | (?P<ident>[A-Za-z_][A-Za-z0-9_$#]*)
  | (?P<op><>|!=|<=|>=|=|<|>)
  | (?P<punct>[(),.*?;])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str  # 'number' | 'string' | 'ident' | 'op' | 'punct'
    value: str
    position: int

    def matches(self, kind: str, value: Optional[str] = None) -> bool:
        return self.kind == kind and (value is None or self.value == value)


def tokenize(text: str) -> List[Token]:
    """Token stream (whitespace and comments dropped)."""
    tokens: List[Token] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise SqlSyntaxError(f"unexpected character {text[pos]!r}", pos)
        kind = m.lastgroup
        value = m.group()
        if kind == "qident":
            tokens.append(Token("ident", value[1:-1].upper(), pos))
        elif kind == "ident":
            tokens.append(Token("ident", value.upper(), pos))
        elif kind not in ("ws", "comment"):
            tokens.append(Token(kind, value, pos))
        pos = m.end()
    return tokens


# ---------------------------------------------------------------------------
# AST nodes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnRef:
    name: str


@dataclass(frozen=True)
class Literal:
    value: object


@dataclass(frozen=True)
class Param:
    index: int  # 0-based position among the statement's '?' placeholders


Operand = Union[ColumnRef, Literal, Param]


@dataclass(frozen=True)
class Compare:
    op: str  # '=', '!=', '<', '<=', '>', '>='
    left: Operand
    right: Operand


@dataclass(frozen=True)
class Between:
    operand: Operand
    low: Operand
    high: Operand
    negated: bool = False


@dataclass(frozen=True)
class InList:
    operand: Operand
    items: Tuple[Operand, ...]
    negated: bool = False


@dataclass(frozen=True)
class Like:
    operand: Operand
    pattern: Operand
    negated: bool = False


@dataclass(frozen=True)
class IsNull:
    operand: Operand
    negated: bool = False


@dataclass(frozen=True)
class And:
    left: object
    right: object


@dataclass(frozen=True)
class Or:
    left: object
    right: object


@dataclass(frozen=True)
class Not:
    child: object


@dataclass(frozen=True)
class OrderItem:
    column: str
    descending: bool = False


@dataclass(frozen=True)
class CreateTable:
    schema: TableSchema


@dataclass(frozen=True)
class DropTable:
    table: str
    if_exists: bool = False


@dataclass(frozen=True)
class Insert:
    table: str
    columns: Tuple[str, ...]  # empty = schema order
    values: Tuple[Operand, ...]


@dataclass(frozen=True)
class Aggregate:
    """``COUNT(*)`` / ``COUNT(col)`` / ``MIN|MAX|SUM|AVG(col)``."""

    func: str  # 'COUNT', 'MIN', 'MAX', 'SUM', 'AVG'
    column: Optional[str]  # None only for COUNT(*)

    @property
    def label(self) -> str:
        return f"{self.func}({self.column or '*'})"


@dataclass(frozen=True)
class Select:
    table: str
    columns: Tuple[str, ...]  # empty = '*'
    where: Optional[object] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    aggregate: Optional[Aggregate] = None
    group_by: Tuple[str, ...] = ()


@dataclass(frozen=True)
class Update:
    table: str
    assignments: Tuple[Tuple[str, Operand], ...]
    where: Optional[object] = None


@dataclass(frozen=True)
class Delete:
    table: str
    where: Optional[object] = None


Statement = Union[CreateTable, DropTable, Insert, Select, Update, Delete]


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: List[Token], text: str):
        self.tokens = tokens
        self.text = text
        self.i = 0
        self.n_params = 0

    # -- plumbing -------------------------------------------------------------

    def _error(self, message: str) -> SqlSyntaxError:
        pos = self.tokens[self.i].position if self.i < len(self.tokens) else len(self.text)
        return SqlSyntaxError(message, pos)

    def peek(self) -> Optional[Token]:
        return self.tokens[self.i] if self.i < len(self.tokens) else None

    def advance(self) -> Token:
        if self.i >= len(self.tokens):
            raise self._error("unexpected end of statement")
        tok = self.tokens[self.i]
        self.i += 1
        return tok

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        tok = self.peek()
        if tok is not None and tok.matches(kind, value):
            self.i += 1
            return tok
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        tok = self.accept(kind, value)
        if tok is None:
            want = value or kind
            got = self.peek().value if self.peek() else "end of input"
            raise self._error(f"expected {want!r}, got {got!r}")
        return tok

    def accept_keyword(self, *words: str) -> bool:
        """Consume a keyword sequence like ('NOT', 'NULL') if present."""
        save = self.i
        for word in words:
            if not self.accept("ident", word):
                self.i = save
                return False
        return True

    def expect_keyword(self, *words: str) -> None:
        if not self.accept_keyword(*words):
            got = self.peek().value if self.peek() else "end of input"
            raise self._error(f"expected {' '.join(words)!r}, got {got!r}")

    # -- entry point ---------------------------------------------------------------

    def parse_statement(self) -> Statement:
        tok = self.peek()
        if tok is None:
            raise self._error("empty statement")
        dispatch = {
            "CREATE": self._create,
            "DROP": self._drop,
            "INSERT": self._insert,
            "SELECT": self._select,
            "UPDATE": self._update,
            "DELETE": self._delete,
        }
        handler = dispatch.get(tok.value if tok.kind == "ident" else "")
        if handler is None:
            raise self._error(f"unknown statement start {tok.value!r}")
        stmt = handler()
        self.accept("punct", ";")
        if self.peek() is not None:
            raise self._error(f"trailing input after statement: {self.peek().value!r}")
        return stmt

    # -- statements -----------------------------------------------------------------

    def _create(self) -> CreateTable:
        self.expect_keyword("CREATE", "TABLE")
        name = self.expect("ident").value
        self.expect("punct", "(")
        columns: List[Column] = []
        table_pk: List[str] = []
        while True:
            if self.accept_keyword("PRIMARY", "KEY"):
                self.expect("punct", "(")
                while True:
                    table_pk.append(self.expect("ident").value)
                    if not self.accept("punct", ","):
                        break
                self.expect("punct", ")")
                self.accept("ident", "ENABLE")
            else:
                columns.append(self._column_def())
            if not self.accept("punct", ","):
                break
        self.expect("punct", ")")

        if table_pk:
            known = {c.name for c in columns}
            for pk_col in table_pk:
                if pk_col not in known:
                    raise self._error(f"PRIMARY KEY references unknown column {pk_col!r}")
            columns = [
                Column(c.name, c.sql_type, nullable=c.nullable and c.name not in table_pk,
                       primary_key=c.primary_key or c.name in table_pk)
                for c in columns
            ]
        return CreateTable(TableSchema(name=name, columns=tuple(columns)))

    def _column_def(self) -> Column:
        name = self.expect("ident").value
        type_name = self.expect("ident").value
        # the paper's "ORD_ Video" splits into two idents; merge them
        if type_name == "ORD_" or (type_name.startswith("ORD") and type_name.endswith("_")):
            type_name += self.expect("ident").value
        arg = None
        if self.accept("punct", "("):
            arg_tok = self.expect("number")
            arg = int(float(arg_tok.value))
            self.expect("punct", ")")
        try:
            sql_type = type_from_name(type_name, arg)
        except Exception as exc:
            raise self._error(str(exc)) from exc
        nullable = True
        primary = False
        while True:
            if self.accept_keyword("NOT", "NULL"):
                nullable = False
            elif self.accept_keyword("PRIMARY", "KEY"):
                primary = True
            elif self.accept("ident", "ENABLE") or self.accept("ident", "NULL"):
                pass
            else:
                break
        return Column(name, sql_type, nullable=nullable, primary_key=primary)

    def _drop(self) -> DropTable:
        self.expect_keyword("DROP", "TABLE")
        if_exists = self.accept_keyword("IF", "EXISTS")
        name = self.expect("ident").value
        return DropTable(table=name, if_exists=if_exists)

    def _insert(self) -> Insert:
        self.expect_keyword("INSERT", "INTO")
        table = self.expect("ident").value
        columns: List[str] = []
        if self.accept("punct", "("):
            while True:
                columns.append(self.expect("ident").value)
                if not self.accept("punct", ","):
                    break
            self.expect("punct", ")")
        self.expect_keyword("VALUES")
        self.expect("punct", "(")
        values: List[Operand] = []
        while True:
            values.append(self._operand())
            if not self.accept("punct", ","):
                break
        self.expect("punct", ")")
        if columns and len(columns) != len(values):
            raise self._error(
                f"INSERT has {len(columns)} columns but {len(values)} values"
            )
        return Insert(table=table, columns=tuple(columns), values=tuple(values))

    _AGGREGATES = ("COUNT", "MIN", "MAX", "SUM", "AVG")

    def _at_aggregate(self) -> bool:
        tok = self.peek()
        return (
            tok is not None
            and tok.kind == "ident"
            and tok.value in self._AGGREGATES
            and self.i + 1 < len(self.tokens)
            and self.tokens[self.i + 1].matches("punct", "(")
        )

    def _parse_aggregate(self) -> Aggregate:
        func = self.advance().value
        self.expect("punct", "(")
        if self.accept("punct", "*"):
            if func != "COUNT":
                raise self._error(f"{func}(*) is not valid; only COUNT(*)")
            column = None
        else:
            column = self.expect("ident").value
        self.expect("punct", ")")
        return Aggregate(func=func, column=column)

    def _select(self) -> Select:
        self.expect_keyword("SELECT")
        columns: List[str] = []
        aggregate = None
        if self.accept("punct", "*"):
            pass
        else:
            while True:
                if self._at_aggregate():
                    if aggregate is not None:
                        raise self._error("only one aggregate per SELECT is supported")
                    aggregate = self._parse_aggregate()
                else:
                    columns.append(self.expect("ident").value)
                if not self.accept("punct", ","):
                    break
        self.expect_keyword("FROM")
        table = self.expect("ident").value
        where = self._where_clause()
        group_by: List[str] = []
        if self.accept_keyword("GROUP", "BY"):
            while True:
                group_by.append(self.expect("ident").value)
                if not self.accept("punct", ","):
                    break
        if columns and aggregate is not None and not group_by:
            raise self._error("plain columns beside an aggregate require GROUP BY")
        if group_by:
            if aggregate is None:
                raise self._error("GROUP BY requires an aggregate in the select list")
            missing = [c for c in columns if c not in group_by]
            if missing:
                raise self._error(
                    f"selected column(s) {missing} must appear in GROUP BY"
                )
        order: List[OrderItem] = []
        if self.accept_keyword("ORDER", "BY"):
            while True:
                col = self.expect("ident").value
                descending = False
                if self.accept("ident", "DESC"):
                    descending = True
                else:
                    self.accept("ident", "ASC")
                order.append(OrderItem(column=col, descending=descending))
                if not self.accept("punct", ","):
                    break
        limit = None
        if self.accept_keyword("LIMIT"):
            limit = int(float(self.expect("number").value))
            if limit < 0:
                raise self._error("LIMIT must be non-negative")
        if aggregate is not None and not group_by and (order or limit is not None):
            raise self._error("ungrouped aggregates cannot combine with ORDER BY / LIMIT")
        if group_by:
            for item in order:
                if item.column not in group_by:
                    raise self._error("ORDER BY on grouped selects must use GROUP BY columns")
        return Select(table=table, columns=tuple(columns), where=where,
                      order_by=tuple(order), limit=limit, aggregate=aggregate,
                      group_by=tuple(group_by))

    def _update(self) -> Update:
        self.expect_keyword("UPDATE")
        table = self.expect("ident").value
        self.expect_keyword("SET")
        assignments: List[Tuple[str, Operand]] = []
        while True:
            col = self.expect("ident").value
            self.expect("op", "=")
            assignments.append((col, self._operand()))
            if not self.accept("punct", ","):
                break
        where = self._where_clause()
        return Update(table=table, assignments=tuple(assignments), where=where)

    def _delete(self) -> Delete:
        self.expect_keyword("DELETE", "FROM")
        table = self.expect("ident").value
        return Delete(table=table, where=self._where_clause())

    # -- expressions -------------------------------------------------------------------

    def _where_clause(self):
        if self.accept_keyword("WHERE"):
            return self._or_expr()
        return None

    def _or_expr(self):
        node = self._and_expr()
        while self.accept_keyword("OR"):
            node = Or(node, self._and_expr())
        return node

    def _and_expr(self):
        node = self._not_expr()
        while self.accept_keyword("AND"):
            node = And(node, self._not_expr())
        return node

    def _not_expr(self):
        if self.accept_keyword("NOT"):
            return Not(self._not_expr())
        return self._predicate()

    def _predicate(self):
        # parenthesized boolean sub-expression?
        if self.peek() is not None and self.peek().matches("punct", "("):
            save = self.i
            self.advance()
            try:
                node = self._or_expr()
                self.expect("punct", ")")
                return node
            except SqlSyntaxError:
                self.i = save  # fall through: it was a parenthesized operand

        operand = self._operand()
        tok = self.peek()
        if tok is not None and tok.kind == "op":
            op = self.advance().value
            if op == "<>":
                op = "!="
            return Compare(op=op, left=operand, right=self._operand())
        negated = self.accept_keyword("NOT")
        if self.accept_keyword("BETWEEN"):
            low = self._operand()
            self.expect_keyword("AND")
            return Between(operand=operand, low=low, high=self._operand(), negated=negated)
        if self.accept_keyword("IN"):
            self.expect("punct", "(")
            items: List[Operand] = []
            while True:
                items.append(self._operand())
                if not self.accept("punct", ","):
                    break
            self.expect("punct", ")")
            return InList(operand=operand, items=tuple(items), negated=negated)
        if self.accept_keyword("LIKE"):
            return Like(operand=operand, pattern=self._operand(), negated=negated)
        if negated:
            raise self._error("expected BETWEEN, IN or LIKE after NOT")
        if self.accept_keyword("IS"):
            neg = self.accept_keyword("NOT")
            self.expect_keyword("NULL")
            return IsNull(operand=operand, negated=neg)
        raise self._error("expected a comparison after operand")

    def _operand(self) -> Operand:
        tok = self.peek()
        if tok is None:
            raise self._error("expected an operand")
        if tok.kind == "number":
            self.advance()
            text = tok.value
            value = float(text) if any(c in text for c in ".eE") else int(text)
            return Literal(value)
        if tok.kind == "string":
            self.advance()
            return Literal(tok.value[1:-1].replace("''", "'"))
        if tok.matches("punct", "?"):
            self.advance()
            param = Param(self.n_params)
            self.n_params += 1
            return param
        if tok.matches("punct", "-"):
            raise self._error("unary minus not supported; fold the sign into the literal")
        if tok.kind == "ident":
            if tok.value == "NULL":
                self.advance()
                return Literal(None)
            if tok.value == "DATE":
                self.advance()
                s = self.expect("string")
                return Literal(s.value[1:-1])
            self.advance()
            return ColumnRef(tok.value)
        raise self._error(f"unexpected token {tok.value!r} in expression")


def parse(text: str) -> Tuple[Statement, int]:
    """Parse one statement; returns ``(ast, n_params)``."""
    parser = _Parser(tokenize(text), text)
    stmt = parser.parse_statement()
    return stmt, parser.n_params


# ---------------------------------------------------------------------------
# statement builders
#
# The only sanctioned way to assemble SQL from runtime values (table/column
# names picked from a config, feature columns, ...).  Values always travel
# as '?' parameters; identifiers are validated against the tokenizer's
# identifier grammar, so no runtime string can smuggle syntax into a
# statement.  reprolint rule R4 enforces that execute() call sites use
# literals or these helpers -- nothing hand-concatenated.
# ---------------------------------------------------------------------------

_IDENTIFIER_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_$#]*$")


def quote_ident(name: str) -> str:
    """Validate (and return) one SQL identifier.

    Raises :class:`SqlSyntaxError` for anything the tokenizer would not
    read back as a single plain identifier.
    """
    if not isinstance(name, str) or not _IDENTIFIER_RE.match(name):
        raise SqlSyntaxError(f"invalid SQL identifier {name!r}")
    return name


def build_select(
    table: str,
    columns: Sequence[str] = ("*",),
    where_eq: Optional[str] = None,
    order_by: Sequence[str] = (),
) -> str:
    """``SELECT cols FROM table [WHERE col = ?] [ORDER BY cols]``."""
    cols = ", ".join("*" if c == "*" else quote_ident(c) for c in columns)
    text = f"SELECT {cols} FROM {quote_ident(table)}"
    if where_eq is not None:
        text += f" WHERE {quote_ident(where_eq)} = ?"
    if order_by:
        text += " ORDER BY " + ", ".join(quote_ident(c) for c in order_by)
    return text


def build_insert(table: str, columns: Sequence[str]) -> str:
    """``INSERT INTO table (cols) VALUES (?, ...)`` -- one ``?`` per column."""
    if not columns:
        raise SqlSyntaxError("INSERT needs at least one column")
    cols = ", ".join(quote_ident(c) for c in columns)
    marks = ", ".join("?" for _ in columns)
    return f"INSERT INTO {quote_ident(table)} ({cols}) VALUES ({marks})"


def build_delete(table: str, where_eq: Optional[str] = None) -> str:
    """``DELETE FROM table [WHERE col = ?]``."""
    text = f"DELETE FROM {quote_ident(table)}"
    if where_eq is not None:
        text += f" WHERE {quote_ident(where_eq)} = ?"
    return text
