"""Heap tables with primary-key and secondary hash indexes.

Rows live in an insertion-ordered dict keyed by an internal rowid; the
primary key (if any) is enforced through a hash index, and any column can
get a secondary index (value -> set of rowids) that equality predicates
use to skip full scans.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.db.errors import CatalogError, ConstraintError
from repro.db.schema import TableSchema

__all__ = ["Table"]

Row = Tuple
Predicate = Callable[[Dict[str, object]], bool]


class Table:
    """One table: schema + rows + indexes."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self._rows: Dict[int, Row] = {}
        self._next_rowid = 1
        self._pk_index: Dict[Tuple, int] = {}
        # column name -> {value -> set(rowids)}
        self._secondary: Dict[str, Dict[object, Set[int]]] = {}

    # -- basics ---------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> Iterator[Tuple[int, Row]]:
        """(rowid, row) pairs in insertion order."""
        return iter(list(self._rows.items()))

    # -- index maintenance --------------------------------------------------------

    def create_index(self, column: str) -> None:
        """Build (or rebuild) a secondary hash index on ``column``."""
        col = self.schema.column(column)  # validates existence
        idx: Dict[object, Set[int]] = {}
        pos = self.schema.index_of(col.name)
        for rowid, row in self._rows.items():
            idx.setdefault(self._index_key(row[pos]), set()).add(rowid)
        self._secondary[col.name] = idx

    def has_index(self, column: str) -> bool:
        return column.upper() in self._secondary

    @staticmethod
    def _index_key(value):
        # bytes values can be large; hashing them directly is still fine,
        # but floats and ints that compare equal must collide (1 == 1.0).
        if isinstance(value, float) and value.is_integer():
            return int(value)
        return value

    def _index_insert(self, rowid: int, row: Row) -> None:
        for col_name, idx in self._secondary.items():
            value = row[self.schema.index_of(col_name)]
            idx.setdefault(self._index_key(value), set()).add(rowid)

    def _index_remove(self, rowid: int, row: Row) -> None:
        for col_name, idx in self._secondary.items():
            key = self._index_key(row[self.schema.index_of(col_name)])
            bucket = idx.get(key)
            if bucket is not None:
                bucket.discard(rowid)
                if not bucket:
                    del idx[key]

    def lookup_equal(self, column: str, value) -> Optional[List[int]]:
        """Rowids with ``column == value`` via an index, or None if unindexed."""
        col_name = column.upper()
        pk = self.schema.primary_key
        if pk == [col_name]:
            rowid = self._pk_index.get((self._canonical_pk_part(value),))
            return [] if rowid is None else [rowid]
        idx = self._secondary.get(col_name)
        if idx is None:
            return None
        return sorted(idx.get(self._index_key(value), ()))

    # -- mutations -------------------------------------------------------------------

    @staticmethod
    def _canonical_pk_part(value):
        if isinstance(value, float) and value.is_integer():
            return int(value)
        return value

    def _pk_key(self, row: Row) -> Optional[Tuple]:
        pk = self.schema.pk_of_row(row)
        if pk is None:
            return None
        if any(part is None for part in pk):
            raise ConstraintError(f"primary key of {self.name} cannot be NULL")
        return tuple(self._canonical_pk_part(p) for p in pk)

    def insert(self, values: Dict[str, object]) -> int:
        """Validate and insert; returns the new rowid."""
        row = self.schema.make_row(values)
        pk = self._pk_key(row)
        if pk is not None and pk in self._pk_index:
            raise ConstraintError(
                f"duplicate primary key {pk} in table {self.name}"
            )
        rowid = self._next_rowid
        self._next_rowid += 1
        self._rows[rowid] = row
        if pk is not None:
            self._pk_index[pk] = rowid
        self._index_insert(rowid, row)
        return rowid

    def delete_where(self, predicate: Predicate) -> int:
        """Delete matching rows; returns the count."""
        doomed = [rid for rid, row in self._rows.items() if predicate(self.schema.row_dict(row))]
        for rid in doomed:
            row = self._rows.pop(rid)
            pk = self._pk_key(row)
            if pk is not None:
                self._pk_index.pop(pk, None)
            self._index_remove(rid, row)
        return len(doomed)

    def update_where(self, assignments: Dict[str, object], predicate: Predicate) -> int:
        """Set columns on matching rows; returns the count.

        The whole statement is validated before any row changes, so a type
        error or PK conflict leaves the table untouched.
        """
        assignments = {k.upper(): v for k, v in assignments.items()}
        for name in assignments:
            self.schema.column(name)  # raise CatalogError early

        targets: List[Tuple[int, Row, Row]] = []
        for rid, row in self._rows.items():
            if not predicate(self.schema.row_dict(row)):
                continue
            merged = dict(self.schema.row_dict(row))
            merged.update(assignments)
            new_row = self.schema.make_row(merged)
            targets.append((rid, row, new_row))

        # check PK uniqueness across the post-update state
        new_pks = {}
        for rid, _old, new_row in targets:
            pk = self._pk_key(new_row)
            if pk is None:
                continue
            if pk in new_pks:
                raise ConstraintError(f"update would duplicate primary key {pk}")
            new_pks[pk] = rid
        for pk, rid in new_pks.items():
            existing = self._pk_index.get(pk)
            if existing is not None and existing != rid and existing not in {t[0] for t in targets}:
                raise ConstraintError(f"update would duplicate primary key {pk}")

        for rid, old_row, new_row in targets:
            old_pk = self._pk_key(old_row)
            if old_pk is not None:
                self._pk_index.pop(old_pk, None)
            self._index_remove(rid, old_row)
            self._rows[rid] = new_row
            new_pk = self._pk_key(new_row)
            if new_pk is not None:
                self._pk_index[new_pk] = rid
            self._index_insert(rid, new_row)
        return len(targets)

    # -- reads ------------------------------------------------------------------------

    def select_where(self, predicate: Predicate) -> List[Dict[str, object]]:
        """Matching rows as dicts, in insertion order."""
        out = []
        for _rid, row in self._rows.items():
            d = self.schema.row_dict(row)
            if predicate(d):
                out.append(d)
        return out

    def get_by_pk(self, *pk_values) -> Optional[Dict[str, object]]:
        """Fetch one row by primary key, or None."""
        if not self.schema.primary_key:
            raise CatalogError(f"table {self.name} has no primary key")
        key = tuple(self._canonical_pk_part(v) for v in pk_values)
        rowid = self._pk_index.get(key)
        if rowid is None:
            return None
        return self.schema.row_dict(self._rows[rowid])

    # -- snapshot support ----------------------------------------------------------------

    def snapshot_state(self):
        """Cheap copyable state for transaction rollback."""
        return (
            dict(self._rows),
            self._next_rowid,
            dict(self._pk_index),
            {c: {v: set(s) for v, s in idx.items()} for c, idx in self._secondary.items()},
        )

    def restore_state(self, state) -> None:
        rows, next_rowid, pk_index, secondary = state
        self._rows = dict(rows)
        self._next_rowid = next_rowid
        self._pk_index = dict(pk_index)
        self._secondary = {c: {v: set(s) for v, s in idx.items()} for c, idx in secondary.items()}
