"""Table schemas: columns, constraints, row validation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.db.errors import CatalogError, ConstraintError, TypeMismatchError
from repro.db.types import SqlType

__all__ = ["Column", "TableSchema"]


@dataclass(frozen=True)
class Column:
    """One column: name (stored upper-case), type, nullability."""

    name: str
    sql_type: SqlType
    nullable: bool = True
    primary_key: bool = False

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise CatalogError(f"invalid column name {self.name!r}")
        object.__setattr__(self, "name", self.name.upper())
        if self.primary_key:
            object.__setattr__(self, "nullable", False)

    def validate(self, value):
        if value is None:
            if not self.nullable:
                raise ConstraintError(f"column {self.name} is NOT NULL")
            return None
        try:
            return self.sql_type.validate(value)
        except TypeMismatchError as exc:
            raise TypeMismatchError(f"column {self.name}: {exc}") from exc


@dataclass(frozen=True)
class TableSchema:
    """An ordered set of columns plus the primary-key column list."""

    name: str
    columns: Tuple[Column, ...]
    _by_name: Dict[str, int] = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise CatalogError(f"invalid table name {self.name!r}")
        object.__setattr__(self, "name", self.name.upper())
        object.__setattr__(self, "columns", tuple(self.columns))
        if not self.columns:
            raise CatalogError(f"table {self.name} needs at least one column")
        by_name: Dict[str, int] = {}
        for i, col in enumerate(self.columns):
            if col.name in by_name:
                raise CatalogError(f"duplicate column {col.name} in table {self.name}")
            by_name[col.name] = i
        object.__setattr__(self, "_by_name", by_name)

    # -- lookups -------------------------------------------------------------

    @property
    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    @property
    def primary_key(self) -> List[str]:
        return [c.name for c in self.columns if c.primary_key]

    def column(self, name: str) -> Column:
        idx = self._by_name.get(name.upper())
        if idx is None:
            raise CatalogError(f"table {self.name} has no column {name.upper()!r}")
        return self.columns[idx]

    def index_of(self, name: str) -> int:
        idx = self._by_name.get(name.upper())
        if idx is None:
            raise CatalogError(f"table {self.name} has no column {name.upper()!r}")
        return idx

    def has_column(self, name: str) -> bool:
        return name.upper() in self._by_name

    # -- row validation --------------------------------------------------------

    def make_row(self, values: Mapping[str, object]) -> Tuple:
        """Validate a column->value mapping into an ordered row tuple.

        Missing columns become NULL (subject to NOT NULL); unknown column
        names are an error.
        """
        provided = {k.upper(): v for k, v in values.items()}
        unknown = set(provided) - set(self._by_name)
        if unknown:
            raise CatalogError(
                f"table {self.name} has no column(s) {sorted(unknown)}"
            )
        return tuple(col.validate(provided.get(col.name)) for col in self.columns)

    def row_dict(self, row: Sequence) -> Dict[str, object]:
        return {col.name: row[i] for i, col in enumerate(self.columns)}

    def pk_of_row(self, row: Sequence) -> Optional[Tuple]:
        """The row's primary-key tuple, or None if the table has no PK."""
        pk = self.primary_key
        if not pk:
            return None
        return tuple(row[self.index_of(c)] for c in pk)

    def render_ddl(self) -> str:
        """Round-trippable CREATE TABLE statement."""
        parts = []
        for col in self.columns:
            bits = [col.name, col.sql_type.render()]
            if not col.nullable and not col.primary_key:
                bits.append("NOT NULL")
            parts.append(" ".join(bits))
        if self.primary_key:
            parts.append(f"PRIMARY KEY ({', '.join(self.primary_key)})")
        cols = ",\n  ".join(parts)
        return f"CREATE TABLE {self.name} (\n  {cols}\n)"
