"""An embedded mini relational engine (the paper's Oracle 9i stand-in).

The paper stores videos and key-frame features in two Oracle tables
(``VIDEO_STORE``, ``KEY_FRAMES``) created with DDL reproduced in §3.4, and
retrieves them with SQL.  This package implements enough of a relational
database to run that workload for real, from scratch:

- :mod:`repro.db.types` -- the column types the DDL uses (NUMBER,
  VARCHAR2(n), DATE, BLOB, and the ORD_VIDEO / ORD_IMAGE media types).
- :mod:`repro.db.schema` -- table schemas, columns, constraints.
- :mod:`repro.db.table` -- heap tables with a primary-key hash index and
  optional secondary indexes.
- :mod:`repro.db.sql` -- a tokenizer + recursive-descent parser for the
  SQL dialect (CREATE/DROP TABLE, INSERT, SELECT, UPDATE, DELETE with
  WHERE / ORDER BY / LIMIT, ``?`` bind parameters).
- :mod:`repro.db.engine` -- the :class:`Database` facade: statement
  execution, transactions, catalog.
- :mod:`repro.db.storage` -- snapshot + write-ahead-log persistence.
"""

from repro.db.engine import Database, ResultSet
from repro.db.errors import (
    CatalogError,
    ConstraintError,
    DatabaseError,
    SqlSyntaxError,
    StorageError,
    TransactionError,
    TypeMismatchError,
)
from repro.db.schema import Column, TableSchema
from repro.db.types import (
    BLOB,
    DATE,
    NUMBER,
    ORD_IMAGE,
    ORD_VIDEO,
    VARCHAR2,
    SqlType,
    type_from_name,
)

__all__ = [
    "Database",
    "ResultSet",
    "DatabaseError",
    "SqlSyntaxError",
    "CatalogError",
    "ConstraintError",
    "TypeMismatchError",
    "TransactionError",
    "StorageError",
    "Column",
    "TableSchema",
    "SqlType",
    "NUMBER",
    "VARCHAR2",
    "DATE",
    "BLOB",
    "ORD_VIDEO",
    "ORD_IMAGE",
    "type_from_name",
]
