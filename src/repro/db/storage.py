"""Durability: snapshot files + a write-ahead log.

A durable database lives in two files:

- ``<path>``      -- the snapshot: catalog DDL + all rows, binary encoded.
- ``<path>.wal``  -- the write-ahead log: every committed write statement
  (text + bound parameters), CRC-protected, appended and flushed as it
  commits.

On open, the snapshot is loaded and the WAL replayed on top; a torn final
record (crash mid-append) is detected by its CRC and ignored.
``checkpoint()`` folds everything into a fresh snapshot (written to a temp
file and atomically renamed) and truncates the WAL.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import List, Sequence, Tuple, Union

from repro.db.errors import StorageError
from repro.db.types import decode_value, encode_value

__all__ = ["Storage"]

_SNAPSHOT_MAGIC = b"RDB1"
_WAL_MAGIC = b"RWL1"
_U32 = struct.Struct("<I")


def _pack_str(s: str) -> bytes:
    raw = s.encode("utf-8")
    return _U32.pack(len(raw)) + raw


def _read_u32(buf: bytes, offset: int) -> Tuple[int, int]:
    if offset + 4 > len(buf):
        raise StorageError("file truncated")
    return _U32.unpack_from(buf, offset)[0], offset + 4


def _read_str(buf: bytes, offset: int) -> Tuple[str, int]:
    n, offset = _read_u32(buf, offset)
    raw = buf[offset : offset + n]
    if len(raw) != n:
        raise StorageError("file truncated")
    try:
        return raw.decode("utf-8"), offset + n
    except UnicodeDecodeError as exc:
        raise StorageError(f"corrupt string data: {exc}") from exc


class Storage:
    """Snapshot + WAL manager bound to one path."""

    def __init__(self, path: Union[str, "os.PathLike[str]"]):
        self.path = os.fspath(path)
        self.wal_path = self.path + ".wal"
        self._wal_fh = None

    # -- WAL ------------------------------------------------------------------

    def _ensure_wal(self):
        if self._wal_fh is None:
            new = not os.path.exists(self.wal_path) or os.path.getsize(self.wal_path) == 0
            self._wal_fh = open(self.wal_path, "ab")
            if new:
                self._wal_fh.write(_WAL_MAGIC)
                self._wal_fh.flush()
        return self._wal_fh

    def log_statement(self, text: str, params: Sequence) -> None:
        """Append one committed write statement to the WAL and flush."""
        body = _pack_str(text) + _U32.pack(len(params))
        for value in params:
            body += encode_value(value)
        record = _U32.pack(len(body)) + body + _U32.pack(zlib.crc32(body))
        fh = self._ensure_wal()
        fh.write(record)
        fh.flush()
        os.fsync(fh.fileno())

    def read_wal(self) -> List[Tuple[str, Tuple]]:
        """Parse the WAL; a torn/corrupt tail ends the replay silently."""
        if not os.path.exists(self.wal_path):
            return []
        with open(self.wal_path, "rb") as fh:
            buf = fh.read()
        if not buf:
            return []
        if buf[:4] != _WAL_MAGIC:
            raise StorageError(f"bad WAL magic in {self.wal_path}")
        records: List[Tuple[str, Tuple]] = []
        offset = 4
        while offset < len(buf):
            try:
                body_len, o = _read_u32(buf, offset)
                body = buf[o : o + body_len]
                if len(body) != body_len:
                    break  # torn write
                o += body_len
                crc, o = _read_u32(buf, o)
                if zlib.crc32(body) != crc:
                    break  # torn/corrupt record: stop replay here
                text, bo = _read_str(body, 0)
                n_params, bo = _read_u32(body, bo)
                params = []
                for _ in range(n_params):
                    value, bo = decode_value(body, bo)
                    params.append(value)
                records.append((text, tuple(params)))
                offset = o
            except StorageError:
                break
        return records

    # -- snapshot ---------------------------------------------------------------

    def write_snapshot(self, db) -> None:
        """Serialize the whole database, atomically replace, truncate WAL."""
        chunks = [_SNAPSHOT_MAGIC, _U32.pack(len(db.tables))]
        for name in sorted(db.tables):
            table = db.tables[name]
            chunks.append(_pack_str(table.schema.render_ddl()))
            rows = [row for _rid, row in table.rows()]
            chunks.append(_U32.pack(len(rows)))
            for row in rows:
                for value in row:
                    chunks.append(encode_value(value))
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(b"".join(chunks))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        # WAL content is now folded into the snapshot
        if self._wal_fh is not None:
            self._wal_fh.close()
            self._wal_fh = None
        with open(self.wal_path, "wb") as fh:
            fh.write(_WAL_MAGIC)

    def load_into(self, db) -> None:
        """Populate an empty Database from snapshot + WAL."""
        if db.tables:
            raise StorageError("load_into requires an empty database")
        if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
            with open(self.path, "rb") as fh:
                buf = fh.read()
            if buf[:4] != _SNAPSHOT_MAGIC:
                raise StorageError(f"bad snapshot magic in {self.path}")
            offset = 4
            n_tables, offset = _read_u32(buf, offset)
            from repro.db import sql as ast

            for _ in range(n_tables):
                ddl, offset = _read_str(buf, offset)
                db.execute(ddl)
                stmt, _n = ast.parse(ddl)
                table = db.tables[stmt.schema.name]
                n_rows, offset = _read_u32(buf, offset)
                n_cols = len(table.schema.columns)
                for _r in range(n_rows):
                    values = []
                    for _c in range(n_cols):
                        value, offset = decode_value(buf, offset)
                        values.append(value)
                    table.insert(dict(zip(table.schema.column_names, values)))
        for text, params in self.read_wal():
            db.execute(text, params)

    def close(self) -> None:
        if self._wal_fh is not None:
            self._wal_fh.close()
            self._wal_fh = None
