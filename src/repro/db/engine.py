"""The :class:`Database` facade: execution, transactions, persistence.

Usage::

    db = Database()                      # in-memory
    db = Database.open("corpus.rdb")     # durable (snapshot + WAL)

    db.execute('CREATE TABLE T (ID NUMBER PRIMARY KEY, NAME VARCHAR2(20))')
    db.execute('INSERT INTO T (ID, NAME) VALUES (?, ?)', (1, "intro"))
    rows = db.execute('SELECT * FROM T WHERE ID = ?', (1,)).rows

Write statements auto-commit unless a transaction is open (``begin()`` /
``commit()`` / ``rollback()``, also usable as a context manager via
:meth:`transaction`).  Durable databases append committed writes to a WAL
and replay it on open; :meth:`checkpoint` folds the WAL into a snapshot.
"""

from __future__ import annotations

import contextlib
import re
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.db import sql as ast
from repro.db.errors import (
    CatalogError,
    DatabaseError,
    SqlSyntaxError,
    TransactionError,
)
from repro.db.schema import TableSchema
from repro.db.table import Table

__all__ = ["Database", "ResultSet"]


@dataclass(frozen=True)
class ResultSet:
    """Outcome of one statement.

    ``rows`` is a list of column->value dicts for SELECT (empty otherwise);
    ``rowcount`` is the number of rows touched (inserted/updated/deleted) or
    returned.
    """

    rows: List[Dict[str, object]] = field(default_factory=list)
    rowcount: int = 0
    statement: str = ""

    def __iter__(self) -> Iterator[Dict[str, object]]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self):
        """The single value of a single-row, single-column result."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise DatabaseError(
                f"scalar() needs exactly one row and column, got {len(self.rows)} row(s)"
            )
        return next(iter(self.rows[0].values()))


def _like_to_regex(pattern: str) -> "re.Pattern":
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


class _Evaluator:
    """Compiles WHERE ASTs against a schema and bound parameters."""

    def __init__(self, schema: TableSchema, params: Sequence):
        self.schema = schema
        self.params = params

    def operand(self, node, row: Dict[str, object]):
        if isinstance(node, ast.Literal):
            return node.value
        if isinstance(node, ast.Param):
            return self.params[node.index]
        if isinstance(node, ast.ColumnRef):
            name = node.name.upper()
            if not self.schema.has_column(name):
                raise CatalogError(
                    f"table {self.schema.name} has no column {name!r}"
                )
            return row[name]
        raise DatabaseError(f"unexpected operand node {node!r}")

    def test(self, node, row: Dict[str, object]) -> bool:
        if node is None:
            return True
        if isinstance(node, ast.And):
            return self.test(node.left, row) and self.test(node.right, row)
        if isinstance(node, ast.Or):
            return self.test(node.left, row) or self.test(node.right, row)
        if isinstance(node, ast.Not):
            return not self.test(node.child, row)
        if isinstance(node, ast.Compare):
            left = self.operand(node.left, row)
            right = self.operand(node.right, row)
            if left is None or right is None:
                return False  # SQL three-valued logic: comparisons with NULL are not true
            ops = {
                "=": lambda a, b: a == b,
                "!=": lambda a, b: a != b,
                "<": lambda a, b: a < b,
                "<=": lambda a, b: a <= b,
                ">": lambda a, b: a > b,
                ">=": lambda a, b: a >= b,
            }
            try:
                return bool(ops[node.op](left, right))
            except TypeError as exc:
                raise DatabaseError(
                    f"cannot compare {type(left).__name__} with {type(right).__name__}"
                ) from exc
        if isinstance(node, ast.Between):
            v = self.operand(node.operand, row)
            lo = self.operand(node.low, row)
            hi = self.operand(node.high, row)
            if v is None or lo is None or hi is None:
                return False
            result = lo <= v <= hi
            return result != node.negated
        if isinstance(node, ast.InList):
            v = self.operand(node.operand, row)
            if v is None:
                return False
            members = [self.operand(item, row) for item in node.items]
            return (v in members) != node.negated
        if isinstance(node, ast.Like):
            v = self.operand(node.operand, row)
            pattern = self.operand(node.pattern, row)
            if v is None or pattern is None:
                return False
            if not isinstance(v, str) or not isinstance(pattern, str):
                raise DatabaseError("LIKE requires string operands")
            return bool(_like_to_regex(pattern).match(v)) != node.negated
        if isinstance(node, ast.IsNull):
            v = self.operand(node.operand, row)
            return (v is None) != node.negated
        raise DatabaseError(f"unexpected WHERE node {node!r}")


class Database:
    """Catalog of tables + statement execution + transactions."""

    #: statement AST class -> metric label
    _STATEMENT_KINDS = {
        "Select": "select",
        "Insert": "insert",
        "Update": "update",
        "Delete": "delete",
        "CreateTable": "create",
        "DropTable": "drop",
    }

    def __init__(self, storage: Optional["repro.db.storage.Storage"] = None):
        self.tables: Dict[str, Table] = {}
        self._storage = storage
        self._tx_snapshot = None
        self._tx_statements: List[Tuple[str, Tuple]] = []
        # observability is opt-in (attach_obs); None keeps execute() lean
        self._m_statements = None
        self._m_seconds = None
        # resilience is opt-in (attach_resilience); None keeps execute() lean
        self._policies = None

    def attach_obs(self, obs) -> None:
        """Record per-statement counts and durations into ``obs``'s registry.

        Takes a :class:`repro.obs.Obs`; attaching a disabled facade keeps
        the no-instrumentation fast path.
        """
        if not obs.enabled:
            self._m_statements = None
            self._m_seconds = None
            return
        self._m_statements = obs.counter(
            "repro_db_statements_total",
            "SQL statements executed, by statement kind.",
            labelnames=("kind",),
        )
        self._m_seconds = obs.histogram(
            "repro_db_statement_seconds",
            "Statement execution time (parse + dispatch).",
            labelnames=("kind",),
        )

    def attach_resilience(self, policies) -> None:
        """Run statements under ``policies``' retry (and its ``db.execute``
        fault point).

        Takes a :class:`repro.resilience.ResiliencePolicies`; attaching a
        disabled bundle keeps the unwrapped fast path.  Only injected
        faults are retried -- a malformed statement fails identically on
        every attempt and propagates immediately.
        """
        self._policies = policies if policies.enabled else None

    # -- persistence -----------------------------------------------------------

    @classmethod
    def open(cls, path) -> "Database":
        """Open (or create) a durable database at ``path``.

        Loads the snapshot if present, then replays the WAL.
        """
        from repro.db.storage import Storage

        storage = Storage(path)
        db = cls(storage=None)
        storage.load_into(db)
        db._storage = storage
        return db

    @property
    def is_durable(self) -> bool:
        """True when the database is backed by on-disk storage."""
        return self._storage is not None

    @property
    def path(self) -> Optional[str]:
        """The storage file location (None for in-memory databases)."""
        return self._storage.path if self._storage is not None else None

    def checkpoint(self) -> None:
        """Write a full snapshot and truncate the WAL (durable DBs only)."""
        if self._storage is None:
            raise DatabaseError("checkpoint() requires a durable database")
        self._storage.write_snapshot(self)

    def close(self) -> None:
        if self._storage is not None:
            self._storage.close()
            self._storage = None

    # -- transactions ------------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self._tx_snapshot is not None

    def begin(self) -> None:
        if self.in_transaction:
            raise TransactionError("transaction already open")
        self._tx_snapshot = {
            name: (table, table.snapshot_state()) for name, table in self.tables.items()
        }
        self._tx_statements = []

    def commit(self) -> None:
        if not self.in_transaction:
            raise TransactionError("no open transaction")
        if self._storage is not None:
            for text, params in self._tx_statements:
                self._storage.log_statement(text, params)
        self._tx_snapshot = None
        self._tx_statements = []

    def rollback(self) -> None:
        if not self.in_transaction:
            raise TransactionError("no open transaction")
        # Restore exactly the pre-transaction catalog: tables created in the
        # transaction vanish, dropped tables return, data reverts.
        restored: Dict[str, Table] = {}
        for name, (table, state) in self._tx_snapshot.items():
            table.restore_state(state)
            restored[name] = table
        self.tables = restored
        self._tx_snapshot = None
        self._tx_statements = []

    @contextlib.contextmanager
    def transaction(self):
        """``with db.transaction(): ...`` -- commit on success, rollback on error."""
        self.begin()
        try:
            yield self
        except BaseException:
            self.rollback()
            raise
        else:
            self.commit()

    # -- execution -------------------------------------------------------------------

    def execute(self, text: str, params: Sequence = ()) -> ResultSet:
        """Parse and run one statement with optional ``?`` bind parameters."""
        if self._policies is not None:
            return self._policies.run(
                "db.execute", lambda: self._execute(text, params)
            )
        return self._execute(text, params)

    def _execute(self, text: str, params: Sequence = ()) -> ResultSet:
        t0 = time.perf_counter() if self._m_statements is not None else 0.0
        stmt, n_params = ast.parse(text)
        if len(params) != n_params:
            raise SqlSyntaxError(
                f"statement has {n_params} parameter(s), {len(params)} given"
            )
        is_write = not isinstance(stmt, ast.Select)
        result = self._dispatch(stmt, tuple(params), text)
        if self._m_statements is not None:
            kind = self._STATEMENT_KINDS.get(type(stmt).__name__, "other")
            self._m_statements.labels(kind=kind).inc()
            self._m_seconds.labels(kind=kind).observe(time.perf_counter() - t0)
        if is_write:
            if self.in_transaction:
                self._tx_statements.append((text, tuple(params)))
            elif self._storage is not None:
                self._storage.log_statement(text, tuple(params))
        return result

    def _dispatch(self, stmt, params: Tuple, text: str) -> ResultSet:
        if isinstance(stmt, ast.CreateTable):
            return self._create_table(stmt, text)
        if isinstance(stmt, ast.DropTable):
            return self._drop_table(stmt, text)
        if isinstance(stmt, ast.Insert):
            return self._insert(stmt, params, text)
        if isinstance(stmt, ast.Select):
            return self._select(stmt, params, text)
        if isinstance(stmt, ast.Update):
            return self._update(stmt, params, text)
        if isinstance(stmt, ast.Delete):
            return self._delete(stmt, params, text)
        raise DatabaseError(f"unhandled statement type {type(stmt).__name__}")

    def _get_table(self, name: str) -> Table:
        table = self.tables.get(name.upper())
        if table is None:
            raise CatalogError(f"no such table {name.upper()!r}")
        return table

    def _create_table(self, stmt: ast.CreateTable, text: str) -> ResultSet:
        name = stmt.schema.name
        if name in self.tables:
            raise CatalogError(f"table {name!r} already exists")
        self.tables[name] = Table(stmt.schema)
        return ResultSet(statement=text)

    def _drop_table(self, stmt: ast.DropTable, text: str) -> ResultSet:
        name = stmt.table.upper()
        if name not in self.tables:
            if stmt.if_exists:
                return ResultSet(statement=text)
            raise CatalogError(f"no such table {name!r}")
        del self.tables[name]
        return ResultSet(statement=text, rowcount=1)

    def _insert(self, stmt: ast.Insert, params: Tuple, text: str) -> ResultSet:
        table = self._get_table(stmt.table)
        evaluator = _Evaluator(table.schema, params)
        values = [evaluator.operand(v, {}) for v in stmt.values]
        columns = list(stmt.columns) if stmt.columns else table.schema.column_names
        if len(columns) != len(values):
            raise SqlSyntaxError(
                f"INSERT into {table.name} has {len(columns)} columns, {len(values)} values"
            )
        table.insert(dict(zip(columns, values)))
        return ResultSet(statement=text, rowcount=1)

    def _rows_matching(self, table: Table, where, params: Tuple) -> List[Dict[str, object]]:
        evaluator = _Evaluator(table.schema, params)
        # fast path: top-level equality on an indexed column
        if isinstance(where, ast.Compare) and where.op == "=":
            col, lit = None, None
            if isinstance(where.left, ast.ColumnRef) and isinstance(where.right, (ast.Literal, ast.Param)):
                col, lit = where.left.name, evaluator.operand(where.right, {})
            elif isinstance(where.right, ast.ColumnRef) and isinstance(where.left, (ast.Literal, ast.Param)):
                col, lit = where.right.name, evaluator.operand(where.left, {})
            if col is not None and table.schema.has_column(col):
                rowids = table.lookup_equal(col, lit)
                if rowids is not None:
                    all_rows = dict(table.rows())
                    return [table.schema.row_dict(all_rows[rid]) for rid in rowids if rid in all_rows]
        return table.select_where(lambda row: evaluator.test(where, row))

    def _select(self, stmt: ast.Select, params: Tuple, text: str) -> ResultSet:
        table = self._get_table(stmt.table)
        rows = self._rows_matching(table, stmt.where, params)
        if stmt.group_by:
            return self._grouped_aggregate(table, stmt, rows, text)
        if stmt.aggregate is not None:
            return self._aggregate(table, stmt.aggregate, rows, text)
        for item in stmt.order_by:
            if not table.schema.has_column(item.column):
                raise CatalogError(f"ORDER BY references unknown column {item.column!r}")
        for item in reversed(stmt.order_by):
            col = item.column.upper()
            rows.sort(
                key=lambda r: (r[col] is None, r[col] if r[col] is not None else 0),
                reverse=item.descending,
            )
        if stmt.limit is not None:
            rows = rows[: stmt.limit]
        if stmt.columns:
            for c in stmt.columns:
                table.schema.column(c)  # validate
            wanted = [c.upper() for c in stmt.columns]
            rows = [{c: r[c] for c in wanted} for r in rows]
        return ResultSet(rows=rows, rowcount=len(rows), statement=text)

    def _aggregate(self, table: Table, agg: "ast.Aggregate", rows, text: str) -> ResultSet:
        """COUNT/MIN/MAX/SUM/AVG over the matched rows (NULLs skipped)."""
        if agg.column is not None:
            col = table.schema.column(agg.column).name  # validates + canonical
            values = [r[col] for r in rows if r[col] is not None]
        else:
            values = None  # COUNT(*) counts rows, not values

        if agg.func == "COUNT":
            result = len(rows) if values is None else len(values)
        elif not values:
            result = None  # SQL: aggregates over the empty set are NULL
        elif agg.func in ("MIN", "MAX"):
            try:
                result = min(values) if agg.func == "MIN" else max(values)
            except TypeError as exc:
                raise DatabaseError(f"{agg.label}: values are not comparable") from exc
        else:  # SUM / AVG need numbers
            if not all(isinstance(v, (int, float)) for v in values):
                raise DatabaseError(f"{agg.label} requires numeric values")
            total = sum(values)
            result = total if agg.func == "SUM" else total / len(values)
        return ResultSet(rows=[{agg.label: result}], rowcount=1, statement=text)

    def _grouped_aggregate(self, table: Table, stmt: ast.Select, rows, text: str) -> ResultSet:
        """GROUP BY evaluation: one output row per distinct key tuple."""
        group_cols = [table.schema.column(c).name for c in stmt.group_by]
        out_cols = [table.schema.column(c).name for c in stmt.columns]
        groups: Dict[Tuple, list] = {}
        for row in rows:  # dict preserves first-appearance order
            key = tuple(row[c] for c in group_cols)
            groups.setdefault(key, []).append(row)

        out_rows = []
        for key, members in groups.items():
            agg_result = self._aggregate(table, stmt.aggregate, members, text)
            row = dict(zip(group_cols, key))
            row[stmt.aggregate.label] = agg_result.scalar()
            out_rows.append(row)

        for item in reversed(stmt.order_by):
            col = item.column.upper()
            out_rows.sort(
                key=lambda r: (r[col] is None, r[col] if r[col] is not None else 0),
                reverse=item.descending,
            )
        if stmt.limit is not None:
            out_rows = out_rows[: stmt.limit]
        # project to the selected columns (plus the aggregate) last, so
        # ORDER BY may use any GROUP BY column even when not selected
        keep = (out_cols or group_cols) + [stmt.aggregate.label]
        out_rows = [{c: r[c] for c in keep} for r in out_rows]
        return ResultSet(rows=out_rows, rowcount=len(out_rows), statement=text)

    def _update(self, stmt: ast.Update, params: Tuple, text: str) -> ResultSet:
        table = self._get_table(stmt.table)
        evaluator = _Evaluator(table.schema, params)
        assignments = {col: evaluator.operand(v, {}) for col, v in stmt.assignments}
        count = table.update_where(assignments, lambda row: evaluator.test(stmt.where, row))
        return ResultSet(statement=text, rowcount=count)

    def _delete(self, stmt: ast.Delete, params: Tuple, text: str) -> ResultSet:
        table = self._get_table(stmt.table)
        evaluator = _Evaluator(table.schema, params)
        count = table.delete_where(lambda row: evaluator.test(stmt.where, row))
        return ResultSet(statement=text, rowcount=count)

    # -- conveniences --------------------------------------------------------------------

    def table_names(self) -> List[str]:
        return sorted(self.tables)

    def schema_of(self, name: str) -> TableSchema:
        return self._get_table(name).schema

    def create_index(self, table: str, column: str) -> None:
        self._get_table(table).create_index(column)
