"""Column types for the mini relational engine.

These mirror the types in the paper's DDL (§3.4)::

    CREATE TABLE "VIDEO_STORE" (
        "V_ID"   NUMBER NOT NULL ENABLE,
        "V_NAME" VARCHAR2(60),
        "VIDEO"  ORD_Video,
        "STREAM" BLOB,
        "DOSTORE" DATE, ...)

Each type validates and canonicalizes Python values, and serializes them
for the snapshot/WAL files.  ORD_VIDEO and ORD_IMAGE are Oracle interMedia
object types; here they are BLOBs that additionally know how to decode
their payload (RVF video bytes / PPM-PGM-BMP image bytes).
"""

from __future__ import annotations

import datetime as _dt
import struct
from typing import Optional

from repro.db.errors import TypeMismatchError

__all__ = [
    "SqlType",
    "NUMBER",
    "VARCHAR2",
    "DATE",
    "BLOB",
    "ORD_VIDEO",
    "ORD_IMAGE",
    "type_from_name",
    "encode_value",
    "decode_value",
]


class SqlType:
    """Base class: a named type with validation and an SQL rendering."""

    type_name = "ANY"

    def validate(self, value):
        """Return the canonical Python value, or raise TypeMismatchError."""
        return value

    def render(self) -> str:
        """The type as it appears in DDL."""
        return self.type_name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(self.__dict__.items()))))


class NUMBER(SqlType):
    """Oracle NUMBER: int or float (bools rejected -- they are not numbers)."""

    type_name = "NUMBER"

    def validate(self, value):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeMismatchError(f"NUMBER expects int/float, got {type(value).__name__}")
        if isinstance(value, float) and (value != value):  # NaN breaks ordering
            raise TypeMismatchError("NUMBER cannot store NaN")
        return value


class VARCHAR2(SqlType):
    """Bounded string. ``VARCHAR2(60)`` rejects strings longer than 60."""

    type_name = "VARCHAR2"

    def __init__(self, max_length: int = 4000):
        if max_length < 1:
            raise TypeMismatchError("VARCHAR2 length must be >= 1")
        self.max_length = max_length

    def validate(self, value):
        if not isinstance(value, str):
            raise TypeMismatchError(f"VARCHAR2 expects str, got {type(value).__name__}")
        if len(value) > self.max_length:
            raise TypeMismatchError(
                f"value of length {len(value)} exceeds VARCHAR2({self.max_length})"
            )
        return value

    def render(self) -> str:
        return f"VARCHAR2({self.max_length})"


class DATE(SqlType):
    """Calendar date (datetime.date). ISO-format strings are coerced."""

    type_name = "DATE"

    def validate(self, value):
        if isinstance(value, _dt.datetime):
            return value.date()
        if isinstance(value, _dt.date):
            return value
        if isinstance(value, str):
            try:
                return _dt.date.fromisoformat(value)
            except ValueError as exc:
                raise TypeMismatchError(f"DATE string must be ISO format: {value!r}") from exc
        raise TypeMismatchError(f"DATE expects date or ISO string, got {type(value).__name__}")


class BLOB(SqlType):
    """Arbitrary bytes."""

    type_name = "BLOB"

    def validate(self, value):
        if isinstance(value, bytearray):
            return bytes(value)
        if not isinstance(value, bytes):
            raise TypeMismatchError(f"BLOB expects bytes, got {type(value).__name__}")
        return value


class ORD_VIDEO(BLOB):
    """Oracle interMedia ORDVideo stand-in: a BLOB holding RVF video bytes."""

    type_name = "ORD_VIDEO"

    @staticmethod
    def decode(value: bytes):
        """Open the stored bytes as an RVF video reader."""
        from repro.video.codec import RvfReader

        return RvfReader(value)


class ORD_IMAGE(BLOB):
    """Oracle interMedia ORDImage stand-in: a BLOB holding encoded image bytes."""

    type_name = "ORD_IMAGE"

    @staticmethod
    def decode(value: bytes):
        """Decode the stored bytes into an Image."""
        from repro.imaging.image import decode_image

        return decode_image(value)


_SIMPLE_TYPES = {
    "NUMBER": NUMBER,
    "DATE": DATE,
    "BLOB": BLOB,
    "ORDVIDEO": ORD_VIDEO,
    "ORDIMAGE": ORD_IMAGE,
}


def type_from_name(name: str, arg: Optional[int] = None) -> SqlType:
    """Instantiate a type from its DDL spelling (case-insensitive).

    Accepts the paper's spacing/underscore variants: ``ORD_Video``,
    ``ORD_ Video`` and ``ORDVideo`` all mean :class:`ORD_VIDEO`.
    """
    key = name.upper().replace(" ", "").replace("_", "")
    if key in ("VARCHAR2", "VARCHAR"):
        return VARCHAR2(arg) if arg is not None else VARCHAR2()
    cls = _SIMPLE_TYPES.get(key)
    if cls is None:
        raise TypeMismatchError(f"unknown SQL type {name!r}")
    if arg is not None:
        raise TypeMismatchError(f"type {name} takes no length argument")
    return cls()


# ---------------------------------------------------------------------------
# binary value encoding for snapshot/WAL files
# ---------------------------------------------------------------------------

_TAG_NULL = 0
_TAG_INT = 1
_TAG_FLOAT = 2
_TAG_STR = 3
_TAG_BYTES = 4
_TAG_DATE = 5

_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")


def encode_value(value) -> bytes:
    """Tag + payload encoding of one cell value."""
    if value is None:
        return bytes([_TAG_NULL])
    if isinstance(value, bool):
        raise TypeMismatchError("bool is not a storable SQL value")
    if isinstance(value, int):
        return bytes([_TAG_INT]) + _I64.pack(value)
    if isinstance(value, float):
        return bytes([_TAG_FLOAT]) + _F64.pack(value)
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return bytes([_TAG_STR]) + _U32.pack(len(raw)) + raw
    if isinstance(value, (bytes, bytearray)):
        return bytes([_TAG_BYTES]) + _U32.pack(len(value)) + bytes(value)
    if isinstance(value, _dt.date):
        raw = value.isoformat().encode("ascii")
        return bytes([_TAG_DATE]) + _U32.pack(len(raw)) + raw
    raise TypeMismatchError(f"cannot encode value of type {type(value).__name__}")


def decode_value(buf: bytes, offset: int):
    """Decode one value; returns ``(value, next_offset)``."""
    from repro.db.errors import StorageError

    if offset >= len(buf):
        raise StorageError("value stream truncated")
    tag = buf[offset]
    offset += 1
    if tag == _TAG_NULL:
        return None, offset
    if tag in (_TAG_INT, _TAG_FLOAT):
        if offset + 8 > len(buf):
            raise StorageError("value payload truncated")
        if tag == _TAG_INT:
            return _I64.unpack_from(buf, offset)[0], offset + 8
        return _F64.unpack_from(buf, offset)[0], offset + 8
    if tag in (_TAG_STR, _TAG_BYTES, _TAG_DATE):
        if offset + 4 > len(buf):
            raise StorageError("value payload truncated")
        (n,) = _U32.unpack_from(buf, offset)
        offset += 4
        raw = buf[offset : offset + n]
        if len(raw) != n:
            raise StorageError("value payload truncated")
        offset += n
        if tag == _TAG_BYTES:
            return bytes(raw), offset
        try:
            text = raw.decode("utf-8")
            if tag == _TAG_DATE:
                return _dt.date.fromisoformat(text), offset
        except (UnicodeDecodeError, ValueError) as exc:
            raise StorageError(f"corrupt encoded value: {exc}") from exc
        return text, offset
    raise StorageError(f"unknown value tag {tag}")
