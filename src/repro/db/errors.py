"""Typed error hierarchy for the mini relational engine."""

from __future__ import annotations

__all__ = [
    "DatabaseError",
    "SqlSyntaxError",
    "CatalogError",
    "ConstraintError",
    "TypeMismatchError",
    "TransactionError",
    "StorageError",
]


class DatabaseError(Exception):
    """Base class for every engine error."""


class SqlSyntaxError(DatabaseError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message if position < 0 else f"{message} (at position {position})")
        self.position = position


class CatalogError(DatabaseError):
    """Unknown or duplicate table/column."""


class ConstraintError(DatabaseError):
    """Primary-key duplicate, NOT NULL violation, or similar."""


class TypeMismatchError(DatabaseError):
    """A value does not fit its column type."""


class TransactionError(DatabaseError):
    """Illegal transaction state transition (e.g. COMMIT with no BEGIN)."""


class StorageError(DatabaseError):
    """Snapshot or WAL file is missing, truncated, or corrupt."""
