"""Video substrate: container format, synthetic corpus, key-frame extraction.

The paper pulls videos from archive.org, splits them into JPEG frames with an
external converter, and picks key frames with a threshold rule (§4.1).  Here:

- :mod:`repro.video.codec` -- the RVF container format (a self-describing
  frame stream, raw or RLE-compressed) with a writer and a streaming reader.
- :mod:`repro.video.generator` -- a deterministic synthetic video generator
  with five scene categories mirroring the paper's corpus (e-learning,
  sports, cartoon, movies, news).
- :mod:`repro.video.shots` -- frame-distance and shot-boundary helpers.
- :mod:`repro.video.keyframes` -- the §4.1 key-frame extraction algorithm.
"""

from repro.video.codec import RvfError, RvfReader, RvfWriter, read_rvf, write_rvf
from repro.video.generator import (
    CATEGORIES,
    SyntheticVideo,
    VideoSpec,
    generate_video,
    make_corpus,
)
from repro.video.keyframes import KeyFrameExtractor, extract_key_frames, frame_signature_distance
from repro.video.shots import cut_indices, frame_distances

__all__ = [
    "RvfReader",
    "RvfWriter",
    "RvfError",
    "read_rvf",
    "write_rvf",
    "CATEGORIES",
    "SyntheticVideo",
    "VideoSpec",
    "generate_video",
    "make_corpus",
    "KeyFrameExtractor",
    "extract_key_frames",
    "frame_signature_distance",
    "frame_distances",
    "cut_indices",
]
