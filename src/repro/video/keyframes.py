"""Key-frame extraction (paper §4.1).

The paper's algorithm walks the ordered frame list, keeping the first frame
of each run of mutually-similar frames and deleting the rest::

    i = 0
    while i < len(frames):
        keep frame i
        j = i + 1
        while j < len(frames) and dist(frame_i, frame_j) <= threshold:
            delete frame j; j += 1
        i = j

``dist`` is computed between *rescaled versions* of the frames ("rescaled
IVersion of image file", §4.1) and compared against the constant ``800.0``.
The rescale + 25-point signature used here is exactly the naive descriptor of
§4.6 (300x300 nearest-neighbour rescale, 25 block means), with the distance
being the summed Euclidean distance between corresponding mean colors --
which makes 800.0 a workable threshold (identical frames score 0, a shot
change scores in the thousands).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.imaging.image import Image
from repro.imaging.resize import resize_array

__all__ = [
    "KeyFrameExtractor",
    "extract_key_frames",
    "frame_signature",
    "frame_signature_distance",
]

#: The paper's similarity threshold ("if (dist > 800.0)").
PAPER_THRESHOLD = 800.0
#: §4.6: "float scaleW = 300, scaleH = 300".
BASE_SIZE = 300
#: §4.6: 25 representative locations on a 5x5 grid.
GRID = 5
#: §4.6: "Let sampleSize = 15" -- half-width of the averaging window.
SAMPLE_SIZE = 15


def frame_signature(image: Image, base_size: int = BASE_SIZE, grid: int = GRID, sample_size: int = SAMPLE_SIZE) -> np.ndarray:
    """25-point mean-color signature of a frame (the §4.6 descriptor).

    The frame is rescaled to ``base_size`` square with nearest-neighbour
    interpolation, then for each of ``grid x grid`` locations the mean RGB of
    the surrounding ``2*sample_size`` window is taken.

    Returns a float64 array of shape ``(grid*grid, 3)``.
    """
    rgb = image.to_rgb()
    scaled = resize_array(rgb.pixels, base_size, base_size, "nearest").astype(np.float64)
    sig = np.empty((grid * grid, 3))
    k = 0
    for gy in range(grid):
        py = (gy + 0.5) / grid
        y0 = max(0, int(py * base_size) - sample_size)
        y1 = min(base_size, int(py * base_size) + sample_size)
        for gx in range(grid):
            px = (gx + 0.5) / grid
            x0 = max(0, int(px * base_size) - sample_size)
            x1 = min(base_size, int(px * base_size) + sample_size)
            sig[k] = scaled[y0:y1, x0:x1].reshape(-1, 3).mean(axis=0)
            k += 1
    return sig


def frame_signature_distance(a: Image, b: Image, **kwargs) -> float:
    """Summed Euclidean distance between the two frames' 25-point signatures."""
    sa = frame_signature(a, **kwargs)
    sb = frame_signature(b, **kwargs)
    return float(np.sum(np.sqrt(np.sum((sa - sb) ** 2, axis=1))))


@dataclass(frozen=True)
class KeyFrameExtractor:
    """Configurable §4.1 extractor.

    ``threshold`` is the paper's 800.0 by default.  ``base_size`` may be
    lowered (e.g. to 64) to trade fidelity for speed; the signature is scale
    normalized so the threshold keeps its meaning.
    """

    threshold: float = PAPER_THRESHOLD
    base_size: int = BASE_SIZE
    grid: int = GRID
    sample_size: int = SAMPLE_SIZE

    def __post_init__(self) -> None:
        if self.threshold < 0:
            raise ValueError("threshold must be non-negative")
        if self.grid < 1 or self.base_size < self.grid:
            raise ValueError("grid must be >= 1 and base_size >= grid")

    def signature(self, frame: Image) -> np.ndarray:
        sample = min(self.sample_size, max(1, self.base_size // (2 * self.grid)))
        return frame_signature(frame, self.base_size, self.grid, sample)

    def extract(self, frames: Sequence[Image]) -> List[Tuple[int, Image]]:
        """Run the greedy similar-run collapse; returns ``(index, frame)`` pairs.

        The first frame is always a key frame (the paper: "take 1st as
        key-frame"), and every kept frame is the first of a maximal run whose
        members are all within ``threshold`` of it.
        """
        if not frames:
            return []
        signatures = [self.signature(f) for f in frames]
        kept: List[Tuple[int, Image]] = []
        i = 0
        n = len(frames)
        while i < n:
            kept.append((i, frames[i]))
            j = i + 1
            while j < n:
                dist = float(
                    np.sum(np.sqrt(np.sum((signatures[i] - signatures[j]) ** 2, axis=1)))
                )
                if dist > self.threshold:
                    break
                j += 1
            i = j
        return kept


def extract_key_frames(
    frames: Sequence[Image], threshold: float = PAPER_THRESHOLD, **kwargs
) -> List[Tuple[int, Image]]:
    """Functional wrapper around :class:`KeyFrameExtractor`."""
    return KeyFrameExtractor(threshold=threshold, **kwargs).extract(frames)
