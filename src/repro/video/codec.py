"""RVF -- a small self-describing video container.

The paper treats a video as a file that an external "video to jpeg
converter" expands into an ordered list of frame images.  RVF replaces that
tool chain with a real on-disk format we fully control:

Layout (all integers little-endian)::

    magic      4 bytes  b"RVF1"
    width      u32
    height     u32
    fps        u32      (nominal; metadata only)
    channels   u32      (1 = gray, 3 = RGB)
    codec      u32      (0 = RAW, 1 = RLE)
    n_frames   u32
    reserved   u32
    frame table: n_frames x (offset u64, length u64)   -- relative to data start
    frame data  ...

RLE compresses each frame's flattened bytes as (count u8, value u8) pairs
per run, capped at 255 -- synthetic frames have large flat areas, so this
typically shrinks them 3-10x.  The frame table makes random access O(1),
which the ingest pipeline uses to stream frames without decoding the whole
file.
"""

from __future__ import annotations

import io
import os
import struct
from typing import Iterable, Iterator, List, Sequence, Union

import numpy as np

from repro.imaging.image import Image

__all__ = [
    "RvfError",
    "RvfWriter",
    "RvfReader",
    "write_rvf",
    "read_rvf",
    "encode_rvf_bytes",
    "rle_encode",
    "rle_decode",
]

_MAGIC = b"RVF1"
_HEADER = struct.Struct("<4sIIIIIII")
_TABLE_ENTRY = struct.Struct("<QQ")

CODEC_RAW = 0
CODEC_RLE = 1


class RvfError(ValueError):
    """Raised for malformed RVF data or inconsistent frame shapes."""


# ---------------------------------------------------------------------------
# RLE
# ---------------------------------------------------------------------------


def rle_encode(data: bytes) -> bytes:
    """Run-length encode bytes as (count, value) pairs, runs capped at 255."""
    if not data:
        return b""
    arr = np.frombuffer(data, dtype=np.uint8)
    # boundaries where the value changes
    change = np.nonzero(np.diff(arr))[0] + 1
    starts = np.concatenate(([0], change))
    ends = np.concatenate((change, [arr.size]))
    out = bytearray()
    for s, e in zip(starts, ends):
        value = arr[s]
        run = int(e - s)
        while run > 255:
            out.append(255)
            out.append(value)
            run -= 255
        out.append(run)
        out.append(value)
    return bytes(out)


def rle_decode(data: bytes, expected: int) -> bytes:
    """Decode RLE bytes; raises :class:`RvfError` on length mismatch."""
    if len(data) % 2 != 0:
        raise RvfError("RLE stream has odd length")
    pairs = np.frombuffer(data, dtype=np.uint8).reshape(-1, 2)
    counts = pairs[:, 0].astype(np.int64)
    values = pairs[:, 1]
    total = int(counts.sum())
    if total != expected:
        raise RvfError(f"RLE decodes to {total} bytes, expected {expected}")
    return np.repeat(values, counts).tobytes()


# ---------------------------------------------------------------------------
# writer
# ---------------------------------------------------------------------------


class RvfWriter:
    """Accumulates frames and serializes the container.

    All frames must share the first frame's shape.  Use as::

        writer = RvfWriter(codec="rle", fps=25)
        for frame in frames:
            writer.append(frame)
        writer.save(path)          # or data = writer.to_bytes()
    """

    def __init__(self, codec: str = "auto", fps: int = 25):
        codec = codec.lower()
        if codec not in ("raw", "rle", "auto"):
            raise ValueError(f"unknown codec {codec!r}")
        self._requested = codec
        self._fps = int(fps)
        self._shape = None
        self._raw_frames: List[bytes] = []

    def append(self, frame: Image) -> None:
        if not isinstance(frame, Image):
            raise TypeError("RvfWriter.append expects an Image")
        if self._shape is None:
            self._shape = frame.shape
        elif frame.shape != self._shape:
            raise RvfError(
                f"frame shape {frame.shape} differs from first frame {self._shape}"
            )
        self._raw_frames.append(frame.pixels.tobytes())

    def __len__(self) -> int:
        return len(self._raw_frames)

    def _choose_payloads(self):
        """Resolve 'auto' by whichever encoding is smaller in total."""
        if self._requested == "raw":
            return CODEC_RAW, self._raw_frames
        rle = [rle_encode(raw) for raw in self._raw_frames]
        if self._requested == "rle":
            return CODEC_RLE, rle
        if sum(map(len, rle)) < sum(map(len, self._raw_frames)):
            return CODEC_RLE, rle
        return CODEC_RAW, self._raw_frames

    def to_bytes(self) -> bytes:
        if self._shape is None:
            raise RvfError("cannot serialize an empty RVF stream")
        codec, payloads = self._choose_payloads()
        h, w = self._shape[0], self._shape[1]
        channels = 1 if len(self._shape) == 2 else self._shape[2]
        out = io.BytesIO()
        out.write(
            _HEADER.pack(_MAGIC, w, h, self._fps, channels, codec, len(payloads), 0)
        )
        offset = 0
        for payload in payloads:
            out.write(_TABLE_ENTRY.pack(offset, len(payload)))
            offset += len(payload)
        for payload in payloads:
            out.write(payload)
        return out.getvalue()

    def save(self, path: Union[str, "os.PathLike[str]"]) -> None:
        with open(path, "wb") as fh:
            fh.write(self.to_bytes())


# ---------------------------------------------------------------------------
# reader
# ---------------------------------------------------------------------------


class RvfReader:
    """Random-access reader over RVF bytes.

    Supports ``len(reader)``, ``reader[i]``, iteration, and slicing
    (``reader[2:8]`` returns a list of decoded frames).
    """

    def __init__(self, data: bytes):
        if len(data) < _HEADER.size:
            raise RvfError("RVF data shorter than header")
        (magic, w, h, fps, channels, codec, n_frames, _reserved) = _HEADER.unpack_from(
            data, 0
        )
        if magic != _MAGIC:
            raise RvfError(f"bad RVF magic {magic!r}")
        if channels not in (1, 3):
            raise RvfError(f"unsupported channel count {channels}")
        if codec not in (CODEC_RAW, CODEC_RLE):
            raise RvfError(f"unsupported codec id {codec}")
        self.width = w
        self.height = h
        self.fps = fps
        self.channels = channels
        self._codec = codec
        table_size = n_frames * _TABLE_ENTRY.size
        data_start = _HEADER.size + table_size
        if len(data) < data_start:
            raise RvfError("RVF frame table truncated")
        self._entries = [
            _TABLE_ENTRY.unpack_from(data, _HEADER.size + i * _TABLE_ENTRY.size)
            for i in range(n_frames)
        ]
        self._data = data
        self._data_start = data_start
        for off, length in self._entries:
            if data_start + off + length > len(data):
                raise RvfError("RVF frame data truncated")

    @classmethod
    def open(cls, path: Union[str, "os.PathLike[str]"]) -> "RvfReader":
        with open(path, "rb") as fh:
            return cls(fh.read())

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def frame_shape(self):
        if self.channels == 1:
            return (self.height, self.width)
        return (self.height, self.width, 3)

    def _decode(self, index: int) -> Image:
        off, length = self._entries[index]
        start = self._data_start + off
        payload = self._data[start : start + length]
        expected = self.height * self.width * self.channels
        if self._codec == CODEC_RLE:
            raw = rle_decode(payload, expected)
        else:
            if length != expected:
                raise RvfError(
                    f"raw frame {index} has {length} bytes, expected {expected}"
                )
            raw = payload
        arr = np.frombuffer(raw, dtype=np.uint8).reshape(self.frame_shape)
        return Image(arr)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._decode(i) for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(f"frame index {index} out of range")
        return self._decode(index)

    def __iter__(self) -> Iterator[Image]:
        for i in range(len(self)):
            yield self._decode(i)


# ---------------------------------------------------------------------------
# conveniences
# ---------------------------------------------------------------------------


def encode_rvf_bytes(frames: Sequence[Image], codec: str = "auto", fps: int = 25) -> bytes:
    """Serialize a frame sequence into RVF bytes."""
    writer = RvfWriter(codec=codec, fps=fps)
    for frame in frames:
        writer.append(frame)
    return writer.to_bytes()


def write_rvf(
    frames: Iterable[Image], path: Union[str, "os.PathLike[str]"], codec: str = "auto", fps: int = 25
) -> None:
    """Write a frame sequence to an RVF file."""
    writer = RvfWriter(codec=codec, fps=fps)
    for frame in frames:
        writer.append(frame)
    writer.save(path)


def read_rvf(path: Union[str, "os.PathLike[str]"]) -> List[Image]:
    """Read every frame of an RVF file into memory."""
    return list(RvfReader.open(path))
