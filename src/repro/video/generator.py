"""Deterministic synthetic video corpus.

The paper evaluates on clips downloaded from archive.org, organized into
"different categories of images like e-learning, sports, cartoon, movies,
etc." (§5).  Those clips are unavailable, so this module synthesizes a
corpus with the property the evaluation actually depends on: videos of the
same category share low-level statistics (palette, texture energy, region
structure) while videos of different categories differ in them.

Five categories are generated, each from a parametric scene model:

- ``elearning`` -- bright slide backgrounds with dark text blocks; slide
  changes at shot boundaries; almost no intra-shot motion.
- ``sports``    -- green grass-textured field with white field lines and
  moving players (colored circles); panning camera.
- ``cartoon``   -- flat, saturated color regions with bold outlines,
  halftone dots and large bouncing shapes.
- ``movies``    -- dark cinematic gradients, letterbox bars, film grain and
  slow object drift.
- ``news``      -- studio backdrop, anchor bust, desk, and a striped ticker
  bar; essentially static within a shot.

Every video is a multi-shot sequence: shots differ (new scene layout, new
palette sample), frames within a shot evolve smoothly (motion + per-frame
noise).  Everything is seeded, so corpora are exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.imaging.draw import Canvas
from repro.imaging.image import Image
from repro.imaging.synthetic import (
    grass_texture,
    halftone_dots,
    smooth_noise,
    stripes,
)

__all__ = ["CATEGORIES", "VideoSpec", "SyntheticVideo", "generate_video", "make_corpus"]

CATEGORIES: Tuple[str, ...] = ("elearning", "sports", "cartoon", "movies", "news")


@dataclass(frozen=True)
class VideoSpec:
    """Generation parameters for one synthetic video."""

    category: str
    seed: int
    width: int = 128
    height: int = 96
    n_shots: int = 3
    frames_per_shot: int = 12
    fps: int = 25
    noise_sigma: float = 3.0

    def __post_init__(self) -> None:
        if self.category not in CATEGORIES:
            raise ValueError(
                f"unknown category {self.category!r}; expected one of {CATEGORIES}"
            )
        if self.n_shots < 1 or self.frames_per_shot < 1:
            raise ValueError("n_shots and frames_per_shot must be >= 1")
        if self.width < 16 or self.height < 16:
            raise ValueError("frames must be at least 16x16")


@dataclass(frozen=True)
class SyntheticVideo:
    """A generated video: named frame sequence plus its ground-truth category."""

    name: str
    category: str
    frames: Tuple[Image, ...]
    spec: VideoSpec = field(repr=False)

    @property
    def n_frames(self) -> int:
        return len(self.frames)

    @property
    def shot_boundaries(self) -> List[int]:
        """Indices where a new shot starts (excluding frame 0)."""
        per = self.spec.frames_per_shot
        return [i for i in range(per, self.n_frames, per)]


# ---------------------------------------------------------------------------
# per-category scene renderers
#
# Each sets up a "scene" dict from the shot RNG, then renders frame t in
# [0, 1) of that shot.  Scene setup happens once per shot so intra-shot
# frames are smooth variations and shot changes are abrupt.
# ---------------------------------------------------------------------------


def _scene_elearning(rng: np.random.Generator, w: int, h: int) -> Dict:
    # slide themes span dark to light so plain color statistics overlap
    # with the other categories; the text-row structure is the signature
    bg_top = rng.uniform(50, 250)
    tint = rng.uniform(-40, 40, size=3)
    if bg_top > 140:  # light theme -> dark text
        text = np.clip(rng.uniform(0, 70, size=3), 0, 255)
    else:  # dark theme -> bright text
        text = np.clip(rng.uniform(180, 255, size=3), 0, 255)
    variant = rng.choice(["text", "photo", "code"])
    return {
        "variant": str(variant),
        "bg_top": np.clip(bg_top + tint, 0, 255),
        "bg_bottom": np.clip(bg_top - rng.uniform(15, 50) + tint, 0, 255),
        "title_w": int(w * rng.uniform(0.4, 0.8)),
        "n_lines": int(rng.integers(3, 7)) if variant != "code" else int(rng.integers(8, 14)),
        "text_color": text,
        "has_figure": bool(rng.random() < 0.5),
        "fig_color": np.clip(rng.uniform(0, 255, size=3), 0, 255),
        "photo_sigma": float(rng.uniform(2.0, 6.0)),
        "photo_seed": int(rng.integers(0, 2**31)),
        "text_seed": int(rng.integers(0, 2**31)),
    }


def _render_elearning(canvas: Canvas, scene: Dict, t: float) -> None:
    w, h = canvas.width, canvas.height
    canvas.vertical_gradient(tuple(scene["bg_top"]), tuple(scene["bg_bottom"]))
    # title bar
    canvas.rect(int(w * 0.08), int(h * 0.06), int(w * 0.08) + scene["title_w"], int(h * 0.16), tuple(scene["text_color"]))
    variant = scene["variant"]
    line_height = max(2, h // 28) if variant == "code" else max(3, h // 20)
    # body text appears progressively (slide build-in)
    visible = max(1, int(np.ceil(scene["n_lines"] * min(1.0, 0.4 + t))))
    canvas.text_block(
        int(w * 0.1),
        int(h * 0.28),
        int(w * 0.65),
        visible,
        tuple(scene["text_color"]),
        line_height=line_height,
        rng=np.random.default_rng(scene["text_seed"]),
    )
    if variant == "photo":
        # a large photo block: smooth textured region like a movie still
        x0, y0, x1, y1 = int(w * 0.5), int(h * 0.3), int(w * 0.95), int(h * 0.92)
        photo = smooth_noise(x1 - x0, y1 - y0, scene["photo_sigma"],
                             np.random.default_rng(scene["photo_seed"]),
                             lo=30, hi=225)
        canvas.buf[y0:y1, x0:x1, :] = photo[:, :, np.newaxis]
    elif scene["has_figure"]:
        fx0, fy0 = int(w * 0.62), int(h * 0.55)
        canvas.rect(fx0, fy0, int(w * 0.92), int(h * 0.9), tuple(scene["fig_color"]))


def _scene_sports(rng: np.random.Generator, w: int, h: int) -> Dict:
    # playing surfaces vary widely (turf, clay, court blue, hardwood):
    # color alone no longer identifies sports -- the grass-like
    # high-frequency texture, field lines and player blobs do
    surface = np.clip(rng.uniform(20, 210, size=3), 0, 255)
    variant = rng.choice(["field", "court"])
    n_players = int(rng.integers(4, 9))
    team_a = np.clip(rng.uniform(120, 255, size=3), 0, 255)
    team_b = np.clip(rng.uniform(120, 255, size=3), 0, 255)
    return {
        "variant": str(variant),
        "green": surface,
        "grass": None,  # rendered lazily against frame size
        "grass_seed": int(rng.integers(0, 2**31)),
        "crowd_seed": int(rng.integers(0, 2**31)),
        "pan": rng.uniform(-0.25, 0.25),
        "players": [
            {
                "x": rng.uniform(0.1, 0.9),
                "y": rng.uniform(0.25, 0.9),
                "vx": rng.uniform(-0.25, 0.25),
                "vy": rng.uniform(-0.12, 0.12),
                "color": team_a if i % 2 == 0 else team_b,
                "r": rng.uniform(0.02, 0.04),
            }
            for i, _ in enumerate(range(n_players))
        ],
        "line_y": rng.uniform(0.4, 0.7),
    }


def _render_sports(canvas: Canvas, scene: Dict, t: float) -> None:
    w, h = canvas.width, canvas.height
    if scene["grass"] is None:
        grng = np.random.default_rng(scene["grass_seed"])
        scene["grass"] = grass_texture(w, h, grng)
    canvas.fill(tuple(scene["green"]))
    if scene["variant"] == "field":
        canvas.blend_texture(scene["grass"], 0.25)
    else:
        # indoor court: smooth floor, noisy crowd band at the top
        crowd = smooth_noise(w, max(4, h // 5), 0.8,
                             np.random.default_rng(scene["crowd_seed"]),
                             lo=20, hi=200)
        canvas.buf[: crowd.shape[0], :, :] = crowd[:, :, np.newaxis]
    pan = scene["pan"] * t
    # field lines (horizontal sideline + center circle), shifted by pan
    ly = int(h * scene["line_y"])
    canvas.line(0, ly, w - 1, ly, (230, 230, 230), width=2)
    canvas.line(int(w * (0.5 + pan)), 0, int(w * (0.5 + pan)), h - 1, (230, 230, 230), width=2)
    for p in scene["players"]:
        x = (p["x"] + p["vx"] * t + pan) % 1.0
        y = min(0.95, max(0.05, p["y"] + p["vy"] * t))
        canvas.circle(x * w, y * h, p["r"] * (w + h), tuple(p["color"]))


def _scene_cartoon(rng: np.random.Generator, w: int, h: int) -> Dict:
    palette = np.clip(rng.uniform(0, 255, size=(4, 3)), 0, 255)
    return {
        "variant": str(rng.choice(["scene", "closeup"])),
        "sky": palette[0],
        "ground": palette[1],
        "blob_color": palette[2],
        "blob2_color": palette[3],
        "split": rng.uniform(0.5, 0.8),
        "blob_x": rng.uniform(0.15, 0.85),
        "blob_r": rng.uniform(0.1, 0.18),
        "bounce": rng.uniform(0.8, 2.2),
        "dots": bool(rng.random() < 0.6),
        "dot_spacing": int(rng.integers(8, 16)),
        "outline": bool(rng.random() < 0.8),
    }


def _render_cartoon(canvas: Canvas, scene: Dict, t: float) -> None:
    w, h = canvas.width, canvas.height
    if scene["variant"] == "closeup":
        # flat background + big outlined face with eyes and mouth
        canvas.fill(tuple(scene["sky"]))
        r = min(w, h) * 0.36
        cx = w * 0.5 + np.sin(t * 2 * np.pi) * w * 0.02
        cy = h * 0.5
        if scene["outline"]:
            canvas.circle(cx, cy, r + 3, (10, 10, 10))
        canvas.circle(cx, cy, r, tuple(scene["blob_color"]))
        eye_r = r * 0.16
        for ex in (-0.35, 0.35):
            canvas.circle(cx + ex * r, cy - 0.25 * r, eye_r + 2, (250, 250, 250))
            canvas.circle(cx + ex * r, cy - 0.25 * r, eye_r * 0.5, (15, 15, 15))
        canvas.rect(int(cx - 0.4 * r), int(cy + 0.35 * r),
                    int(cx + 0.4 * r), int(cy + 0.5 * r), (15, 15, 15))
        if scene["dots"]:
            dots = halftone_dots(w, h, scene["dot_spacing"], 1)
            canvas.blend_texture(dots, 0.08)
        return
    split = int(h * scene["split"])
    canvas.rect(0, 0, w, split, tuple(scene["sky"]))
    canvas.rect(0, split, w, h, tuple(scene["ground"]))
    if scene["dots"]:
        dots = halftone_dots(w, h, scene["dot_spacing"], 1)
        canvas.blend_texture(dots, 0.08)
    # bouncing blob
    bx = scene["blob_x"] * w
    by = split - abs(np.sin(t * np.pi * scene["bounce"])) * split * 0.6 - scene["blob_r"] * h
    r = scene["blob_r"] * min(w, h)
    if scene["outline"]:
        canvas.circle(bx, by, r + 2, (10, 10, 10))
    canvas.circle(bx, by, r, tuple(scene["blob_color"]))
    # companion square sliding along the ground
    sx = ((scene["blob_x"] + 0.3 + 0.4 * t) % 1.0) * w
    size = r * 0.9
    if scene["outline"]:
        canvas.rect(int(sx - size - 2), int(split - 2 * size - 2), int(sx + size + 2), split, (10, 10, 10))
    canvas.rect(int(sx - size), int(split - 2 * size), int(sx + size), split - 2, tuple(scene["blob2_color"]))


def _scene_movies(rng: np.random.Generator, w: int, h: int) -> Dict:
    variant = rng.choice(["night", "day"])
    base = rng.uniform(15, 90) if variant == "night" else rng.uniform(120, 210)
    warm = rng.uniform(-40, 40, size=3)
    return {
        "variant": str(variant),
        "top": np.clip(base + warm, 0, 255),
        "bottom": np.clip(base * rng.uniform(0.3, 0.8) + warm, 0, 230),
        "grain_seed": int(rng.integers(0, 2**31)),
        "fog_alpha": 0.35 if variant == "night" else 0.12,
        "fog_sigma": rng.uniform(4.0, 9.0),
        "subject_x": rng.uniform(0.25, 0.75),
        "subject_color": np.clip(rng.uniform(30, 220, size=3), 0, 255),
        "drift": rng.uniform(-0.12, 0.12),
        "moon": bool(rng.random() < 0.4),
    }


def _render_movies(canvas: Canvas, scene: Dict, t: float) -> None:
    w, h = canvas.width, canvas.height
    canvas.vertical_gradient(tuple(scene["top"]), tuple(scene["bottom"]))
    fog_rng = np.random.default_rng(scene["grain_seed"])
    fog = smooth_noise(w, h, scene["fog_sigma"], fog_rng, lo=0, hi=90)
    canvas.blend_texture(fog, scene["fog_alpha"])
    if scene["moon"]:
        canvas.circle(w * 0.8, h * 0.2, min(w, h) * 0.07, (210, 210, 190))
    # subject silhouette drifting
    sx = (scene["subject_x"] + scene["drift"] * t) * w
    canvas.rect(int(sx - w * 0.05), int(h * 0.45), int(sx + w * 0.05), int(h * 0.82), tuple(scene["subject_color"] * 0.5))
    canvas.circle(sx, h * 0.4, min(w, h) * 0.055, tuple(scene["subject_color"]))
    # letterbox bars
    bar = max(2, h // 12)
    canvas.rect(0, 0, w, bar, (0, 0, 0))
    canvas.rect(0, h - bar, w, h, (0, 0, 0))


def _scene_news(rng: np.random.Generator, w: int, h: int) -> Dict:
    backdrop = np.clip(rng.uniform(20, 230, size=3), 0, 255)
    return {
        "variant": str(rng.choice(["studio", "graphic"])),
        "backdrop": backdrop,
        "desk": np.clip(backdrop * 0.5 + rng.uniform(0, 40, size=3), 0, 255),
        "anchor_skin": np.array([rng.uniform(170, 230), rng.uniform(130, 190), rng.uniform(100, 160)]),
        "suit": np.clip(rng.uniform(20, 90, size=3), 0, 255),
        "ticker_period": int(rng.integers(6, 14)),
        "anchor_x": rng.uniform(0.35, 0.65),
        "gesture": rng.uniform(0.0, 0.02),
        "logo_color": np.clip(rng.uniform(150, 255, size=3), 0, 255),
    }


def _render_news(canvas: Canvas, scene: Dict, t: float) -> None:
    w, h = canvas.width, canvas.height
    canvas.fill(tuple(scene["backdrop"]))
    if scene["variant"] == "graphic":
        # fullscreen graphic: headline bar + content panels (slide-like)
        canvas.rect(int(w * 0.06), int(h * 0.08), int(w * 0.94), int(h * 0.22), tuple(scene["logo_color"]))
        canvas.rect(int(w * 0.06), int(h * 0.3), int(w * 0.6), int(h * 0.7), tuple(scene["suit"]))
        canvas.rect(int(w * 0.66), int(h * 0.3), int(w * 0.94), int(h * 0.7), tuple(scene["desk"]))
    else:
        # backdrop panels
        canvas.rect(0, 0, int(w * 0.25), h, tuple(scene["backdrop"] * 0.8))
        canvas.rect(int(w * 0.75), 0, w, h, tuple(scene["backdrop"] * 0.8))
        ax = scene["anchor_x"] * w + np.sin(t * 2 * np.pi) * scene["gesture"] * w
        # suit (torso) then head
        canvas.rect(int(ax - w * 0.12), int(h * 0.5), int(ax + w * 0.12), int(h * 0.85), tuple(scene["suit"]))
        canvas.circle(ax, h * 0.38, min(w, h) * 0.11, tuple(scene["anchor_skin"]))
        # desk
        canvas.rect(0, int(h * 0.78), w, int(h * 0.88), tuple(scene["desk"]))
    # scrolling ticker
    ticker = stripes(w, max(2, h // 10), scene["ticker_period"], angle_deg=0.0, lo=40, hi=220)
    shift = int(t * w) % w
    ticker = np.roll(ticker, -shift, axis=1)
    th = ticker.shape[0]
    canvas.buf[h - th : h, :, :] = ticker[:, :, np.newaxis]
    # station logo
    canvas.rect(int(w * 0.04), int(h * 0.04), int(w * 0.18), int(h * 0.14), tuple(scene["logo_color"]))


_SCENES: Dict[str, Tuple[Callable, Callable]] = {
    "elearning": (_scene_elearning, _render_elearning),
    "sports": (_scene_sports, _render_sports),
    "cartoon": (_scene_cartoon, _render_cartoon),
    "movies": (_scene_movies, _render_movies),
    "news": (_scene_news, _render_news),
}


# ---------------------------------------------------------------------------
# generation driver
# ---------------------------------------------------------------------------


def generate_video(spec: VideoSpec, name: str = None) -> SyntheticVideo:
    """Render one synthetic video from its spec (fully deterministic)."""
    rng = np.random.default_rng(spec.seed)
    make_scene, render = _SCENES[spec.category]
    frames: List[Image] = []
    noise_rng = np.random.default_rng(spec.seed + 1)
    for shot in range(spec.n_shots):
        scene = make_scene(rng, spec.width, spec.height)
        for k in range(spec.frames_per_shot):
            t = k / spec.frames_per_shot
            canvas = Canvas(spec.width, spec.height)
            render(canvas, scene, t)
            canvas.add_noise(spec.noise_sigma, noise_rng)
            frames.append(canvas.to_image())
    video_name = name or f"{spec.category}_{spec.seed:05d}"
    return SyntheticVideo(name=video_name, category=spec.category, frames=tuple(frames), spec=spec)


def make_corpus(
    videos_per_category: int = 12,
    seed: int = 2012,
    categories: Sequence[str] = CATEGORIES,
    **spec_overrides,
) -> List[SyntheticVideo]:
    """Generate the evaluation corpus: ``videos_per_category`` per category.

    ``spec_overrides`` are forwarded to :class:`VideoSpec` (e.g.
    ``frames_per_shot=8, width=96``).  Videos are deterministic functions of
    ``seed``; two calls with the same arguments yield identical corpora.
    """
    if videos_per_category < 1:
        raise ValueError("videos_per_category must be >= 1")
    corpus: List[SyntheticVideo] = []
    for ci, category in enumerate(categories):
        for v in range(videos_per_category):
            vid_seed = seed + ci * 1000 + v
            spec = VideoSpec(category=category, seed=vid_seed, **spec_overrides)
            corpus.append(generate_video(spec, name=f"{category}_{v:03d}"))
    return corpus
