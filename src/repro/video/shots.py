"""Frame-distance and shot-boundary helpers.

The key-frame extractor (§4.1) needs a scalar distance between consecutive
frames; the same distance doubles as a simple shot-cut detector, which the
tests use to verify that the synthetic generator really produces abrupt
shot changes and smooth intra-shot motion.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.imaging.image import Image

__all__ = ["frame_distance", "frame_distances", "cut_indices"]


def frame_distance(a: Image, b: Image) -> float:
    """Mean absolute pixel difference between two equally-shaped frames."""
    if a.shape != b.shape:
        raise ValueError(f"frame shapes differ: {a.shape} vs {b.shape}")
    return float(
        np.mean(np.abs(a.pixels.astype(np.float64) - b.pixels.astype(np.float64)))
    )


def frame_distances(frames: Sequence[Image]) -> List[float]:
    """Distances between consecutive frames: ``len(frames) - 1`` values."""
    return [frame_distance(frames[i], frames[i + 1]) for i in range(len(frames) - 1)]


def cut_indices(frames: Sequence[Image], factor: float = 3.0, floor: float = 8.0) -> List[int]:
    """Indices ``i`` where frame ``i`` starts a new shot.

    A cut is declared where the consecutive-frame distance exceeds both
    ``floor`` and ``factor`` times the median distance.
    """
    if len(frames) < 2:
        return []
    dists = np.asarray(frame_distances(frames))
    med = float(np.median(dists))
    threshold = max(floor, factor * med)
    return [int(i) + 1 for i in np.nonzero(dists > threshold)[0]]
