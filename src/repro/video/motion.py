"""Motion descriptors (extension).

§1 of the paper names *motion* among the common features used in visual
similarity matching, but the implemented system is frame-based.  This
extension adds a clip-level motion descriptor so motion can participate in
video-to-video retrieval:

- :func:`motion_energy` -- per-transition mean absolute pixel change;
- :func:`motion_activity` -- a fixed-length descriptor: [mean, std, max
  energy, fraction of high-motion transitions, direction histogram] where
  direction comes from coarse block matching between consecutive frames.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.imaging.color import rgb_to_gray
from repro.imaging.image import Image

__all__ = ["motion_energy", "block_motion_vectors", "motion_activity", "MOTION_DIMS"]

#: dims of :func:`motion_activity`: 4 statistics + 8 direction bins.
MOTION_DIMS = 12


def motion_energy(frames: Sequence[Image]) -> List[float]:
    """Mean absolute gray-level change for each consecutive frame pair."""
    grays = [
        rgb_to_gray(f.pixels).astype(np.float64) if f.is_rgb else f.pixels.astype(np.float64)
        for f in frames
    ]
    return [
        float(np.mean(np.abs(grays[i + 1] - grays[i]))) for i in range(len(grays) - 1)
    ]


def block_motion_vectors(
    a: Image, b: Image, block: int = 16, radius: int = 4
) -> np.ndarray:
    """Coarse block-matching motion field from frame ``a`` to ``b``.

    For each ``block x block`` tile of ``a``, the displacement in
    ``[-radius, radius]^2`` minimizing the sum of absolute differences in
    ``b`` is chosen.  Returns an ``(n_blocks, 2)`` array of (dx, dy).
    """
    if a.shape != b.shape:
        raise ValueError("frames must share a shape")
    ga = rgb_to_gray(a.pixels).astype(np.float64) if a.is_rgb else a.pixels.astype(np.float64)
    gb = rgb_to_gray(b.pixels).astype(np.float64) if b.is_rgb else b.pixels.astype(np.float64)
    h, w = ga.shape
    # candidates ordered smallest-displacement-first so ties (e.g. flat
    # regions, where every SAD is 0) resolve to the least motion
    candidates = sorted(
        ((dx, dy) for dy in range(-radius, radius + 1) for dx in range(-radius, radius + 1)),
        key=lambda d: (d[0] * d[0] + d[1] * d[1]),
    )
    vectors = []
    for y0 in range(0, h - block + 1, block):
        for x0 in range(0, w - block + 1, block):
            tile = ga[y0 : y0 + block, x0 : x0 + block]
            best = (0, 0)
            best_sad = np.inf
            for dx, dy in candidates:
                yy, xx = y0 + dy, x0 + dx
                if yy < 0 or yy + block > h or xx < 0 or xx + block > w:
                    continue
                sad = float(np.abs(gb[yy : yy + block, xx : xx + block] - tile).sum())
                if sad < best_sad - 1e-9:
                    best_sad = sad
                    best = (dx, dy)
            vectors.append(best)
    return np.asarray(vectors, dtype=np.float64)


def motion_activity(
    frames: Sequence[Image],
    high_motion_threshold: float = 12.0,
    block: int = 16,
    radius: int = 4,
    direction_bins: int = 8,
) -> np.ndarray:
    """Clip-level motion descriptor (length :data:`MOTION_DIMS`).

    ``[mean_energy, std_energy, max_energy, high_motion_fraction,
    dir_hist_0 .. dir_hist_7]`` -- the direction histogram aggregates
    block-matching vectors over a few sampled transitions and is
    L1-normalized (all zeros for a static clip).
    """
    if len(frames) < 2:
        raise ValueError("motion_activity needs at least 2 frames")
    energies = np.asarray(motion_energy(frames))
    stats = [
        float(energies.mean()),
        float(energies.std()),
        float(energies.max()),
        float(np.mean(energies > high_motion_threshold)),
    ]
    # sample up to 4 transitions for the (expensive) block matching
    idx = np.linspace(0, len(frames) - 2, num=min(4, len(frames) - 1), dtype=int)
    hist = np.zeros(direction_bins)
    for i in idx:
        vectors = block_motion_vectors(frames[i], frames[i + 1], block, radius)
        moving = vectors[(vectors[:, 0] != 0) | (vectors[:, 1] != 0)]
        if moving.size == 0:
            continue
        angles = np.arctan2(moving[:, 1], moving[:, 0])  # [-pi, pi]
        bins = ((angles + np.pi) / (2 * np.pi) * direction_bins).astype(int)
        bins = np.clip(bins, 0, direction_bins - 1)
        hist += np.bincount(bins, minlength=direction_bins)
    total = hist.sum()
    if total > 0:
        hist = hist / total
    return np.asarray(stats + hist.tolist())
