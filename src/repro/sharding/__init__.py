"""``repro.sharding``: scatter-gather serving over partitioned snapshots.

Horizontal scaling for the query path: a stable hash partitioner
(:mod:`~repro.sharding.partition`) assigns whole videos to shards, the
builder (:mod:`~repro.sharding.builder`) writes one self-contained
RSNAP1 snapshot per shard, and the coordinator
(:mod:`~repro.sharding.coordinator`) fans each frame / vector / video
query out to persistent, snapshot-mmapping worker processes and merges
their raw per-feature distances into a ranking **byte-identical** to
the single-store engine's.  A failing shard degrades to a partial
ranking (``SearchResults.degraded_shards``) guarded by per-shard
circuit breakers and the ``shard.query`` fault point.

See ``docs/sharding.md`` for the architecture and operational guide.
"""

from repro.sharding.bootstrap import (
    attach_sharded_engine,
    maybe_attach_sharded,
    sharded_config,
)
from repro.sharding.builder import SHARD_SNAPSHOT_PATTERN, split_library, split_store
from repro.sharding.coordinator import ShardedSearchEngine
from repro.sharding.manifest import MANIFEST_NAME, ShardManifest, read_manifest
from repro.sharding.partition import partition_video_ids, shard_of

__all__ = [
    "MANIFEST_NAME",
    "SHARD_SNAPSHOT_PATTERN",
    "ShardManifest",
    "ShardedSearchEngine",
    "attach_sharded_engine",
    "maybe_attach_sharded",
    "partition_video_ids",
    "read_manifest",
    "shard_of",
    "sharded_config",
    "split_library",
    "split_store",
]
