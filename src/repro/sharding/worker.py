"""Shard worker tasks: raw per-feature distances over one partition.

These module-level functions run inside the coordinator's persistent
per-shard worker processes (``WorkerPool.submit``).  Each process mmaps
its partition's snapshot once and caches the resulting read-replica
store across queries -- the pool's ``init_worker_snapshot`` initializer
records the path at spawn, but the task also carries it explicitly so
the in-process serial fallback (broken pool, unpicklable payload) scores
the right partition regardless of what the parent's own pool was
initialized with.

Workers return **raw** distances, never fused scores: the combined
ranking min-max normalizes each feature over the *global* candidate set,
so normalizing per shard would change the merged order.  Every distance
kernel is rowwise (no matrix-global statistics), hence a shard's rows
are bit-identical to the same rows of a full-store computation, and the
coordinator's merge reproduces the single-store ranking byte for byte.

Module state is lock-guarded for R15: worker processes are effectively
single-threaded, but the serial fallback shares this module with the
(possibly threaded) parent.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.snapshots import open_snapshot_store
from repro.core.store import FeatureStore, FrameRecord
from repro.features.base import FeatureExtractor, FeatureVector, get_extractor
from repro.snapshot import Snapshot

__all__ = ["score_vectors_shard", "score_video_shard", "reset_worker_state"]


class _ShardState:
    """One opened partition: mmap snapshot + store + extractor cache."""

    __slots__ = ("snapshot", "store", "extractors")

    def __init__(self, snapshot: Snapshot, store: FeatureStore):
        self.snapshot = snapshot
        self.store = store
        self.extractors: Dict[str, FeatureExtractor] = {}

    def extractor(self, name: str) -> FeatureExtractor:
        if name not in self.extractors:
            self.extractors[name] = get_extractor(name)
        return self.extractors[name]


_state_lock = threading.Lock()
_states: Dict[str, _ShardState] = {}


def _shard_state(path: str) -> _ShardState:
    with _state_lock:
        state = _states.get(path)
        if state is None:
            snapshot, store = open_snapshot_store(path)
            state = _ShardState(snapshot, store)
            _states[path] = state
        return state


def reset_worker_state() -> None:
    """Drop every cached partition (tests / coordinator shutdown fallback)."""
    with _state_lock:
        for state in _states.values():
            state.snapshot.close()
        _states.clear()


def score_vectors_shard(
    path: str,
    query_vectors: Dict[str, FeatureVector],
    names: Sequence[str],
    candidate_ids: Optional[Sequence[int]],
    batched: bool,
    fast: bool,
) -> Dict[str, np.ndarray]:
    """Raw per-feature distances for this shard's slice of the candidates.

    Mirrors ``SearchEngine._query_with_vectors`` branch for branch (the
    ``batched``/``fast`` flags are computed coordinator-side and passed
    in, so both processes pick the same kernel): prepared-stack scoring,
    the reference batched path, or the scalar per-record loop.
    ``candidate_ids=None`` means every frame of the partition -- the
    common case, which skips the row gather entirely.
    """
    state = _shard_state(path)
    store = state.store
    shard_full = candidate_ids is None
    if shard_full:
        candidate_ids = store.frame_ids()
    else:
        candidate_ids = list(candidate_ids)
    prepared_scoring = batched and fast
    records: Optional[List[FrameRecord]] = None
    rows: Optional[np.ndarray] = None
    if not batched or not fast:
        records = [store.get(fid) for fid in candidate_ids]
    elif prepared_scoring and not shard_full:
        rows = store.matrix_rows(candidate_ids)
    per_feature: Dict[str, np.ndarray] = {}
    for name in names:
        extractor = state.extractor(name)
        qv = query_vectors[name]
        if prepared_scoring:
            prepared = store.prepared_matrix(name, extractor)
            if rows is not None:
                prepared = prepared[rows]
            per_feature[name] = extractor.batch_distance_prepared(qv, prepared)
        elif batched:
            matrix = store.feature_matrix(
                name, None if shard_full else candidate_ids
            )
            per_feature[name] = extractor.batch_distance(qv, matrix)
        else:
            per_feature[name] = np.array(
                [extractor.distance(qv, rec.features[name]) for rec in records]
            )
    return per_feature


def score_video_shard(
    path: str,
    query_seq: Sequence[Dict[str, FeatureVector]],
    names: Sequence[str],
    batched: bool,
) -> Tuple[Dict[str, np.ndarray], List[int]]:
    """Per-feature (n_query x n_shard_frames) raw distance blocks.

    Columns follow the partition's canonical record order -- videos by
    ascending id, frames by ascending id within each video -- which is
    the global order restricted to this shard, so the coordinator can
    reassemble the full matrix by slotting each video's column block.
    Returns ``(blocks, video_ids)`` with the shard's videos in that
    column order.
    """
    state = _shard_state(path)
    store = state.store
    video_ids = store.video_ids()
    all_records: List[FrameRecord] = []
    for video_id in video_ids:
        all_records.extend(store.frames_of_video(video_id))
    nq, nr = len(query_seq), len(all_records)
    record_ids = [rec.frame_id for rec in all_records]
    blocks: Dict[str, np.ndarray] = {}
    for name in names:
        extractor = state.extractor(name)
        m = np.empty((nq, nr))
        if batched:
            matrix = store.feature_matrix(name, record_ids)
            for i, qf in enumerate(query_seq):
                m[i, :] = extractor.batch_distance(qf[name], matrix)
        else:
            for i, qf in enumerate(query_seq):
                for j, rec in enumerate(all_records):
                    m[i, j] = extractor.distance(qf[name], rec.features[name])
        blocks[name] = m
    return blocks, video_ids
