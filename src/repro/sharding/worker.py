"""Shard worker tasks: raw per-feature distances over one partition.

These module-level functions run inside the coordinator's persistent
per-shard worker processes (``WorkerPool.submit``).  Each process mmaps
its partition's snapshot once and caches the resulting read-replica
store across queries -- the pool's ``init_worker_snapshot`` initializer
records the path at spawn, but the task also carries it explicitly so
the in-process serial fallback (broken pool, unpicklable payload) scores
the right partition regardless of what the parent's own pool was
initialized with.

Workers return **raw** distances, never fused scores: the combined
ranking min-max normalizes each feature over the *global* candidate set,
so normalizing per shard would change the merged order.  Every distance
kernel is rowwise (no matrix-global statistics), hence a shard's rows
are bit-identical to the same rows of a full-store computation, and the
coordinator's merge reproduces the single-store ranking byte for byte.

Observability crosses the process boundary through the task itself: the
coordinator stamps a trace context (``obs_ctx``) into every task, the
worker rebuilds its span subtree under it and accumulates metrics into a
process-local registry, and the :class:`ShardReply` carries the
serialized subtree plus the metric *delta* since the previous reply back
for stitching/merging.  ``obs_ctx=None`` (observability disabled) keeps
the worker on shared null objects.

Module state is lock-guarded for R15: worker processes are effectively
single-threaded, but the serial fallback shares this module with the
(possibly threaded) parent.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.snapshots import open_snapshot_store
from repro.core.store import FeatureStore, FrameRecord
from repro.features.base import FeatureExtractor, FeatureVector, get_extractor
from repro.obs import NULL_SPAN, MetricsRegistry, capture_subtree, diff_state, free_span, log
from repro.obs.metrics import NULL_METRIC
from repro.snapshot import Snapshot

__all__ = [
    "ShardReply",
    "score_vectors_shard",
    "score_vectors_shard_batch",
    "score_video_shard",
    "drain_worker_metrics",
    "reset_worker_state",
]

_log = log.get_logger(__name__)

#: histogram edges for per-shard scored row counts (counts, not seconds)
_ROW_BUCKETS = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 1024.0, 4096.0,
    16384.0, 65536.0,
)


@dataclass
class ShardReply:
    """One task's answer plus its piggybacked observability payload.

    ``span`` is the serialized span subtree (``Span.to_dict`` form) when
    the propagated context was sampled, ``metrics`` the registry delta
    since this worker's previous reply (``MetricsRegistry.state`` form,
    already diffed) when the context requested metrics.
    """

    value: object
    span: Optional[Dict[str, object]] = None
    metrics: Optional[Dict[str, object]] = None


class _ShardState:
    """One opened partition: mmap snapshot + store + extractor cache."""

    __slots__ = ("snapshot", "store", "extractors")

    def __init__(self, snapshot: Snapshot, store: FeatureStore):
        self.snapshot = snapshot
        self.store = store
        self.extractors: Dict[str, FeatureExtractor] = {}

    def extractor(self, name: str) -> FeatureExtractor:
        if name not in self.extractors:
            self.extractors[name] = get_extractor(name)
        return self.extractors[name]


class _WorkerMetrics:
    """The worker process's own registry plus delta bookkeeping.

    Families deliberately use a ``repro_worker_*`` prefix distinct from
    the coordinator's: the coordinator merges deltas with a ``shard``
    label, and distinct names keep fleet aggregates from colliding with
    the coordinator's in-process instrumentation.
    """

    __slots__ = ("registry", "queries", "seconds", "rows", "distance_seconds",
                 "snapshot_opens", "resets", "drains", "_last")

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.queries = self.registry.counter(
            "repro_worker_queries_total",
            "Shard tasks executed in this worker, by kind.",
            labelnames=("kind",),
        )
        self.seconds = self.registry.histogram(
            "repro_worker_query_seconds",
            "Shard task wall time inside the worker, by kind.",
            labelnames=("kind",),
        )
        self.rows = self.registry.histogram(
            "repro_worker_rows_scored",
            "Rows (frames) scored per shard task.",
            buckets=_ROW_BUCKETS,
        )
        self.distance_seconds = self.registry.histogram(
            "repro_worker_distance_seconds",
            "Per-feature distance kernel time per shard task.",
            labelnames=("feature",),
        )
        self.snapshot_opens = self.registry.counter(
            "repro_worker_snapshot_opens_total",
            "Partition snapshots mmapped by this worker.",
        )
        self.resets = self.registry.counter(
            "repro_worker_resets_total",
            "Times the worker's partition cache was dropped.",
        )
        self.drains = self.registry.counter(
            "repro_worker_metric_drains_total",
            "Explicit drains (worker recycle / coordinator shutdown).",
        )
        self._last: Dict[str, object] = {}

    def delta(self) -> Optional[Dict[str, object]]:
        """Registry changes since the previous delta (None when quiet)."""
        current = self.registry.state()
        changed = diff_state(current, self._last)
        self._last = current
        return changed or None


class _NullWorkerMetrics:
    """Null twin handed out when the task carries no metrics request."""

    __slots__ = ()

    queries = NULL_METRIC
    seconds = NULL_METRIC
    rows = NULL_METRIC
    distance_seconds = NULL_METRIC
    snapshot_opens = NULL_METRIC
    resets = NULL_METRIC

    @staticmethod
    def delta() -> None:
        return None


_NULL_WORKER_METRICS = _NullWorkerMetrics()

_state_lock = threading.Lock()
_states: Dict[str, _ShardState] = {}
_metrics_lock = threading.Lock()
_worker_metrics: Optional[_WorkerMetrics] = None


def _metrics(want: bool = True):
    """The process-wide worker metric bundle (created on first request)."""
    global _worker_metrics
    if not want:
        return _NULL_WORKER_METRICS
    with _metrics_lock:
        if _worker_metrics is None:
            _worker_metrics = _WorkerMetrics()
        return _worker_metrics


def _shard_state(path: str, metrics=_NULL_WORKER_METRICS) -> _ShardState:
    with _state_lock:
        state = _states.get(path)
        if state is None:
            snapshot, store = open_snapshot_store(path)
            state = _ShardState(snapshot, store)
            _states[path] = state
            metrics.snapshot_opens.inc()
    return state


def reset_worker_state() -> None:
    """Drop every cached partition (tests / coordinator shutdown fallback)."""
    with _state_lock:
        for state in _states.values():
            state.snapshot.close()
        _states.clear()
    with _metrics_lock:
        if _worker_metrics is not None:
            _worker_metrics.resets.inc()


def _reset_metrics_for_tests() -> None:
    """Forget the metric bundle, as a fresh worker process would."""
    global _worker_metrics
    with _metrics_lock:
        _worker_metrics = None


def drain_worker_metrics() -> Optional[Dict[str, object]]:
    """Ship metric deltas not yet piggybacked on a task reply.

    The coordinator submits this on shutdown (and the pool's recycle
    path) so counts recorded between a worker's last query reply and its
    death -- snapshot opens, resets -- still reach the fleet aggregate.
    """
    bundle = _metrics()
    bundle.drains.inc()
    with _metrics_lock:
        return bundle.delta()


def _span(sampled: bool, name: str, **attrs: object):
    """A child span of the capture root when sampled, the null span otherwise."""
    return free_span(name, **attrs) if sampled else NULL_SPAN


def score_vectors_shard(
    path: str,
    query_vectors: Dict[str, FeatureVector],
    names: Sequence[str],
    candidate_ids: Optional[Sequence[int]],
    batched: bool,
    fast: bool,
    obs_ctx: Optional[Mapping[str, object]] = None,
) -> ShardReply:
    """Raw per-feature distances for this shard's slice of the candidates.

    Mirrors ``SearchEngine._query_with_vectors`` branch for branch (the
    ``batched``/``fast`` flags are computed coordinator-side and passed
    in, so both processes pick the same kernel): prepared-stack scoring,
    the reference batched path, or the scalar per-record loop.
    ``candidate_ids=None`` means every frame of the partition -- the
    common case, which skips the row gather entirely.
    """
    ctx = obs_ctx or {}
    sampled = bool(ctx.get("sampled"))
    metrics = _metrics(bool(ctx.get("metrics")))
    shard = ctx.get("shard")
    t0 = time.perf_counter()
    span_dict: Optional[Dict[str, object]] = None
    if sampled:
        with capture_subtree("shard.score_vectors", ctx, shard=shard) as root:
            per_feature, n_rows = _score_vectors(
                path, query_vectors, names, candidate_ids, batched, fast,
                metrics, sampled,
            )
            root.annotate(rows=n_rows)
        span_dict = root.to_dict()
    else:
        per_feature, n_rows = _score_vectors(
            path, query_vectors, names, candidate_ids, batched, fast,
            metrics, sampled,
        )
    elapsed = time.perf_counter() - t0
    metrics.queries.labels(kind="vectors").inc()
    metrics.seconds.labels(kind="vectors").observe(elapsed)
    metrics.rows.observe(n_rows)
    _log.debug(
        "shard.score_vectors", shard=shard, rows=n_rows,
        ms=round(elapsed * 1000.0, 2),
    )
    with _metrics_lock:
        delta = metrics.delta()
    return ShardReply(value=per_feature, span=span_dict, metrics=delta)


def _score_vectors(
    path: str,
    query_vectors: Dict[str, FeatureVector],
    names: Sequence[str],
    candidate_ids: Optional[Sequence[int]],
    batched: bool,
    fast: bool,
    metrics,
    sampled: bool,
) -> Tuple[Dict[str, np.ndarray], int]:
    state = _shard_state(path, metrics)
    store = state.store
    shard_full = candidate_ids is None
    if shard_full:
        candidate_ids = store.frame_ids()
    else:
        candidate_ids = list(candidate_ids)
    prepared_scoring = batched and fast
    records: Optional[List[FrameRecord]] = None
    rows: Optional[np.ndarray] = None
    if not batched or not fast:
        records = [store.get(fid) for fid in candidate_ids]
    elif prepared_scoring and not shard_full:
        rows = store.matrix_rows(candidate_ids)
    per_feature: Dict[str, np.ndarray] = {}
    for name in names:
        extractor = state.extractor(name)
        qv = query_vectors[name]
        t_dist = time.perf_counter()
        with _span(sampled, "shard.distance", feature=name):
            if prepared_scoring:
                prepared = store.prepared_matrix(name, extractor)
                if rows is not None:
                    prepared = prepared[rows]
                per_feature[name] = extractor.batch_distance_prepared(qv, prepared)
            elif batched:
                matrix = store.feature_matrix(
                    name, None if shard_full else candidate_ids
                )
                per_feature[name] = extractor.batch_distance(qv, matrix)
            else:
                per_feature[name] = np.array(
                    [extractor.distance(qv, rec.features[name]) for rec in records]
                )
        metrics.distance_seconds.labels(feature=name).observe(
            time.perf_counter() - t_dist
        )
    return per_feature, len(candidate_ids)


def score_vectors_shard_batch(
    path: str,
    queries: Sequence[tuple],
    obs_ctx: Optional[Mapping[str, object]] = None,
) -> ShardReply:
    """Raw distances for several micro-batched queries, one round trip.

    ``queries`` holds one ``(query_vectors, names, candidate_ids,
    batched, fast)`` tuple per batched request; the reply's value is the
    list of per-feature distance dicts in the same order.  Each query
    runs through the *identical* single-query scoring code
    (:func:`_score_vectors`) -- the batch collapses per-request IPC, it
    never stacks query vectors into one multi-query kernel, so every
    returned array is byte-identical to a ``score_vectors_shard``
    dispatch for the same query.
    """
    ctx = obs_ctx or {}
    sampled = bool(ctx.get("sampled"))
    metrics = _metrics(bool(ctx.get("metrics")))
    shard = ctx.get("shard")
    t0 = time.perf_counter()

    def run() -> Tuple[List[Dict[str, np.ndarray]], int]:
        values: List[Dict[str, np.ndarray]] = []
        total = 0
        for query_vectors, names, candidate_ids, batched, fast in queries:
            per_feature, n_rows = _score_vectors(
                path, query_vectors, names, candidate_ids, batched, fast,
                metrics, sampled,
            )
            values.append(per_feature)
            total += n_rows
        return values, total

    span_dict: Optional[Dict[str, object]] = None
    if sampled:
        with capture_subtree(
            "shard.score_vectors_batch", ctx, shard=shard, queries=len(queries)
        ) as root:
            values, total = run()
            root.annotate(rows=total)
        span_dict = root.to_dict()
    else:
        values, total = run()
    elapsed = time.perf_counter() - t0
    metrics.queries.labels(kind="vectors_batch").inc()
    metrics.seconds.labels(kind="vectors_batch").observe(elapsed)
    metrics.rows.observe(total)
    _log.debug(
        "shard.score_vectors_batch", shard=shard, queries=len(queries),
        rows=total, ms=round(elapsed * 1000.0, 2),
    )
    with _metrics_lock:
        delta = metrics.delta()
    return ShardReply(value=values, span=span_dict, metrics=delta)


def score_video_shard(
    path: str,
    query_seq: Sequence[Dict[str, FeatureVector]],
    names: Sequence[str],
    batched: bool,
    obs_ctx: Optional[Mapping[str, object]] = None,
) -> ShardReply:
    """Per-feature (n_query x n_shard_frames) raw distance blocks.

    Columns follow the partition's canonical record order -- videos by
    ascending id, frames by ascending id within each video -- which is
    the global order restricted to this shard, so the coordinator can
    reassemble the full matrix by slotting each video's column block.
    The reply's value is ``(blocks, video_ids)`` with the shard's videos
    in that column order.
    """
    ctx = obs_ctx or {}
    sampled = bool(ctx.get("sampled"))
    metrics = _metrics(bool(ctx.get("metrics")))
    shard = ctx.get("shard")
    t0 = time.perf_counter()
    span_dict: Optional[Dict[str, object]] = None
    if sampled:
        with capture_subtree("shard.score_video", ctx, shard=shard) as root:
            blocks, video_ids, n_rows = _score_video(
                path, query_seq, names, batched, metrics, sampled
            )
            root.annotate(rows=n_rows, videos=len(video_ids))
        span_dict = root.to_dict()
    else:
        blocks, video_ids, n_rows = _score_video(
            path, query_seq, names, batched, metrics, sampled
        )
    elapsed = time.perf_counter() - t0
    metrics.queries.labels(kind="video").inc()
    metrics.seconds.labels(kind="video").observe(elapsed)
    metrics.rows.observe(n_rows)
    _log.debug(
        "shard.score_video", shard=shard, rows=n_rows,
        ms=round(elapsed * 1000.0, 2),
    )
    with _metrics_lock:
        delta = metrics.delta()
    return ShardReply(value=(blocks, video_ids), span=span_dict, metrics=delta)


def _score_video(
    path: str,
    query_seq: Sequence[Dict[str, FeatureVector]],
    names: Sequence[str],
    batched: bool,
    metrics,
    sampled: bool,
) -> Tuple[Dict[str, np.ndarray], List[int], int]:
    state = _shard_state(path, metrics)
    store = state.store
    video_ids = store.video_ids()
    all_records: List[FrameRecord] = []
    for video_id in video_ids:
        all_records.extend(store.frames_of_video(video_id))
    nq, nr = len(query_seq), len(all_records)
    record_ids = [rec.frame_id for rec in all_records]
    blocks: Dict[str, np.ndarray] = {}
    for name in names:
        extractor = state.extractor(name)
        t_dist = time.perf_counter()
        with _span(sampled, "shard.distance", feature=name):
            m = np.empty((nq, nr))
            if batched:
                matrix = store.feature_matrix(name, record_ids)
                for i, qf in enumerate(query_seq):
                    m[i, :] = extractor.batch_distance(qf[name], matrix)
            else:
                for i, qf in enumerate(query_seq):
                    for j, rec in enumerate(all_records):
                        m[i, j] = extractor.distance(qf[name], rec.features[name])
            blocks[name] = m
        metrics.distance_seconds.labels(feature=name).observe(
            time.perf_counter() - t_dist
        )
    return blocks, video_ids, nr
