"""Stable hash partitioning: video id -> shard id.

Shards own whole videos (a video query's DP alignment needs every frame
of a stored video on one shard), so the partition key is the video id.
The hash is an explicit splitmix64 finalizer rather than Python's
``hash()``: the assignment must be identical across processes, runs, and
interpreter versions, because the split that built the shard snapshots
and the coordinator routing queries at serve time have to agree forever.
"""

from __future__ import annotations

from typing import Iterable, List

__all__ = ["shard_of", "partition_video_ids"]

_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """The splitmix64 finalizer (Steele et al.): avalanches all 64 bits."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


def shard_of(video_id: int, n_shards: int) -> int:
    """The shard owning ``video_id`` (stable across runs and processes)."""
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    if n_shards == 1:
        return 0
    return _splitmix64(int(video_id) & _MASK64) % n_shards


def partition_video_ids(
    video_ids: Iterable[int], n_shards: int
) -> List[List[int]]:
    """Group video ids by owning shard, preserving input order per shard."""
    groups: List[List[int]] = [[] for _ in range(n_shards)]
    for video_id in video_ids:
        groups[shard_of(video_id, n_shards)].append(video_id)
    return groups
