"""The shard-set manifest: which snapshots form one partitioned corpus.

``repro shard split`` writes ``shards.json`` next to the per-shard
RSNAP1 files; serve-time code reads it back instead of trusting the
caller to list N paths in the right order (shard index == hash bucket,
so order is load-bearing).  Snapshot names are stored relative to the
manifest so the directory can be rsynced or bind-mounted anywhere.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Tuple

__all__ = ["MANIFEST_NAME", "ShardManifest", "read_manifest"]

#: file name of the manifest inside a shard directory
MANIFEST_NAME = "shards.json"

_VERSION = 1


@dataclass(frozen=True)
class ShardManifest:
    """One shard set: ``snapshots[i]`` holds the videos hashing to shard i."""

    n_shards: int
    #: snapshot file names relative to the manifest's directory
    snapshots: Tuple[str, ...]
    version: int = _VERSION

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if len(self.snapshots) != self.n_shards:
            raise ValueError(
                f"manifest lists {len(self.snapshots)} snapshots "
                f"but n_shards={self.n_shards}"
            )

    def snapshot_paths(self, base_dir: str) -> Tuple[str, ...]:
        """Absolute snapshot paths for a manifest rooted at ``base_dir``."""
        return tuple(
            os.path.join(os.path.abspath(base_dir), name)
            for name in self.snapshots
        )

    def write(self, out_dir: str) -> str:
        """Write ``shards.json`` into ``out_dir``; returns its path."""
        path = os.path.join(out_dir, MANIFEST_NAME)
        payload = {
            "version": self.version,
            "n_shards": self.n_shards,
            "snapshots": list(self.snapshots),
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path


def read_manifest(path: str) -> Tuple[ShardManifest, Tuple[str, ...]]:
    """Load a manifest (or the directory holding one) -> (manifest, paths).

    The returned paths are absolute, in shard order.
    """
    path = os.fspath(path)
    if os.path.isdir(path):
        path = os.path.join(path, MANIFEST_NAME)
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    version = int(payload.get("version", -1))
    if version != _VERSION:
        raise ValueError(
            f"{path}: unsupported shard manifest version {version} "
            f"(this build reads version {_VERSION})"
        )
    manifest = ShardManifest(
        n_shards=int(payload["n_shards"]),
        snapshots=tuple(str(name) for name in payload["snapshots"]),
        version=version,
    )
    return manifest, manifest.snapshot_paths(os.path.dirname(path))
