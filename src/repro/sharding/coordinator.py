"""The scatter-gather coordinator: one engine over N shard partitions.

:class:`ShardedSearchEngine` subclasses the single-store
:class:`~repro.core.search.SearchEngine` and keeps its whole query-side
surface -- range-index pruning, query cache, extractor degradation,
deadlines -- while replacing the distance computation: candidates are
split by owning shard, scored in parallel by persistent snapshot-backed
worker processes, and merged back coordinator-side.

The merge is **byte-identical** to the single-store ranking because the
shards return raw per-feature distances (see :mod:`repro.sharding.worker`)
which are reassembled in global candidate order before the one global
min-max normalization + weighted fusion + stable top-k the base engine
runs.  A shard that fails (or whose circuit breaker is open) degrades to
a partial ranking over the surviving partitions -- exactly the ranking a
store holding only those partitions would produce -- surfaced via
``SearchResults.degraded_shards``; ``config.shard_partial_ok=False``
escalates instead.
"""

from __future__ import annotations

import os
import time
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import SystemConfig
from repro.core.results import RetrievalResult, SearchResults
from repro.core.search import (
    SearchEngine,
    VideoMatch,
    _extract_query_features,
    _QueryPlan,
    _stable_topk,
)
from repro.core.snapshots import init_worker_snapshot, open_snapshot_store
from repro.core.store import FeatureStore
from repro.imaging import accel
from repro.imaging.image import Image
from repro.indexing.rangefinder import RangeFinder
from repro.indexing.tree import RangeIndex
from repro.obs import NULL_OBS, Obs, current_trace_context, free_span, span_from_dict
from repro.resilience import (
    NULL_POLICIES,
    CircuitOpenError,
    DeadlineExceeded,
    ResiliencePolicies,
)
from repro.runtime import PoolTask, WorkerPool
from repro.sharding.worker import (
    drain_worker_metrics,
    score_vectors_shard,
    score_vectors_shard_batch,
    score_video_shard,
)
from repro.similarity.fusion import CombinedScorer, FeatureWeights, normalize_scores

__all__ = ["ShardedSearchEngine"]


class ShardedSearchEngine(SearchEngine):
    """Scatter-gather query execution over per-shard snapshot partitions."""

    def __init__(
        self,
        config: SystemConfig,
        shard_paths: Sequence[str],
        pool: Optional[WorkerPool] = None,
        obs: Obs = NULL_OBS,
        policies: ResiliencePolicies = NULL_POLICIES,
    ):
        if not shard_paths:
            raise ValueError("shard_paths must name at least one snapshot")
        if config.ann:
            raise ValueError(
                "ann is not supported with sharded serving: the "
                "coordinator merges exact raw distances"
            )
        paths = [os.path.abspath(os.fspath(p)) for p in shard_paths]
        snapshots = []
        stores: List[FeatureStore] = []
        try:
            for path in paths:
                snapshot, store = open_snapshot_store(path)
                snapshots.append(snapshot)
                stores.append(store)
            merged, index = self._merge(config, stores)
        except Exception:
            for snapshot in snapshots:
                snapshot.close()
            raise
        # the base engine runs pruning/extraction/cache over the merged
        # store; its pool only does query-side key-frame extraction
        super().__init__(
            config, merged, index, pool=pool or WorkerPool(workers=1),
            obs=obs, policies=policies,
        )
        self._snapshots = snapshots
        self._paths = paths
        # merged-row -> owning shard, aligned with merged.frame_ids()
        global_ids = np.asarray(merged.frame_ids(), dtype=np.int64)
        self._row_shard = np.empty(global_ids.size, dtype=np.int64)
        self._shard_frame_ids: List[np.ndarray] = []
        for s, store in enumerate(stores):
            ids = np.asarray(store.frame_ids(), dtype=np.int64)
            self._shard_frame_ids.append(ids)
            if ids.size:
                self._row_shard[np.searchsorted(global_ids, ids)] = s
        self._global_ids = global_ids
        # one persistent single-worker pool per shard: the worker process
        # mmaps its partition once (init_worker_snapshot) and stays up
        # across queries instead of re-forking per request
        self._shard_pools: List[WorkerPool] = []
        for path in paths:
            shard_pool = WorkerPool(workers=1)
            shard_pool.set_initializer(init_worker_snapshot, (path,))
            self._shard_pools.append(shard_pool)
        self._breakers = [
            policies.make_breaker(f"shard{s}") if policies.enabled else None
            for s in range(len(paths))
        ]
        self._m_shard_queries = obs.counter(
            "repro_shard_queries_total",
            "Shard dispatches, by shard and outcome.",
            labelnames=("shard", "outcome"),
        )
        self._m_shard_seconds = obs.histogram(
            "repro_shard_query_seconds",
            "Per-shard dispatch-to-gather wall time.",
            labelnames=("shard",),
            buckets=obs.latency_buckets,
        )
        self._m_merge_seconds = obs.histogram(
            "repro_shard_merge_seconds",
            "Coordinator-side merge (assemble + fuse + top-k) wall time.",
            buckets=obs.latency_buckets,
        )
        self._m_partials = obs.counter(
            "repro_shard_partial_results_total",
            "Queries answered with at least one shard missing.",
        )
        obs.gauge("repro_shards", "Configured shard count.").set(len(paths))

    @staticmethod
    def _merge(
        config: SystemConfig, stores: Sequence[FeatureStore]
    ) -> Tuple[FeatureStore, RangeIndex]:
        """One store + range index over every partition's records.

        Records are shared, not copied: their feature mappings keep
        viewing the shard snapshots' mmaps, so the merge costs metadata
        only.  Duplicate frame ids (overlapping shard sets) fail fast in
        ``FeatureStore.add``.
        """
        merged = FeatureStore()
        for store in stores:
            for fid in store.frame_ids():
                merged.add(store.get(fid))
            for vid in store.video_ids():
                motion = store.video_motion(vid)
                if motion is not None:
                    merged.set_video_motion(vid, motion)
        finder = RangeFinder(
            first_threshold=config.index_first_threshold,
            threshold=config.index_threshold,
            max_level=config.index_max_level,
        )
        index = RangeIndex(finder)
        for fid in merged.frame_ids():
            index.insert_bucket(fid, merged.get(fid).bucket)
        return merged, index

    @property
    def n_shards(self) -> int:
        return len(self._paths)

    # -- scatter-gather core ---------------------------------------------------

    def _scatter(
        self,
        fn: Callable,
        payloads: Sequence[Tuple[int, tuple]],
    ) -> Tuple[Dict[int, object], List[int], Dict[int, Dict[str, object]]]:
        """Dispatch ``fn(*args)`` to each listed shard's worker; gather.

        Returns ``(results_by_shard, degraded_shards, shard_meta)`` where
        ``shard_meta`` carries per-shard wall time / outcome for explain
        payloads.  Per-shard failures -- an open breaker, an injected
        ``shard.query`` fault, a dead worker past the pool's own serial
        fallback -- drop the shard into ``degraded_shards`` and feed its
        breaker; deadline overruns always escalate.  Raises the last
        shard error when nothing survived or ``config.shard_partial_ok``
        is off.

        Observability rides on the tasks themselves: each payload is
        extended with a trace context (trace id, the scatter span as
        parent, a per-shard label, and a metrics request), replies carry
        serialized span subtrees that are stitched under the scatter span
        plus registry deltas merged ``shard``-labeled into the
        coordinator's registry.
        """
        with self._obs.span("search.scatter", shards=len(payloads)) as scatter_span:
            ctx: Optional[Dict[str, object]] = None
            if self._obs.enabled:
                ctx = current_trace_context() or {
                    "trace_id": None, "span_id": None, "sampled": False,
                }
                ctx["metrics"] = True
            pending: List[Tuple[int, PoolTask, float]] = []
            gathered: Dict[int, object] = {}
            shard_meta: Dict[int, Dict[str, object]] = {}
            degraded: List[int] = []
            last_error: Optional[Exception] = None
            for s, args in payloads:
                breaker = self._breakers[s]
                t0 = time.perf_counter()
                try:
                    if breaker is not None:
                        breaker.guard()
                    self._policies.fire("shard.query")
                    task_ctx = dict(ctx, shard=s) if ctx is not None else None
                    task = self._shard_pools[s].submit(fn, *args, task_ctx)
                except CircuitOpenError as exc:
                    last_error = exc
                    degraded.append(s)
                    self._shard_down(s, "breaker_open", shard_meta)
                    continue
                except DeadlineExceeded:
                    raise
                except Exception as exc:
                    if breaker is not None:
                        breaker.record_failure()
                    last_error = exc
                    degraded.append(s)
                    self._shard_down(s, f"{type(exc).__name__}: {exc}", shard_meta)
                    continue
                pending.append((s, task, t0))
            for s, task, t0 in pending:
                breaker = self._breakers[s]
                try:
                    reply = task.result()
                except DeadlineExceeded:
                    raise
                except Exception as exc:
                    if breaker is not None:
                        breaker.record_failure()
                    last_error = exc
                    degraded.append(s)
                    self._shard_down(s, f"{type(exc).__name__}: {exc}", shard_meta)
                    continue
                if breaker is not None:
                    breaker.record_success()
                wall = time.perf_counter() - t0
                self._m_shard_seconds.labels(shard=str(s)).observe(wall)
                self._m_shard_queries.labels(shard=str(s), outcome="ok").inc()
                gathered[s] = reply.value
                shard_meta[s] = {
                    "shard": s,
                    "status": "ok",
                    "wall_ms": round(wall * 1000.0, 3),
                    "inline": task.inline,
                }
                if reply.span is not None:
                    scatter_span.attach(span_from_dict(reply.span))
                if reply.metrics is not None:
                    self._obs.registry.merge_state(
                        reply.metrics, {"shard": str(s)}
                    )
            if degraded:
                degraded.sort()
                self._m_partials.inc()
                if not gathered or not self.config.shard_partial_ok:
                    raise last_error
                scatter_span.annotate(degraded_shards=",".join(map(str, degraded)))
                if ctx is not None and ctx.get("sampled"):
                    # keep the trace honest: a missing partition shows up
                    # as an explicit error child, not a silent hole
                    for s in degraded:
                        marker = free_span("shard.degraded", shard=s)
                        marker.status = "error"
                        marker.error = str(shard_meta[s].get("error", "degraded"))
                        marker.duration_ms = 0.0
                        scatter_span.attach(marker)
        return gathered, degraded, shard_meta

    def _shard_down(
        self,
        shard: int,
        reason: str,
        shard_meta: Optional[Dict[int, Dict[str, object]]] = None,
    ) -> None:
        self._m_shard_queries.labels(shard=str(shard), outcome="error").inc()
        self._policies.note_degraded(f"shard.{shard}")
        self._log.warning("search.shard_degraded", shard=shard, reason=reason)
        if shard_meta is not None:
            shard_meta[shard] = {"shard": shard, "status": "error", "error": reason}

    # -- frame / vector queries ------------------------------------------------

    def _plan_vectors(
        self,
        query_vectors,
        names: List[str],
        top_k: int,
        candidate_ids,
        weights,
        nprobe=None,
    ) -> _QueryPlan:
        """Split the candidate set by owning shard into scatter payloads."""
        self._policies.check_stage("search.score")
        if candidate_ids is None:
            candidate_arr = self._global_ids
        else:
            candidate_arr = np.asarray(list(candidate_ids), dtype=np.int64)
        n_total = len(self.store)
        plan = _QueryPlan(
            query_vectors=query_vectors,
            names=list(names),
            top_k=int(top_k),
            weights=weights,
            n_total=n_total,
        )
        if not candidate_arr.size:
            plan.explain = {
                "kind": "vectors",
                "features": list(names),
                "top_k": int(top_k),
                "n_total": n_total,
                "n_candidates": 0,
                "sharded": {"shards": self.n_shards, "dispatched": 0},
            }
            plan.empty = SearchResults(
                [], n_candidates=0, n_total=n_total, explain=plan.explain
            )
            return plan

        # the scoring flags are resolved here, once, and shipped to every
        # worker, so coordinator and shards pick the same distance kernel
        plan.batched = self.config.batch_distances
        plan.fast = accel.fast_paths_enabled()
        plan.candidate_arr = candidate_arr
        if candidate_arr is self._global_ids:
            owners = self._row_shard
        else:
            owners = self._row_shard[self.store.matrix_rows(candidate_arr)]
        payloads: List[Tuple[int, tuple]] = []
        positions: Dict[int, np.ndarray] = {}
        for s in range(self.n_shards):
            pos = np.nonzero(owners == s)[0]
            if not pos.size:
                continue
            ids = candidate_arr[pos]
            # a shard receiving its full id list in ascending order scores
            # everything it has -- no id payload, no row gather
            if np.array_equal(ids, self._shard_frame_ids[s]):
                send: Optional[List[int]] = None
            else:
                send = [int(fid) for fid in ids]
            payloads.append(
                (s, (query_vectors, list(names), send, plan.batched, plan.fast))
            )
            positions[s] = pos
        plan.payloads = payloads
        plan.positions = positions
        return plan

    def _score_plan(self, plan: _QueryPlan) -> Dict[str, np.ndarray]:
        """One scatter for one plan (the serial query path)."""
        payloads = [(s, (self._paths[s],) + args) for s, args in plan.payloads]
        gathered, degraded, shard_meta = self._scatter(score_vectors_shard, payloads)
        return self._merge_gathered(plan, gathered, degraded, shard_meta)

    def _score_plans(self, plans) -> List[object]:
        """One scatter per shard covering *every* plan in the batch.

        Each shard worker loops the identical single-query scoring code
        per plan (see ``score_vectors_shard_batch``), so the returned
        arrays are byte-identical to per-plan dispatch -- the batch only
        collapses N IPC round trips per shard into one.  A shard failure
        degrades every batchmate that dispatched to it, exactly as N
        serial queries hitting the same dead shard would.
        """
        per_shard_args: Dict[int, List[tuple]] = {}
        slot: Dict[Tuple[int, int], int] = {}
        for pi, plan in enumerate(plans):
            for s, args in plan.payloads:
                bucket = per_shard_args.setdefault(s, [])
                slot[(s, pi)] = len(bucket)
                bucket.append(args)
        payloads = [
            (s, (self._paths[s], queries))
            for s, queries in sorted(per_shard_args.items())
        ]
        try:
            gathered, degraded, shard_meta = self._scatter(
                score_vectors_shard_batch, payloads
            )
        except Exception as exc:  # every shard down / partial_ok off
            return [exc for _ in plans]
        out: List[object] = []
        for pi, plan in enumerate(plans):
            gathered_local: Dict[int, object] = {}
            meta_local: Dict[int, Dict[str, object]] = {}
            for s in plan.positions:
                if s in gathered:
                    gathered_local[s] = gathered[s][slot[(s, pi)]]
                if s in shard_meta:
                    meta_local[s] = dict(shard_meta[s])
            degraded_local = [s for s in degraded if s in plan.positions]
            try:
                out.append(
                    self._merge_gathered(
                        plan, gathered_local, degraded_local, meta_local
                    )
                )
            except Exception as exc:  # per-plan isolation by contract
                out.append(exc)
        return out

    def _merge_gathered(
        self,
        plan: _QueryPlan,
        gathered: Dict[int, object],
        degraded: List[int],
        shard_meta: Dict[int, Dict[str, object]],
    ) -> Dict[str, np.ndarray]:
        """Reassemble shard replies into global-order per-feature arrays."""
        names = plan.names
        positions = plan.positions
        for s, pos in positions.items():
            meta = shard_meta.get(s)
            if meta is not None:
                meta["candidates"] = int(pos.size)
        plan.merge_t0 = time.perf_counter()
        # reassemble each feature's raw distances in global candidate order
        per_feature: Dict[str, np.ndarray] = {}
        for s, shard_values in gathered.items():
            pos = positions[s]
            for name in names:
                dest = per_feature.get(name)
                if dest is None:
                    dest = per_feature[name] = np.empty(
                        plan.candidate_arr.size, dtype=shard_values[name].dtype
                    )
                dest[pos] = shard_values[name]
        if degraded:
            # compact over the surviving positions: exactly the arrays a
            # store holding only the surviving partitions would produce
            keep = np.sort(np.concatenate([positions[s] for s in gathered]))
            plan.candidate_arr = plan.candidate_arr[keep]
            for name in names:
                per_feature[name] = per_feature[name][keep]
        plan.degraded_shards = degraded
        plan.shard_meta = shard_meta
        return per_feature

    def _rank_plan(
        self, plan: _QueryPlan, per_feature: Dict[str, np.ndarray]
    ) -> SearchResults:
        """The base engine's fusion + ranking tail, verbatim: one global
        normalization over the candidate set."""
        names = plan.names
        weights = plan.weights
        candidate_arr = plan.candidate_arr
        if len(names) == 1:
            fused = np.asarray(per_feature[names[0]], dtype=np.float64)
        else:
            if weights is None:
                weights = {n: self.config.weight_of(n) for n in names}
            fused = CombinedScorer(FeatureWeights(weights)).fuse(per_feature)
        if plan.fast:
            order = _stable_topk(fused, max(0, plan.top_k))
        else:
            order = np.argsort(fused, kind="stable")[: max(0, plan.top_k)]
        hits = []
        for i in order:
            record = self.store.get(int(candidate_arr[i]))
            hits.append(
                RetrievalResult(
                    frame_id=record.frame_id,
                    video_id=record.video_id,
                    video_name=record.video_name,
                    frame_name=record.frame_name,
                    category=record.category,
                    distance=float(fused[i]),
                    per_feature={n: float(per_feature[n][i]) for n in names},
                )
            )
        merge_s = time.perf_counter() - plan.merge_t0
        self._m_merge_seconds.observe(merge_s)
        shard_meta = plan.shard_meta
        explain: Dict[str, object] = {
            "kind": "vectors",
            "features": list(names),
            "top_k": int(plan.top_k),
            "n_total": plan.n_total,
            "n_candidates": int(candidate_arr.size),
            "sharded": {
                "shards": self.n_shards,
                "dispatched": len(plan.payloads),
                "merge_ms": round(merge_s * 1000.0, 3),
                "per_shard": [shard_meta[s] for s in sorted(shard_meta)],
            },
        }
        if plan.degraded_shards:
            explain["degraded_shards"] = list(plan.degraded_shards)
        plan.explain = explain
        return SearchResults(
            hits,
            n_candidates=int(candidate_arr.size),
            n_total=plan.n_total,
            degraded_shards=plan.degraded_shards,
            explain=explain,
        )

    # -- video queries ---------------------------------------------------------

    def _query_video(
        self,
        frames: List[Image],
        features,
        top_k: int,
    ) -> List[VideoMatch]:
        names = self._resolve_features(features)
        self._policies.check_stage("search.keyframes")
        key_frames = [f for _i, f in self.keyframe_extractor.extract(frames)]
        self._policies.check_stage("search.extract")
        extract = partial(
            _extract_query_features, extractors=self.extractors, names=names
        )
        query_seq = self._pool.map(extract, key_frames)
        self._policies.check_stage("search.score")
        if not self.store.video_ids():
            return []

        batched = self.config.batch_distances
        payloads = [
            (s, (self._paths[s], query_seq, list(names), batched))
            for s in range(self.n_shards)
            if self._shard_frame_ids[s].size
        ]
        gathered, _degraded, _shard_meta = self._scatter(score_video_shard, payloads)

        t_merge = time.perf_counter()
        # global record order (videos ascending, frames ascending within)
        # restricted to the surviving shards' videos
        shard_of_video: Dict[int, int] = {}
        shard_spans: Dict[int, slice] = {}
        for s, (_blocks, shard_vids) in gathered.items():
            offset = 0
            for vid in shard_vids:
                shard_of_video[vid] = s
                n = len(self.store.frames_of_video(vid))
                shard_spans[vid] = slice(offset, offset + n)
                offset += n
        video_ids = [
            vid for vid in self.store.video_ids() if vid in shard_of_video
        ]
        all_records = []
        spans: Dict[int, slice] = {}
        for video_id in video_ids:
            records = self.store.frames_of_video(video_id)
            spans[video_id] = slice(
                len(all_records), len(all_records) + len(records)
            )
            all_records.extend(records)
        nq, nr = len(query_seq), len(all_records)
        combined = np.zeros((nq, nr))
        total_weight = 0.0
        for name in names:
            m = np.empty((nq, nr))
            for video_id in video_ids:
                blocks, _vids = gathered[shard_of_video[video_id]]
                m[:, spans[video_id]] = blocks[name][:, shard_spans[video_id]]
            w = self.config.weight_of(name)
            combined += w * normalize_scores(m.ravel()).reshape(nq, nr)
            total_weight += w
        if total_weight > 0:
            combined /= total_weight

        matches: List[VideoMatch] = []
        for video_id in video_ids:
            span = spans[video_id]
            if span.stop == span.start:
                continue
            records = all_records[span]
            matches.append(
                VideoMatch(
                    video_id=video_id,
                    video_name=records[0].video_name,
                    category=records[0].category,
                    distance=self._sequence_distance(combined[:, span]),
                )
            )
        matches = self._blend_motion(frames, matches)
        matches.sort(key=lambda m: m.distance)
        self._m_merge_seconds.observe(time.perf_counter() - t_merge)
        return matches[: max(0, top_k)]

    # -- introspection / shutdown ----------------------------------------------

    def sharding_stats(self) -> Dict[str, object]:
        """Shard topology + breaker states for ``system.metrics()``."""
        return {
            "shards": self.n_shards,
            "paths": list(self._paths),
            "partial_ok": bool(self.config.shard_partial_ok),
            "frames_per_shard": [int(ids.size) for ids in self._shard_frame_ids],
            "breakers": {
                f"shard{s}": breaker.stats()
                for s, breaker in enumerate(self._breakers)
                if breaker is not None
            },
        }

    def _drain_shard_metrics(self) -> None:
        """Pull each live worker's residual metric delta (drain-on-recycle).

        Counts recorded after a worker's last query reply -- snapshot
        opens, resets -- would otherwise vanish with the process.  The
        drain is strictly best-effort: a dead or never-started worker is
        skipped, shutdown never fails on it.
        """
        if not self._obs.enabled:
            return
        for s, shard_pool in enumerate(self._shard_pools):
            if not shard_pool.active:
                continue
            try:
                delta = shard_pool.submit(drain_worker_metrics).result()
            except Exception:
                continue
            if delta:
                self._obs.registry.merge_state(delta, {"shard": str(s)})

    def close(self) -> None:
        """Stop the shard workers and release the partition mmaps."""
        with self._obs.span("shard.close"):
            self._drain_shard_metrics()
            for shard_pool in self._shard_pools:
                shard_pool.close()
            for snapshot in self._snapshots:
                snapshot.close()
            super().close()
