"""Per-shard corpus builder: split one store into N snapshot partitions.

Each shard gets a complete, self-contained RSNAP1 snapshot (plus an
empty WAL at the shard store's base generation) holding exactly the
videos that :func:`~repro.sharding.partition.shard_of` assigns to it.
Workers then cold-start a partition with the same mmap machinery the
single-store engine uses -- a shard is just a smaller library.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.core.snapshots import build_snapshot_payload
from repro.core.store import FeatureStore
from repro.obs import log
from repro.sharding.manifest import ShardManifest
from repro.sharding.partition import shard_of
from repro.snapshot import WalWriter, remove_wal, wal_path_for, write_snapshot

__all__ = ["SHARD_SNAPSHOT_PATTERN", "split_store", "split_library"]

#: per-shard snapshot file name (index == hash bucket)
SHARD_SNAPSHOT_PATTERN = "shard-{index:03d}.snap"


def split_store(
    store: FeatureStore, out_dir: str, n_shards: int
) -> ShardManifest:
    """Partition ``store`` into ``n_shards`` snapshots under ``out_dir``.

    Empty shards (no video hashed to them) still get a snapshot, so the
    manifest's shard index always equals the hash bucket.  Returns the
    written manifest.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    os.makedirs(out_dir, exist_ok=True)
    subs = [FeatureStore() for _ in range(n_shards)]
    for video_id in store.video_ids():
        sub = subs[shard_of(video_id, n_shards)]
        for record in store.frames_of_video(video_id):
            sub.add(record)
        motion = store.video_motion(video_id)
        if motion is not None:
            sub.set_video_motion(video_id, motion)
    names = []
    for index, sub in enumerate(subs):
        name = SHARD_SNAPSHOT_PATTERN.format(index=index)
        path = os.path.join(out_dir, name)
        arrays, meta = build_snapshot_payload(sub)
        meta["shard"] = {"index": index, "of": n_shards}
        write_snapshot(path, arrays, meta)
        # a fresh empty WAL pins the base generation, so a worker opening
        # the shard replays nothing and a stale leftover log can't leak in
        remove_wal(path)
        WalWriter(wal_path_for(path), sub.generation, sub.structure_generation)
        names.append(name)
    manifest = ShardManifest(n_shards=n_shards, snapshots=tuple(names))
    manifest.write(out_dir)
    log.get_logger(__name__).info(
        "shard.split",
        out_dir=out_dir,
        n_shards=n_shards,
        frames=[len(sub) for sub in subs],
    )
    return manifest


def split_library(
    library: str, out_dir: str, n_shards: int, config: Optional[object] = None
) -> ShardManifest:
    """Open a durable library and split its corpus (the CLI entry point)."""
    from repro.core.system import VideoRetrievalSystem

    system = VideoRetrievalSystem.open(library, config=config)
    try:
        return split_store(system.feature_store, out_dir, n_shards)
    finally:
        system.close()
