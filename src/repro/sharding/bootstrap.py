"""Wiring a sharded engine into a :class:`VideoRetrievalSystem`.

The system facade must not import this layer (``repro.core`` sits below
``repro.sharding`` in the architecture DAG), so attachment is a push:
callers -- the CLI's ``--shards``, ``repro.web.make_server``, or user
code -- build the coordinator here and hand it to
``system.attach_engine``.  After attachment the system is a read
replica: admin mutations keep hitting the database but are invisible to
queries until the corpus is re-split (``repro shard split``).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from repro.core.config import SystemConfig
from repro.sharding.coordinator import ShardedSearchEngine
from repro.sharding.manifest import read_manifest

__all__ = ["sharded_config", "attach_sharded_engine", "maybe_attach_sharded"]


def sharded_config(
    shard_dir: str, config: Optional[SystemConfig] = None
) -> SystemConfig:
    """A config serving the shard set under ``shard_dir``.

    Reads the directory's manifest and pins ``shards``/``shard_paths``;
    ``ann`` is forced off (the coordinator merges exact distances).
    """
    manifest, paths = read_manifest(shard_dir)
    base = config or SystemConfig()
    return replace(
        base, shards=manifest.n_shards, shard_paths=tuple(paths), ann=False
    )


def attach_sharded_engine(
    system, shard_paths: Optional[Sequence[str]] = None
) -> ShardedSearchEngine:
    """Build a coordinator over ``shard_paths`` and attach it to ``system``.

    ``shard_paths`` defaults to ``system.config.shard_paths``.  The
    coordinator shares the system's observability and resilience bundles,
    so its per-shard breakers and metrics land in the same registry
    ``GET /metrics`` scrapes.
    """
    paths = tuple(shard_paths or system.config.shard_paths or ())
    if not paths:
        raise ValueError(
            "no shard snapshots: pass shard_paths or set "
            "SystemConfig(shard_paths=...)"
        )
    engine = ShardedSearchEngine(
        system.config, paths, obs=system.obs, policies=system.resilience
    )
    system.attach_engine(engine)
    return engine


def maybe_attach_sharded(system) -> Optional[ShardedSearchEngine]:
    """Attach a coordinator iff the system's config asks for one.

    The idempotent serve-time hook (``repro serve``, ``make_server``):
    returns the attached engine, or None for ordinary unsharded configs.
    """
    config = system.config
    if config.shards <= 1 or not config.shard_paths:
        return None
    if isinstance(system.engine, ShardedSearchEngine):
        return system.engine
    return attach_sharded_engine(system)
