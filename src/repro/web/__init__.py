"""A small JSON/HTTP facade over the retrieval system.

The paper's system is "an interactive web based application" (Tomcat +
JSP); this package provides the same two-role surface over stdlib
``http.server``:

- ``POST /admin/videos``     -- upload a video (RVF body) + metadata
- ``DELETE /admin/videos/N`` -- delete a video
- ``GET  /videos``           -- list stored videos
- ``GET  /videos/N``         -- one video's metadata + key-frame ids
- ``GET  /frames/N``         -- a key frame as a PPM image
- ``POST /search``           -- query by frame (PPM body), ranked JSON out

Authentication mirrors the paper's admin login: admin endpoints require the
configured password in the ``X-Admin-Password`` header.
"""

from repro.web.api import ApiError, CbvrApi
from repro.web.server import CbvrHttpServer, make_server

__all__ = ["CbvrApi", "ApiError", "CbvrHttpServer", "make_server"]
