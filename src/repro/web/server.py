"""stdlib HTTP shell around :class:`~repro.web.api.CbvrApi`.

Run the demo server with::

    python -m repro.web.server            # in-memory demo corpus
    python examples/web_demo.py           # scripted end-to-end demo

The server is single-purpose and synchronous (ThreadingHTTPServer), which
is all the paper's interactive demo needs.
"""

from __future__ import annotations

import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Tuple

from repro.core.system import VideoRetrievalSystem
from repro.obs import log
from repro.sharding import maybe_attach_sharded
from repro.web.api import CbvrApi

__all__ = ["CbvrHttpServer", "make_server"]

_log = log.get_logger(__name__)


class _Handler(BaseHTTPRequestHandler):
    api: CbvrApi = None  # injected by make_server

    # http.server's default stderr chatter goes through structured logging
    # instead (quiet unless REPRO_LOG_LEVEL/obs_log_level says DEBUG); the
    # per-request metric is recorded by CbvrApi.handle
    def log_message(self, fmt, *args):  # pragma: no cover - logging
        _log.debug("http.request", client=self.address_string(), line=fmt % args)

    def _dispatch(self, method: str) -> None:
        parsed = urllib.parse.urlsplit(self.path)
        query = dict(urllib.parse.parse_qsl(parsed.query))
        length = int(self.headers.get("Content-Length", 0) or 0)
        body = self.rfile.read(length) if length else b""
        status, content_type, payload, extra_headers = self.api.handle_full(
            method, parsed.path, body=body, headers=dict(self.headers), query=query
        )
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in extra_headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self):  # noqa: N802 (http.server API)
        self._dispatch("GET")

    def do_POST(self):  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self):  # noqa: N802
        self._dispatch("DELETE")


class CbvrHttpServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one CbvrApi."""

    daemon_threads = True


def make_server(
    system: VideoRetrievalSystem, host: str = "127.0.0.1", port: int = 0
) -> Tuple[CbvrHttpServer, int]:
    """Build a server for ``system``; returns ``(server, bound_port)``.

    ``port=0`` picks a free port.  Call ``server.serve_forever()`` (or
    ``handle_request()`` in tests) to serve.

    A config asking for sharded serving (``shards > 1`` with
    ``shard_paths``) gets its scatter-gather coordinator attached here,
    so ``repro serve --shards DIR`` and programmatic servers behave the
    same.
    """
    maybe_attach_sharded(system)
    handler = type("BoundHandler", (_Handler,), {"api": CbvrApi(system)})
    server = CbvrHttpServer((host, port), handler)
    return server, server.server_address[1]


def _demo(port: int = 8765) -> None:  # pragma: no cover - manual entry point
    from repro.video.generator import make_corpus

    system = VideoRetrievalSystem.in_memory()
    admin = system.login_admin()
    for video in make_corpus(videos_per_category=2, seed=7, n_shots=2, frames_per_shot=6):
        admin.add_video(video)
    server, bound = make_server(system, port=port)
    log.set_level("INFO")
    _log.info(
        "server.start",
        url=f"http://127.0.0.1:{bound}",
        videos=system.n_videos(),
        key_frames=system.n_key_frames(),
    )
    server.serve_forever()


if __name__ == "__main__":  # pragma: no cover
    _demo()
