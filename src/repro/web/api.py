"""Transport-independent API layer.

:class:`CbvrApi` maps (method, path, body, headers) requests onto the
:class:`~repro.core.system.VideoRetrievalSystem`, returning status + JSON
(or image bytes).  The HTTP server is a thin shell around it, and the tests
drive this layer directly -- no sockets needed.
"""

from __future__ import annotations

import json
import math
import re
import time
from typing import Dict, Optional, Tuple

from repro.core.system import AuthenticationError, VideoRetrievalSystem
from repro.db.errors import DatabaseError
from repro.imaging.image import ImageFormatError, decode_image
from repro.obs import log
from repro.resilience import CircuitOpenError, DeadlineExceeded, RetryExhausted
from repro.video.codec import RvfError, RvfReader

__all__ = [
    "CbvrApi",
    "ApiError",
    "error_response_for",
    "parse_search_request",
    "search_payload",
]

#: Prometheus text exposition content type
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: exact paths + parameterized patterns for metric label normalization
#: (labels must have bounded cardinality: ids are collapsed to {id})
_EXACT_ROUTES = frozenset(
    {
        "/", "/videos", "/ui", "/search", "/admin/videos", "/metrics",
        "/snapshot", "/traces/recent", "/debug/slow",
    }
)
_PATTERN_ROUTES = (
    ("/videos/{id}", re.compile(r"/videos/\d+")),
    ("/frames/{id}", re.compile(r"/frames/\d+")),
    ("/admin/videos/{id}", re.compile(r"/admin/videos/\d+")),
)


def _normalize_route(path: str) -> str:
    """Collapse a request path to its route template for metric labels."""
    if path in _EXACT_ROUTES:
        return path
    for label, pattern in _PATTERN_ROUTES:
        if pattern.fullmatch(path):
            return label
    return "unmatched"


class ApiError(Exception):
    """An error with an HTTP status code."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


Response = Tuple[int, str, bytes]  # (status, content_type, body)
#: like Response plus extra headers (e.g. Retry-After on a 503)
FullResponse = Tuple[int, str, bytes, Dict[str, str]]


def _json_response(status: int, payload) -> Response:
    return status, "application/json", json.dumps(payload).encode("utf-8")


def _error_response(status: int, message: str, error_type: str, **extra) -> Response:
    """The JSON error envelope every failure path shares.

    ``error`` stays a plain message string (the documented/tested shape);
    ``error_type`` is a machine-matchable discriminator.
    """
    payload = {"error": message, "error_type": error_type}
    payload.update(extra)
    return _json_response(status, payload)


# pure mapping shared by two instrumented dispatch loops, not an entry point
def error_response_for(  # reprolint: disable=R17
    exc: Exception,
) -> Optional[Tuple[Response, Dict[str, str]]]:
    """Map a known exception onto ``(response, extra_headers)``.

    The one error ladder both front-ends share (the blocking
    :class:`CbvrApi` dispatch and the asyncio server in
    :mod:`repro.serving`), so a deadline overrun is a 504 and an open
    breaker a 503 + Retry-After no matter which door the request came
    through.  Returns None for unhandled exception types (the caller
    logs and wraps those as 500s).
    """
    if isinstance(exc, ApiError):
        return _error_response(exc.status, exc.message, "api_error"), {}
    if isinstance(exc, AuthenticationError):
        return _error_response(401, str(exc), "authentication"), {}
    if isinstance(exc, DeadlineExceeded):
        return _error_response(504, str(exc), "deadline_exceeded"), {}
    if isinstance(exc, CircuitOpenError):
        retry_after = max(1, math.ceil(exc.retry_after))
        response = _error_response(
            503, str(exc), "circuit_open", retry_after=retry_after
        )
        return response, {"Retry-After": str(retry_after)}
    if isinstance(exc, RetryExhausted):
        return _error_response(503, str(exc), "retry_exhausted"), {}
    if isinstance(exc, (DatabaseError, RvfError, ImageFormatError, ValueError, KeyError)):
        return _error_response(400, str(exc), "bad_request"), {}
    return None


def parse_search_request(body: bytes, query: Dict[str, str]):
    """Decode a ``POST /search`` request's image + knobs.

    Returns ``(image, feature_list, top_k, explain)``; raises
    :class:`ApiError` / :class:`ImageFormatError` / :class:`ValueError`
    for the 400 ladder.  Shared by the blocking and asyncio front-ends
    so both parse identically.
    """
    if not body:
        raise ApiError(400, "search requires an image body (PPM/PGM/BMP)")
    image = decode_image(body)
    top_k = int(query.get("top_k", "20"))
    features = query.get("features")
    feature_list = features.split(",") if features else None
    explain = query.get("explain") in ("1", "true", "yes")
    return image, feature_list, top_k, explain


# pure formatting shared by two instrumented dispatch loops, not an entry point
def search_payload(results, explain: bool) -> Dict[str, object]:  # reprolint: disable=R17
    """The ``POST /search`` response body for one ``SearchResults``."""
    payload: Dict[str, object] = {
        "n_candidates": results.n_candidates,
        "degraded": results.degraded,
        "degraded_features": results.degraded_features,
        "degraded_shards": results.degraded_shards,
        "results": results.to_rows(),
    }
    if explain:
        payload["explain"] = results.explain
    return payload


class CbvrApi:
    """Routes requests onto a retrieval system."""

    def __init__(self, system: VideoRetrievalSystem):
        self.system = system
        self._log = log.get_logger(__name__)
        self._m_requests = system.obs.counter(
            "repro_web_requests_total",
            "HTTP requests by route template, method, and status.",
            labelnames=("route", "method", "status"),
        )
        self._m_request_seconds = system.obs.histogram(
            "repro_web_request_seconds",
            "Request handling wall time by route template.",
            labelnames=("route",),
            buckets=system.obs.latency_buckets,
        )

    # -- entry point -----------------------------------------------------------

    def handle(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        headers: Optional[Dict[str, str]] = None,
        query: Optional[Dict[str, str]] = None,
    ) -> Response:
        """:meth:`handle_full` without the extra headers (test-friendly)."""
        status, content_type, payload, _headers = self.handle_full(
            method, path, body=body, headers=headers, query=query
        )
        return status, content_type, payload

    def handle_full(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        headers: Optional[Dict[str, str]] = None,
        query: Optional[Dict[str, str]] = None,
    ) -> FullResponse:
        headers = {k.lower(): v for k, v in (headers or {}).items()}
        query = query or {}
        method = method.upper()
        path = path.rstrip("/") or "/"
        t0 = time.perf_counter()
        extra_headers: Dict[str, str] = {}
        try:
            with self.system.resilience.request_scope():
                response = self._route(method, path, body, headers, query)
        except Exception as exc:  # noqa: BLE001 -- last-resort envelope, never a bare 500
            mapped = error_response_for(exc)
            if mapped is not None:
                response, extra_headers = mapped
            else:
                self._log.error(
                    "web.unhandled", path=path, error=f"{type(exc).__name__}: {exc}"
                )
                response = _error_response(
                    500, f"internal error: {type(exc).__name__}: {exc}", "internal"
                )
        elapsed = time.perf_counter() - t0
        route = _normalize_route(path)
        self._m_requests.labels(
            route=route, method=method, status=str(response[0])
        ).inc()
        self._m_request_seconds.labels(route=route).observe(elapsed)
        self._log.debug(
            "web.request",
            method=method,
            route=route,
            status=response[0],
            ms=round(elapsed * 1000.0, 2),
        )
        return response + (extra_headers,)

    def _route(self, method, path, body, headers, query) -> Response:
        if method == "GET" and path == "/":
            return _json_response(
                200,
                {
                    "service": "cbvr",
                    "videos": self.system.n_videos(),
                    "key_frames": self.system.n_key_frames(),
                },
            )
        if method == "GET" and path == "/videos":
            return self._list_videos()
        m = re.fullmatch(r"/videos/(\d+)", path)
        if method == "GET" and m:
            return self._get_video(int(m.group(1)))
        m = re.fullmatch(r"/frames/(\d+)", path)
        if method == "GET" and m:
            return self._get_frame(int(m.group(1)), query.get("format", "ppm"))
        if method == "GET" and path == "/ui":
            return self._browse_page()
        if method == "GET" and path == "/metrics":
            return self._metrics(query.get("format", "prometheus"))
        if method == "GET" and path == "/snapshot":
            return _json_response(
                200, {"snapshot": self.system.snapshot_stats()}
            )
        if method == "GET" and path == "/traces/recent":
            return self._recent_traces(query.get("limit"))
        if method == "GET" and path == "/debug/slow":
            return self._slow_queries(query.get("limit"))
        if method == "POST" and path == "/search":
            return self._search(body, query)
        if method == "POST" and path == "/admin/videos":
            return self._admin_add(body, headers, query)
        m = re.fullmatch(r"/admin/videos/(\d+)", path)
        if method == "DELETE" and m:
            return self._admin_delete(int(m.group(1)), headers)
        raise ApiError(404, f"no route for {method} {path}")

    # -- user endpoints ------------------------------------------------------------

    def _list_videos(self) -> Response:
        rows = self.system.list_videos()
        videos = [
            {
                "v_id": r["V_ID"],
                "name": r["V_NAME"],
                "category": r["CATEGORY"],
                "stored": str(r["DOSTORE"]) if r["DOSTORE"] else None,
            }
            for r in rows
        ]
        return _json_response(200, {"videos": videos})

    def _get_video(self, video_id: int) -> Response:
        records = self.system.key_frames_of(video_id)
        if not records:
            raise ApiError(404, f"no video {video_id}")
        return _json_response(
            200,
            {
                "v_id": video_id,
                "name": records[0].video_name,
                "category": records[0].category,
                "key_frames": [r.frame_id for r in records],
            },
        )

    def _get_frame(self, frame_id: int, fmt: str = "ppm") -> Response:
        try:
            image = self.system.get_key_frame(frame_id)
        except KeyError:
            raise ApiError(404, f"no key frame {frame_id}") from None
        fmt = fmt.lower()
        if fmt == "bmp":  # browser-renderable; used by the /ui browse page
            return 200, "image/bmp", image.encode("bmp")
        if fmt in ("ppm", "pgm"):
            return 200, "image/x-portable-pixmap", image.encode(fmt)
        raise ApiError(400, f"unsupported image format {fmt!r}")

    def _browse_page(self) -> Response:
        """A minimal HTML browse page (the paper's Fig. 9 result screen)."""
        import html

        parts = [
            "<!DOCTYPE html><html><head><title>CBVR library</title>",
            "<style>body{font-family:sans-serif;margin:2em}"
            ".video{margin-bottom:1.5em}.thumbs img{margin-right:6px;"
            "border:1px solid #999}</style></head><body>",
            f"<h1>CBVR library</h1><p>{self.system.n_videos()} videos, "
            f"{self.system.n_key_frames()} key frames. POST an image to "
            "<code>/search</code> to query.</p>",
        ]
        for row in self.system.list_videos():
            v_id = row["V_ID"]
            name = html.escape(str(row["V_NAME"]))
            category = html.escape(str(row["CATEGORY"]))
            thumbs = "".join(
                f'<img src="/frames/{r.frame_id}?format=bmp" '
                f'alt="frame {r.frame_id}" height="72">'
                for r in self.system.key_frames_of(v_id)
            )
            parts.append(
                f'<div class="video"><h3>#{v_id} {name} '
                f"<small>[{category}]</small></h3>"
                f'<div class="thumbs">{thumbs}</div></div>'
            )
        parts.append("</body></html>")
        return 200, "text/html; charset=utf-8", "".join(parts).encode("utf-8")

    def _metrics(self, fmt: str) -> Response:
        """The system's metrics registry: Prometheus text or JSON."""
        registry = self.system.obs.registry
        fmt = fmt.lower()
        if fmt == "json":
            return _json_response(200, registry.render_json())
        if fmt == "prometheus":
            return 200, PROMETHEUS_CONTENT_TYPE, registry.render_text().encode("utf-8")
        raise ApiError(400, f"unsupported metrics format {fmt!r}")

    def _recent_traces(self, limit: Optional[str]) -> Response:
        """The most recent root traces, newest first."""
        n = None
        if limit is not None:
            n = int(limit)
            if n < 1:
                raise ApiError(400, "limit must be >= 1")
        return _json_response(200, {"traces": self.system.recent_traces(n)})

    def _slow_queries(self, limit: Optional[str]) -> Response:
        """The slow-query ring buffer, newest first, plus its thresholds."""
        n = None
        if limit is not None:
            n = int(limit)
            if n < 1:
                raise ApiError(400, "limit must be >= 1")
        return _json_response(
            200,
            {
                "slow_log": self.system.obs.slow_log.stats(),
                "queries": self.system.slow_queries(n),
            },
        )

    def _search(self, body: bytes, query: Dict[str, str]) -> Response:
        image, feature_list, top_k, explain = parse_search_request(body, query)
        results = self.system.search(image, features=feature_list, top_k=top_k)
        return _json_response(200, search_payload(results, explain))

    # -- admin endpoints --------------------------------------------------------------

    def _admin(self, headers: Dict[str, str]):
        return self.system.login_admin(headers.get("x-admin-password"))

    def _admin_add(self, body: bytes, headers, query) -> Response:
        admin = self._admin(headers)
        if not body:
            raise ApiError(400, "upload requires an RVF video body")
        name = query.get("name")
        if not name:
            raise ApiError(400, "upload requires a ?name= parameter")
        frames = list(RvfReader(body))
        report = admin.add_video(frames, name=name, category=query.get("category"))
        return _json_response(
            201,
            {
                "v_id": report.video_id,
                "name": report.video_name,
                "n_frames": report.n_frames,
                "key_frames": report.keyframe_ids,
            },
        )

    def _admin_delete(self, video_id: int, headers) -> Response:
        admin = self._admin(headers)
        try:
            removed = admin.delete_video(video_id)
        except DatabaseError:
            raise ApiError(404, f"no video {video_id}") from None
        return _json_response(200, {"v_id": video_id, "removed_frames": removed})
