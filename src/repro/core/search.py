"""The user-side search engine (the right half of the Fig. 3 DFD).

Frame queries: extract the query frame's features, prune candidates with
the range index, compute per-feature distances, min-max normalize each
feature over the candidate set, and rank by the weighted sum (§5's
"combined" approach) or by one feature alone (the individual Table 1
columns).

Video queries: key-frame the query clip and align its feature sequence
against every stored video's sequence with the paper's dynamic-programming
similarity.
"""

from __future__ import annotations

import copy
import time
from dataclasses import replace
from functools import partial
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.cache import QueryCache, digest_array, digest_vectors
from repro.core.config import SystemConfig
from repro.core.results import RetrievalResult, SearchResults
from repro.core.store import FeatureStore, FrameRecord
from repro.features.base import FeatureExtractor, FeatureVector, get_extractor
from repro.imaging import accel
from repro.imaging.image import Image
from repro.indexing import ann as ann_metrics
from repro.indexing.ann import IVFIndex
from repro.indexing.tree import RangeIndex
from repro.obs import NULL_OBS, Obs, log
from repro.resilience import (
    NULL_POLICIES,
    CircuitOpenError,
    DeadlineExceeded,
    ResiliencePolicies,
)
from repro.runtime import WorkerPool, resolve_workers
from repro.similarity.dp import dtw_distance, sequence_similarity
from repro.similarity.fusion import CombinedScorer, FeatureWeights, normalize_scores
from repro.video.generator import SyntheticVideo
from repro.video.keyframes import KeyFrameExtractor

__all__ = ["SearchEngine", "VideoMatch"]

#: histogram edges for candidate-set sizes (counts, not seconds)
_COUNT_BUCKETS = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 1024.0, 4096.0,
    16384.0, 65536.0,
)

#: histogram edges for the range-index pruning ratio (fraction in [0, 1])
_RATIO_BUCKETS = (0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0)


def _extract_query_features(
    frame: Image,
    extractors: Dict[str, FeatureExtractor],
    names: Sequence[str],
) -> Dict[str, FeatureVector]:
    """One query key frame's feature vectors (worker-process safe)."""
    return {name: extractors[name].extract(frame) for name in names}


def _stable_topk(fused: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` smallest values, in stable-argsort order.

    Exactly equivalent to ``np.argsort(fused, kind="stable")[:k]`` (ties
    broken by original position, including at the selection boundary) but
    O(n + k log k) instead of O(n log n): an ``argpartition`` narrows to k
    candidates, a boundary-tie repair keeps the lowest-index tied entries,
    and a lexsort orders the survivors.
    """
    n = fused.size
    k = max(0, min(k, n))
    if k == 0:
        return np.empty(0, dtype=np.intp)
    if k >= n:
        return np.lexsort((np.arange(n), fused))
    sel = np.argpartition(fused, k - 1)[:k]
    boundary = fused[sel].max()
    tied_selected = int(np.count_nonzero(fused[sel] == boundary))
    tied_total = int(np.count_nonzero(fused == boundary))
    if tied_total > tied_selected:
        # argpartition picked an arbitrary subset of the boundary ties;
        # stable order wants the lowest original indices
        strictly = np.nonzero(fused < boundary)[0]
        tied = np.nonzero(fused == boundary)[0][: k - strictly.size]
        sel = np.concatenate([strictly, tied])
    return sel[np.lexsort((sel, fused[sel]))]


class VideoMatch:
    """One hit of a video-to-video query."""

    def __init__(self, video_id: int, video_name: str, category: Optional[str], distance: float):
        self.video_id = video_id
        self.video_name = video_name
        self.category = category
        self.distance = distance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VideoMatch({self.video_name}, d={self.distance:.4f})"


class SearchEngine:
    """Query execution over a feature store + range index."""

    def __init__(
        self,
        config: SystemConfig,
        store: FeatureStore,
        index: RangeIndex,
        pool: Optional[WorkerPool] = None,
        obs: Obs = NULL_OBS,
        policies: ResiliencePolicies = NULL_POLICIES,
    ):
        self.config = config
        self.store = store
        self.index = index
        self._policies = policies
        self.extractors: Dict[str, FeatureExtractor] = {
            name: get_extractor(name) for name in config.features
        }
        self.keyframe_extractor = KeyFrameExtractor(
            threshold=config.keyframe_threshold,
            base_size=config.keyframe_base_size,
        )
        self._pool = pool or WorkerPool(workers=resolve_workers(config.workers))
        #: IVF candidate index (None when ``config.ann`` is off); trained
        #: lazily on the first probe and self-synced against the store
        if config.ann:
            self.ann: Optional[IVFIndex] = IVFIndex(
                store, config.features, n_cells=config.ann_cells, obs=obs
            )
        else:
            self.ann = None
            ann_metrics.register_metrics(obs)  # families scrape at zero
        self._query_cache = QueryCache(config.query_cache_size, obs=obs)
        self._obs = obs
        self._log = log.get_logger(__name__)
        self._m_queries = obs.counter(
            "repro_search_queries_total",
            "Queries executed, by entry point.",
            labelnames=("kind",),
        )
        self._m_query_seconds = obs.histogram(
            "repro_search_seconds",
            "End-to-end query wall time (cache hits included).",
            labelnames=("kind",),
            buckets=obs.latency_buckets,
        )
        self._m_candidates = obs.histogram(
            "repro_search_candidates",
            "Candidates re-ranked per frame/vector query.",
            buckets=_COUNT_BUCKETS,
        )
        self._m_pruning = obs.histogram(
            "repro_search_pruning_ratio",
            "Fraction of the store pruned by the range index before ranking.",
            buckets=_RATIO_BUCKETS,
        )
        self._m_distance_seconds = obs.histogram(
            "repro_search_distance_seconds",
            "Per-feature distance computation time per ranked query.",
            labelnames=("feature",),
        )
        self._m_fusion_seconds = obs.histogram(
            "repro_search_fusion_seconds",
            "Weighted multi-feature fusion time per ranked query.",
        )
    def _prepared_matrix(self, name: str) -> np.ndarray:
        """The feature's prepared full stack, rebuilt when frames change.

        Delegates to :meth:`FeatureStore.prepared_matrix`: the store owns
        the one ``structure_generation``-keyed copy, so engines sharing a
        store share the stack and invalidation can't skew between the
        query cache, the ANN sync, and this cache.
        """
        return self.store.prepared_matrix(name, self.extractors[name])

    def close(self) -> None:
        """Tear down the worker pool (no-op for serial configurations)."""
        self._pool.close()

    def cache_stats(self) -> Dict[str, int]:
        """Hit/miss/invalidation counters of the query-result cache."""
        return self._query_cache.stats()

    def ann_stats(self) -> Optional[Dict[str, int]]:
        """Build/probe counters of the IVF index (None when disabled)."""
        return self.ann.stats.as_dict() if self.ann is not None else None

    def _cached_results(self, key, builder) -> SearchResults:
        """Run ``builder`` through the query cache (generation-checked)."""
        if not self._query_cache.enabled:
            return builder()
        generation = self.store.generation
        results = self._query_cache.get(key, generation)
        hit = results is not None
        if not hit:
            results = builder()
            self._query_cache.put(key, generation, results)
        # fresh wrapper + per-hit dict copies, so callers can't mutate the
        # cached entry through the returned object
        hits = [replace(h, per_feature=dict(h.per_feature)) for h in results.hits]
        explain = copy.deepcopy(results.explain)
        if explain is not None:
            explain["cache"] = "hit" if hit else "miss"
        return SearchResults(
            hits,
            n_candidates=results.n_candidates,
            n_total=results.n_total,
            degraded=results.degraded,
            degraded_features=list(results.degraded_features),
            degraded_shards=list(results.degraded_shards),
            explain=explain,
        )

    def _record_query(
        self,
        kind: str,
        t0: float,
        candidates: Optional[int] = None,
        results: Optional[SearchResults] = None,
        span: Optional[object] = None,
    ) -> None:
        """Per-query bookkeeping shared by the three public entry points."""
        elapsed = time.perf_counter() - t0
        ms = elapsed * 1000.0
        explain = results.explain if results is not None else None
        if explain is not None:
            explain["total_ms"] = round(ms, 3)
        self._m_queries.labels(kind=kind).inc()
        self._m_query_seconds.labels(kind=kind).observe(elapsed)
        if candidates is not None:
            self._m_candidates.observe(candidates)
        # one float compare on the fast path: the disabled slow log
        # advertises an infinite threshold
        if ms >= self._obs.slow_log.threshold_ms:
            self._obs.slow_log.record(
                ms,
                kind=kind,
                trace_id=getattr(span, "trace_id", None),
                candidates=candidates,
                degraded=results.degraded if results is not None else None,
                explain=copy.deepcopy(explain),
            )
        self._log.debug(
            "search.query",
            kind=kind,
            ms=round(ms, 2),
            candidates=candidates,
        )

    # -- frame query ------------------------------------------------------------

    def query_frame(
        self,
        image: Image,
        features: Optional[Sequence[str]] = None,
        top_k: int = 20,
        use_index: Optional[bool] = None,
    ) -> SearchResults:
        """Rank stored key frames against a query frame.

        ``features`` selects the ranking signal: a single name ranks by that
        feature alone; several (or None = all configured) are fused with the
        configured weights.
        """
        names = self._resolve_features(features)
        use_index = self.config.use_index if use_index is None else use_index
        t0 = time.perf_counter()
        with self._policies.request_scope(), self._obs.span(
            "search.query_frame", features=",".join(names), top_k=top_k
        ) as span:
            # with faults armed, a cached answer could outlive the chaos
            # run (or hide it), so chaos queries bypass the result cache
            if not self._query_cache.enabled or self._policies.faults.armed:
                results = self._query_frame(image, names, top_k, use_index)
                if results.explain is not None:
                    results.explain["cache"] = (
                        "bypass" if self._policies.faults.armed else "off"
                    )
            else:  # don't pay the pixel digest when the cache is off
                key = (
                    "frame", digest_array(image.pixels), tuple(names), top_k, use_index
                )
                results = self._cached_results(
                    key, lambda: self._query_frame(image, names, top_k, use_index)
                )
            span.annotate(candidates=results.n_candidates)
        self._record_query("frame", t0, results.n_candidates, results, span)
        return results

    def _query_frame(
        self, image: Image, names: List[str], top_k: int, use_index: bool
    ) -> SearchResults:
        self._policies.check_stage("search.prune")
        if use_index:
            with self._obs.span("search.index.prune"):
                candidate_ids: Optional[List[int]] = sorted(
                    self.index.candidates(image)
                )
            n_total = len(self.store)
            if n_total:
                self._m_pruning.observe(1.0 - len(candidate_ids) / n_total)
        else:
            candidate_ids = None  # the whole store (or the ANN probe below)
        self._policies.check_stage("search.extract")
        with self._obs.span("search.extract"):
            query_vectors, degraded = self._extract_degradable(image, names)
        ann_probed: Optional[bool] = None
        if self.ann is not None and candidate_ids is not None:
            # compose with the range index: a frame must survive both
            with self._obs.span("search.ann.probe"):
                ann_ids = self._ann_probe(query_vectors)
            ann_probed = ann_ids is not None
            if ann_ids is not None:
                wanted = set(ann_ids)
                candidate_ids = [fid for fid in candidate_ids if fid in wanted]
        results = self._vectors_entry(query_vectors, top_k, candidate_ids, None)
        if degraded:
            results.degraded = True
            results.degraded_features = degraded
        explain = results.explain
        if explain is not None:
            explain["kind"] = "frame"
            explain["index"] = {
                "used": bool(use_index),
                "pruning_ratio": round(results.pruning_fraction, 6),
            }
            if ann_probed is not None:  # the frame-level probe decided
                explain["ann"] = {"enabled": True, "probed": ann_probed}
            if degraded:
                explain["degraded_features"] = list(degraded)
        return results

    def _extract_degradable(
        self, image: Image, names: List[str]
    ) -> tuple:
        """Query-feature extraction with per-extractor graceful degradation.

        A failing (or fault-injected) extractor is skipped and recorded;
        the survivors' fusion weights renormalize downstream, so the
        degraded ranking is exactly the ranking the surviving feature
        subset would produce on its own.  Only when *every* extractor
        fails does the query error out.
        """
        query_vectors: Dict[str, FeatureVector] = {}
        degraded: List[str] = []
        last_error: Optional[Exception] = None
        for name in names:
            try:
                self._policies.fire(f"extractor.{name}")
                query_vectors[name] = self.extractors[name].extract(image)
            except DeadlineExceeded:
                raise
            except Exception as exc:
                last_error = exc
                degraded.append(name)
                self._policies.note_degraded(f"extractor.{name}")
                self._log.warning(
                    "search.extractor_degraded",
                    feature=name,
                    error=f"{type(exc).__name__}: {exc}",
                )
        if not query_vectors:
            raise last_error  # nothing survived: degradation is impossible
        return query_vectors, degraded

    def _ann_probe(self, query_vectors: Dict[str, FeatureVector]):
        """IVF probe through the ANN circuit breaker.

        Returns the candidate ids, or None for the exact brute-force
        fallback -- taken when the breaker is open or the probe fails
        (the failure feeds the breaker's window).
        """
        if self.ann is None:
            return None
        if not self._policies.enabled:
            return self.ann.probe(query_vectors, self.config.ann_nprobe)
        breaker = self._policies.ann_breaker
        try:
            breaker.guard()
            self._policies.fire("ann.probe")
            ids = self.ann.probe(query_vectors, self.config.ann_nprobe)
        except CircuitOpenError:
            self._policies.note_fallback("ann_brute_force")
            self._log.warning("search.ann_breaker_open", fallback="brute_force")
            return None
        except DeadlineExceeded:
            raise
        except Exception as exc:
            breaker.record_failure()
            self._policies.note_fallback("ann_brute_force")
            self._log.warning(
                "search.ann_probe_failed",
                error=f"{type(exc).__name__}: {exc}",
                fallback="brute_force",
            )
            return None
        breaker.record_success()
        return ids

    def query_with_vectors(
        self,
        query_vectors: Dict[str, FeatureVector],
        top_k: int = 20,
        candidate_ids: Optional[Sequence[int]] = None,
        weights: Optional[Dict[str, float]] = None,
    ) -> SearchResults:
        """Rank stored frames against precomputed query feature vectors.

        This is the feedback loop's entry point: relevance feedback moves
        the query vectors and reweights features, then re-ranks without
        needing an actual query image.  ``weights`` overrides the
        configuration's fusion weights; ``candidate_ids`` defaults to the
        whole store (no index pruning -- a moved query vector has no image
        to bucket).
        """
        t0 = time.perf_counter()
        with self._policies.request_scope(), self._obs.span(
            "search.query_vectors", top_k=top_k
        ) as span:
            results = self._vectors_entry(query_vectors, top_k, candidate_ids, weights)
            span.annotate(candidates=results.n_candidates)
        self._record_query("vectors", t0, results.n_candidates, results, span)
        return results

    def _vectors_entry(
        self,
        query_vectors: Dict[str, FeatureVector],
        top_k: int,
        candidate_ids: Optional[Sequence[int]],
        weights: Optional[Dict[str, float]],
    ) -> SearchResults:
        """Validation + cache wrapping shared by frame and vector queries."""
        names = [n for n in query_vectors if n in self.extractors]
        if not names:
            raise ValueError("query_vectors holds no configured features")
        # armed faults bypass the cache: a cached answer could outlive
        # (or hide) the chaos run
        if not self._query_cache.enabled or self._policies.faults.armed:
            results = self._query_with_vectors(
                query_vectors, names, top_k, candidate_ids, weights
            )
            if results.explain is not None:
                results.explain["cache"] = (
                    "bypass" if self._policies.faults.armed else "off"
                )
            return results
        key = (
            "vectors",
            digest_vectors({n: query_vectors[n] for n in names}),
            tuple(names),
            top_k,
            None
            if weights is None
            else tuple(sorted((str(n), float(w)) for n, w in weights.items())),
            None
            if candidate_ids is None
            else digest_array(np.asarray(candidate_ids, dtype=np.int64)),
        )
        return self._cached_results(
            key,
            lambda: self._query_with_vectors(
                query_vectors, names, top_k, candidate_ids, weights
            ),
        )

    def _query_with_vectors(
        self,
        query_vectors: Dict[str, FeatureVector],
        names: List[str],
        top_k: int,
        candidate_ids: Optional[Sequence[int]],
        weights: Optional[Dict[str, float]],
    ) -> SearchResults:
        self._policies.check_stage("search.score")
        full_store = False
        ann_probed = False
        if candidate_ids is None:
            if self.ann is not None:
                candidate_ids = self._ann_probe(query_vectors)
                ann_probed = candidate_ids is not None
            if candidate_ids is None:
                candidate_ids = self.store.frame_ids()
                full_store = True
        else:
            candidate_ids = list(candidate_ids)
        n_total = len(self.store)
        explain: Dict[str, object] = {
            "kind": "vectors",
            "features": list(names),
            "top_k": int(top_k),
            "n_total": n_total,
            "n_candidates": len(candidate_ids),
            "ann": {"enabled": self.ann is not None, "probed": ann_probed},
        }
        if not candidate_ids:
            return SearchResults([], n_candidates=0, n_total=n_total, explain=explain)

        batched = self.config.batch_distances
        fast = accel.fast_paths_enabled()
        prepared_scoring = batched and fast
        records: Optional[List[FrameRecord]] = None
        rows: Optional[np.ndarray] = None
        if not batched or not fast:
            # the scalar path needs the records; the reference batched path
            # materializes them too, replicating the pre-acceleration code
            records = [self.store.get(fid) for fid in candidate_ids]
        elif prepared_scoring and not full_store:
            # one binary search maps candidate ids to stack rows for every
            # feature (preparation commutes with row gathers)
            rows = self.store.matrix_rows(candidate_ids)
        per_feature: Dict[str, np.ndarray] = {}
        distance_ms: Dict[str, float] = {}
        for name in names:
            t_dist = time.perf_counter()
            extractor = self.extractors[name]
            qv = query_vectors[name]
            if prepared_scoring:
                # the id-sorted prepared stack is cached per generation;
                # only subsets pay a gather
                prepared = self._prepared_matrix(name)
                if rows is not None:
                    prepared = prepared[rows]
                per_feature[name] = extractor.batch_distance_prepared(qv, prepared)
            elif batched:
                # reference batched path: raw stack + per-call preprocessing
                matrix = self.store.feature_matrix(
                    name, None if full_store else candidate_ids
                )
                per_feature[name] = extractor.batch_distance(qv, matrix)
            else:
                per_feature[name] = np.array(
                    [extractor.distance(qv, rec.features[name]) for rec in records]
                )
            dt = time.perf_counter() - t_dist
            distance_ms[name] = round(dt * 1000.0, 3)
            self._m_distance_seconds.labels(feature=name).observe(dt)

        t_fuse = time.perf_counter()
        if len(names) == 1:
            fused = np.asarray(per_feature[names[0]], dtype=np.float64)
        else:
            if weights is None:
                weights = {n: self.config.weight_of(n) for n in names}
            fused = CombinedScorer(FeatureWeights(weights)).fuse(per_feature)
        t_fuse = time.perf_counter() - t_fuse
        explain["timings_ms"] = {
            "distance": distance_ms,
            "fusion": round(t_fuse * 1000.0, 3),
        }
        self._m_fusion_seconds.observe(t_fuse)

        if fast:
            order = _stable_topk(fused, max(0, top_k))
        else:
            order = np.argsort(fused, kind="stable")[: max(0, top_k)]
        hits = []
        for i in order:
            record = (
                records[i] if records is not None else self.store.get(candidate_ids[i])
            )
            hits.append(
                RetrievalResult(
                    frame_id=record.frame_id,
                    video_id=record.video_id,
                    video_name=record.video_name,
                    frame_name=record.frame_name,
                    category=record.category,
                    distance=float(fused[i]),
                    per_feature={n: float(per_feature[n][i]) for n in names},
                )
            )
        return SearchResults(
            hits, n_candidates=len(candidate_ids), n_total=n_total, explain=explain
        )

    # -- video query ---------------------------------------------------------------

    def query_video(
        self,
        video: Union[SyntheticVideo, Sequence[Image]],
        features: Optional[Sequence[str]] = None,
        top_k: int = 10,
    ) -> List[VideoMatch]:
        """Rank stored videos against a query clip via DP sequence alignment."""
        frames = list(video.frames) if isinstance(video, SyntheticVideo) else list(video)
        if not frames:
            raise ValueError("query video has no frames")
        t0 = time.perf_counter()
        with self._policies.request_scope(), self._obs.span(
            "search.query_video", frames=len(frames), top_k=top_k
        ) as span:
            matches = self._query_video(frames, features, top_k)
        self._record_query("video", t0, span=span)
        return matches

    def _query_video(
        self,
        frames: List[Image],
        features: Optional[Sequence[str]],
        top_k: int,
    ) -> List[VideoMatch]:
        names = self._resolve_features(features)
        self._policies.check_stage("search.keyframes")
        key_frames = [f for _i, f in self.keyframe_extractor.extract(frames)]
        # per-key-frame extraction is the query-side CPU hot spot; fan it
        # out over the pool (order-preserving, so results are unchanged)
        self._policies.check_stage("search.extract")
        extract = partial(
            _extract_query_features, extractors=self.extractors, names=names
        )
        query_seq = self._pool.map(extract, key_frames)
        self._policies.check_stage("search.score")

        video_ids = self.store.video_ids()
        if not video_ids:
            return []

        # Pairwise per-feature distances between the query sequence and the
        # *entire* stored frame population, so min-max normalization is
        # global: a video whose frames are all far from the query must keep
        # a large cost, not normalize down to zero.
        all_records: List[FrameRecord] = []
        spans: Dict[int, slice] = {}
        for video_id in video_ids:
            records = self.store.frames_of_video(video_id)
            spans[video_id] = slice(len(all_records), len(all_records) + len(records))
            all_records.extend(records)

        nq, nr = len(query_seq), len(all_records)
        record_ids = [rec.frame_id for rec in all_records]
        combined = np.zeros((nq, nr))
        total_weight = 0.0
        for name in names:
            extractor = self.extractors[name]
            m = np.empty((nq, nr))
            if self.config.batch_distances:
                matrix = self.store.feature_matrix(name, record_ids)
                for i, qf in enumerate(query_seq):
                    m[i, :] = extractor.batch_distance(qf[name], matrix)
            else:
                for i, qf in enumerate(query_seq):
                    for j, rec in enumerate(all_records):
                        m[i, j] = extractor.distance(qf[name], rec.features[name])
            w = self.config.weight_of(name)
            combined += w * normalize_scores(m.ravel()).reshape(nq, nr)
            total_weight += w
        if total_weight > 0:
            combined /= total_weight

        matches: List[VideoMatch] = []
        for video_id in video_ids:
            span = spans[video_id]
            if span.stop == span.start:
                continue
            records = all_records[span]
            distance = self._sequence_distance(combined[:, span])
            matches.append(
                VideoMatch(
                    video_id=video_id,
                    video_name=records[0].video_name,
                    category=records[0].category,
                    distance=distance,
                )
            )
        matches = self._blend_motion(frames, matches)
        matches.sort(key=lambda m: m.distance)
        return matches[: max(0, top_k)]

    def _blend_motion(self, frames: Sequence[Image], matches: List["VideoMatch"]) -> List["VideoMatch"]:
        """Mix the clip-level motion distance into the appearance ranking.

        Active only when ``config.video_motion_weight > 0`` and the stored
        videos carry motion descriptors; both components are min-max
        normalized over the match set before the weighted blend.
        """
        weight = self.config.video_motion_weight
        if weight <= 0 or len(matches) < 2 or len(frames) < 2:
            return matches
        from repro.similarity.measures import canberra
        from repro.video.motion import motion_activity

        stored = [self.store.video_motion(m.video_id) for m in matches]
        if any(s is None for s in stored):
            return matches
        query_motion = motion_activity(frames)
        motion_d = np.array([canberra(query_motion, s.values) for s in stored])
        appearance_d = np.array([m.distance for m in matches])
        blended = (
            normalize_scores(appearance_d) + weight * normalize_scores(motion_d)
        ) / (1.0 + weight)
        return [
            VideoMatch(m.video_id, m.video_name, m.category, float(d))
            for m, d in zip(matches, blended)
        ]

    def _sequence_distance(self, cost_matrix: np.ndarray) -> float:
        """DP distance over a precomputed (fused, globally-normalized) matrix."""
        nq, nr = cost_matrix.shape
        indices_q = list(range(nq))
        indices_r = list(range(nr))
        def cost(i: int, j: int) -> float:
            return float(cost_matrix[i, j])

        if self.config.sequence_method == "dtw":
            return dtw_distance(indices_q, indices_r, cost)
        return sequence_similarity(
            indices_q, indices_r, cost, method="align",
            gap_penalty=self.config.sequence_gap_penalty,
        )

    # -- helpers -------------------------------------------------------------------------

    def _resolve_features(self, features: Optional[Sequence[str]]) -> List[str]:
        if features is None:
            return list(self.config.features)
        if isinstance(features, str):
            features = [features]
        names = list(features)
        if not names:
            raise ValueError("features must not be empty")
        unknown = [n for n in names if n not in self.extractors]
        if unknown:
            raise ValueError(
                f"features {unknown} are not configured; active: {sorted(self.extractors)}"
            )
        return names
